/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/event_queue.h"

namespace checkin {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.nextEventTick(), kInvalidTick);
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickPreservesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(42, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesOnlyOnDispatch)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.schedule(200, [] {});
    EXPECT_EQ(eq.now(), 0u);
    eq.step();
    EXPECT_EQ(eq.now(), 100u);
    eq.step();
    EXPECT_EQ(eq.now(), 200u);
}

TEST(EventQueue, SchedulingInThePastClampsToNow)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.step();
    Tick seen = 0;
    EXPECT_EQ(eq.clampedSchedules(), 0u);
    eq.schedule(50, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 100u);
    // Clamps are counted so silent model bugs surface in artifacts.
    EXPECT_EQ(eq.clampedSchedules(), 1u);
    eq.schedule(100, [] {}); // exactly now: not a clamp
    eq.run();
    EXPECT_EQ(eq.clampedSchedules(), 1u);
}

TEST(EventQueue, CrossTierOrderingSpansWheelAndOverflow)
{
    // Ticks straddling the active window, several wheel buckets, and
    // the far-future overflow heap must still dispatch in (tick, seq)
    // order, including events hopping tiers as the window advances.
    EventQueue eq;
    std::vector<Tick> order;
    const Tick w = EventQueue::kBucketTicks;
    const Tick far =
        w * Tick(EventQueue::kBucketCount) * 3; // overflow tier
    const std::vector<Tick> ticks = {
        far + 17, 3,       w - 1, w,     w + 1,   5 * w,
        far,      far - w, 0,     2 * w, far + 17};
    for (Tick t : ticks)
        eq.schedule(t, [&order, &eq] { order.push_back(eq.now()); });
    eq.run();
    std::vector<Tick> expect = ticks;
    std::stable_sort(expect.begin(), expect.end());
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    eq.schedule(1000, [] {});
    eq.step();
    Tick seen = 0;
    eq.scheduleAfter(25, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 1025u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 10; t <= 100; t += 10)
        eq.schedule(t, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(50), 5u);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.pending(), 5u);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenDrained)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.clear();
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ClearReleasesStorageAndKeepsClock)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.run();
    for (int i = 0; i < 10'000; ++i)
        eq.scheduleAfter(Tick(i + 1), [&] { ++fired; });
    EXPECT_EQ(eq.pending(), 10'000u);
    eq.clear();
    // Dropping the backlog resets pending work only: the clock and
    // the dispatch count are part of run history, not the backlog.
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 5u);
    EXPECT_EQ(eq.dispatched(), 1u);
    EXPECT_EQ(eq.nextEventTick(), kInvalidTick);
    EXPECT_EQ(fired, 1);
    // The queue is reusable after clear(): scheduling and dispatch
    // behave as on a fresh queue at the same clock.
    eq.scheduleAfter(10, [&] { ++fired; });
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, CountsDispatched)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(Tick(i), [] {});
    eq.run();
    EXPECT_EQ(eq.dispatched(), 7u);
}

} // namespace
} // namespace checkin
