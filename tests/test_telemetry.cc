/**
 * @file
 * Tests for the continuous telemetry pipeline: windowed sampler
 * semantics (exact counter reconciliation, strictly increasing
 * windows), zero-storage-when-disabled, anomaly-triggered black-box
 * dumps (power cut mid-checkpoint), and byte-identical artifacts
 * across reruns, sweep worker counts, and cluster synchronizer
 * thread counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "harness/sweep.h"
#include "obs/json_parse.h"
#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ----------------------------------------------------------------------
// Sampler unit semantics
// ----------------------------------------------------------------------

TEST(TelemetrySampler, DisabledSamplerStoresNothing)
{
    obs::TelemetrySampler t; // disabled by default
    t.addGauge("g", [] { return std::uint64_t(1); });
    t.addCounter("c", [] { return std::uint64_t(1); });
    EventQueue eq;
    t.begin(eq); // must not install the step hook
    t.noteEvent(obs::TelemetryEvent::JournalStall, 1, 1);
    t.noteSloResult(1, true);
    t.noteCheckpointStart(1);
    t.noteCheckpointEnd(2, 1);
    t.finalize(2);
    EXPECT_EQ(t.probeCount(), 0u);
    EXPECT_EQ(t.sampleCount(), 0u);
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.anomalyCount(), 0u);
    EXPECT_EQ(t.storageBytes(), 0u);
    EXPECT_EQ(eq.stepHookDue(), kInvalidTick);
}

TEST(TelemetrySampler, CounterWindowsReconcileExactly)
{
    obs::TelemetryOptions opts;
    opts.enabled = true;
    opts.window = 100;
    obs::TelemetrySampler t(opts);
    std::uint64_t ops = 0;
    std::uint64_t depth = 0;
    t.addCounter("ops", [&ops] { return ops; });
    t.addGauge("depth", [&depth] { return depth; });

    EventQueue eq;
    // Load-phase noise: counted before begin(), so the baseline
    // snapshot must exclude it from every window and from final.
    ops = 5;
    t.begin(eq);
    for (std::uint64_t i = 0; i < 40; ++i) {
        eq.schedule(i * 37, [&ops, &depth, i] {
            ops += 3;
            depth = i;
        });
    }
    eq.run();
    t.finalize(eq.now());

    const std::vector<obs::TelemetrySeries> sv = t.series();
    ASSERT_EQ(sv.size(), 2u);
    EXPECT_EQ(sv[0].name, "depth");
    EXPECT_EQ(sv[1].name, "ops");
    EXPECT_EQ(sv[0].kind, obs::ProbeKind::Gauge);
    EXPECT_EQ(sv[1].kind, obs::ProbeKind::Counter);

    // Counter: per-window deltas sum to the post-baseline final.
    EXPECT_EQ(sv[1].final, 40u * 3u);
    std::uint64_t sum = 0;
    std::uint64_t prev_window = 0;
    bool first = true;
    for (const auto &[w, v] : sv[1].points) {
        if (!first) {
            EXPECT_GT(w, prev_window);
        }
        first = false;
        prev_window = w;
        sum += v;
    }
    EXPECT_EQ(sum, sv[1].final);

    // Gauge: final is the last sampled value.
    EXPECT_EQ(sv[0].final, 39u);
    EXPECT_GT(t.sampleCount(), 0u);
}

TEST(TelemetrySampler, SloStreakAndMediaErrorFireAnomalies)
{
    obs::TelemetryOptions opts;
    opts.enabled = true;
    opts.sloStreak = 4;
    obs::TelemetrySampler t(opts);
    EventQueue eq;
    t.begin(eq);

    // Three violations then a pass: streak resets, no anomaly.
    for (Tick i = 1; i <= 3; ++i)
        t.noteSloResult(i, true);
    t.noteSloResult(4, false);
    EXPECT_EQ(t.anomalyCount(), 0u);

    // Four consecutive violations: SloStreak fires once.
    for (Tick i = 5; i <= 8; ++i)
        t.noteSloResult(i, true);
    EXPECT_EQ(t.anomalyCount(), 1u);

    // A media error is an immediate anomaly.
    t.noteEvent(obs::TelemetryEvent::MediaError, 9, 7);
    EXPECT_EQ(t.anomalyCount(), 2u);
    t.finalize(10);

    const obs::JsonValue bb = obs::parseJson(t.blackboxJson());
    EXPECT_EQ(bb.at("anomalies").asU64(), 2u);
    const obs::JsonValue &dumps = bb.at("dumps");
    ASSERT_EQ(dumps.items.size(), 2u);
    EXPECT_EQ(dumps.at(0).at("anomaly").asString(), "sloStreak");
    EXPECT_EQ(dumps.at(1).at("anomaly").asString(), "mediaError");
}

// ----------------------------------------------------------------------
// Telemetry over a full experiment
// ----------------------------------------------------------------------

ExperimentConfig
telemetryRunConfig(const std::string &artifact_dir)
{
    ExperimentConfig cfg = presets::small();
    cfg.workload.operationCount = 3000;
    cfg.threads = 8;
    cfg.traffic.mode = LoopMode::Open;
    cfg.traffic.offeredOpsPerSec = 150'000;
    cfg.traffic.tenants.push_back(TenantSpec{});
    cfg.obs.telemetry.enabled = true;
    cfg.obs.artifactDir = artifact_dir;
    return cfg;
}

TEST(TelemetryRun, ArtifactsReconcileWithFinalCounters)
{
    const std::string dir =
        ::testing::TempDir() + "checkin-telemetry-run";
    ExperimentConfig cfg = telemetryRunConfig(dir);
    const RunResult r = runExperiment(cfg);
    EXPECT_TRUE(r.telemetry.enabled);
    EXPECT_GT(r.telemetry.probes, 0u);
    EXPECT_GT(r.telemetry.samples, 0u);

    ASSERT_FALSE(r.artifacts.empty());
    bool saw_telemetry = false;
    bool saw_blackbox = false;
    for (const std::string &f : r.artifacts.files) {
        saw_telemetry |= f == "telemetry.json";
        saw_blackbox |= f == "blackbox.json";
    }
    EXPECT_TRUE(saw_telemetry);
    EXPECT_TRUE(saw_blackbox);

    const obs::JsonValue tj =
        obs::parseJson(slurp(r.artifacts.dir + "/telemetry.json"));
    EXPECT_GT(tj.at("windowTicks").asU64(), 0u);
    EXPECT_GE(tj.at("finalTick").asU64(),
              tj.at("baselineTick").asU64());
    ASSERT_FALSE(tj.at("probes").fields.empty());
    for (const auto &[name, probe] : tj.at("probes").fields) {
        std::uint64_t prev = 0;
        bool first = true;
        std::uint64_t sum = 0;
        for (const auto &pt : probe.at("points").items) {
            const std::uint64_t w = pt.at(0).asU64();
            if (!first) {
                EXPECT_GT(w, prev) << name;
            }
            first = false;
            prev = w;
            sum += pt.at(1).asU64();
        }
        if (probe.at("kind").asString() == "counter") {
            EXPECT_EQ(sum, probe.at("final").asU64()) << name;
        }
    }
}

TEST(TelemetryRun, ByteIdenticalAcrossReruns)
{
    const std::string base =
        ::testing::TempDir() + "checkin-telemetry-rerun";
    ExperimentConfig a = telemetryRunConfig(base + "-a");
    ExperimentConfig b = telemetryRunConfig(base + "-b");
    const RunResult ra = runExperiment(a);
    const RunResult rb = runExperiment(b);
    for (const char *f : {"telemetry.json", "blackbox.json"}) {
        EXPECT_EQ(slurp(ra.artifacts.dir + "/" + f),
                  slurp(rb.artifacts.dir + "/" + f))
            << f;
    }
}

TEST(TelemetrySweep, ByteIdenticalAcrossWorkerCounts)
{
    const std::string base =
        ::testing::TempDir() + "checkin-telemetry-sweep";
    auto points = [&base](const std::string &tag) {
        std::vector<SweepPoint> pts;
        for (int i = 0; i < 3; ++i) {
            SweepPoint p;
            p.label = "p" + std::to_string(i);
            p.config = telemetryRunConfig(base + "-" + tag);
            p.config.obs.runName = p.label;
            p.config.workload.operationCount = 1500 + 200 * i;
            pts.push_back(std::move(p));
        }
        return pts;
    };
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions wide;
    wide.jobs = 4;
    const auto ra = runSweep(points("j1"), serial);
    const auto rb = runSweep(points("j4"), wide);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        ASSERT_TRUE(ra[i].ok) << ra[i].error;
        ASSERT_TRUE(rb[i].ok) << rb[i].error;
        for (const char *f : {"telemetry.json", "blackbox.json"}) {
            EXPECT_EQ(
                slurp(ra[i].result.artifacts.dir + "/" + f),
                slurp(rb[i].result.artifacts.dir + "/" + f))
                << ra[i].label << "/" << f;
        }
    }
}

// ----------------------------------------------------------------------
// Anomaly capture: power cut mid-checkpoint
// ----------------------------------------------------------------------

/**
 * Drive a device + engine stack to a mid-checkpoint power cut (the
 * crash-oracle recipe) with telemetry armed, and return the black
 * box. The cut must land while checkpointInProgress(), so the dump
 * captures the state leading into the incident.
 */
std::string
powerCutBlackbox()
{
    ExperimentConfig cfg = presets::small();
    SimContext ctx(cfg.seed != 0 ? cfg.seed : 42);

    obs::TelemetryOptions topts;
    topts.enabled = true;
    topts.window = 100 * kUsec;
    obs::TelemetrySampler telem(topts);
    ctx.setTelemetry(&telem);
    SimContextScope scope(ctx);

    FaultPlan plan(FaultConfig{},
                   ctx.deriveSeed(FaultPlan::kSeedStream));
    ctx.setFaults(&plan);

    FtlConfig ftl_cfg = cfg.ftl;
    ftl_cfg.mappingUnitBytes = cfg.resolvedMappingUnit();
    Ssd ssd(ctx, cfg.nand, ftl_cfg, cfg.ssd);
    std::unique_ptr<StorageEngine> engine =
        presets::makeEngine(ctx, ssd, cfg.engine);
    engine->load([](std::uint64_t) { return std::uint32_t(256); });

    EventQueue &eq = ctx.events();
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();
    const Tick load_end = eq.now();

    telem.begin(eq);
    engine->start();

    // Paced updates plus one forced checkpoint partway through.
    StorageEngine *eng = engine.get();
    for (std::uint32_t i = 0; i < 300; ++i) {
        const std::uint64_t key = i % cfg.engine.recordCount;
        const Tick at = load_end + Tick(i + 1) * (50 * kUsec);
        eq.schedule(at, [eng, key] {
            eng->update(key, 256, [](const QueryResult &) {});
        });
        if (i == 100) {
            eq.schedule(at,
                        [eng] { eng->requestCheckpoint(); });
        }
    }

    while (!eng->checkpointInProgress()) {
        if (!eq.step())
            break;
    }
    EXPECT_TRUE(eng->checkpointInProgress());
    const Tick cut = eq.now();

    // Host crash: continuations die with the queue, then the device
    // loses power — which fires the PowerCut anomaly into the black
    // box. The engine object stays alive (its probes are sampled by
    // finalize) but never runs again.
    eq.clear();
    ssd.suddenPowerLoss();
    telem.finalize(cut);

    EXPECT_GE(telem.anomalyCount(), 1u);
    const std::string bb = telem.blackboxJson();
    const obs::JsonValue v = obs::parseJson(bb);
    bool saw_power_cut = false;
    for (const auto &dump : v.at("dumps").items) {
        const std::uint64_t trigger =
            dump.at("triggerTick").asU64();
        EXPECT_LE(trigger, cut);
        if (dump.at("anomaly").asString() == "powerCut") {
            saw_power_cut = true;
            EXPECT_EQ(trigger, cut);
        }
        // Flight-recorder invariant: nothing in a dump postdates
        // its trigger.
        for (const auto &ev : dump.at("events").items)
            EXPECT_LE(ev.at(0).asU64(), trigger);
        for (const auto &s : dump.at("samples").items)
            EXPECT_LE(s.at("tick").asU64(), trigger);
    }
    EXPECT_TRUE(saw_power_cut);
    return bb;
}

TEST(TelemetryAnomaly, PowerCutMidCheckpointCapturesDump)
{
    const std::string a = powerCutBlackbox();
    const std::string b = powerCutBlackbox();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b); // reruns are byte-identical
}

// ----------------------------------------------------------------------
// Cluster: per-shard samplers, sync-thread independence
// ----------------------------------------------------------------------

TEST(TelemetryCluster, ByteIdenticalAcrossSyncThreadCounts)
{
    const std::string base =
        ::testing::TempDir() + "checkin-telemetry-cluster";
    auto run = [&base](unsigned threads, const std::string &tag) {
        ClusterConfig cfg = presets::cluster();
        cfg.workload.operationCount = 2000;
        cfg.shard.obs.telemetry.enabled = true;
        cfg.syncThreads = threads;
        cfg.artifactDir = base + "-" + tag;
        return runCluster(cfg);
    };
    const ClusterResult a = run(1, "t1");
    const ClusterResult b = run(4, "t4");
    EXPECT_TRUE(a.telemetry.enabled);
    EXPECT_GT(a.telemetry.probes, 0u);
    EXPECT_GT(a.telemetry.samples, 0u);
    for (const char *f : {"telemetry.json", "blackbox.json"}) {
        EXPECT_EQ(slurp(a.artifacts.dir + "/" + f),
                  slurp(b.artifacts.dir + "/" + f))
            << f;
    }

    // The merged artifact carries per-shard series and cluster
    // rollups whose finals are the shard sums.
    const obs::JsonValue tj =
        obs::parseJson(slurp(a.artifacts.dir + "/telemetry.json"));
    const std::uint64_t shards = tj.at("shardCount").asU64();
    ASSERT_GT(shards, 0u);
    std::uint64_t rollups = 0;
    for (const auto &[name, probe] : tj.at("probes").fields) {
        if (name.rfind("cluster.", 0) != 0)
            continue;
        ++rollups;
        const std::string leaf = name.substr(8);
        std::uint64_t sum = 0;
        for (std::uint64_t s = 0; s < shards; ++s) {
            const obs::JsonValue *sp = tj.at("probes").find(
                "shard" + std::to_string(s) + "." + leaf);
            ASSERT_NE(sp, nullptr) << name;
            sum += sp->at("final").asU64();
        }
        EXPECT_EQ(sum, probe.at("final").asU64()) << name;
    }
    EXPECT_GT(rollups, 0u);
}

} // namespace
} // namespace checkin
