/**
 * @file
 * Full-stack integration tests through the experiment harness:
 * every mode x workload combination runs end-to-end, completes all
 * operations, and passes full content verification (done inside
 * runExperiment); cross-mode orderings match the paper's claims.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.h"
#include "harness/presets.h"

namespace checkin {
namespace {

ExperimentConfig
tinyConfig(CheckpointMode mode, const WorkloadSpec &wl)
{
    ExperimentConfig c = presets::small();
    c.engine.mode = mode;
    c.engine.recordCount = 2000;
    c.workload = wl;
    c.workload.operationCount = 6'000;
    c.threads = 16;
    c.engine.checkpointInterval = 10 * kMsec;
    c.engine.checkpointJournalBytes = 512 * kKiB;
    c.engine.journalHalfBytes = 4 * kMiB;
    return c;
}

using ModeWorkload = std::tuple<CheckpointMode, const char *>;

class ModeWorkloadMatrix
    : public ::testing::TestWithParam<ModeWorkload>
{
  protected:
    static WorkloadSpec
    workloadByName(const std::string &name)
    {
        if (name == "a")
            return WorkloadSpec::a();
        if (name == "f")
            return WorkloadSpec::f();
        return WorkloadSpec::wo();
    }
};

TEST_P(ModeWorkloadMatrix, RunsToCompletionAndVerifies)
{
    const auto [mode, wl_name] = GetParam();
    const RunResult r =
        runExperiment(tinyConfig(mode, workloadByName(wl_name)));
    EXPECT_EQ(r.client.opsCompleted, 6'000u);
    EXPECT_GT(r.throughputOps, 0.0);
    EXPECT_GT(r.client.all.mean(), 0.0);
    EXPECT_GT(r.checkpoints, 0u);
    // Flash activity happened and was attributed.
    EXPECT_GT(r.nandPrograms, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ModeWorkloadMatrix,
    ::testing::Combine(
        ::testing::Values(CheckpointMode::Baseline,
                          CheckpointMode::IscA, CheckpointMode::IscB,
                          CheckpointMode::IscC,
                          CheckpointMode::CheckIn),
        ::testing::Values("a", "f", "wo")),
    [](const ::testing::TestParamInfo<ModeWorkload> &info) {
        std::string name;
        switch (std::get<0>(info.param)) {
          case CheckpointMode::Baseline: name = "Baseline"; break;
          case CheckpointMode::IscA: name = "IscA"; break;
          case CheckpointMode::IscB: name = "IscB"; break;
          case CheckpointMode::IscC: name = "IscC"; break;
          case CheckpointMode::CheckIn: name = "CheckIn"; break;
        }
        return name + "_" + std::get<1>(info.param);
    });

TEST(PaperClaims, CheckInBeatsBaselineOnRedundantWrites)
{
    const RunResult base = runExperiment(
        tinyConfig(CheckpointMode::Baseline, WorkloadSpec::a()));
    const RunResult ours = runExperiment(
        tinyConfig(CheckpointMode::CheckIn, WorkloadSpec::a()));
    // Paper: -94.3 %. Require at least a 4x reduction here.
    EXPECT_LT(ours.redundantBytes * 4, base.redundantBytes);
    // And overall flash programs must drop.
    EXPECT_LT(ours.nandPrograms, base.nandPrograms);
}

TEST(PaperClaims, CheckInShortensCheckpointTime)
{
    const RunResult base = runExperiment(
        tinyConfig(CheckpointMode::Baseline, WorkloadSpec::a()));
    const RunResult ours = runExperiment(
        tinyConfig(CheckpointMode::CheckIn, WorkloadSpec::a()));
    EXPECT_LT(ours.avgCheckpointMs, base.avgCheckpointMs);
}

TEST(PaperClaims, CheckInImprovesTailLatency)
{
    const RunResult base = runExperiment(
        tinyConfig(CheckpointMode::Baseline, WorkloadSpec::a()));
    const RunResult ours = runExperiment(
        tinyConfig(CheckpointMode::CheckIn, WorkloadSpec::a()));
    EXPECT_LT(ours.client.all.quantile(0.999),
              base.client.all.quantile(0.999));
}

TEST(PaperClaims, CheckInRemapsWhereIscCCopies)
{
    const RunResult iscc = runExperiment(
        tinyConfig(CheckpointMode::IscC, WorkloadSpec::a()));
    const RunResult ours = runExperiment(
        tinyConfig(CheckpointMode::CheckIn, WorkloadSpec::a()));
    EXPECT_GT(ours.remaps, iscc.remaps);
    EXPECT_LT(ours.redundantBytes, iscc.redundantBytes);
}

TEST(PaperClaims, AlignedJournalingCostsBoundedSpace)
{
    const RunResult ours = runExperiment(
        tinyConfig(CheckpointMode::CheckIn, WorkloadSpec::wo()));
    // Bucketing to unit/4 steps can cost at most 3x on pathological
    // inputs; for the default size mix it stays well under 40 %.
    EXPECT_GE(ours.journalSpaceOverhead(), 0.0);
    EXPECT_LT(ours.journalSpaceOverhead(), 0.40);
}

TEST(Harness, DeltaStatsExcludeLoad)
{
    ExperimentConfig cfg =
        tinyConfig(CheckpointMode::CheckIn, WorkloadSpec::c());
    cfg.workload.operationCount = 500;
    const RunResult r = runExperiment(cfg);
    // A read-only workload with no checkpoints writes almost nothing
    // (map flushes may still occur).
    EXPECT_EQ(r.redundantSlotWrites, 0u);
    EXPECT_EQ(r.client.opsCompleted, 500u);
    EXPECT_GT(r.hostReadSectors, 0u);
}

TEST(Harness, ResolvedMappingUnitFollowsMode)
{
    ExperimentConfig c;
    c.engine.mode = CheckpointMode::Baseline;
    EXPECT_EQ(c.resolvedMappingUnit(), c.nand.pageBytes);
    c.engine.mode = CheckpointMode::CheckIn;
    EXPECT_EQ(c.resolvedMappingUnit(), 512u);
    c.mappingUnitOverride = 2048;
    EXPECT_EQ(c.resolvedMappingUnit(), 2048u);
}

} // namespace
} // namespace checkin
