/**
 * @file
 * Golden determinism test for the calendar-queue kernel.
 *
 * The calendar queue replaced a binary-heap EventQueue whose
 * (tick, seq) dispatch order is the simulator's determinism contract.
 * ReferenceEventQueue below *is* that original implementation
 * (std::priority_queue + std::function); the tests drive both queues
 * through randomized schedule/clear/runUntil interleavings and assert
 * the dispatch sequences digest bit-for-bit equal.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace checkin {
namespace {

/** The pre-calendar binary-heap kernel, kept verbatim as the oracle. */
class ReferenceEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            when = now_;
        events_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    bool empty() const { return events_.empty(); }

    Tick
    nextEventTick() const
    {
        return events_.empty() ? kInvalidTick : events_.top().when;
    }

    bool
    step()
    {
        if (events_.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        now_ = ev.when;
        ev.cb();
        return true;
    }

    std::uint64_t
    run()
    {
        std::uint64_t n = 0;
        while (step())
            ++n;
        return n;
    }

    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (!events_.empty() && events_.top().when <= limit) {
            step();
            ++n;
        }
        if (now_ < limit && events_.empty())
            now_ = limit;
        return n;
    }

    void
    clear()
    {
        std::priority_queue<Event, std::vector<Event>, Later> empty;
        events_.swap(empty);
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** FNV-1a over the (tick, payload) dispatch stream. */
class DispatchDigest
{
  public:
    void
    record(Tick when, std::uint64_t payload)
    {
        mix(when);
        mix(payload);
        ++count_;
    }

    std::uint64_t value() const { return hash_; }
    std::uint64_t count() const { return count_; }

  private:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xff;
            hash_ *= 0x100000001b3ULL;
        }
    }

    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
    std::uint64_t count_ = 0;
};

/**
 * Drive @p q through a deterministic pseudo-random script of
 * schedule / reschedule-from-callback / runUntil / clear steps and
 * digest the dispatch sequence. The script depends only on @p seed
 * (and each queue's clock, which must itself agree), so two correct
 * queues produce identical digests.
 */
template <typename Queue>
DispatchDigest
runScript(Queue &q, std::uint64_t seed)
{
    DispatchDigest digest;
    Rng rng(seed);
    std::uint64_t payload = 0;

    // Delay mix mirroring the simulator: mostly near-future (CPU and
    // NAND page latencies), occasional far-future timers, and some
    // same-tick fan-out.
    auto draw_delay = [&rng]() -> Tick {
        switch (rng.nextBounded(10)) {
          case 0: return 0;
          case 1: return rng.nextBounded(8);
          case 2:
          case 3: return rng.nextBounded(2'000);
          case 4:
          case 5:
          case 6: return 50'000 + rng.nextBounded(600'000);
          case 7:
          case 8: return rng.nextBounded(3'000'000);
          default: return rng.nextBounded(250'000'000);
        }
    };

    // Callbacks re-schedule children to exercise in-dispatch inserts
    // landing in the active window, the wheel, and the overflow tier.
    std::function<void(std::uint64_t, std::uint32_t)> fire =
        [&](std::uint64_t id, std::uint32_t children) {
            digest.record(q.now(), id);
            for (std::uint32_t c = 0; c < children; ++c) {
                const Tick d = draw_delay();
                const std::uint64_t child = ++payload;
                const auto grandchildren =
                    std::uint32_t(rng.nextBounded(2));
                q.scheduleAfter(d, [&fire, child, grandchildren] {
                    fire(child, grandchildren);
                });
            }
        };

    for (int round = 0; round < 40; ++round) {
        const std::uint64_t burst = 1 + rng.nextBounded(60);
        for (std::uint64_t i = 0; i < burst; ++i) {
            const std::uint64_t id = ++payload;
            const auto children = std::uint32_t(rng.nextBounded(3));
            q.schedule(q.now() + draw_delay(),
                       [&fire, id, children] { fire(id, children); });
        }
        switch (rng.nextBounded(6)) {
          case 0:
            // Power cut: drop the backlog mid-flight.
            q.runUntil(q.now() + draw_delay());
            q.clear();
            break;
          case 1:
            q.run();
            break;
          default:
            q.runUntil(q.now() + draw_delay());
            break;
        }
        digest.record(q.now(), q.nextEventTick());
    }
    q.run();
    digest.record(q.now(), 0xdeadbeef);
    return digest;
}

TEST(EventQueueGolden, MatchesReferenceHeapBitForBit)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        EventQueue calendar;
        ReferenceEventQueue reference;
        const DispatchDigest a = runScript(calendar, seed);
        const DispatchDigest b = runScript(reference, seed);
        EXPECT_EQ(a.count(), b.count()) << "seed " << seed;
        EXPECT_EQ(a.value(), b.value()) << "seed " << seed;
        EXPECT_EQ(calendar.now(), reference.now())
            << "seed " << seed;
    }
}

TEST(EventQueueGolden, DispatchedAndPendingStayConsistent)
{
    EventQueue eq;
    Rng rng(7);
    std::uint64_t scheduled = 0;
    for (int i = 0; i < 1000; ++i) {
        eq.schedule(rng.nextBounded(5'000'000), [] {});
        ++scheduled;
    }
    EXPECT_EQ(eq.pending(), scheduled);
    eq.runUntil(2'500'000);
    EXPECT_EQ(eq.pending() + eq.dispatched(), scheduled);
    eq.run();
    EXPECT_EQ(eq.dispatched(), scheduled);
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace checkin
