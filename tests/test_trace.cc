/**
 * @file
 * Tests for trace record/replay: round-trip serialization, error
 * handling, deterministic replay, and cross-mode equivalence on an
 * identical request stream.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"
#include "workload/trace.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

TEST(Trace, SaveLoadRoundTrip)
{
    WorkloadSpec spec = WorkloadSpec::a();
    spec.seed = 5;
    const Trace t = Trace::generate(spec, 1000, 500);
    std::stringstream ss;
    t.save(ss);
    const Trace back = Trace::load(ss);
    EXPECT_TRUE(t == back);
    EXPECT_EQ(back.size(), 500u);
}

TEST(Trace, AllOpKindsRoundTrip)
{
    using OpType = WorkloadGenerator::OpType;
    Trace t;
    t.add({OpType::Read, 1, 0, 0});
    t.add({OpType::Update, 2, 384, 0});
    t.add({OpType::Rmw, 3, 512, 0});
    t.add({OpType::Scan, 4, 0, 17});
    t.add({OpType::Delete, 5, 0, 0});
    std::stringstream ss;
    t.save(ss);
    EXPECT_TRUE(Trace::load(ss) == t);
}

TEST(Trace, LoadSkipsCommentsAndBlankLines)
{
    std::stringstream ss("# header\n\nR 7\n# tail\nU 8 256\n");
    const Trace t = Trace::load(ss);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.ops()[0].key, 7u);
    EXPECT_EQ(t.ops()[1].valueBytes, 256u);
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream bad1("X 1\n");
    EXPECT_THROW(Trace::load(bad1), std::invalid_argument);
    std::stringstream bad2("U 5\n"); // missing bytes
    EXPECT_THROW(Trace::load(bad2), std::invalid_argument);
}

TEST(Trace, GenerateIsDeterministic)
{
    WorkloadSpec spec = WorkloadSpec::f();
    spec.seed = 11;
    EXPECT_TRUE(Trace::generate(spec, 300, 200) ==
                Trace::generate(spec, 300, 200));
}

struct Stack
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;

    explicit Stack(CheckpointMode mode)
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes =
            mode == CheckpointMode::Baseline ? 4096 : 512;
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        EngineConfig ecfg;
        ecfg.mode = mode;
        ecfg.recordCount = 300;
        ecfg.journalHalfBytes = 2 * kMiB;
        ecfg.checkpointJournalBytes = kMiB;
        ecfg.checkpointInterval = 0;
        engine = std::make_unique<KvEngine>(ctx, *ssd, ecfg);
        engine->load([](std::uint64_t) { return 256u; });
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }

    /** Final committed version per key. */
    std::vector<std::uint32_t>
    versions() const
    {
        std::vector<std::uint32_t> v(300);
        for (std::uint64_t k = 0; k < 300; ++k)
            v[k] = engine->keymap()[k].version;
        return v;
    }
};

TEST(TraceReplay, CompletesEveryOperation)
{
    Stack s(CheckpointMode::CheckIn);
    WorkloadSpec spec = WorkloadSpec::a();
    const Trace t = Trace::generate(spec, 300, 800);
    TraceReplayer replay(s.ctx, *s.engine, t, 16);
    replay.start();
    while (!replay.done()) {
        ASSERT_TRUE(s.eq.step()) << "deadlock during replay";
    }
    EXPECT_EQ(replay.completed(), 800u);
    s.engine->verifyAllKeys();
}

TEST(TraceReplay, SameTraceSameFinalStateAcrossModes)
{
    WorkloadSpec spec = WorkloadSpec::a();
    spec.seed = 23;
    const Trace t = Trace::generate(spec, 300, 600);
    std::vector<std::uint32_t> reference;
    for (CheckpointMode mode :
         {CheckpointMode::Baseline, CheckpointMode::IscC,
          CheckpointMode::CheckIn}) {
        Stack s(mode);
        TraceReplayer replay(s.ctx, *s.engine, t, 8);
        replay.start();
        while (!replay.done())
            ASSERT_TRUE(s.eq.step());
        s.engine->requestCheckpoint();
        s.eq.run();
        const auto versions = s.versions();
        if (reference.empty())
            reference = versions;
        else
            EXPECT_EQ(versions, reference)
                << "mode " << int(mode) << " diverged";
        s.engine->verifyAllKeys();
    }
}

TEST(TraceReplay, HandlesDeletesInTrace)
{
    Stack s(CheckpointMode::CheckIn);
    using OpType = WorkloadGenerator::OpType;
    Trace t;
    t.add({OpType::Update, 10, 256, 0});
    t.add({OpType::Delete, 10, 0, 0});
    t.add({OpType::Read, 10, 0, 0});
    t.add({OpType::Scan, 5, 0, 10});
    TraceReplayer replay(s.ctx, *s.engine, t, 1);
    replay.start();
    while (!replay.done())
        ASSERT_TRUE(s.eq.step());
    EXPECT_EQ(s.engine->keymap()[10].storedChunks, 0u);
    s.engine->verifyAllKeys();
}

} // namespace
} // namespace checkin
