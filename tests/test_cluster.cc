/**
 * @file
 * Cluster simulation tests: the determinism contract (byte-identical
 * artifacts for any synchronizer thread count, and under concurrent
 * outer runs), the router/shard accounting invariants, the three
 * checkpoint coordination policies, and the cluster.json artifact.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/hash_ring.h"

namespace checkin {
namespace {

/** Preset shrunk so a full cluster run stays test-sized. */
ClusterConfig
testConfig()
{
    ClusterConfig cfg = presets::cluster();
    cfg.shard.engine.recordCount = 1000;
    cfg.shard.engine.checkpointInterval = 2 * kMsec;
    cfg.workload.operationCount = 4000;
    return cfg;
}

std::string
runJson(ClusterConfig cfg)
{
    const ClusterResult r = runCluster(cfg);
    return clusterResultJson(cfg, r);
}

TEST(HashRing, CoversAllShardsDeterministically)
{
    const HashRing ring(8, 64);
    ASSERT_EQ(ring.size(), 8u * 64u);
    std::vector<std::uint64_t> perShard(8, 0);
    for (std::uint64_t k = 0; k < 8000; ++k) {
        const std::uint32_t s = ring.shardOf(k);
        ASSERT_LT(s, 8u);
        ++perShard[s];
        EXPECT_EQ(s, ring.shardOf(k)); // stable
    }
    for (std::uint32_t s = 0; s < 8; ++s)
        EXPECT_GT(perShard[s], 0u) << "shard " << s << " owns no key";
}

TEST(Cluster, ByteIdenticalAcrossSyncThreads)
{
    ClusterConfig cfg = testConfig();
    ASSERT_GE(cfg.shardCount, 4u);

    cfg.syncThreads = 1;
    const std::string serial = runJson(cfg);
    ASSERT_FALSE(serial.empty());

    cfg.syncThreads = 4;
    EXPECT_EQ(serial, runJson(cfg))
        << "4 synchronizer threads changed the result";

    // Byte-identical also when whole cluster runs execute
    // concurrently (sweep-style outer parallelism): every run is
    // isolated in its own SimContexts.
    std::vector<std::string> outer(4);
    {
        std::vector<std::thread> workers;
        workers.reserve(outer.size());
        for (std::size_t i = 0; i < outer.size(); ++i) {
            workers.emplace_back([&cfg, &outer, i] {
                ClusterConfig mine = cfg;
                mine.syncThreads = 1 + unsigned(i % 2);
                outer[i] = runJson(mine);
            });
        }
        for (std::thread &t : workers)
            t.join();
    }
    for (const std::string &json : outer)
        EXPECT_EQ(serial, json);
}

TEST(Cluster, RoutingInvariantsHold)
{
    ClusterConfig cfg = testConfig();
    const ClusterResult r = runCluster(cfg);

    EXPECT_EQ(r.router.opsIssued, cfg.workload.operationCount);
    EXPECT_EQ(r.router.opsCompleted, cfg.workload.operationCount);
    EXPECT_EQ(r.router.all.count(), r.router.opsCompleted);

    ASSERT_EQ(r.shards.size(), cfg.shardCount);
    ASSERT_EQ(r.router.routedOps.size(), cfg.shardCount);
    ASSERT_EQ(r.router.routedBytes.size(), cfg.shardCount);

    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t keys = 0;
    for (std::uint32_t s = 0; s < cfg.shardCount; ++s) {
        EXPECT_EQ(r.shards[s].ops, r.router.routedOps[s])
            << "shard " << s;
        EXPECT_EQ(r.shards[s].bytes, r.router.routedBytes[s])
            << "shard " << s;
        EXPECT_GT(r.shards[s].keys, 0u);
        ops += r.shards[s].ops;
        bytes += r.shards[s].bytes;
        keys += r.shards[s].keys;
    }
    EXPECT_EQ(ops, r.router.opsCompleted);
    EXPECT_EQ(bytes, r.router.totalBytes);
    EXPECT_EQ(keys, cfg.totalRecords());
    EXPECT_EQ(r.verifiedKeys, cfg.totalRecords());
    EXPECT_GT(r.sync.windows, 0u);
    EXPECT_GE(r.sync.messages, 2 * r.router.opsCompleted);
    EXPECT_GT(r.simSpan, 0u);
}

TEST(Cluster, CoordinationPoliciesCheckpointEveryShard)
{
    for (const CkptCoordination policy :
         {CkptCoordination::Independent,
          CkptCoordination::Synchronized,
          CkptCoordination::Staggered}) {
        ClusterConfig cfg = testConfig();
        cfg.coordination = policy;
        const ClusterResult r = runCluster(cfg);
        SCOPED_TRACE(ckptCoordinationName(policy));

        std::uint64_t checkpoints = 0;
        for (const ShardSummary &s : r.shards) {
            EXPECT_GT(s.checkpoints, 0u) << "shard " << s.shard;
            checkpoints += s.checkpoints;
        }
        if (policy == CkptCoordination::Independent) {
            EXPECT_EQ(r.router.ckptControls, 0u);
        } else {
            EXPECT_GT(r.router.ckptControls, 0u);
            // Every control message reaches a shard; shards may add
            // safety-net checkpoints (journal pressure) on top.
            EXPECT_GE(checkpoints, r.router.ckptControls / 2);
        }
        EXPECT_EQ(r.router.opsCompleted,
                  cfg.workload.operationCount);
    }
}

TEST(Cluster, AttributionReportsCheckpointStall)
{
    ClusterConfig cfg = testConfig();
    cfg.attributionEnabled = true;
    cfg.coordination = CkptCoordination::Synchronized;
    const ClusterResult r = runCluster(cfg);
    std::uint64_t attrOps = 0;
    for (const ShardSummary &s : r.shards) {
        EXPECT_TRUE(s.attribution.enabled);
        attrOps += s.attribution.totalOps;
    }
    EXPECT_EQ(attrOps, r.router.opsCompleted);
}

TEST(Cluster, WritesClusterJsonArtifact)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "checkin_cluster_artifacts";
    std::filesystem::remove_all(dir);

    ClusterConfig cfg = testConfig();
    cfg.workload.operationCount = 1000;
    cfg.artifactDir = dir.string();
    cfg.runName = "cluster-test";
    const ClusterResult r = runCluster(cfg);

    ASSERT_FALSE(r.artifacts.empty());
    const std::filesystem::path file =
        std::filesystem::path(r.artifacts.dir) / "cluster.json";
    ASSERT_TRUE(std::filesystem::exists(file));

    std::ifstream in(file);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), clusterResultJson(cfg, r));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace checkin
