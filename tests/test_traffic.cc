/**
 * @file
 * Arrival-engine statistics and open-loop client accounting
 * (workload/traffic.h, docs/TRAFFIC.md). The moment tests pin the
 * generators to fixed seeds, so the expected values are exact
 * properties of the deterministic draw sequence, with tolerances
 * covering only sampling error at the chosen draw counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "workload/traffic.h"

namespace checkin {
namespace {

std::vector<Tick>
drawGaps(const TrafficSpec &spec, std::uint64_t seed, std::size_t n)
{
    ArrivalEngine e(spec, seed);
    std::vector<Tick> gaps;
    gaps.reserve(n);
    Tick now = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Tick g = e.nextInterarrival(now);
        gaps.push_back(g);
        now += g;
    }
    return gaps;
}

double
meanOf(const std::vector<Tick> &v)
{
    double s = 0.0;
    for (const Tick t : v)
        s += double(t);
    return s / double(v.size());
}

/** Coefficient of variation: stddev / mean. */
double
cvOf(const std::vector<Tick> &v)
{
    const double m = meanOf(v);
    double sq = 0.0;
    for (const Tick t : v)
        sq += (double(t) - m) * (double(t) - m);
    return std::sqrt(sq / double(v.size())) / m;
}

TrafficSpec
openSpec(ArrivalProcess p, double rate)
{
    TrafficSpec s;
    s.mode = LoopMode::Open;
    s.process = p;
    s.offeredOpsPerSec = rate;
    return s;
}

// ---------------------------------------------------------------------
// Arrival-process statistics
// ---------------------------------------------------------------------

TEST(ArrivalEngine, PoissonMomentsMatchTheRate)
{
    const TrafficSpec s = openSpec(ArrivalProcess::Poisson, 100'000.0);
    const std::vector<Tick> gaps = drawGaps(s, 42, 20'000);
    const double expected = double(kSec) / s.offeredOpsPerSec;
    EXPECT_NEAR(meanOf(gaps), expected, 0.03 * expected);
    // Exponential interarrivals: coefficient of variation 1.
    EXPECT_NEAR(cvOf(gaps), 1.0, 0.05);
}

TEST(ArrivalEngine, MmppIsFasterOnAverageAndOverdispersed)
{
    TrafficSpec s = openSpec(ArrivalProcess::Mmpp, 100'000.0);
    s.burstMultiplier = 4.0;
    s.meanBaseDwell = 50 * kMsec;
    s.meanBurstDwell = 25 * kMsec;
    const std::vector<Tick> gaps = drawGaps(s, 42, 200'000);
    // Time-weighted rate: (50ms * 1x + 25ms * 4x) / 75ms = 2x the
    // base rate, so the per-arrival mean gap is half the Poisson
    // gap. Dwell sampling noise dominates the tolerance.
    const double base_gap = double(kSec) / s.offeredOpsPerSec;
    const double m = meanOf(gaps);
    EXPECT_GT(m, 0.3 * base_gap);
    EXPECT_LT(m, 0.8 * base_gap);
    // Mixing two exponential rates overdisperses the gaps.
    EXPECT_GT(cvOf(gaps), 1.1);
}

TEST(ArrivalEngine, DiurnalPeakAndTroughBracketTheBaseRate)
{
    TrafficSpec s = openSpec(ArrivalProcess::Diurnal, 100'000.0);
    s.diurnalAmplitude = 0.5;
    s.diurnalPeriod = 200 * kMsec;
    const ArrivalEngine e(s, 7);
    const double trough = e.rateAt(0);
    const double peak = e.rateAt(s.diurnalPeriod / 2);
    EXPECT_NEAR(trough, 50'000.0, 1.0);
    EXPECT_NEAR(peak, 150'000.0, 1.0);
    EXPECT_NEAR(e.rateAt(s.diurnalPeriod / 4), 100'000.0, 1.0);
}

TEST(ArrivalEngine, FlashCrowdWindowMultipliesTheRate)
{
    TrafficSpec s = openSpec(ArrivalProcess::Poisson, 100'000.0);
    s.flashCrowdStart = 100 * kMsec;
    s.flashCrowdDuration = 50 * kMsec;
    s.flashCrowdMultiplier = 4.0;
    ASSERT_TRUE(s.hasFlashCrowd());
    const ArrivalEngine e(s, 7);
    EXPECT_FALSE(e.inFlashCrowd(100 * kMsec - 1));
    EXPECT_TRUE(e.inFlashCrowd(100 * kMsec));
    EXPECT_TRUE(e.inFlashCrowd(150 * kMsec - 1));
    EXPECT_FALSE(e.inFlashCrowd(150 * kMsec));
    EXPECT_NEAR(e.rateAt(120 * kMsec), 4.0 * e.rateAt(0), 1.0);
}

TEST(ArrivalEngine, DeterministicPerSeed)
{
    const TrafficSpec s = openSpec(ArrivalProcess::Mmpp, 120'000.0);
    EXPECT_EQ(drawGaps(s, 11, 5'000), drawGaps(s, 11, 5'000));
    EXPECT_NE(drawGaps(s, 11, 5'000), drawGaps(s, 12, 5'000));
}

TEST(ArrivalEngine, TenantPicksFollowTheShares)
{
    TrafficSpec s = openSpec(ArrivalProcess::Poisson, 100'000.0);
    s.tenants = {
        TenantSpec{"gold", 0.2, kMsec},
        TenantSpec{"silver", 0.3, 5 * kMsec},
        TenantSpec{"bronze", 0.5, 20 * kMsec},
    };
    ArrivalEngine e(s, 21);
    std::vector<std::uint64_t> counts(3, 0);
    const std::size_t n = 20'000;
    for (std::size_t i = 0; i < n; ++i)
        ++counts.at(e.pickTenant());
    EXPECT_NEAR(double(counts[0]) / double(n), 0.2, 0.02);
    EXPECT_NEAR(double(counts[1]) / double(n), 0.3, 0.02);
    EXPECT_NEAR(double(counts[2]) / double(n), 0.5, 0.02);
}

// ---------------------------------------------------------------------
// Open-loop client accounting through the harness
// ---------------------------------------------------------------------

TEST(OpenLoopClient, AccountingInvariantsHold)
{
    ExperimentConfig cfg = presets::small();
    cfg.engine.mode = CheckpointMode::CheckIn;
    cfg.threads = 16;
    cfg.workload = WorkloadSpec::a();
    cfg.workload.operationCount = 4'000;
    cfg.traffic = openSpec(ArrivalProcess::Mmpp, 150'000.0);
    cfg.traffic.tenants = {
        TenantSpec{"gold", 0.25, kMsec},
        TenantSpec{"bronze", 0.75, 10 * kMsec},
    };
    const RunResult r = runExperiment(cfg);

    EXPECT_EQ(r.client.opsOffered, 4'000u);
    EXPECT_EQ(r.client.opsCompleted, 4'000u);
    // Every dispatched op records exactly one queue delay.
    EXPECT_EQ(r.client.queueDelay.count(), 4'000u);
    // Completions trail arrivals, so the achieved rate can never
    // exceed the offered rate.
    EXPECT_GE(r.client.offeredOpsPerSec(), r.client.opsPerSec());
    EXPECT_GT(r.client.opsPerSec(), 0.0);

    ASSERT_EQ(r.client.tenants.size(), 2u);
    std::uint64_t tenant_ops = 0;
    std::uint64_t tenant_violations = 0;
    for (const TenantStats &t : r.client.tenants) {
        tenant_ops += t.opsCompleted;
        tenant_violations += t.sloViolations;
        EXPECT_LE(t.sloViolations, t.opsCompleted);
    }
    EXPECT_EQ(tenant_ops, r.client.opsCompleted);
    EXPECT_EQ(tenant_violations, r.client.sloViolations);
}

TEST(OpenLoopClient, ClosedLoopDefaultLeavesNewCountersIdle)
{
    ExperimentConfig cfg = presets::small();
    cfg.engine.mode = CheckpointMode::CheckIn;
    cfg.threads = 8;
    cfg.workload.operationCount = 1'000;
    ASSERT_EQ(cfg.traffic.mode, LoopMode::Closed);
    const RunResult r = runExperiment(cfg);
    EXPECT_EQ(r.client.opsCompleted, 1'000u);
    EXPECT_EQ(r.client.opsOffered, 0u);
    EXPECT_EQ(r.client.queueDelay.count(), 0u);
    EXPECT_EQ(r.client.sloViolations, 0u);
    EXPECT_TRUE(r.client.tenants.empty());
}

TEST(OpenLoopClient, ClusterRouterDrivesOpenLoopArrivals)
{
    ClusterConfig cfg = presets::cluster();
    cfg.workload.operationCount = 2'000;
    cfg.traffic = openSpec(ArrivalProcess::Mmpp, 150'000.0);
    const ClusterResult r = runCluster(cfg);
    EXPECT_EQ(r.router.opsOffered, 2'000u);
    EXPECT_EQ(r.router.opsCompleted, 2'000u);
    EXPECT_EQ(r.router.queueDelay.count(), 2'000u);
    EXPECT_GE(r.router.lastCompletion, r.router.lastArrival);
    EXPECT_GT(r.verifiedKeys, 0u);
}

TEST(OpenLoopClient, DeterministicForSameConfig)
{
    ExperimentConfig cfg = presets::small();
    cfg.engine.mode = CheckpointMode::CheckIn;
    cfg.threads = 16;
    cfg.workload.operationCount = 2'000;
    cfg.traffic = openSpec(ArrivalProcess::Mmpp, 140'000.0);
    const RunResult a = runExperiment(cfg);
    const RunResult b = runExperiment(cfg);
    EXPECT_EQ(a.client.lastArrival, b.client.lastArrival);
    EXPECT_EQ(a.client.all.quantile(0.999),
              b.client.all.quantile(0.999));
    EXPECT_EQ(a.client.queueDelay.quantile(0.999),
              b.client.queueDelay.quantile(0.999));
    EXPECT_EQ(a.simSpan, b.simSpan);
}

} // namespace
} // namespace checkin
