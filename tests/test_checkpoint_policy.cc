/**
 * @file
 * Pluggable checkpoint-trigger policies (engine/checkpoint_policy.h):
 * FixedPolicy must reproduce the historical inline trigger to the
 * integer, the fill-rate estimator must track the journal, and
 * AdaptivePolicy's safety bound must keep the journal from ever
 * overflowing into an append stall — including under open-loop
 * overload and across a sudden power cut.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "engine/checkpoint_policy.h"
#include "engine/kv_engine.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "nand/nand_flash.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

// ---------------------------------------------------------------------
// FixedPolicy: the paper's trigger, verbatim
// ---------------------------------------------------------------------

TEST(FixedPolicy, MatchesTheHistoricalPredicates)
{
    EngineConfig cfg;
    cfg.checkpointPolicy = CheckpointPolicyKind::Fixed;
    cfg.checkpointInterval = 25 * kMsec;
    cfg.checkpointJournalBytes = 2 * kMiB;
    const auto p = CheckpointPolicy::create(cfg);
    ASSERT_EQ(p->kind(), CheckpointPolicyKind::Fixed);
    EXPECT_EQ(p->timerPeriod(), 25 * kMsec);

    PolicySignals sig;
    sig.journalCapacityBytes = 8 * kMiB;

    // The timer decision is unconditional: the engine itself holds
    // the checkpoint-in-progress guard, exactly as it always did.
    PolicyDecision d = p->onTimer(sig);
    EXPECT_TRUE(d.checkpoint);
    EXPECT_EQ(d.trigger, obs::CkptTrigger::Timer);

    sig.journalBytes = 2 * kMiB - 1;
    EXPECT_FALSE(p->onAppend(sig).checkpoint);
    sig.journalBytes = 2 * kMiB;
    d = p->onAppend(sig);
    EXPECT_TRUE(d.checkpoint);
    EXPECT_EQ(d.trigger, obs::CkptTrigger::JournalBytes);
}

/**
 * Golden equivalence with the pre-policy inline trigger: these are
 * the exact counters the seed produced for `ycsb_run checkin a 32
 * 20000` before the trigger was extracted into a policy object. The
 * FixedPolicy path evaluates the same predicates at the same ticks
 * with no extra events or RNG draws, so every one of them must still
 * match to the integer.
 */
TEST(FixedPolicy, CheckinGoldenRunIsBitIdenticalToInlineTrigger)
{
    ExperimentConfig cfg = presets::small();
    cfg.engine.mode = CheckpointMode::CheckIn;
    cfg.threads = 32;
    cfg.workload = WorkloadSpec::a();
    cfg.workload.operationCount = 20'000;
    const RunResult r = runExperiment(cfg);
    EXPECT_EQ(r.checkpoints, 4u);
    EXPECT_EQ(r.remaps, 708u);
    EXPECT_EQ(r.redundantSlotWrites, 1351u);
    EXPECT_EQ(r.nandReads, 170u);
    EXPECT_EQ(r.nandPrograms, 1304u);
    EXPECT_EQ(r.nandErases, 0u);
    EXPECT_EQ(r.journalStalls, 0u);
    EXPECT_NEAR(r.throughputOps, 173810.0, 1.0);
}

/** Same golden comparison for the LSM backend's WAL flush trigger. */
TEST(FixedPolicy, LsmGoldenRunIsBitIdenticalToInlineTrigger)
{
    ExperimentConfig cfg = presets::small();
    cfg.engine.backend = EngineBackend::Lsm;
    cfg.engine.mode = CheckpointMode::CheckIn;
    cfg.threads = 32;
    cfg.workload = WorkloadSpec::a();
    cfg.workload.operationCount = 20'000;
    const RunResult r = runExperiment(cfg);
    EXPECT_EQ(r.checkpoints, 19u);
    EXPECT_EQ(r.remaps, 9912u);
    EXPECT_EQ(r.redundantSlotWrites, 36000u);
    EXPECT_EQ(r.nandReads, 3726u);
    EXPECT_EQ(r.nandPrograms, 5992u);
    EXPECT_EQ(r.nandErases, 0u);
    EXPECT_EQ(r.journalStalls, 0u);
    EXPECT_NEAR(r.throughputOps, 38294.0, 1.0);
}

// ---------------------------------------------------------------------
// Fill-rate estimator
// ---------------------------------------------------------------------

TEST(CheckpointPolicy, FillRateEstimatorTracksLinearFill)
{
    EngineConfig cfg;
    cfg.checkpointPolicy = CheckpointPolicyKind::Adaptive;
    const auto p = CheckpointPolicy::create(cfg);
    // 1 MiB per millisecond for 50 ms of appends.
    for (Tick t = 0; t <= 50; ++t)
        p->noteAppend(t * kMsec, t * kMiB);
    const double true_rate = double(kMiB) * 1000.0;
    EXPECT_GT(p->fillRateBytesPerSec(), 0.8 * true_rate);
    EXPECT_LT(p->fillRateBytesPerSec(), 1.3 * true_rate);
    // The slow EWMA (200 ms tau) has seen only a quarter of its time
    // constant, so it must trail the fast estimate.
    EXPECT_LT(p->slowFillRateBytesPerSec(), p->fillRateBytesPerSec());
}

TEST(CheckpointPolicy, LevelDropRestartsBaselineWithoutNegativeDelta)
{
    EngineConfig cfg;
    cfg.checkpointPolicy = CheckpointPolicyKind::Adaptive;
    const auto p = CheckpointPolicy::create(cfg);
    for (Tick t = 0; t <= 20; ++t)
        p->noteAppend(t * kMsec, t * kMiB);
    const double before = p->fillRateBytesPerSec();
    ASSERT_GT(before, 0.0);
    // Half switch: the active-half level collapses to zero. The
    // estimator restarts its baseline; the rate decays but never
    // goes negative and never spikes from the wraparound.
    p->noteAppend(21 * kMsec, 0);
    EXPECT_GE(p->fillRateBytesPerSec(), 0.0);
    EXPECT_LE(p->fillRateBytesPerSec(), before);
}

// ---------------------------------------------------------------------
// AdaptivePolicy: decision rules and the safety bound
// ---------------------------------------------------------------------

TEST(AdaptivePolicy, SafetyBoundFiresRegardlessOfRateTerms)
{
    EngineConfig cfg;
    cfg.checkpointPolicy = CheckpointPolicyKind::Adaptive;
    const auto p = CheckpointPolicy::create(cfg);

    PolicySignals sig;
    sig.journalCapacityBytes = 8 * kMiB;

    // Nearly empty half, no observed fill: nothing to do.
    sig.journalBytes = 64 * kKiB;
    EXPECT_FALSE(p->onAppend(sig).checkpoint);

    // Beyond the absolute safetyFraction backstop (0.80 by default;
    // 7 MiB of 8 is well past it) the policy must checkpoint even
    // with a zero rate estimate.
    sig.journalBytes = 7 * kMiB;
    const PolicyDecision d = p->onAppend(sig);
    EXPECT_TRUE(d.checkpoint);
    EXPECT_EQ(d.trigger, obs::CkptTrigger::Safety);
}

TEST(AdaptivePolicy, OpenLoopOverloadSweepNeverStallsTheJournal)
{
    // Offered load well past the sustainable service rate, with hard
    // bursts: the adaptive trigger may defer, but the safety bound
    // must always start a checkpoint early enough that the active
    // half never fills while the frozen half is still flushing.
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        ExperimentConfig cfg = presets::small();
        cfg.seed = seed;
        cfg.engine.mode = CheckpointMode::CheckIn;
        cfg.engine.checkpointPolicy = CheckpointPolicyKind::Adaptive;
        // A small half so the run's journal traffic crosses the
        // pacing and safety thresholds several times.
        cfg.engine.journalHalfBytes = kMiB;
        cfg.obs.attributionEnabled = true;
        cfg.threads = 32;
        cfg.workload = WorkloadSpec::a();
        cfg.workload.operationCount = 8'000;
        cfg.traffic.mode = LoopMode::Open;
        cfg.traffic.process = ArrivalProcess::Mmpp;
        cfg.traffic.offeredOpsPerSec = 250'000.0;
        cfg.traffic.burstMultiplier = 6.0;
        cfg.traffic.meanBaseDwell = 20 * kMsec;
        cfg.traffic.meanBurstDwell = 20 * kMsec;
        const RunResult r = runExperiment(cfg);
        EXPECT_EQ(r.journalStalls, 0u) << "seed " << seed;
        EXPECT_EQ(r.client.opsCompleted, 8'000u) << "seed " << seed;
        EXPECT_GT(r.checkpoints, 0u) << "seed " << seed;
    }
}

/**
 * Durability across a power cut is identical under the adaptive
 * trigger: every update whose completion the client observed is
 * recovered after a host crash plus device power loss with firmware
 * rebuild, exactly as tests/test_power_loss.cc proves for the fixed
 * trigger.
 */
TEST(AdaptivePolicy, PowerCutRecoveryKeepsCommittedUpdates)
{
    NandConfig nand;
    nand.channels = 2;
    nand.diesPerChannel = 2;
    nand.blocksPerPlane = 32;
    nand.pagesPerBlock = 32;

    EngineConfig ec;
    ec.mode = CheckpointMode::CheckIn;
    ec.checkpointPolicy = CheckpointPolicyKind::Adaptive;
    ec.recordCount = 300;
    ec.journalHalfBytes = 256 * kKiB;
    ec.checkpointInterval = 0;
    // No periodic controller tick: the event queue must drain once
    // the updates complete, so every decision rides the append path.
    ec.adaptive.controlInterval = 0;
    ec.adaptive.minCheckpointBytes = 32 * kKiB;

    SimContext ctx;
    EventQueue &eq = ctx.events();
    FtlConfig ftl_cfg;
    ftl_cfg.mappingUnitBytes = 512;
    Ssd ssd(ctx, nand, ftl_cfg, SsdConfig{});
    auto engine = std::make_unique<KvEngine>(ctx, ssd, ec);
    engine->load([](std::uint64_t) { return 384u; });
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();

    Rng rng(5);
    std::map<std::uint64_t, std::uint32_t> committed;
    for (int i = 0; i < 600; ++i) {
        const std::uint64_t key = rng.nextBounded(300);
        engine->update(key,
                       std::uint32_t(128 * (1 + rng.nextBounded(4))),
                       [&committed, key,
                        &engine](const QueryResult &) {
                           committed[key] =
                               engine->keymap()[key].version;
                       });
    }
    eq.run();

    // Host crash + device power loss with SPOR + firmware rebuild.
    eq.clear();
    engine.reset();
    const auto report = ssd.suddenPowerLoss();
    EXPECT_GT(report.slotsRecovered, 0u);
    ssd.ftl().checkInvariants();

    engine = std::make_unique<KvEngine>(ctx, ssd, ec);
    engine->recover();
    for (const auto &[key, version] : committed) {
        EXPECT_GE(engine->keymap()[key].version, version)
            << "lost key " << key;
    }
    engine->verifyAllKeys();
}

} // namespace
} // namespace checkin
