/**
 * @file
 * Tests for per-die block allocation, wear-aware free pools, and GC
 * victim selection.
 */

#include <gtest/gtest.h>

#include "ftl/block_manager.h"

namespace checkin {
namespace {

TEST(BlockManager, AllocatesAllBlocksOfADie)
{
    BlockManager bm(8, 16, 2); // 4 blocks per die
    EXPECT_EQ(bm.freeBlocks(), 8u);
    EXPECT_EQ(bm.freeBlocksOnDie(0), 4u);
    for (int i = 0; i < 4; ++i) {
        const Pbn b = bm.allocate(Stream::Data, 0);
        ASSERT_NE(b, kInvalidAddr);
        EXPECT_LT(b, 4u); // die 0 blocks are pbn 0..3
        bm.closeActive(Stream::Data, 0);
    }
    EXPECT_EQ(bm.freeBlocksOnDie(0), 0u);
    EXPECT_EQ(bm.allocate(Stream::Data, 0), kInvalidAddr);
    // Die 1 still has blocks.
    EXPECT_NE(bm.allocate(Stream::Data, 1), kInvalidAddr);
}

TEST(BlockManager, StreamsAndDiesAreIndependent)
{
    BlockManager bm(8, 16, 2);
    const Pbn d0 = bm.allocate(Stream::Data, 0);
    const Pbn d1 = bm.allocate(Stream::Data, 1);
    const Pbn j0 = bm.allocate(Stream::Journal, 0);
    EXPECT_NE(d0, d1);
    EXPECT_NE(d0, j0);
    EXPECT_EQ(bm.activeBlock(Stream::Data, 0), d0);
    EXPECT_EQ(bm.activeBlock(Stream::Data, 1), d1);
    EXPECT_EQ(bm.activeBlock(Stream::Journal, 0), j0);
    EXPECT_EQ(bm.activeBlock(Stream::Gc, 0), kInvalidAddr);
}

TEST(BlockManager, WearLevelingPicksLeastWornPerDie)
{
    BlockManager bm(3, 16, 1);
    Pbn blocks[3];
    for (auto &block : blocks) {
        block = bm.allocate(Stream::Data, 0);
        bm.closeActive(Stream::Data, 0);
    }
    bm.release(blocks[0], 10);
    bm.release(blocks[1], 2);
    bm.release(blocks[2], 5);
    EXPECT_EQ(bm.allocate(Stream::Data, 0), blocks[1]);
    bm.closeActive(Stream::Data, 0);
    EXPECT_EQ(bm.allocate(Stream::Journal, 0), blocks[2]);
}

TEST(BlockManager, ValidCountsAndGcVictim)
{
    BlockManager bm(3, 16, 1);
    const Pbn a = bm.allocate(Stream::Data, 0);
    bm.addValid(a, 10);
    bm.closeActive(Stream::Data, 0);
    const Pbn b = bm.allocate(Stream::Data, 0);
    bm.addValid(b, 3);
    bm.closeActive(Stream::Data, 0);
    // The third block stays free; victims only come from CLOSED.
    EXPECT_EQ(bm.pickGcVictim(), b);
    bm.invalidate(a);
    EXPECT_EQ(bm.validCount(a), 9u);
    EXPECT_EQ(bm.totalValid(), 12u);
}

TEST(BlockManager, ActiveBlocksAreNotVictims)
{
    BlockManager bm(2, 16, 1);
    const Pbn a = bm.allocate(Stream::Data, 0);
    bm.addValid(a, 1);
    EXPECT_EQ(bm.pickGcVictim(), kInvalidAddr);
    bm.closeActive(Stream::Data, 0);
    EXPECT_EQ(bm.pickGcVictim(), a);
}

TEST(BlockManager, ReleaseReturnsBlockToItsDie)
{
    BlockManager bm(4, 16, 2);
    const Pbn a = bm.allocate(Stream::Data, 1);
    EXPECT_GE(a, 2u); // die 1 blocks are pbn 2..3
    bm.addValid(a, 2);
    bm.closeActive(Stream::Data, 1);
    bm.invalidate(a);
    bm.invalidate(a);
    bm.release(a, 1);
    EXPECT_EQ(bm.freeBlocksOnDie(1), 2u);
    EXPECT_EQ(bm.state(a), BlockManager::State::Free);
}

} // namespace
} // namespace checkin
