/**
 * @file
 * Tests for the YCSB workload generator and client pool.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.h"
#include "harness/presets.h"
#include "workload/ycsb.h"

namespace checkin {
namespace {

TEST(WorkloadSpec, PresetMixesSumToOne)
{
    for (const WorkloadSpec &s :
         {WorkloadSpec::a(), WorkloadSpec::b(), WorkloadSpec::c(),
          WorkloadSpec::f(), WorkloadSpec::wo()}) {
        EXPECT_NEAR(s.mix.read + s.mix.update +
                        s.mix.readModifyWrite,
                    1.0, 1e-9)
            << s.name;
    }
}

TEST(WorkloadSpec, PresetShapes)
{
    EXPECT_DOUBLE_EQ(WorkloadSpec::a().mix.read, 0.5);
    EXPECT_DOUBLE_EQ(WorkloadSpec::a().mix.update, 0.5);
    EXPECT_DOUBLE_EQ(WorkloadSpec::f().mix.readModifyWrite, 0.5);
    EXPECT_DOUBLE_EQ(WorkloadSpec::wo().mix.update, 1.0);
    EXPECT_DOUBLE_EQ(WorkloadSpec::c().mix.read, 1.0);
}

TEST(WorkloadSpec, SizePatternsAreValid)
{
    for (std::uint32_t p = 1; p <= 4; ++p) {
        const auto sizes = WorkloadSpec::sizePattern(p);
        EXPECT_FALSE(sizes.empty());
        for (std::uint32_t s : sizes) {
            EXPECT_GE(s, 128u);
            EXPECT_LE(s, 4096u);
        }
    }
    EXPECT_THROW(WorkloadSpec::sizePattern(0), std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::sizePattern(5), std::invalid_argument);
}

TEST(WorkloadGenerator, MixProportionsRespected)
{
    WorkloadSpec spec = WorkloadSpec::a();
    WorkloadGenerator gen(spec, 1000);
    std::map<WorkloadGenerator::OpType, int> counts;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().type];
    EXPECT_NEAR(double(counts[WorkloadGenerator::OpType::Read]) / n,
                0.5, 0.02);
    EXPECT_NEAR(double(counts[WorkloadGenerator::OpType::Update]) / n,
                0.5, 0.02);
    EXPECT_EQ(counts[WorkloadGenerator::OpType::Rmw], 0);
}

TEST(WorkloadGenerator, WorkloadFEmitsRmw)
{
    WorkloadGenerator gen(WorkloadSpec::f(), 1000);
    int rmw = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i)
        rmw += gen.next().type == WorkloadGenerator::OpType::Rmw;
    EXPECT_NEAR(double(rmw) / n, 0.5, 0.02);
}

TEST(WorkloadGenerator, KeysInRange)
{
    WorkloadGenerator gen(WorkloadSpec::wo(), 123);
    for (int i = 0; i < 10'000; ++i)
        ASSERT_LT(gen.next().key, 123u);
}

TEST(WorkloadGenerator, UpdateSizesComeFromSpec)
{
    WorkloadSpec spec = WorkloadSpec::wo();
    spec.valueSizes = {256, 1024};
    WorkloadGenerator gen(spec, 100);
    for (int i = 0; i < 1000; ++i) {
        const auto op = gen.next();
        EXPECT_TRUE(op.valueBytes == 256 || op.valueBytes == 1024);
    }
}

TEST(WorkloadGenerator, DeterministicForSeed)
{
    WorkloadSpec spec = WorkloadSpec::a();
    spec.seed = 777;
    WorkloadGenerator g1(spec, 500), g2(spec, 500);
    for (int i = 0; i < 1000; ++i) {
        const auto a = g1.next();
        const auto b = g2.next();
        EXPECT_EQ(a.key, b.key);
        EXPECT_EQ(int(a.type), int(b.type));
        EXPECT_EQ(a.valueBytes, b.valueBytes);
    }
}

TEST(WorkloadGenerator, ZipfianConcentratesTraffic)
{
    WorkloadSpec spec = WorkloadSpec::wo();
    spec.distribution = Distribution::Zipfian;
    WorkloadGenerator gen(spec, 10'000);
    std::map<std::uint64_t, int> hist;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        ++hist[gen.next().key];
    // Distinct keys touched under zipf should be far fewer than n
    // and far fewer than under uniform.
    EXPECT_LT(hist.size(), 9'000u);
    int hottest = 0;
    for (const auto &[k, c] : hist)
        hottest = std::max(hottest, c);
    EXPECT_GT(hottest, n / 200);
}

TEST(WorkloadGenerator, UniformSpreadsTraffic)
{
    WorkloadSpec spec = WorkloadSpec::wo();
    spec.distribution = Distribution::Uniform;
    WorkloadGenerator gen(spec, 1000);
    std::map<std::uint64_t, int> hist;
    for (int i = 0; i < 50'000; ++i)
        ++hist[gen.next().key];
    EXPECT_GT(hist.size(), 990u);
}

TEST(ClientStats, CheckpointWindowsPartitionAllOps)
{
    // Every completed op is classified into exactly one of the two
    // checkpoint-window histograms, and the read/write split inside
    // the checkpoint window partitions it the same way.
    ExperimentConfig cfg = presets::small();
    cfg.workload.operationCount = 6000;
    cfg.threads = 8;
    // Low byte threshold so the run straddles several checkpoints.
    cfg.engine.checkpointJournalBytes = 256 * kKiB;
    const RunResult r = runExperiment(cfg);
    ASSERT_GT(r.checkpoints, 0u);
    const ClientStats &c = r.client;
    EXPECT_EQ(c.all.count(), c.opsCompleted);
    EXPECT_EQ(c.all.count(),
              c.duringCheckpoint.count() +
                  c.outsideCheckpoint.count());
    EXPECT_GT(c.duringCheckpoint.count(), 0u);
    EXPECT_GT(c.outsideCheckpoint.count(), 0u);
    EXPECT_EQ(c.duringCheckpoint.count(),
              c.readsDuringCheckpoint.count() +
                  c.writesDuringCheckpoint.count());
    // Sums partition along with the counts.
    EXPECT_EQ(c.all.sum(), c.duringCheckpoint.sum() +
                               c.outsideCheckpoint.sum());
}

TEST(WorkloadGenerator, InitialSizeDeterministic)
{
    WorkloadSpec spec = WorkloadSpec::a();
    WorkloadGenerator g1(spec, 100), g2(spec, 100);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(g1.initialSize(k), g2.initialSize(k));
}

} // namespace
} // namespace checkin
