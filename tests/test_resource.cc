/**
 * @file
 * Tests for the busy-timeline resource model.
 */

#include <gtest/gtest.h>

#include "sim/resource.h"

namespace checkin {
namespace {

TEST(Resource, StartsIdle)
{
    Resource r("die");
    EXPECT_EQ(r.freeAt(), 0u);
    EXPECT_TRUE(r.idleAt(0));
    EXPECT_EQ(r.busyTicks(), 0u);
}

TEST(Resource, ReservationFromIdleStartsImmediately)
{
    Resource r;
    EXPECT_EQ(r.reserve(100, 50), 150u);
    EXPECT_EQ(r.freeAt(), 150u);
}

TEST(Resource, BackToBackReservationsQueue)
{
    Resource r;
    EXPECT_EQ(r.reserve(0, 10), 10u);
    EXPECT_EQ(r.reserve(0, 10), 20u);
    EXPECT_EQ(r.reserve(0, 10), 30u);
    EXPECT_EQ(r.reservations(), 3u);
    EXPECT_EQ(r.busyTicks(), 30u);
}

TEST(Resource, LaterEarliestLeavesGap)
{
    Resource r;
    r.reserve(0, 10);
    EXPECT_EQ(r.reserve(100, 10), 110u);
    // The gap [10, 100) is idle, not busy.
    EXPECT_EQ(r.busyTicks(), 20u);
}

TEST(Resource, IdleAtRespectsTimeline)
{
    Resource r;
    r.reserve(0, 100);
    EXPECT_FALSE(r.idleAt(50));
    EXPECT_TRUE(r.idleAt(100));
    EXPECT_TRUE(r.idleAt(200));
}

TEST(Resource, ZeroDurationReservation)
{
    Resource r;
    EXPECT_EQ(r.reserve(5, 0), 5u);
    EXPECT_EQ(r.busyTicks(), 0u);
}

} // namespace
} // namespace checkin
