/**
 * @file
 * Tests for static wear leveling and NVMe queue-depth admission.
 */

#include <gtest/gtest.h>

#include <memory>

#include "ftl/ftl.h"
#include "nand/nand_flash.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 16;
    return c;
}

SectorData
sectorFor(std::uint64_t tag)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = mix64(tag * 4 + c + 1);
    return d;
}

TEST(WearLevel, ColdBlocksGetRelocated)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    cfg.exportedRatio = 0.7;
    cfg.gcLowWaterBlocks = 3;
    cfg.gcHighWaterBlocks = 5;
    cfg.wearLevelThreshold = 8;
    Ftl ftl(nand, cfg);

    // Cold data: written once, never touched again.
    std::uint64_t tag = 0;
    for (Lpn lpn = 0; lpn < 128; ++lpn) {
        const SectorData d = sectorFor(++tag);
        ftl.writeSectors(lpn, 1, &d, IoCause::Query, 0);
    }
    // Hot churn on a different range drives wear up.
    std::vector<std::uint64_t> hot_tag(16, 0);
    Rng rng(1);
    for (int i = 0; i < 30'000; ++i) {
        const Lpn lpn = 200 + rng.nextBounded(16);
        const std::uint64_t t = ++tag;
        hot_tag[lpn - 200] = t;
        const SectorData d = sectorFor(t);
        ftl.writeSectors(lpn, 1, &d, IoCause::Query, 0);
        if (i % 512 == 0)
            ftl.runBackgroundGc(0);
    }
    EXPECT_GT(ftl.stats().get("wl.migrations"), 0u);
    ftl.checkInvariants();
    // All content (cold and hot) must survive the relocations.
    for (Lpn lpn = 0; lpn < 128; ++lpn) {
        SectorData got;
        ftl.peekSectors(lpn, 1, &got);
        ASSERT_EQ(got, sectorFor(lpn + 1)) << "cold lpn " << lpn;
    }
    for (Lpn lpn = 0; lpn < 16; ++lpn) {
        SectorData got;
        ftl.peekSectors(200 + lpn, 1, &got);
        ASSERT_EQ(got, sectorFor(hot_tag[lpn])) << "hot lpn " << lpn;
    }
}

TEST(WearLevel, DisabledWhenThresholdZero)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    cfg.exportedRatio = 0.7;
    cfg.wearLevelThreshold = 0;
    Ftl ftl(nand, cfg);
    std::uint64_t tag = 0;
    for (int i = 0; i < 20'000; ++i) {
        const SectorData d = sectorFor(++tag);
        ftl.writeSectors(i % 16, 1, &d, IoCause::Query, 0);
        if (i % 512 == 0)
            ftl.runBackgroundGc(0);
    }
    EXPECT_EQ(ftl.stats().get("wl.migrations"), 0u);
}

TEST(QueueDepth, AdmissionStallsBeyondDepth)
{
    SsdConfig scfg;
    scfg.queueDepth = 4;
    FtlConfig fcfg;
    fcfg.dataCacheBytes = 0; // make reads slow (flash-bound)
    SimContext ctx;
    EventQueue &eq = ctx.events();
    Ssd ssd(ctx, smallNand(), fcfg, scfg);
    // Populate then flush so reads touch flash.
    std::vector<SectorData> payload(8);
    for (int i = 0; i < 8; ++i)
        payload[i] = sectorFor(std::uint64_t(i));
    ssd.submit(Command::write(0, payload, IoCause::Query),
               [](const CmdResult &) {});
    eq.run();
    ssd.ftl().flushOpenPages(eq.now());
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();
    // A burst of 64 reads against depth 4 must stall admissions.
    for (int i = 0; i < 64; ++i)
        ssd.submit(Command::read(Lba(i % 8), 1), [](const CmdResult &) {});
    eq.run();
    EXPECT_GT(ssd.stats().get("ssd.queueFullStalls"), 0u);
}

TEST(QueueDepth, DeepQueueDoesNotStallLightLoad)
{
    SsdConfig scfg;
    scfg.queueDepth = 256;
    FtlConfig fcfg;
    SimContext ctx;
    EventQueue &eq = ctx.events();
    Ssd ssd(ctx, smallNand(), fcfg, scfg);
    for (int i = 0; i < 32; ++i) {
        ssd.submit(Command::write(Lba(i), {sectorFor(1)},
                                  IoCause::Query),
                   [](const CmdResult &) {});
        eq.run();
    }
    EXPECT_EQ(ssd.stats().get("ssd.queueFullStalls"), 0u);
}

} // namespace
} // namespace checkin
