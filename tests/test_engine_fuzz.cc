/**
 * @file
 * Engine-level fuzzing: randomized mixes of every operation (get,
 * update, RMW, scan, delete, multi-key transactions, checkpoints)
 * interleaved with crash/recovery cycles and device power losses,
 * checked against a committed-state oracle plus full content
 * verification and FTL invariants after every phase.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
fuzzNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 24;
    c.pagesPerBlock = 24;
    return c;
}

EngineConfig
engineCfg(CheckpointMode mode)
{
    EngineConfig c;
    c.mode = mode;
    c.recordCount = 200;
    c.maxValueBytes = 2048;
    c.journalHalfBytes = 1 * kMiB;
    c.checkpointJournalBytes = 512 * kKiB;
    c.checkpointInterval = 0;
    return c;
}

struct Oracle
{
    /**
     * Committed (acked) version floor per key; recovery may surface
     * newer durable versions but must never go below this. (The
     * deleted/live state of the *latest* version cannot be tracked
     * from commit callbacks alone: group commits may reorder same-key
     * callbacks. Content correctness is covered by verifyAllKeys.)
     */
    std::map<std::uint64_t, std::uint32_t> committed;
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    void
    SetUp() override
    {
        mode_ = GetParam() % 2 == 0 ? CheckpointMode::CheckIn
                                    : CheckpointMode::IscC;
        FtlConfig ftl_cfg;
        ftl_cfg.exportedRatio = 0.8;
        ssd_ = std::make_unique<Ssd>(ctx_, fuzzNand(), ftl_cfg,
                                     SsdConfig{});
        engine_ = std::make_unique<KvEngine>(ctx_, *ssd_,
                                             engineCfg(mode_));
        engine_->load([](std::uint64_t) { return 256u; });
        for (std::uint64_t k = 0; k < 200; ++k)
            oracle_.committed[k] = 1;
        eq_.schedule(ssd_->quiesceTick(), [] {});
        eq_.run();
    }

    void
    noteCommit(std::uint64_t key)
    {
        oracle_.committed[key] = std::max(
            oracle_.committed[key], engine_->keymap()[key].version);
    }

    void
    crashAndRecover(bool firmware_loss)
    {
        eq_.clear();
        engine_.reset();
        if (firmware_loss) {
            ssd_->suddenPowerLoss();
            ssd_->ftl().checkInvariants();
        }
        engine_ = std::make_unique<KvEngine>(ctx_, *ssd_,
                                             engineCfg(mode_));
        engine_->recover();
        // Recovery may surface newer (unacked but durable) versions;
        // committed versions are the floor.
        for (auto &[key, version] : oracle_.committed) {
            ASSERT_GE(engine_->keymap()[key].version, version)
                << "lost committed update for key " << key;
            version = engine_->keymap()[key].version;
        }
        engine_->verifyAllKeys();
    }

    SimContext ctx_;
    EventQueue &eq_ = ctx_.events();
    std::unique_ptr<Ssd> ssd_;
    std::unique_ptr<KvEngine> engine_;
    CheckpointMode mode_ = CheckpointMode::CheckIn;
    Oracle oracle_;
};

TEST_P(EngineFuzz, RandomLifetimeStaysConsistent)
{
    Rng rng(GetParam() * 6151 + 17);
    for (int phase = 0; phase < 6; ++phase) {
        const int ops = 150 + int(rng.nextBounded(250));
        for (int i = 0; i < ops; ++i) {
            const std::uint64_t key = rng.nextBounded(200);
            switch (rng.nextBounded(100)) {
              case 0 ... 39: { // update
                const auto bytes = std::uint32_t(
                    64 + rng.nextBounded(1984));
                engine_->update(key, bytes,
                                [this, key](const QueryResult &) {
                                    noteCommit(key);
                                });
                break;
              }
              case 40 ... 64: { // get (miss allowed for deleted)
                engine_->get(key, [](const QueryResult &) {});
                break;
              }
              case 65 ... 74: { // rmw
                engine_->readModifyWrite(
                    key, std::uint32_t(128 + rng.nextBounded(512)),
                    [this, key](const QueryResult &) {
                        noteCommit(key);
                    });
                break;
              }
              case 75 ... 82: { // scan
                engine_->scan(key,
                              std::uint32_t(
                                  1 + rng.nextBounded(16)),
                              [](const QueryResult &) {});
                break;
              }
              case 83 ... 89: { // delete
                engine_->erase(key,
                               [this, key](const QueryResult &) {
                                   noteCommit(key);
                               });
                break;
              }
              case 90 ... 95: { // small transaction
                std::vector<KvEngine::BatchOp> batch;
                const std::uint64_t n = 2 + rng.nextBounded(4);
                for (std::uint64_t b = 0; b < n; ++b) {
                    batch.push_back(
                        {(key + b) % 200,
                         std::uint32_t(128 * (1 +
                                              rng.nextBounded(4)))});
                }
                auto keys = std::make_shared<
                    std::vector<std::uint64_t>>();
                for (const auto &op : batch)
                    keys->push_back(op.key);
                engine_->updateBatch(
                    std::move(batch),
                    [this, keys](const QueryResult &) {
                        for (std::uint64_t k : *keys)
                            noteCommit(k);
                    });
                break;
              }
              default: { // checkpoint request
                engine_->requestCheckpoint();
                break;
              }
            }
        }
        // Randomly drain partially or fully, then maybe crash.
        const std::uint64_t drain = rng.nextBounded(3);
        if (drain == 0) {
            eq_.run();
        } else {
            const int steps = int(rng.nextBounded(400));
            for (int s = 0; s < steps && eq_.step(); ++s) {
            }
        }
        if (rng.nextBounded(2) == 0) {
            crashAndRecover(rng.nextBounded(2) == 0);
        } else {
            eq_.run();
            engine_->verifyAllKeys();
            ssd_->ftl().checkInvariants();
        }
    }
    // Final settle + full validation.
    eq_.run();
    engine_->requestCheckpoint();
    eq_.run();
    engine_->verifyAllKeys();
    ssd_->ftl().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace checkin
