/**
 * @file
 * Tests for the ISCE small-copy write-back buffer (paper §III-E):
 * deferral, elision of superseded entries, aggregated flush,
 * overlay-consistent reads, and invalidation by newer writes.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 16;
    return c;
}

SectorData
sector(std::uint64_t base)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = base * 10 + c + 1;
    return d;
}

class IsceBuffer : public ::testing::Test
{
  protected:
    IsceBuffer()
    {
        SsdConfig scfg;
        scfg.smallBufferSectors = 8;
        FtlConfig fcfg; // 512 B mapping unit
        ssd_ = std::make_unique<Ssd>(ctx_, smallNand(), fcfg, scfg);
    }

    /** Write one journal sector holding a small (2-chunk) record. */
    void
    writeJournalRecord(Lba src, std::uint64_t base)
    {
        ssd_->submit(Command::write(src, {sector(base)},
                                    IoCause::Journal),
                     [](const CmdResult &) {});
        eq_.run();
    }

    /** Checkpoint a forced-copy (merged) sub-unit record. */
    void
    checkpointSmall(Lba src, Lba dst, std::uint32_t chunks = 2)
    {
        ssd_->submit(Command::checkpointRemap({CowPair::make(
                         src, 0, dst, chunks, /*version=*/0,
                         /*force_copy=*/true)}),
                     [](const CmdResult &) {});
        eq_.run();
    }

    SimContext ctx_;
    EventQueue &eq_ = ctx_.events();
    std::unique_ptr<Ssd> ssd_;
};

TEST_F(IsceBuffer, SmallCopyIsDeferredNotWritten)
{
    writeJournalRecord(0, 5);
    const std::uint64_t writes_before =
        ssd_->ftl().stats().get("ftl.slotWrites.checkpoint");
    checkpointSmall(0, 100);
    EXPECT_EQ(ssd_->ftl().stats().get("ftl.slotWrites.checkpoint"),
              writes_before);
    EXPECT_EQ(ssd_->isce().bufferedSectors(), 1u);
    EXPECT_GE(ssd_->stats().get("isce.bufferedSmallRecords"), 1u);
}

TEST_F(IsceBuffer, PeekSeesBufferedContent)
{
    writeJournalRecord(0, 5);
    checkpointSmall(0, 100);
    SectorData out;
    ssd_->peek(100, 1, &out);
    // Chunks 0..1 of the source record, zero tail.
    EXPECT_EQ(out.chunks[0], sector(5).chunks[0]);
    EXPECT_EQ(out.chunks[1], sector(5).chunks[1]);
    EXPECT_EQ(out.chunks[2], 0u);
}

TEST_F(IsceBuffer, SupersededEntryIsElided)
{
    writeJournalRecord(0, 5);
    checkpointSmall(0, 100);
    writeJournalRecord(8, 9); // newer version of the same key
    checkpointSmall(8, 100);
    EXPECT_EQ(ssd_->isce().bufferedSectors(), 1u);
    EXPECT_GE(ssd_->stats().get("isce.elidedSmallWrites"), 1u);
    SectorData out;
    ssd_->peek(100, 1, &out);
    EXPECT_EQ(out.chunks[0], sector(9).chunks[0]);
}

TEST_F(IsceBuffer, BufferFlushesWhenFull)
{
    // Capacity is 8 sectors; the 8th buffered record triggers an
    // aggregated flush.
    for (std::uint64_t i = 0; i < 8; ++i) {
        writeJournalRecord(Lba(i), 5 + i);
        checkpointSmall(Lba(i), 100 + i * 8);
    }
    EXPECT_EQ(ssd_->isce().bufferedSectors(), 0u);
    EXPECT_GE(ssd_->stats().get("isce.smallBufferFlushes"), 1u);
    EXPECT_GT(ssd_->ftl().stats().get("ftl.slotWrites.checkpoint"),
              0u);
    // Content survives the flush.
    for (std::uint64_t i = 0; i < 8; ++i) {
        SectorData out;
        ssd_->peek(100 + i * 8, 1, &out);
        EXPECT_EQ(out.chunks[0], sector(5 + i).chunks[0]) << i;
    }
}

TEST_F(IsceBuffer, HostWriteInvalidatesBufferedEntry)
{
    writeJournalRecord(0, 5);
    checkpointSmall(0, 100);
    ssd_->submit(Command::write(100, {sector(77)}, IoCause::Query),
                 [](const CmdResult &) {});
    eq_.run();
    EXPECT_EQ(ssd_->isce().bufferedSectors(), 0u);
    SectorData out;
    ssd_->peek(100, 1, &out);
    EXPECT_EQ(out, sector(77));
}

TEST_F(IsceBuffer, TrimInvalidatesBufferedEntry)
{
    writeJournalRecord(0, 5);
    checkpointSmall(0, 100);
    ssd_->submit(Command::trim(100, 1), [](const CmdResult &) {});
    eq_.run();
    EXPECT_EQ(ssd_->isce().bufferedSectors(), 0u);
    SectorData out;
    ssd_->peek(100, 1, &out);
    EXPECT_EQ(out, SectorData{});
}

TEST_F(IsceBuffer, RemapSupersedesBufferedEntry)
{
    writeJournalRecord(0, 5);
    checkpointSmall(0, 100);
    // Now a FULL (whole-unit) newer version remaps onto the target.
    writeJournalRecord(8, 9);
    ssd_->submit(
        Command::checkpointRemap({CowPair::make(8, 0, 100, 4)}),
        [](const CmdResult &) {});
    eq_.run();
    EXPECT_EQ(ssd_->isce().bufferedSectors(), 0u);
    SectorData out;
    ssd_->peek(100, 1, &out);
    EXPECT_EQ(out, sector(9));
}

TEST_F(IsceBuffer, SurvivesJournalSourceDeletion)
{
    // The buffer gathers content at checkpoint time, so deleting the
    // journal logs afterwards must not lose the data (SPOR DRAM).
    writeJournalRecord(0, 5);
    checkpointSmall(0, 100);
    ssd_->submit(Command::deleteLogs(0, 8),
                 [](const CmdResult &) {});
    eq_.run();
    SectorData out;
    ssd_->peek(100, 1, &out);
    EXPECT_EQ(out.chunks[0], sector(5).chunks[0]);
}

TEST_F(IsceBuffer, ForcedFlushDrainsEverything)
{
    writeJournalRecord(0, 5);
    checkpointSmall(0, 100);
    writeJournalRecord(8, 6);
    checkpointSmall(8, 108);
    ssd_->isce().flushSmallBuffer(eq_.now());
    EXPECT_EQ(ssd_->isce().bufferedSectors(), 0u);
    SectorData out;
    ssd_->peek(100, 1, &out);
    EXPECT_EQ(out.chunks[0], sector(5).chunks[0]);
    ssd_->peek(108, 1, &out);
    EXPECT_EQ(out.chunks[0], sector(6).chunks[0]);
}

TEST_F(IsceBuffer, DisabledBufferCopiesImmediately)
{
    SsdConfig scfg;
    scfg.smallBufferSectors = 0;
    FtlConfig fcfg;
    SimContext ctx;
    EventQueue &eq = ctx.events();
    Ssd ssd(ctx, smallNand(), fcfg, scfg);
    ssd.submit(Command::write(0, {sector(5)}, IoCause::Journal),
               [](const CmdResult &) {});
    ssd.submit(Command::checkpointRemap({CowPair::make(
                   0, 0, 100, 2, /*version=*/0, /*force_copy=*/true)}),
               [](const CmdResult &) {});
    eq.run();
    EXPECT_EQ(ssd.isce().bufferedSectors(), 0u);
    EXPECT_GT(ssd.ftl().stats().get("ftl.slotWrites.checkpoint"),
              0u);
}

} // namespace
} // namespace checkin
