/**
 * @file
 * Tests for the invertible chunk-token encoding.
 */

#include <gtest/gtest.h>

#include "engine/record.h"
#include "sim/rng.h"

namespace checkin {
namespace {

TEST(Token, ZeroDecodesInvalid)
{
    const DecodedToken d = decodeToken(0);
    EXPECT_FALSE(d.valid());
    EXPECT_EQ(d.tag, TokenTag::Invalid);
}

TEST(Token, DataRoundTrip)
{
    const std::uint64_t t = dataChunkToken(12345, 678, 9);
    const DecodedToken d = decodeToken(t);
    EXPECT_EQ(d.tag, TokenTag::Data);
    EXPECT_EQ(d.key, 12345u);
    EXPECT_EQ(d.version, 678u);
    EXPECT_EQ(d.aux, 9u);
}

TEST(Token, CatalogRoundTrip)
{
    const std::uint64_t t = catalogToken(999, 12, 32);
    const DecodedToken d = decodeToken(t);
    EXPECT_EQ(d.tag, TokenTag::Catalog);
    EXPECT_EQ(d.key, 999u);
    EXPECT_EQ(d.version, 12u);
    EXPECT_EQ(d.aux, 32u);
}

TEST(Token, DistinctInputsDistinctTokens)
{
    EXPECT_NE(dataChunkToken(1, 1, 0), dataChunkToken(1, 1, 1));
    EXPECT_NE(dataChunkToken(1, 1, 0), dataChunkToken(1, 2, 0));
    EXPECT_NE(dataChunkToken(1, 1, 0), dataChunkToken(2, 1, 0));
    EXPECT_NE(dataChunkToken(1, 1, 0), catalogToken(1, 1, 0));
}

struct TokenCase
{
    std::uint64_t key;
    std::uint64_t version;
    std::uint64_t aux;
};

class TokenRoundTrip : public ::testing::TestWithParam<TokenCase>
{
};

TEST_P(TokenRoundTrip, FieldLimits)
{
    const TokenCase c = GetParam();
    const DecodedToken d = decodeToken(
        dataChunkToken(c.key, c.version, c.aux));
    EXPECT_EQ(d.key, c.key);
    EXPECT_EQ(d.version, c.version);
    EXPECT_EQ(d.aux, c.aux);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, TokenRoundTrip,
    ::testing::Values(TokenCase{0, 0, 0}, TokenCase{1, 1, 1},
                      TokenCase{(1ULL << 24) - 1, 0, 0},
                      TokenCase{0, (1ULL << 24) - 1, 0},
                      TokenCase{0, 0, (1ULL << 12) - 1},
                      TokenCase{(1ULL << 24) - 1, (1ULL << 24) - 1,
                                (1ULL << 12) - 1},
                      TokenCase{123456, 99999, 31}));

TEST(Token, RandomSweepRoundTrips)
{
    Rng r(77);
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t key = r.nextBounded(1ULL << 24);
        const std::uint64_t ver = r.nextBounded(1ULL << 24);
        const std::uint64_t aux = r.nextBounded(1ULL << 12);
        const DecodedToken d =
            decodeToken(dataChunkToken(key, ver, aux));
        ASSERT_EQ(d.tag, TokenTag::Data);
        ASSERT_EQ(d.key, key);
        ASSERT_EQ(d.version, ver);
        ASSERT_EQ(d.aux, aux);
    }
}

TEST(Token, GarbageDecodesInvalidMostly)
{
    // Random 64-bit values decode as Invalid unless their unmixed tag
    // nibble happens to be 0xC/0xD/0xE (3/16 chance) — the decoder
    // must never crash on them.
    Rng r(78);
    int valid = 0;
    const int n = 10'000;
    for (int i = 0; i < n; ++i)
        valid += decodeToken(r.next()).valid();
    EXPECT_NEAR(double(valid) / n, 3.0 / 16.0, 0.02);
}

TEST(Token, TombstoneRoundTrip)
{
    const DecodedToken d = decodeToken(tombstoneToken(777, 42));
    EXPECT_EQ(d.tag, TokenTag::Tombstone);
    EXPECT_EQ(d.key, 777u);
    EXPECT_EQ(d.version, 42u);
    EXPECT_NE(tombstoneToken(777, 42), dataChunkToken(777, 42, 0));
}

} // namespace
} // namespace checkin
