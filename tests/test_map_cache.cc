/**
 * @file
 * Tests for the FTL map-cache model: miss charging, LRU locality,
 * and transparency when the table is resident.
 */

#include <gtest/gtest.h>

#include <memory>

#include "ftl/ftl.h"
#include "nand/nand_flash.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

std::unique_ptr<Ftl>
makeFtl(NandFlash &nand, std::uint64_t map_cache_bytes)
{
    FtlConfig cfg;
    cfg.mapCacheBytes = map_cache_bytes;
    cfg.mapEntriesPerFetch = 64;
    return std::make_unique<Ftl>(nand, cfg);
}

TEST(MapCache, DisabledByDefaultNoMisses)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    SectorData d;
    for (Lpn u = 0; u < 1000; ++u)
        ftl.writeSectors(u, 1, &d, IoCause::Query, 0);
    EXPECT_EQ(ftl.stats().get("ftl.mapCacheMisses"), 0u);
}

TEST(MapCache, ResidentTableNeverMisses)
{
    NandFlash nand(smallNand());
    // Capacity far beyond the table size: model disables itself.
    auto ftl = makeFtl(nand, 1 * kGiB);
    SectorData d;
    for (Lpn u = 0; u < 1000; ++u)
        ftl->writeSectors(u, 1, &d, IoCause::Query, 0);
    EXPECT_EQ(ftl->stats().get("ftl.mapCacheMisses"), 0u);
}

TEST(MapCache, ThrashingTableMissesAndChargesFlash)
{
    NandFlash nand(smallNand());
    // 64-entry segments x 8 B = 512 B per segment; cap 4 segments.
    auto ftl = makeFtl(nand, 4 * 64 * 8);
    const std::uint64_t aux_before =
        nand.stats().get("nand.auxReads");
    SectorData d;
    // Touch many distant segments.
    for (Lpn u = 0; u < 10'000; u += 64)
        ftl->writeSectors(u, 1, &d, IoCause::Query, 0);
    EXPECT_GT(ftl->stats().get("ftl.mapCacheMisses"), 100u);
    EXPECT_GT(nand.stats().get("nand.auxReads"), aux_before);
}

TEST(MapCache, LocalityHitsAfterFirstTouch)
{
    NandFlash nand(smallNand());
    auto ftl = makeFtl(nand, 4 * 64 * 8);
    SectorData d;
    // Repeatedly hammer one segment: one miss, then hits.
    for (int i = 0; i < 100; ++i)
        ftl->writeSectors(Lpn(i % 32), 1, &d, IoCause::Query, 0);
    EXPECT_EQ(ftl->stats().get("ftl.mapCacheMisses"), 1u);
    EXPECT_GT(ftl->stats().get("ftl.mapCacheHits"), 90u);
}

TEST(MapCache, MissDelaysTheOperation)
{
    NandFlash nand(smallNand());
    auto ftl = makeFtl(nand, 4 * 64 * 8);
    SectorData d;
    ftl->writeSectors(0, 1, &d, IoCause::Query, 0);
    // A read of a far segment must pay at least one flash read
    // before its data access.
    ftl->writeSectors(9000, 1, &d, IoCause::Query, 0);
    ftl->flushOpenPages(0);
    const Tick idle = nand.allIdleAt();
    // Evict segment of LPN 9000 by touching other segments.
    for (Lpn u = 0; u < 64 * 8; u += 64)
        ftl->readSectors(u, 1, IoCause::Query, idle);
    const Tick t = ftl->readSectors(9000, 1, IoCause::Query,
                                    nand.allIdleAt());
    EXPECT_GE(t, idle + smallNand().readLatency);
}

} // namespace
} // namespace checkin
