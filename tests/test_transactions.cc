/**
 * @file
 * Tests for multi-key transactions (atomic group commit) and the
 * TimeSeries aggregator.
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "sim/timeseries.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

EngineConfig
engineCfg()
{
    EngineConfig c;
    c.mode = CheckpointMode::CheckIn;
    c.recordCount = 300;
    c.journalHalfBytes = 2 * kMiB;
    c.checkpointJournalBytes = kMiB;
    c.checkpointInterval = 0;
    return c;
}

struct Stack
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;

    Stack()
    {
        FtlConfig ftl_cfg;
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        engine = std::make_unique<KvEngine>(ctx, *ssd, engineCfg());
        engine->load([](std::uint64_t) { return 256u; });
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }
};

TEST(Transactions, BatchCommitsAllKeys)
{
    Stack s;
    bool done = false;
    s.engine->updateBatch({{1, 256}, {2, 384}, {3, 0}, {4, 512}},
                          [&](const QueryResult &r) {
                              EXPECT_TRUE(r.found);
                              done = true;
                          });
    s.eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(s.engine->keymap()[1].version, 2u);
    EXPECT_EQ(s.engine->keymap()[2].version, 2u);
    EXPECT_EQ(s.engine->keymap()[3].storedChunks, 0u); // deleted
    EXPECT_EQ(s.engine->keymap()[4].version, 2u);
    EXPECT_EQ(s.engine->stats().get("engine.transactions"), 1u);
    EXPECT_EQ(s.engine->stats().get("engine.batchCommits"), 1u);
    s.engine->verifyAllKeys();
}

TEST(Transactions, AtomicAcrossCrash)
{
    // Crash at every event-drain depth: after recovery, each
    // transaction must be fully present or fully absent.
    for (int steps = 0; steps < 40; steps += 3) {
        Stack s;
        // Three transactions over disjoint key groups.
        for (int t = 0; t < 3; ++t) {
            std::vector<KvEngine::BatchOp> ops;
            for (std::uint64_t k = 0; k < 5; ++k)
                ops.push_back({std::uint64_t(t) * 10 + k, 256});
            s.engine->updateBatch(std::move(ops),
                                  [](const QueryResult &) {});
        }
        for (int i = 0; i < steps && s.eq.step(); ++i) {
        }
        s.eq.clear();
        s.engine.reset();
        s.engine = std::make_unique<KvEngine>(s.ctx, *s.ssd,
                                              engineCfg());
        s.engine->recover();
        for (int t = 0; t < 3; ++t) {
            const std::uint32_t v0 =
                s.engine->keymap()[std::uint64_t(t) * 10].version;
            for (std::uint64_t k = 1; k < 5; ++k) {
                EXPECT_EQ(
                    s.engine->keymap()[std::uint64_t(t) * 10 + k]
                        .version,
                    v0)
                    << "txn " << t << " split at steps=" << steps;
            }
        }
        s.engine->verifyAllKeys();
    }
}

TEST(Transactions, NeverSplitAcrossGroupBoundary)
{
    Stack s;
    // Fill the buffer close to the group bound (256), then append a
    // batch that would straddle it.
    for (int i = 0; i < 250; ++i)
        s.engine->update(std::uint64_t(i % 300), 128,
                         [](const QueryResult &) {});
    std::vector<KvEngine::BatchOp> ops;
    for (std::uint64_t k = 0; k < 20; ++k)
        ops.push_back({k, 128});
    bool done = false;
    s.engine->updateBatch(std::move(ops),
                          [&](const QueryResult &) { done = true; });
    s.eq.run();
    EXPECT_TRUE(done);
    s.engine->verifyAllKeys();
}

TEST(Transactions, OversizedBatchRejected)
{
    Stack s;
    std::vector<KvEngine::BatchOp> ops;
    for (std::uint64_t k = 0; k < 300; ++k)
        ops.push_back({k, 128});
    s.engine->updateBatch(std::move(ops), [](const QueryResult &) {});
    EXPECT_THROW(s.eq.run(), std::invalid_argument);
}

TEST(TimeSeries, BucketsMeansAndMax)
{
    TimeSeries ts(100);
    ts.record(10, 5);
    ts.record(50, 15);
    ts.record(250, 40);
    ASSERT_GE(ts.buckets().size(), 3u);
    EXPECT_EQ(ts.buckets()[0].count, 2u);
    EXPECT_DOUBLE_EQ(ts.buckets()[0].mean(), 10.0);
    EXPECT_EQ(ts.buckets()[0].max, 15u);
    EXPECT_EQ(ts.buckets()[1].count, 0u);
    EXPECT_EQ(ts.buckets()[2].count, 1u);
}

TEST(TimeSeries, ActiveRange)
{
    TimeSeries ts(10);
    EXPECT_EQ(ts.activeRange(), (std::pair<std::size_t,
                                           std::size_t>{0, 0}));
    ts.record(35, 1);
    ts.record(95, 1);
    EXPECT_EQ(ts.activeRange(),
              (std::pair<std::size_t, std::size_t>{3, 9}));
}

} // namespace
} // namespace checkin
