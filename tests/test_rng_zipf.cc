/**
 * @file
 * Tests for the PRNG, the bit mixers, and the key distributions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "engine/record.h"
#include "sim/rng.h"
#include "sim/zipf.h"

namespace checkin {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ChildSeedIsDeterministicAndDrawIndependent)
{
    Rng a(123);
    const std::uint64_t before = a.childSeed(7);
    // Drawing from the parent must not move its child streams: the
    // derivation depends on the construction seed only.
    for (int i = 0; i < 1000; ++i)
        a.next();
    EXPECT_EQ(a.childSeed(7), before);
    EXPECT_EQ(Rng(123).childSeed(7), before);
    EXPECT_EQ(a.seed(), 123u);

    Rng c1 = a.child(7);
    Rng c2 = Rng(123).child(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, ChildStreamsAreDistinctAndIndependent)
{
    Rng root(42);
    // Distinct stream ids must give distinct seeds (no collisions in
    // a realistic stream range)...
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 0; s < 4096; ++s)
        seeds.push_back(root.childSeed(s));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());

    // ...and the derived sequences must decorrelate: adjacent
    // streams, and a child against its parent, agree on almost no
    // draws and have balanced bit-agreement.
    Rng c0 = root.child(0);
    Rng c1 = root.child(1);
    Rng parent(42);
    int same_adjacent = 0;
    int same_parent = 0;
    std::int64_t bit_agree = 0;
    const int n = 10'000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = c0.next();
        const std::uint64_t y = c1.next();
        same_adjacent += x == y;
        same_parent += x == parent.next();
        bit_agree += 32 - std::popcount(x ^ y);
    }
    EXPECT_LT(same_adjacent, 3);
    EXPECT_LT(same_parent, 3);
    // Mean bit agreement is 0 for independent streams; bound the
    // drift well above the ~sqrt(64 * n) / 2 standard deviation.
    EXPECT_LT(std::abs(bit_agree), std::int64_t(64) * n / 100);
}

TEST(Rng, ChildSeedSeparatesSeedAndStream)
{
    // (seed a, stream b) and (seed b, stream a) must not collide:
    // the derivation is not a symmetric mix of the two inputs.
    EXPECT_NE(Rng(1).childSeed(2), Rng(2).childSeed(1));
    EXPECT_NE(Rng(0).childSeed(1), Rng(1).childSeed(0));
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10'000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng r(11);
    std::vector<int> hist(8, 0);
    const int n = 80'000;
    for (int i = 0; i < n; ++i)
        ++hist[r.nextBounded(8)];
    for (int c : hist) {
        EXPECT_GT(c, n / 8 - n / 80);
        EXPECT_LT(c, n / 8 + n / 80);
    }
}

/** unmix64 must invert mix64 over random inputs. */
class MixInverse : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MixInverse, RoundTrips)
{
    const std::uint64_t x = GetParam();
    EXPECT_EQ(unmix64(mix64(x)), x);
    EXPECT_EQ(mix64(unmix64(x)), x);
}

INSTANTIATE_TEST_SUITE_P(
    Values, MixInverse,
    ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                      0xffffffffffffffffULL, 0x8000000000000000ULL,
                      0x123456789abcdef0ULL, 977ULL, 1ULL << 33));

TEST(MixInverseSweep, RandomRoundTrips)
{
    Rng r(5);
    for (int i = 0; i < 10'000; ++i) {
        const std::uint64_t x = r.next();
        ASSERT_EQ(unmix64(mix64(x)), x);
    }
}

TEST(Uniform, CoversAllItems)
{
    Rng r(3);
    UniformDistribution d(10);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10'000; ++i)
        ++seen[d.next(r)];
    for (int c : seen)
        EXPECT_GT(c, 0);
}

TEST(Zipfian, RespectsRange)
{
    Rng r(3);
    ZipfianDistribution d(1000);
    for (int i = 0; i < 100'000; ++i)
        ASSERT_LT(d.next(r), 1000u);
}

TEST(Zipfian, ItemZeroIsHottest)
{
    Rng r(3);
    ZipfianDistribution d(1000);
    std::vector<int> hist(1000, 0);
    for (int i = 0; i < 200'000; ++i)
        ++hist[d.next(r)];
    EXPECT_GT(hist[0], hist[1]);
    EXPECT_GT(hist[1], hist[10]);
    EXPECT_GT(hist[10], hist[500]);
}

TEST(Zipfian, SkewMatchesTheory)
{
    // With theta=0.99 and n=1000, item 0 should carry roughly
    // 1/zeta(1000, 0.99) ~ 13 % of the mass.
    Rng r(17);
    ZipfianDistribution d(1000);
    int zero = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i)
        zero += d.next(r) == 0;
    const double frac = double(zero) / n;
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, 0.17);
}

TEST(ScrambledZipfian, SpreadsHotKeys)
{
    Rng r(3);
    ScrambledZipfianDistribution d(1000);
    std::vector<int> hist(1000, 0);
    for (int i = 0; i < 100'000; ++i)
        ++hist[d.next(r)];
    // The hottest item should not be item 0 systematically; find the
    // max and check it is still zipf-hot.
    int max_c = 0;
    for (int c : hist)
        max_c = std::max(max_c, c);
    EXPECT_GT(max_c, 100'000 / 100);
}

TEST(Latest, FavorsNewestItems)
{
    Rng r(3);
    LatestDistribution d(1000);
    std::uint64_t sum = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        sum += d.next(r);
    // Mean should be strongly above the uniform mean of ~500.
    EXPECT_GT(double(sum) / n, 800.0);
}

TEST(Distributions, UniformIsFlat)
{
    Rng r(23);
    UniformDistribution d(100);
    std::vector<int> hist(100, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++hist[d.next(r)];
    for (int c : hist) {
        EXPECT_GT(c, n / 100 * 7 / 10);
        EXPECT_LT(c, n / 100 * 13 / 10);
    }
}

} // namespace
} // namespace checkin
