/**
 * @file
 * Tests for the sub-page-mapping FTL: mapping, RMW, CoW remapping,
 * trim, GC data preservation, and OOB scan.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ftl/ftl.h"
#include "nand/nand_flash.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.planesPerDie = 1;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 16;
    c.pageBytes = 4096;
    return c;
}

SectorData
sector(std::uint64_t base)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = base * 10 + c + 1;
    return d;
}

std::vector<SectorData>
sectors(std::uint64_t base, std::uint32_t n)
{
    std::vector<SectorData> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        v.push_back(sector(base + i));
    return v;
}

/** Parameterized over the mapping unit (paper Fig 13 axis). */
class FtlUnit : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    FtlUnit() : nand_(smallNand())
    {
        FtlConfig cfg;
        cfg.mappingUnitBytes = GetParam();
        ftl_ = std::make_unique<Ftl>(nand_, cfg);
    }

    NandFlash nand_;
    std::unique_ptr<Ftl> ftl_;
};

TEST_P(FtlUnit, GeometryConsistent)
{
    EXPECT_EQ(ftl_->mappingUnitBytes(), GetParam());
    EXPECT_EQ(ftl_->sectorsPerUnit(), GetParam() / 512);
    EXPECT_EQ(ftl_->slotsPerPage(), 4096u / GetParam());
    EXPECT_EQ(ftl_->logicalSectors(),
              ftl_->logicalUnits() * ftl_->sectorsPerUnit());
    EXPECT_LT(ftl_->logicalUnits() * GetParam(),
              nand_.config().totalBytes());
}

TEST_P(FtlUnit, WritePeekRoundTrip)
{
    const auto data = sectors(1, 16);
    ftl_->writeSectors(0, 16, data.data(), IoCause::Query, 0);
    std::vector<SectorData> out(16);
    ftl_->peekSectors(0, 16, out.data());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], data[i]) << "sector " << i;
}

TEST_P(FtlUnit, UnmappedReadsAsZero)
{
    std::vector<SectorData> out(4);
    ftl_->peekSectors(100, 4, out.data());
    for (const SectorData &d : out)
        EXPECT_EQ(d, SectorData{});
}

TEST_P(FtlUnit, OverwriteReplacesAndInvalidates)
{
    const auto v1 = sectors(1, 8);
    const auto v2 = sectors(100, 8);
    ftl_->writeSectors(0, 8, v1.data(), IoCause::Query, 0);
    const std::uint64_t inv_before =
        ftl_->stats().get("ftl.invalidatedSlots");
    ftl_->writeSectors(0, 8, v2.data(), IoCause::Query, 0);
    std::vector<SectorData> out(8);
    ftl_->peekSectors(0, 8, out.data());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], v2[i]);
    EXPECT_GT(ftl_->stats().get("ftl.invalidatedSlots"), inv_before);
}

TEST_P(FtlUnit, SubUnitWriteMergesViaRmw)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    if (spu == 1)
        GTEST_SKIP() << "512 B units cannot have sub-unit writes";
    const auto base = sectors(1, spu);
    ftl_->writeSectors(0, spu, base.data(), IoCause::Query, 0);
    // Overwrite only the first sector of the unit.
    const auto patch = sectors(500, 1);
    ftl_->writeSectors(0, 1, patch.data(), IoCause::Query, 0);
    std::vector<SectorData> out(spu);
    ftl_->peekSectors(0, spu, out.data());
    EXPECT_EQ(out[0], patch[0]);
    for (std::uint32_t i = 1; i < spu; ++i)
        EXPECT_EQ(out[i], base[i]);
    EXPECT_GE(ftl_->stats().get("ftl.rmwReads"), 1u);
}

TEST_P(FtlUnit, RemapSharesOnePhysicalSlot)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    const auto data = sectors(7, spu);
    ftl_->writeSectors(0, spu, data.data(), IoCause::Journal, 0);
    const std::uint64_t programs_before =
        nand_.stats().get("nand.programs");
    ftl_->remapUnit(0, 10, 0);
    // No flash data movement.
    EXPECT_EQ(nand_.stats().get("nand.programs"), programs_before);
    std::vector<SectorData> out(spu);
    ftl_->peekSectors(10 * spu, spu, out.data());
    for (std::uint32_t i = 0; i < spu; ++i)
        EXPECT_EQ(out[i], data[i]);
    EXPECT_EQ(ftl_->stats().get("ftl.remaps"), 1u);
}

TEST_P(FtlUnit, SharedSlotSurvivesSourceTrim)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    const auto data = sectors(9, spu);
    ftl_->writeSectors(0, spu, data.data(), IoCause::Journal, 0);
    ftl_->remapUnit(0, 10, 0);
    const std::uint64_t inv_before =
        ftl_->stats().get("ftl.invalidatedSlots");
    ftl_->trimSectors(0, spu); // drop the journal reference
    // Slot still valid through the data-area LPN.
    EXPECT_EQ(ftl_->stats().get("ftl.invalidatedSlots"), inv_before);
    std::vector<SectorData> out(spu);
    ftl_->peekSectors(10 * spu, spu, out.data());
    for (std::uint32_t i = 0; i < spu; ++i)
        EXPECT_EQ(out[i], data[i]);
    // Dropping the last reference invalidates.
    ftl_->trimSectors(10 * spu, spu);
    EXPECT_EQ(ftl_->stats().get("ftl.invalidatedSlots"),
              inv_before + 1);
}

TEST_P(FtlUnit, RemapReplacesPreviousDstMapping)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    const auto old_data = sectors(1, spu);
    const auto new_data = sectors(50, spu);
    ftl_->writeSectors(10 * spu, spu, old_data.data(),
                       IoCause::Query, 0);
    ftl_->writeSectors(0, spu, new_data.data(), IoCause::Journal, 0);
    ftl_->remapUnit(0, 10, 0);
    std::vector<SectorData> out(spu);
    ftl_->peekSectors(10 * spu, spu, out.data());
    for (std::uint32_t i = 0; i < spu; ++i)
        EXPECT_EQ(out[i], new_data[i]);
}

TEST_P(FtlUnit, RemapIsIdempotent)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    const auto data = sectors(3, spu);
    ftl_->writeSectors(0, spu, data.data(), IoCause::Journal, 0);
    ftl_->remapUnit(0, 10, 0);
    ftl_->remapUnit(0, 10, 0); // second remap of the same pair
    std::vector<SectorData> out(spu);
    ftl_->peekSectors(10 * spu, spu, out.data());
    EXPECT_EQ(out[0], data[0]);
}

TEST_P(FtlUnit, CopySectorsDuplicatesContent)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    const auto data = sectors(4, spu);
    ftl_->writeSectors(0, spu, data.data(), IoCause::Journal, 0);
    ftl_->copySectors(0, 20 * spu, spu, IoCause::Checkpoint, 0);
    std::vector<SectorData> out(spu);
    ftl_->peekSectors(20 * spu, spu, out.data());
    for (std::uint32_t i = 0; i < spu; ++i)
        EXPECT_EQ(out[i], data[i]);
    // Copies are physical: checkpoint-caused slot writes counted.
    EXPECT_GE(ftl_->stats().get("ftl.slotWrites.checkpoint"), 1u);
    // Source remains intact and independent.
    ftl_->trimSectors(0, spu);
    ftl_->peekSectors(20 * spu, spu, out.data());
    EXPECT_EQ(out[0], data[0]);
}

TEST_P(FtlUnit, TrimOnlyCoversWholeUnits)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    if (spu == 1)
        GTEST_SKIP();
    const auto data = sectors(6, spu);
    ftl_->writeSectors(0, spu, data.data(), IoCause::Query, 0);
    // Trimming half a unit must not unmap it.
    ftl_->trimSectors(0, spu / 2);
    std::vector<SectorData> out(1);
    ftl_->peekSectors(0, 1, out.data());
    EXPECT_EQ(out[0], data[0]);
}

TEST_P(FtlUnit, IsUnitAligned)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    EXPECT_TRUE(ftl_->isUnitAligned(0, spu));
    EXPECT_TRUE(ftl_->isUnitAligned(spu * 3, spu * 2));
    if (spu > 1) {
        EXPECT_FALSE(ftl_->isUnitAligned(1, spu));
        EXPECT_FALSE(ftl_->isUnitAligned(0, spu - 1));
    }
}

TEST_P(FtlUnit, WriteAckIsBufferedReadPaysFlash)
{
    const std::uint32_t spu = ftl_->sectorsPerUnit();
    const auto data = sectors(2, spu);
    const Tick ack =
        ftl_->writeSectors(0, spu, data.data(), IoCause::Query, 0);
    // Ack is immediate (SPOR buffer); flash programs happen behind.
    EXPECT_EQ(ack, 0u);
}

INSTANTIATE_TEST_SUITE_P(MappingUnits, FtlUnit,
                         ::testing::Values(512u, 1024u, 2048u,
                                           4096u));

// ---------------------------------------------------------------------
// GC behaviour (512 B unit fixture)
// ---------------------------------------------------------------------

class FtlGc : public ::testing::Test
{
  protected:
    FtlGc() : nand_(smallNand())
    {
        FtlConfig cfg;
        cfg.mappingUnitBytes = 512;
        cfg.exportedRatio = 0.70;
        cfg.gcLowWaterBlocks = 3;
        cfg.gcHighWaterBlocks = 5;
        ftl_ = std::make_unique<Ftl>(nand_, cfg);
    }

    NandFlash nand_;
    std::unique_ptr<Ftl> ftl_;
};

TEST_F(FtlGc, GcReclaimsAndPreservesContent)
{
    // Hammer a small logical range so most slots turn invalid and GC
    // must run; then verify all live content.
    const std::uint64_t lpns = 64;
    std::vector<std::uint64_t> generation(lpns, 0);
    std::uint64_t round = 0;
    // Enough writes to cycle the device several times over.
    for (int iter = 0; iter < 12000; ++iter) {
        const std::uint64_t lpn = iter % lpns;
        generation[lpn] = ++round;
        const auto data = sectors(round * 100, 1);
        ftl_->writeSectors(lpn, 1, data.data(), IoCause::Query, 0);
    }
    EXPECT_GT(ftl_->stats().get("gc.invocations"), 0u);
    EXPECT_GT(ftl_->stats().get("gc.erases"), 0u);
    for (std::uint64_t lpn = 0; lpn < lpns; ++lpn) {
        std::vector<SectorData> out(1);
        ftl_->peekSectors(lpn, 1, out.data());
        EXPECT_EQ(out[0], sector(generation[lpn] * 100))
            << "lpn " << lpn;
    }
    // GC must keep the device operable (free blocks available); the
    // exact count depends on where the write burst ended.
    EXPECT_GE(ftl_->freeBlocks(), 2u);
}

TEST_F(FtlGc, GcPreservesSharedSlots)
{
    // Create shared (remapped) slots, then force GC churn elsewhere
    // and check both LPNs still read the shared content.
    const auto data = sectors(42, 1);
    ftl_->writeSectors(0, 1, data.data(), IoCause::Journal, 0);
    ftl_->remapUnit(0, 200, 0);
    for (int iter = 0; iter < 12000; ++iter) {
        const std::uint64_t lpn = 300 + (iter % 64);
        const auto filler = sectors(iter, 1);
        ftl_->writeSectors(lpn, 1, filler.data(), IoCause::Query, 0);
    }
    ASSERT_GT(ftl_->stats().get("gc.invocations"), 0u);
    std::vector<SectorData> out(1);
    ftl_->peekSectors(0, 1, out.data());
    EXPECT_EQ(out[0], data[0]);
    ftl_->peekSectors(200, 1, out.data());
    EXPECT_EQ(out[0], data[0]);
}

TEST_F(FtlGc, BackgroundGcFreesBlocks)
{
    for (int iter = 0; iter < 6000; ++iter) {
        const auto data = sectors(iter, 1);
        ftl_->writeSectors(iter % 64, 1, data.data(), IoCause::Query,
                           0);
    }
    const std::uint32_t before = ftl_->freeBlocks();
    const std::uint32_t reclaimed = ftl_->runBackgroundGc(0);
    if (before < 16)
        EXPECT_GT(reclaimed, 0u);
    EXPECT_GE(ftl_->freeBlocks(), before);
}

TEST_F(FtlGc, MapFlushProgramsPages)
{
    // Enough mapping updates to cross the flush threshold.
    for (int iter = 0; iter < 1200; ++iter) {
        const auto data = sectors(iter, 1);
        ftl_->writeSectors(iter % 32, 1, data.data(), IoCause::Query,
                           0);
    }
    EXPECT_GT(ftl_->stats().get("ftl.mapFlushes"), 0u);
    EXPECT_GT(ftl_->stats().get("ftl.slotWrites.mapflush"), 0u);
}

TEST_F(FtlGc, OobScanRecoversLatestMappings)
{
    const auto v1 = sectors(1, 1);
    const auto v2 = sectors(2, 1);
    ftl_->writeSectors(5, 1, v1.data(), IoCause::Query, 0);
    ftl_->writeSectors(5, 1, v2.data(), IoCause::Query, 0);
    ftl_->writeSectors(9, 1, v1.data(), IoCause::Query, 0);
    ftl_->flushOpenPages(0);
    const auto mappings = ftl_->scanOobMappings();
    // Expect lpn 5 and 9 present, 5 pointing at the newer slot.
    std::uint64_t found5 = kInvalidAddr;
    std::uint64_t found9 = kInvalidAddr;
    for (const auto &[lpn, slot] : mappings) {
        if (lpn == 5)
            found5 = slot;
        if (lpn == 9)
            found9 = slot;
    }
    ASSERT_NE(found5, kInvalidAddr);
    ASSERT_NE(found9, kInvalidAddr);
    // The rebuilt slot for lpn 5 holds v2.
    std::vector<SectorData> out(1);
    ftl_->peekSectors(5, 1, out.data());
    EXPECT_EQ(out[0], v2[0]);
}

} // namespace
} // namespace checkin
