/**
 * @file
 * Engine-level tests: query semantics, checkpoint triggers, locked
 * mode, and content verification plumbing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

struct Stack
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;

    explicit Stack(CheckpointMode mode = CheckpointMode::CheckIn,
                   Tick interval = 0, bool lock = false)
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes =
            mode == CheckpointMode::CheckIn ||
                    mode == CheckpointMode::IscC
                ? 512
                : 4096;
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        EngineConfig ecfg;
        ecfg.mode = mode;
        ecfg.recordCount = 300;
        ecfg.journalHalfBytes = 2 * kMiB;
        ecfg.checkpointJournalBytes = 256 * kKiB;
        ecfg.checkpointInterval = interval;
        ecfg.lockQueriesDuringCheckpoint = lock;
        engine = std::make_unique<KvEngine>(ctx, *ssd, ecfg);
        engine->load([](std::uint64_t) { return 256u; });
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }
};

TEST(KvEngine, GetReturnsLoadedValue)
{
    Stack s;
    bool done = false;
    s.engine->get(5, [&](const QueryResult &r) {
        EXPECT_TRUE(r.found);
        done = true;
    });
    s.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(s.engine->stats().get("engine.gets"), 1u);
}

TEST(KvEngine, UpdateBumpsVersionAndServesFromJournal)
{
    Stack s;
    s.engine->update(5, 384, [](const QueryResult &) {});
    s.eq.run();
    EXPECT_EQ(s.engine->keymap()[5].version, 2u);
    EXPECT_TRUE(s.engine->keymap()[5].inJournal);
    bool got = false;
    s.engine->get(5, [&](const QueryResult &r) {
        EXPECT_TRUE(r.found);
        got = true;
    });
    s.eq.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(s.engine->stats().get("engine.getsFromJournal"), 1u);
}

TEST(KvEngine, ReadModifyWriteDoesBoth)
{
    Stack s;
    bool done = false;
    s.engine->readModifyWrite(9, 256, [&](const QueryResult &r) {
        EXPECT_TRUE(r.found);
        done = true;
    });
    s.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(s.engine->stats().get("engine.gets"), 1u);
    EXPECT_EQ(s.engine->stats().get("engine.updates"), 1u);
    EXPECT_EQ(s.engine->keymap()[9].version, 2u);
}

TEST(KvEngine, LatencyIncludesHostCpuAndDevice)
{
    Stack s;
    const Tick start = s.eq.now();
    Tick done = 0;
    s.engine->get(1, [&](const QueryResult &r) { done = r.done; });
    s.eq.run();
    EXPECT_GE(done - start, s.engine->config().hostCpuPerQuery);
}

TEST(KvEngine, ThresholdTriggersCheckpoint)
{
    Stack s;
    // 256 KiB threshold at ~512 B per log: ~512 updates suffice.
    for (int i = 0; i < 1500; ++i)
        s.engine->update(std::uint64_t(i % 300), 512,
                         [](const QueryResult &) {});
    s.eq.run();
    EXPECT_GE(s.engine->checkpointDurations().size(), 1u);
    EXPECT_EQ(s.engine->stats().get("engine.checkpoints"),
              s.engine->checkpointDurations().size());
    s.engine->verifyAllKeys();
}

TEST(KvEngine, TimerTriggersCheckpoint)
{
    Stack s(CheckpointMode::CheckIn, 5 * kMsec);
    s.engine->start();
    for (int i = 0; i < 50; ++i)
        s.engine->update(std::uint64_t(i), 512,
                         [](const QueryResult &) {});
    // Run past a few timer periods, then stop driving.
    s.eq.runUntil(s.eq.now() + 50 * kMsec);
    EXPECT_GE(s.engine->checkpointDurations().size(), 1u);
}

TEST(KvEngine, LockedModeDefersQueriesDuringCheckpoint)
{
    Stack s(CheckpointMode::Baseline, 0, /*lock=*/true);
    for (int i = 0; i < 200; ++i)
        s.engine->update(std::uint64_t(i), 512,
                         [](const QueryResult &) {});
    s.eq.run();
    s.engine->requestCheckpoint();
    ASSERT_TRUE(s.engine->checkpointInProgress());
    bool got = false;
    Tick got_at = 0;
    s.engine->get(3, [&](const QueryResult &r) {
        got = true;
        got_at = r.done;
    });
    // The GET is deferred until the checkpoint finishes.
    s.eq.run();
    EXPECT_TRUE(got);
    EXPECT_FALSE(s.engine->checkpointInProgress());
    ASSERT_EQ(s.engine->checkpointDurations().size(), 1u);
    s.engine->verifyAllKeys();
}

TEST(KvEngine, DuringCheckpointFlagTagsQueries)
{
    Stack s(CheckpointMode::Baseline);
    for (int i = 0; i < 300; ++i)
        s.engine->update(std::uint64_t(i), 512,
                         [](const QueryResult &) {});
    s.eq.run();
    s.engine->requestCheckpoint();
    ASSERT_TRUE(s.engine->checkpointInProgress());
    bool tagged = false;
    s.engine->get(3, [&](const QueryResult &r) {
        tagged = r.duringCheckpoint;
    });
    s.eq.run();
    EXPECT_TRUE(tagged);
}

TEST(KvEngine, VerifyAllKeysCountsLoadedKeys)
{
    Stack s;
    EXPECT_EQ(s.engine->verifyAllKeys(), 300u);
}

TEST(KvEngine, ManyInterleavedOpsStayConsistent)
{
    Stack s;
    Rng rng(4);
    int completions = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t key = rng.nextBounded(300);
        if (rng.nextDouble() < 0.5) {
            s.engine->get(key,
                          [&](const QueryResult &) { ++completions; });
        } else {
            const auto bytes =
                std::uint32_t(128 + rng.nextBounded(512 - 128));
            s.engine->update(key, bytes, [&](const QueryResult &) {
                ++completions;
            });
        }
        if (i % 500 == 499)
            s.engine->requestCheckpoint();
    }
    s.eq.run();
    EXPECT_EQ(completions, n);
    s.engine->verifyAllKeys();
}

} // namespace
} // namespace checkin
