/**
 * @file
 * Cross-strategy checkpoint tests: all five configurations must end
 * with identical logical store contents; their flash-cost ordering
 * must match the paper's (Baseline/ISC-A/ISC-B >> ISC-C > Check-In).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

std::uint32_t
unitFor(CheckpointMode mode)
{
    switch (mode) {
      case CheckpointMode::Baseline:
      case CheckpointMode::IscA:
      case CheckpointMode::IscB:
        return 4096;
      default:
        return 512;
    }
}

struct Stack
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;

    explicit Stack(CheckpointMode mode)
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes = unitFor(mode);
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        EngineConfig ecfg;
        ecfg.mode = mode;
        ecfg.recordCount = 400;
        ecfg.journalHalfBytes = 2 * kMiB;
        ecfg.checkpointJournalBytes = kMiB;
        ecfg.checkpointInterval = 0;
        engine = std::make_unique<KvEngine>(ctx, *ssd, ecfg);
        engine->load([](std::uint64_t k) {
            return std::uint32_t(128 * (1 + k % 4));
        });
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }

    /** Apply a deterministic update mix and checkpoint twice. */
    void
    exercise()
    {
        Rng rng(99);
        for (int round = 0; round < 2; ++round) {
            for (int i = 0; i < 600; ++i) {
                const std::uint64_t key = rng.nextBounded(400);
                const auto bytes = std::uint32_t(
                    128 * (1 + rng.nextBounded(8))); // 128..1024
                engine->update(key, bytes,
                               [](const QueryResult &) {});
            }
            eq.run();
            engine->requestCheckpoint();
            eq.run();
        }
    }

    /** Logical contents: key -> (version, chunks). */
    std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
    contents() const
    {
        std::map<std::uint64_t,
                 std::pair<std::uint32_t, std::uint32_t>> m;
        for (std::uint64_t k = 0; k < 400; ++k) {
            const KeyState &st = engine->keymap()[k];
            m[k] = {st.version, 0};
        }
        return m;
    }
};

class AllModes : public ::testing::TestWithParam<CheckpointMode>
{
};

TEST_P(AllModes, CheckpointPreservesEveryKey)
{
    Stack s(GetParam());
    s.exercise();
    EXPECT_FALSE(s.engine->checkpointInProgress());
    EXPECT_GE(s.engine->checkpointDurations().size(), 2u);
    EXPECT_EQ(s.engine->verifyAllKeys(), 400u);
}

TEST_P(AllModes, CheckpointMovesKeysToDataArea)
{
    Stack s(GetParam());
    for (int i = 0; i < 50; ++i)
        s.engine->update(std::uint64_t(i), 512,
                         [](const QueryResult &) {});
    s.eq.run();
    s.engine->requestCheckpoint();
    s.eq.run();
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(s.engine->keymap()[i].inJournal) << i;
    s.engine->verifyAllKeys();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AllModes,
    ::testing::Values(CheckpointMode::Baseline, CheckpointMode::IscA,
                      CheckpointMode::IscB, CheckpointMode::IscC,
                      CheckpointMode::CheckIn),
    [](const ::testing::TestParamInfo<CheckpointMode> &info) {
        switch (info.param) {
          case CheckpointMode::Baseline: return "Baseline";
          case CheckpointMode::IscA: return "IscA";
          case CheckpointMode::IscB: return "IscB";
          case CheckpointMode::IscC: return "IscC";
          case CheckpointMode::CheckIn: return "CheckIn";
        }
        return "Unknown";
    });

TEST(StrategyEquivalence, AllModesConvergeToSameVersions)
{
    std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
        reference;
    bool first = true;
    for (CheckpointMode mode :
         {CheckpointMode::Baseline, CheckpointMode::IscA,
          CheckpointMode::IscB, CheckpointMode::IscC,
          CheckpointMode::CheckIn}) {
        Stack s(mode);
        s.exercise();
        const auto got = s.contents();
        if (first) {
            reference = got;
            first = false;
        } else {
            EXPECT_EQ(got, reference)
                << "mode " << int(mode)
                << " diverged from baseline contents";
        }
    }
}

TEST(StrategyCost, RemappingBeatsCopyingBeatsHost)
{
    std::map<CheckpointMode, std::uint64_t> redundant;
    std::map<CheckpointMode, std::uint64_t> remaps;
    for (CheckpointMode mode :
         {CheckpointMode::Baseline, CheckpointMode::IscC,
          CheckpointMode::CheckIn}) {
        Stack s(mode);
        s.exercise();
        redundant[mode] =
            s.ssd->ftl().stats().get("ftl.slotWrites.checkpoint") *
            s.ssd->ftl().mappingUnitBytes();
        remaps[mode] = s.ssd->ftl().stats().get("ftl.remaps");
    }
    // Redundant checkpoint bytes: Baseline >> ISC-C > Check-In.
    EXPECT_GT(redundant[CheckpointMode::Baseline],
              2 * redundant[CheckpointMode::IscC]);
    EXPECT_GT(redundant[CheckpointMode::IscC],
              redundant[CheckpointMode::CheckIn]);
    // Only the remapping configurations remap; Check-In remaps more.
    EXPECT_EQ(remaps[CheckpointMode::Baseline], 0u);
    EXPECT_GT(remaps[CheckpointMode::CheckIn],
              remaps[CheckpointMode::IscC]);
}

} // namespace
} // namespace checkin
