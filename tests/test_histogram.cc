/**
 * @file
 * Tests for the log-linear latency histogram.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/histogram.h"
#include "sim/rng.h"

namespace checkin {
namespace {

TEST(Histogram, EmptyState)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, ExactForSmallValues)
{
    // Values below kSubBuckets are bucketed exactly.
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 50; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 50u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 49u);
    EXPECT_EQ(h.quantile(1.0), 49u);
    EXPECT_EQ(h.quantile(0.02), 0u);
}

TEST(Histogram, MeanAndSumExact)
{
    LatencyHistogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, RecordWithCount)
{
    LatencyHistogram h;
    h.record(5, 100);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 500u);
}

TEST(Histogram, BoundedRelativeError)
{
    LatencyHistogram h;
    Rng r(1);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t v = 1 + r.nextBounded(100'000'000);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const std::uint64_t exact =
            values[std::size_t(q * (values.size() - 1))];
        const std::uint64_t approx = h.quantile(q);
        // Relative error bound from 64 sub-buckets: < ~3 %.
        EXPECT_NEAR(double(approx), double(exact),
                    double(exact) * 0.04 + 2.0)
            << "q=" << q;
    }
}

TEST(Histogram, QuantileMonotone)
{
    LatencyHistogram h;
    Rng r(2);
    for (int i = 0; i < 5'000; ++i)
        h.record(r.nextBounded(1'000'000));
    std::uint64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const std::uint64_t v = h.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Histogram, QuantileNeverExceedsMax)
{
    LatencyHistogram h;
    h.record(1'000'003);
    EXPECT_EQ(h.quantile(0.999), 1'000'003u);
    EXPECT_EQ(h.quantile(1.0), 1'000'003u);
}

TEST(Histogram, EmptyQuantileIsZeroAtEveryQ)
{
    LatencyHistogram h;
    for (double q : {-1.0, 0.0, 0.5, 0.999, 1.0, 2.0})
        EXPECT_EQ(h.quantile(q), 0u) << "q=" << q;
}

TEST(Histogram, QuantileEdgesAreExact)
{
    // min()/max() are tracked exactly; q <= 0 and q >= 1 must return
    // them without bucket rounding, even far above kSubBuckets where
    // buckets are coarse.
    LatencyHistogram h;
    h.record(1'048'583); // not a bucket boundary
    h.record(33'554'467);
    h.record(9'000'017);
    EXPECT_EQ(h.quantile(0.0), 1'048'583u);
    EXPECT_EQ(h.quantile(-0.5), 1'048'583u);
    EXPECT_EQ(h.quantile(1.0), 33'554'467u);
    EXPECT_EQ(h.quantile(7.0), 33'554'467u);
}

TEST(Histogram, SingleSampleIsExactAtBothEdges)
{
    LatencyHistogram h;
    h.record(777'777);
    EXPECT_EQ(h.quantile(0.0), 777'777u);
    EXPECT_EQ(h.quantile(0.5), h.quantile(0.5)); // well-defined
    EXPECT_EQ(h.quantile(1.0), 777'777u);
}

TEST(Histogram, MergeThenQuantileKeepsExactExtremes)
{
    LatencyHistogram a, b;
    a.record(1'000'003, 3);
    b.record(17, 4);
    b.record(2'000'000'011, 2);
    a.merge(b);
    EXPECT_EQ(a.quantile(0.0), 17u);
    EXPECT_EQ(a.quantile(1.0), 2'000'000'011u);
}

TEST(Histogram, MergeCombines)
{
    LatencyHistogram a, b;
    a.record(10, 5);
    b.record(1'000'000, 5);
    a.merge(b);
    EXPECT_EQ(a.count(), 10u);
    EXPECT_EQ(a.max(), 1'000'000u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_LE(a.quantile(0.4), 10u);
    EXPECT_GT(a.quantile(0.9), 900'000u);
}

TEST(Histogram, ResetClears)
{
    LatencyHistogram h;
    h.record(123, 7);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, HugeValues)
{
    LatencyHistogram h;
    const std::uint64_t big = ~std::uint64_t{0} - 3;
    h.record(big);
    EXPECT_EQ(h.max(), big);
    EXPECT_EQ(h.quantile(1.0), big);
}

} // namespace
} // namespace checkin
