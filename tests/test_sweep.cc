/**
 * @file
 * Tests of the parallel sweep runner: grid construction, worker-count
 * independence (bit-identical results and trace artifacts), job
 * resolution, and per-point failure capture.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/presets.h"
#include "harness/run_export.h"
#include "harness/sweep.h"

namespace checkin {
namespace {

ExperimentConfig
smallCfg()
{
    ExperimentConfig c = presets::small();
    c.workload.operationCount = 1'200;
    c.threads = 4;
    return c;
}

SweepGrid
twoByTwo()
{
    SweepGrid grid(smallCfg());
    std::vector<SweepGrid::Value> modes;
    for (CheckpointMode mode :
         {CheckpointMode::Baseline, CheckpointMode::CheckIn}) {
        modes.push_back({checkpointModeName(mode),
                         [mode](ExperimentConfig &c) {
                             c.engine.mode = mode;
                         }});
    }
    std::vector<SweepGrid::Value> threads;
    for (std::uint32_t t : {2u, 8u}) {
        threads.push_back({"t" + std::to_string(t),
                           [t](ExperimentConfig &c) {
                               c.threads = t;
                           }});
    }
    grid.axis(std::move(modes)).axis(std::move(threads));
    return grid;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing artifact: " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(SweepGrid, CrossesAxesRowMajorLastAxisFastest)
{
    SweepGrid grid = twoByTwo();
    EXPECT_EQ(grid.size(), 4u);
    const std::vector<SweepPoint> points = grid.points();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].label, "Baseline-t2");
    EXPECT_EQ(points[1].label, "Baseline-t8");
    EXPECT_EQ(points[2].label, "Check-In-t2");
    EXPECT_EQ(points[3].label, "Check-In-t8");
    EXPECT_EQ(points[0].config.engine.mode,
              CheckpointMode::Baseline);
    EXPECT_EQ(points[3].config.engine.mode, CheckpointMode::CheckIn);
    EXPECT_EQ(points[0].config.threads, 2u);
    EXPECT_EQ(points[3].config.threads, 8u);
}

TEST(Sweep, FourWorkersMatchSerialByteForByte)
{
    const std::vector<SweepPoint> points = twoByTwo().points();
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions parallel;
    parallel.jobs = 4;
    const std::vector<SweepOutcome> a = runSweep(points, serial);
    const std::vector<SweepOutcome> b = runSweep(points, parallel);
    ASSERT_EQ(a.size(), points.size());
    ASSERT_EQ(b.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        EXPECT_EQ(a[i].label, points[i].label);
        EXPECT_EQ(b[i].label, points[i].label);
        // The exported JSON covers every RunResult field, so equal
        // bytes mean equal results.
        EXPECT_EQ(runResultJson(a[i].result),
                  runResultJson(b[i].result))
            << "point " << points[i].label
            << " differs between 1 and 4 workers";
        EXPECT_GT(a[i].result.client.opsCompleted, 0u);
    }
}

TEST(Sweep, TraceArtifactsIdenticalAcrossWorkerCounts)
{
    // Same grid, run once serially and once on 4 workers, each into
    // its own artifact tree; the emitted trace, attribution and
    // checkpoint-timeline exports of every point must be
    // byte-identical.
    const std::string base =
        ::testing::TempDir() + "/checkin_sweep_trace";
    auto makePoints = [&base](const std::string &tag) {
        std::vector<SweepPoint> points = twoByTwo().points();
        for (std::size_t i = 0; i < points.size(); ++i) {
            points[i].config.obs.traceEnabled = true;
            points[i].config.obs.attributionEnabled = true;
            points[i].config.obs.artifactDir = base + "/" + tag;
            points[i].config.obs.runName =
                "p" + std::to_string(i);
        }
        return points;
    };
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions parallel;
    parallel.jobs = 4;
    const std::vector<SweepOutcome> a =
        runSweep(makePoints("serial"), serial);
    const std::vector<SweepOutcome> b =
        runSweep(makePoints("parallel"), parallel);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        for (const char *file : {"/trace.json", "/attribution.json",
                                 "/checkpoints.json"}) {
            const std::string name =
                "/p" + std::to_string(i) + file;
            const std::string serial_bytes =
                slurp(base + "/serial" + name);
            const std::string parallel_bytes =
                slurp(base + "/parallel" + name);
            ASSERT_FALSE(serial_bytes.empty()) << name;
            EXPECT_EQ(serial_bytes, parallel_bytes)
                << file << " of point " << i
                << " differs between 1 and 4 workers";
        }
    }
}

TEST(Sweep, CapturesPerPointFailureAndKeepsGoing)
{
    std::vector<SweepPoint> points = twoByTwo().points();
    // Zero client threads with a nonzero op target: the event queue
    // drains before the workload finishes and runExperiment throws.
    points[1].config.threads = 0;
    SweepOptions opts;
    opts.jobs = 2;
    const std::vector<SweepOutcome> out = runSweep(points, opts);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_FALSE(out[1].ok);
    EXPECT_NE(out[1].error.find("client thread"), std::string::npos)
        << out[1].error;
    EXPECT_TRUE(out[2].ok);
    EXPECT_TRUE(out[3].ok);
}

TEST(Sweep, ExplicitPerPointSeedIsPreserved)
{
    // A point that sets its own seed keeps it; only seed == 0 points
    // get index-derived seeds, so re-running a sub-grid in a longer
    // sweep cannot change its results.
    std::vector<SweepPoint> points = twoByTwo().points();
    for (SweepPoint &p : points)
        p.config.seed = 77;
    SweepOptions first;
    first.jobs = 1;
    SweepOptions second;
    second.jobs = 3;
    second.baseSeed = 999; // must not matter for explicit seeds
    const std::vector<SweepOutcome> a = runSweep(points, first);
    const std::vector<SweepOutcome> b = runSweep(points, second);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(runResultJson(a[i].result),
                  runResultJson(b[i].result));
    }
}

TEST(Sweep, ResolveJobsPrecedence)
{
    EXPECT_EQ(resolveJobs(3), 3u);
    ::setenv("CHECKIN_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0), 5u);
    EXPECT_EQ(resolveJobs(2), 2u); // explicit beats environment
    ::unsetenv("CHECKIN_JOBS");
    EXPECT_GE(resolveJobs(0), 1u);
}

TEST(Sweep, OptionsFromArgsParsesJobsForms)
{
    char prog[] = "bench";
    char flag_sep[] = "--jobs";
    char val_sep[] = "7";
    char *argv_sep[] = {prog, flag_sep, val_sep};
    EXPECT_EQ(sweepOptionsFromArgs(3, argv_sep).jobs, 7u);

    char flag_eq[] = "--jobs=3";
    char *argv_eq[] = {prog, flag_eq};
    EXPECT_EQ(sweepOptionsFromArgs(2, argv_eq).jobs, 3u);

    char flag_short[] = "-j2";
    char *argv_short[] = {prog, flag_short};
    EXPECT_EQ(sweepOptionsFromArgs(2, argv_short).jobs, 2u);

    char *argv_none[] = {prog};
    EXPECT_EQ(sweepOptionsFromArgs(1, argv_none).jobs, 0u);
}

} // namespace
} // namespace checkin
