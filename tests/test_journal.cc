/**
 * @file
 * Tests for Algorithm 2 (log size replacement + merging) and the
 * journal manager's group commit / JMT / half-switch machinery.
 */

#include <gtest/gtest.h>

#include <map>

#include "engine/journal.h"
#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

// ---------------------------------------------------------------------
// formatLogSize (pure Algorithm 2)
// ---------------------------------------------------------------------

struct FormatCase
{
    std::uint32_t valueBytes;
    std::uint32_t unitBytes;
    std::uint32_t wantChunks;
    LogType wantType;
};

class FormatAligned : public ::testing::TestWithParam<FormatCase>
{
};

TEST_P(FormatAligned, MatchesAlgorithm2)
{
    const FormatCase c = GetParam();
    const FormattedSize f =
        formatLogSize(c.valueBytes, c.unitBytes, true, 0.85);
    EXPECT_EQ(f.chunks, c.wantChunks)
        << c.valueBytes << "B @ unit " << c.unitBytes;
    EXPECT_EQ(int(f.type), int(c.wantType));
}

INSTANTIATE_TEST_SUITE_P(
    Unit512, FormatAligned,
    ::testing::Values(
        // <= unit: bucketed to unit/4 = 128 B steps.
        FormatCase{1, 512, 1, LogType::Partial},
        FormatCase{128, 512, 1, LogType::Partial},
        FormatCase{129, 512, 2, LogType::Partial},
        FormatCase{256, 512, 2, LogType::Partial},
        FormatCase{384, 512, 3, LogType::Partial},
        FormatCase{385, 512, 4, LogType::Full},
        FormatCase{512, 512, 4, LogType::Full},
        // > unit: compressed by 0.85, then unit aligned.
        // 1024 * 0.85 = 871 -> 2 units = 8 chunks.
        FormatCase{1024, 512, 8, LogType::Full},
        // 4096 * 0.85 = 3482 -> 7 units = 28 chunks.
        FormatCase{4096, 512, 28, LogType::Full},
        // 513 * 0.85 = 437 -> 1 unit.
        FormatCase{513, 512, 4, LogType::Full}));

INSTANTIATE_TEST_SUITE_P(
    Unit4096, FormatAligned,
    ::testing::Values(
        // Buckets of 1024 B = 8 chunks.
        FormatCase{128, 4096, 8, LogType::Partial},
        FormatCase{1024, 4096, 8, LogType::Partial},
        FormatCase{1025, 4096, 16, LogType::Partial},
        FormatCase{3072, 4096, 24, LogType::Partial},
        FormatCase{3073, 4096, 32, LogType::Full},
        FormatCase{4096, 4096, 32, LogType::Full}));

TEST(FormatConventional, StoresRawChunkCount)
{
    for (std::uint32_t bytes : {1u, 127u, 128u, 129u, 500u, 512u,
                                4096u}) {
        const FormattedSize f = formatLogSize(bytes, 512, false, 0.85);
        EXPECT_EQ(f.chunks, divCeil(bytes, 128));
        EXPECT_EQ(int(f.type), int(LogType::Raw));
    }
}

TEST(FormatAlignedProperty, FullRecordsAreUnitMultiples)
{
    for (std::uint32_t unit : {512u, 1024u, 2048u, 4096u}) {
        const std::uint32_t uc = unit / 128;
        for (std::uint32_t bytes = 1; bytes <= 4096; bytes += 37) {
            const FormattedSize f =
                formatLogSize(bytes, unit, true, 0.85);
            EXPECT_GE(f.chunks * 128u, 1u);
            if (f.type == LogType::Full)
                EXPECT_EQ(f.chunks % uc, 0u);
            else
                EXPECT_LT(f.chunks, uc);
            // Never smaller than the (compressed) payload.
            if (bytes <= unit)
                EXPECT_GE(f.chunks * 128u, bytes);
        }
    }
}

// ---------------------------------------------------------------------
// JournalManager behaviour through a real engine stack
// ---------------------------------------------------------------------

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

struct Stack
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;

    explicit Stack(CheckpointMode mode, std::uint32_t unit_bytes)
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes = unit_bytes;
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        EngineConfig ecfg;
        ecfg.mode = mode;
        ecfg.recordCount = 500;
        ecfg.journalHalfBytes = 2 * kMiB;
        ecfg.checkpointJournalBytes = 1536 * kKiB;
        ecfg.checkpointInterval = 0; // manual checkpoints only
        engine = std::make_unique<KvEngine>(ctx, *ssd, ecfg);
        engine->load([](std::uint64_t) { return 256u; });
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }
};

TEST(JournalManager, CommitsUpdateJmtAndKeymap)
{
    Stack s(CheckpointMode::CheckIn, 512);
    int committed = 0;
    for (int i = 0; i < 10; ++i) {
        s.engine->update(std::uint64_t(i), 256,
                         [&](const QueryResult &r) {
                             EXPECT_TRUE(r.found);
                             ++committed;
                         });
    }
    s.eq.run();
    EXPECT_EQ(committed, 10);
    EXPECT_EQ(s.engine->journal().jmtSize(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(s.engine->keymap()[i].inJournal);
        EXPECT_EQ(s.engine->keymap()[i].version, 2u);
    }
    s.engine->verifyAllKeys();
}

TEST(JournalManager, SameKeyKeepsLatestVersionInJmt)
{
    Stack s(CheckpointMode::CheckIn, 512);
    for (int i = 0; i < 5; ++i)
        s.engine->update(7, 200 + i, [](const QueryResult &) {});
    s.eq.run();
    EXPECT_EQ(s.engine->journal().jmtSize(), 1u);
    EXPECT_EQ(s.engine->keymap()[7].version, 6u);
    s.engine->verifyAllKeys();
}

TEST(JournalManager, AlignedModeMergesPartials)
{
    Stack s(CheckpointMode::CheckIn, 512);
    // Many 128 B updates in one burst: they arrive while the first
    // flush is in flight and get group-committed + merged.
    for (int i = 0; i < 64; ++i)
        s.engine->update(std::uint64_t(i), 128,
                         [](const QueryResult &) {});
    s.eq.run();
    EXPECT_GT(s.engine->stats().get("engine.mergedUnits"), 0u);
    s.engine->verifyAllKeys();
}

TEST(JournalManager, ConventionalModePacksChunks)
{
    Stack s(CheckpointMode::Baseline, 4096);
    for (int i = 0; i < 16; ++i)
        s.engine->update(std::uint64_t(i), 384,
                         [](const QueryResult &) {});
    s.eq.run();
    // 16 records x 3 chunks, chunk-packed: exactly 48 chunks stored.
    EXPECT_EQ(s.engine->stats().get("engine.journalChunksStored"),
              48u);
    EXPECT_EQ(s.engine->stats().get("engine.mergedUnits"), 0u);
    s.engine->verifyAllKeys();
}

TEST(JournalManager, AlignedStoresAtLeastPayload)
{
    Stack s(CheckpointMode::CheckIn, 512);
    for (int i = 0; i < 32; ++i)
        s.engine->update(std::uint64_t(i), 300,
                         [](const QueryResult &) {});
    s.eq.run();
    const std::uint64_t stored =
        s.engine->stats().get("engine.journalChunksStored") * 128;
    const std::uint64_t payload =
        s.engine->stats().get("engine.journalPayloadBytes");
    EXPECT_GE(stored, payload);
    // 300 B buckets to 384 B: overhead 28 %.
    EXPECT_NEAR(double(stored) / double(payload), 384.0 / 300.0,
                0.01);
}

TEST(JournalManager, CheckpointSwitchesHalvesAndFreesLogs)
{
    Stack s(CheckpointMode::CheckIn, 512);
    for (int i = 0; i < 20; ++i)
        s.engine->update(std::uint64_t(i), 512,
                         [](const QueryResult &) {});
    s.eq.run();
    EXPECT_EQ(s.engine->journal().activeHalf(), 0);
    const std::uint64_t bytes_before =
        s.engine->journal().activeJournalBytes();
    EXPECT_GT(bytes_before, 0u);
    s.engine->requestCheckpoint();
    s.eq.run();
    EXPECT_FALSE(s.engine->checkpointInProgress());
    EXPECT_EQ(s.engine->journal().activeHalf(), 1);
    EXPECT_EQ(s.engine->journal().jmtSize(), 0u);
    EXPECT_EQ(s.engine->journal().activeJournalBytes(), 0u);
    // Keys now read from the data area.
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(s.engine->keymap()[i].inJournal);
    s.engine->verifyAllKeys();
}

TEST(JournalManager, UpdatesDuringCheckpointLandInNewHalf)
{
    Stack s(CheckpointMode::Baseline, 4096);
    for (int i = 0; i < 20; ++i)
        s.engine->update(std::uint64_t(i), 512,
                         [](const QueryResult &) {});
    s.eq.run();
    s.engine->requestCheckpoint();
    // Issue more updates while the checkpoint runs.
    for (int i = 0; i < 10; ++i)
        s.engine->update(std::uint64_t(100 + i), 512,
                         [](const QueryResult &) {});
    s.eq.run();
    EXPECT_FALSE(s.engine->checkpointInProgress());
    // The new updates live in the new half's JMT.
    EXPECT_EQ(s.engine->journal().jmtSize(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(s.engine->keymap()[100 + i].inJournal);
    s.engine->verifyAllKeys();
}

TEST(JournalManager, SpacePressureTriggersCheckpointAndRecovers)
{
    Stack s(CheckpointMode::CheckIn, 512);
    // Write far more than one half can hold; the engine must cycle
    // checkpoints to keep the journal usable.
    int committed = 0;
    const int total = 12'000;
    for (int i = 0; i < total; ++i) {
        s.engine->update(std::uint64_t(i % 500), 512,
                         [&](const QueryResult &) { ++committed; });
    }
    s.eq.run();
    EXPECT_EQ(committed, total);
    EXPECT_GT(s.engine->checkpointDurations().size(), 0u);
    s.engine->verifyAllKeys();
}

} // namespace
} // namespace checkin
