/**
 * @file
 * Backend-agnostic StorageEngine conformance suite.
 *
 * Every test runs against both backends (`checkin`, `lsm`) through
 * the abstract interface only, so a new backend inherits the whole
 * contract for free: read-your-writes, erase/scan visibility,
 * updateBatch atomicity across a sudden power cut, recover()
 * idempotence, and a small crash-oracle campaign per backend.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "engine/storage_engine.h"
#include "harness/crash_oracle.h"
#include "harness/presets.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

EngineConfig
engineCfg(EngineBackend backend)
{
    EngineConfig c;
    c.backend = backend;
    c.recordCount = 200;
    c.maxValueBytes = 2048;
    c.journalHalfBytes = kMiB;
    c.checkpointJournalBytes = 256 * kKiB;
    c.checkpointInterval = 0;
    return c;
}

/**
 * Device + engine built through the backend-independent factory;
 * crash() models a full power cut (host RAM gone, device SPOR).
 */
struct ConformanceRig
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<StorageEngine> engine;
    EngineBackend backend;
    /** Last version whose commit callback fired, per key. */
    std::map<std::uint64_t, std::uint32_t> committed;

    explicit ConformanceRig(EngineBackend b) : backend(b)
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes = 512;
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        engine = presets::makeEngine(ctx, *ssd, engineCfg(b));
        engine->load([](std::uint64_t) { return 256u; });
        for (std::uint64_t k = 0; k < 200; ++k)
            committed[k] = 1;
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }

    void
    issueUpdates(int n, Rng &rng)
    {
        for (int i = 0; i < n; ++i) {
            const std::uint64_t key = rng.nextBounded(200);
            const auto bytes =
                std::uint32_t(128 * (1 + rng.nextBounded(4)));
            engine->update(key, bytes,
                           [this, key](const QueryResult &) {
                               auto &v = committed[key];
                               const std::uint32_t got =
                                   engine->committedVersion(key);
                               v = std::max(v, got);
                           });
        }
    }

    /** Power cut: host work and engine RAM die, the device SPORs. */
    void
    crash()
    {
        eq.clear();
        engine.reset();
        ssd->suddenPowerLoss();
        ssd->ftl().checkInvariants();
    }

    /** Build a fresh engine over the surviving device and recover. */
    RecoveryInfo
    recover()
    {
        engine = presets::makeEngine(ctx, *ssd, engineCfg(backend));
        return engine->recover();
    }

    /** No committed update may be lost; content must verify. */
    void
    checkDurability() const
    {
        for (const auto &[key, version] : committed) {
            EXPECT_GE(engine->committedVersion(key), version)
                << "lost committed update for key " << key;
        }
        engine->verifyAllKeys();
    }
};

class EngineConformance
    : public ::testing::TestWithParam<EngineBackend>
{
};

// ---------------------------------------------------------------------
// Read-your-writes
// ---------------------------------------------------------------------

TEST_P(EngineConformance, GetServesLatestAcknowledgedUpdate)
{
    ConformanceRig rig(GetParam());
    rig.engine->update(7, 1024, [](const QueryResult &) {});
    rig.eq.run();
    EXPECT_EQ(rig.engine->committedVersion(7), 2u);

    bool found = false;
    rig.engine->get(
        7, [&found](const QueryResult &r) { found = r.found; });
    rig.eq.run();
    EXPECT_TRUE(found);
    EXPECT_EQ(rig.engine->verifyAllKeys(), 200u);
}

// ---------------------------------------------------------------------
// Erase + scan visibility
// ---------------------------------------------------------------------

TEST_P(EngineConformance, EraseHidesKeyFromGetAndScan)
{
    ConformanceRig rig(GetParam());
    rig.engine->erase(10, [](const QueryResult &) {});
    rig.eq.run();

    bool found = true;
    rig.engine->get(
        10, [&found](const QueryResult &r) { found = r.found; });
    rig.eq.run();
    EXPECT_FALSE(found) << "deleted key still served";

    // Keys 8..12: only the erased key 10 must be skipped.
    std::uint32_t scanned = 0;
    rig.engine->scan(8, 5, [&scanned](const QueryResult &r) {
        scanned = r.scanned;
    });
    rig.eq.run();
    EXPECT_EQ(scanned, 4u);

    // Re-inserting resurrects the key at a newer version.
    rig.engine->update(10, 512, [](const QueryResult &) {});
    rig.eq.run();
    found = false;
    rig.engine->get(
        10, [&found](const QueryResult &r) { found = r.found; });
    rig.eq.run();
    EXPECT_TRUE(found);
    rig.engine->verifyAllKeys();
}

// ---------------------------------------------------------------------
// updateBatch atomicity across a power cut
// ---------------------------------------------------------------------

TEST_P(EngineConformance, BatchAtomicAcrossPowerLossSweep)
{
    // Cut power at increasing drain depths around one three-key
    // transaction (two updates + one delete). After recovery the
    // batch must be all-in or all-out, and all-in whenever the ack
    // fired before the cut.
    for (int depth = 0; depth < 14; ++depth) {
        ConformanceRig rig(GetParam());
        std::vector<StorageEngine::BatchOp> ops{
            {20, 1024}, {21, 512}, {22, 0}};
        bool acked = false;
        rig.engine->updateBatch(
            ops, [&acked](const QueryResult &) { acked = true; });
        for (int i = 0; i < depth * 5 && rig.eq.step(); ++i) {
        }
        rig.crash();
        rig.recover();
        const bool a20 = rig.engine->committedVersion(20) > 1;
        const bool a21 = rig.engine->committedVersion(21) > 1;
        const bool a22 = rig.engine->committedVersion(22) > 1;
        EXPECT_EQ(a20, a21) << "torn batch at depth " << depth;
        EXPECT_EQ(a20, a22) << "torn batch at depth " << depth;
        if (acked) {
            EXPECT_TRUE(a20)
                << "acked batch lost at depth " << depth;
        }
        rig.engine->verifyAllKeys();
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

TEST_P(EngineConformance, PowerLossLosesNoCommittedUpdate)
{
    ConformanceRig rig(GetParam());
    Rng rng(21);
    rig.issueUpdates(300, rng);
    // Partial drain: some committed, some in flight.
    for (int i = 0; i < 400 && rig.eq.step(); ++i) {
    }
    rig.crash();
    rig.recover();
    rig.checkDurability();

    // The recovered store keeps serving and flushing.
    rig.issueUpdates(120, rng);
    rig.eq.run();
    rig.engine->requestCheckpoint();
    rig.eq.run();
    rig.checkDurability();
    EXPECT_EQ(rig.engine->verifyAllKeys(), 200u);
}

TEST_P(EngineConformance, RecoverIsIdempotentOnCleanStore)
{
    ConformanceRig rig(GetParam());
    Rng rng(22);
    rig.issueUpdates(200, rng);
    rig.eq.run();
    rig.crash();
    rig.recover();
    rig.checkDurability();
    std::map<std::uint64_t, std::uint32_t> after_first;
    for (std::uint64_t k = 0; k < 200; ++k)
        after_first[k] = rig.engine->committedVersion(k);

    // recover() leaves a clean store: a second crash + recovery has
    // nothing to replay and changes no committed version.
    rig.crash();
    const RecoveryInfo second = rig.recover();
    EXPECT_EQ(second.replayedLogs, 0u);
    for (std::uint64_t k = 0; k < 200; ++k)
        EXPECT_EQ(rig.engine->committedVersion(k), after_first[k])
            << "second recovery changed key " << k;
    rig.checkDurability();
}

// ---------------------------------------------------------------------
// Crash-oracle campaign per backend
// ---------------------------------------------------------------------

TEST_P(EngineConformance, CrashOracleFindsNoLostOrTornWrites)
{
    OracleConfig oc;
    oc.base = presets::small();
    oc.base.engine.backend = GetParam();
    oc.base.engine.recordCount = 200;
    oc.base.engine.journalHalfBytes = 2 * kMiB;
    oc.base.engine.checkpointJournalBytes = kMiB;
    oc.base.nand.blocksPerPlane = 32;
    oc.base.nand.pagesPerBlock = 32;
    oc.seed = 11;
    oc.crashPoints = 6;
    oc.ops = 240;
    const OracleReport r = runCrashOracle(oc);
    EXPECT_TRUE(r.ok()) << "lost=" << r.lostWrites
                        << " torn=" << r.tornRecords;
    EXPECT_EQ(r.crashesRun, oc.crashPoints);
    EXPECT_GT(r.ackedWrites, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineConformance,
    ::testing::Values(EngineBackend::CheckIn, EngineBackend::Lsm),
    [](const ::testing::TestParamInfo<EngineBackend> &info) {
        return info.param == EngineBackend::CheckIn ? "checkin"
                                                    : "lsm";
    });

} // namespace
} // namespace checkin
