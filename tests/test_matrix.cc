/**
 * @file
 * Cross-configuration sweep tests: (mapping unit x mode) content
 * convergence, NAND geometry variations end-to-end, and host-cache
 * interaction with checkpointing.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.h"
#include "harness/presets.h"

namespace checkin {
namespace {

ExperimentConfig
sweepConfig()
{
    ExperimentConfig c = presets::small();
    c.engine.recordCount = 1500;
    c.workload = WorkloadSpec::a();
    c.workload.operationCount = 4'000;
    c.threads = 16;
    c.engine.checkpointInterval = 10 * kMsec;
    c.engine.checkpointJournalBytes = 512 * kKiB;
    c.engine.journalHalfBytes = 4 * kMiB;
    return c;
}

using UnitMode = std::tuple<std::uint32_t, CheckpointMode>;

class UnitModeMatrix : public ::testing::TestWithParam<UnitMode>
{
};

TEST_P(UnitModeMatrix, RunsAndVerifiesAtEveryMappingUnit)
{
    const auto [unit, mode] = GetParam();
    ExperimentConfig c = sweepConfig();
    c.engine.mode = mode;
    c.mappingUnitOverride = unit;
    const RunResult r = runExperiment(c);
    EXPECT_EQ(r.client.opsCompleted, 4'000u);
    EXPECT_GT(r.checkpoints, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnitModeMatrix,
    ::testing::Combine(::testing::Values(512u, 1024u, 2048u, 4096u),
                       ::testing::Values(CheckpointMode::Baseline,
                                         CheckpointMode::IscC,
                                         CheckpointMode::CheckIn)),
    [](const ::testing::TestParamInfo<UnitMode> &info) {
        std::string name = "u" +
                           std::to_string(std::get<0>(info.param));
        switch (std::get<1>(info.param)) {
          case CheckpointMode::Baseline: name += "_Baseline"; break;
          case CheckpointMode::IscC: name += "_IscC"; break;
          case CheckpointMode::CheckIn: name += "_CheckIn"; break;
          default: name += "_Other"; break;
        }
        return name;
    });

struct Geometry
{
    std::uint32_t channels;
    std::uint32_t dies;
    std::uint32_t planes;
    const char *name;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(GeometrySweep, EndToEndOnDifferentArrays)
{
    const Geometry g = GetParam();
    ExperimentConfig c = sweepConfig();
    c.engine.mode = CheckpointMode::CheckIn;
    c.nand.channels = g.channels;
    c.nand.diesPerChannel = g.dies;
    c.nand.planesPerDie = g.planes;
    // Keep capacity roughly constant across geometries.
    c.nand.blocksPerPlane =
        512 / (g.channels * g.dies * g.planes);
    const RunResult r = runExperiment(c);
    EXPECT_EQ(r.client.opsCompleted, 4'000u);
    EXPECT_GT(r.nandPrograms, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Arrays, GeometrySweep,
    ::testing::Values(Geometry{1, 1, 1, "single"},
                      Geometry{2, 1, 1, "dualchan"},
                      Geometry{2, 2, 2, "planes"},
                      Geometry{8, 4, 1, "wide"},
                      Geometry{4, 2, 1, "default"}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return std::string(info.param.name);
    });

TEST(GeometryScaling, MoreDiesMeanMoreWriteBandwidth)
{
    // Write-heavy run on a 1-die vs 8-die array of equal capacity:
    // striping must scale throughput substantially.
    double ops_per_sec[2];
    int i = 0;
    for (std::uint32_t channels : {1u, 4u}) {
        ExperimentConfig c = sweepConfig();
        c.engine.mode = CheckpointMode::CheckIn;
        c.workload = WorkloadSpec::wo();
        c.workload.operationCount = 8'000;
        c.threads = 32;
        c.nand.channels = channels;
        c.nand.diesPerChannel = channels == 1 ? 1 : 2;
        c.nand.blocksPerPlane = 512 / (channels *
                                       c.nand.diesPerChannel);
        // Avoid cache effects dominating: writes only.
        ops_per_sec[i++] = runExperiment(c).throughputOps;
    }
    EXPECT_GT(ops_per_sec[1], ops_per_sec[0] * 2.0);
}

TEST(HostCacheMatrix, CacheSpeedsUpReadHeavyWorkload)
{
    double with_cache = 0.0;
    double without_cache = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
        ExperimentConfig c = sweepConfig();
        c.engine.mode = CheckpointMode::CheckIn;
        c.workload = WorkloadSpec::b(); // 95 % reads, zipfian
        c.workload.operationCount = 6'000;
        c.ftl.dataCacheBytes = 0; // isolate the host cache
        c.engine.hostCacheBytes = pass == 0 ? 0 : 2 * kMiB;
        const RunResult r = runExperiment(c);
        (pass == 0 ? without_cache : with_cache) = r.throughputOps;
    }
    EXPECT_GT(with_cache, without_cache * 1.5);
}

} // namespace
} // namespace checkin
