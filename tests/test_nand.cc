/**
 * @file
 * Tests for the NAND flash functional + timing model.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "nand/nand_flash.h"

namespace checkin {
namespace {

NandConfig
tinyConfig()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.planesPerDie = 1;
    c.blocksPerPlane = 4;
    c.pagesPerBlock = 8;
    c.pageBytes = 4096;
    return c;
}

PageContent
contentWith(std::uint64_t token)
{
    PageContent c;
    c.slotTokens = {token};
    c.oob = {OobEntry{token, 1}};
    return c;
}

TEST(NandLayout, FlattenUnflattenRoundTrip)
{
    const NandConfig cfg = tinyConfig();
    NandLayout layout(cfg);
    for (Ppn p = 0; p < cfg.totalPages(); ++p) {
        const PhysAddr a = layout.unflatten(p);
        EXPECT_EQ(layout.flatten(a), p);
        EXPECT_LT(a.channel, cfg.channels);
        EXPECT_LT(a.die, cfg.diesPerChannel);
        EXPECT_LT(a.block, cfg.blocksPerPlane);
        EXPECT_LT(a.page, cfg.pagesPerBlock);
    }
}

TEST(NandLayout, DieAndChannelIndexConsistent)
{
    const NandConfig cfg = tinyConfig();
    NandLayout layout(cfg);
    for (Ppn p = 0; p < cfg.totalPages(); ++p) {
        const PhysAddr a = layout.unflatten(p);
        const std::uint32_t die = layout.dieIndexOf(p);
        EXPECT_EQ(die, a.channel * cfg.diesPerChannel + a.die);
        EXPECT_EQ(layout.channelIndexOf(p), a.channel);
    }
}

TEST(NandConfigTest, GeometryMath)
{
    const NandConfig cfg = tinyConfig();
    EXPECT_EQ(cfg.dieCount(), 4u);
    EXPECT_EQ(cfg.totalBlocks(), 16u);
    EXPECT_EQ(cfg.totalPages(), 128u);
    EXPECT_EQ(cfg.totalBytes(), 128u * 4096u);
}

TEST(NandFlash, ProgramThenReadRoundTrips)
{
    NandFlash nand(tinyConfig());
    nand.program(0, contentWith(0xabc), 0);
    EXPECT_TRUE(nand.isProgrammed(0));
    EXPECT_EQ(nand.peek(0).slotTokens[0], 0xabcu);
}

TEST(NandFlash, InOrderProgrammingEnforced)
{
    NandFlash nand(tinyConfig());
    nand.program(0, contentWith(1), 0);
    // Page 2 before page 1 violates the in-order rule.
    EXPECT_THROW(nand.program(2, contentWith(2), 0),
                 std::logic_error);
    nand.program(1, contentWith(2), 0);
    EXPECT_EQ(nand.nextProgramPage(0), 2u);
}

TEST(NandFlash, RewriteWithoutEraseRejected)
{
    NandFlash nand(tinyConfig());
    nand.program(0, contentWith(1), 0);
    EXPECT_THROW(nand.program(0, contentWith(2), 0),
                 std::logic_error);
}

TEST(NandFlash, EraseResetsBlock)
{
    NandFlash nand(tinyConfig());
    const NandConfig cfg = tinyConfig();
    for (std::uint32_t p = 0; p < cfg.pagesPerBlock; ++p)
        nand.program(p, contentWith(p), 0);
    EXPECT_EQ(nand.nextProgramPage(0), cfg.pagesPerBlock);
    nand.eraseBlock(0, 0);
    EXPECT_EQ(nand.nextProgramPage(0), 0u);
    EXPECT_FALSE(nand.isProgrammed(0));
    EXPECT_EQ(nand.eraseCount(0), 1u);
    // Re-programming after erase works.
    nand.program(0, contentWith(7), 0);
    EXPECT_EQ(nand.peek(0).slotTokens[0], 7u);
}

TEST(NandFlash, TimingReadIsSenseThenTransfer)
{
    const NandConfig cfg = tinyConfig();
    NandFlash nand(cfg);
    nand.program(0, contentWith(1), 0);
    const Tick idle = nand.allIdleAt();
    const Tick done = nand.read(0, idle).tick;
    EXPECT_EQ(done, idle + cfg.readLatency + cfg.pageTransferTime());
}

TEST(NandFlash, TimingSameDieSerializes)
{
    const NandConfig cfg = tinyConfig();
    NandFlash nand(cfg);
    nand.program(0, contentWith(1), 0);
    nand.program(1, contentWith(2), 0);
    const Tick idle = nand.allIdleAt();
    const Tick r1 = nand.read(0, idle).tick;
    const Tick r2 = nand.read(1, idle).tick;
    // Same die: second read waits for the first sense to finish.
    EXPECT_GE(r2, r1);
    EXPECT_GE(r2, idle + 2 * cfg.readLatency);
}

TEST(NandFlash, TimingDifferentDiesOverlap)
{
    const NandConfig cfg = tinyConfig();
    NandFlash nand(cfg);
    // Block 0 is die 0; the last block lives on the last die.
    const Ppn other_die_page =
        (cfg.totalBlocks() - 1) * cfg.pagesPerBlock;
    nand.program(0, contentWith(1), 0);
    nand.program(other_die_page, contentWith(2), 0);
    const Tick idle = nand.allIdleAt();
    const Tick r1 = nand.read(0, idle).tick;
    const Tick r2 = nand.read(other_die_page, idle).tick;
    // Different die and channel: fully parallel.
    EXPECT_EQ(r1, r2);
}

TEST(NandFlash, StatsCount)
{
    NandFlash nand(tinyConfig());
    nand.program(0, contentWith(1), 0);
    nand.read(0, 0);
    nand.read(0, 0);
    const StatRegistry &s = nand.stats();
    EXPECT_EQ(s.get("nand.programs"), 1u);
    EXPECT_EQ(s.get("nand.reads"), 2u);
    EXPECT_EQ(s.get("nand.erases"), 0u);
}

TEST(NandFlash, EraseCountTracking)
{
    NandFlash nand(tinyConfig());
    for (int i = 0; i < 3; ++i)
        nand.eraseBlock(1, 0);
    nand.eraseBlock(2, 0);
    EXPECT_EQ(nand.eraseCount(1), 3u);
    EXPECT_EQ(nand.maxEraseCount(), 3u);
    EXPECT_EQ(nand.totalEraseCount(), 4u);
}

TEST(NandFlash, OobPersistsThroughProgram)
{
    NandFlash nand(tinyConfig());
    PageContent c;
    c.slotTokens = {11, 22};
    c.oob = {OobEntry{100, 5}, OobEntry{200, 6}};
    nand.program(0, c, 0);
    const PageContent &read_back = nand.peek(0);
    ASSERT_EQ(read_back.oob.size(), 2u);
    EXPECT_EQ(read_back.oob[0].lpn, 100u);
    EXPECT_EQ(read_back.oob[1].version, 6u);
}

} // namespace
} // namespace checkin
