/**
 * @file
 * Tests for the SSD front end: command processing, timing, write
 * backpressure, vendor CoW/checkpoint commands, and the ISCE.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 16;
    return c;
}

SectorData
sector(std::uint64_t base)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = base * 10 + c + 1;
    return d;
}

std::vector<SectorData>
sectors(std::uint64_t base, std::uint32_t n)
{
    std::vector<SectorData> v;
    for (std::uint32_t i = 0; i < n; ++i)
        v.push_back(sector(base + i));
    return v;
}

class SsdTest : public ::testing::Test
{
  protected:
    SsdTest()
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes = 512;
        ssd_ = std::make_unique<Ssd>(ctx_, smallNand(), ftl_cfg,
                                     SsdConfig{});
    }

    SimContext ctx_;
    EventQueue &eq_ = ctx_.events();
    std::unique_ptr<Ssd> ssd_;
};

TEST_F(SsdTest, WriteThenReadCompletesViaEventQueue)
{
    bool write_done = false;
    ssd_->submit(Command::write(0, sectors(1, 8), IoCause::Query),
                 [&](const CmdResult &) { write_done = true; });
    eq_.run();
    ASSERT_TRUE(write_done);

    bool read_done = false;
    Tick read_tick = 0;
    ssd_->submit(Command::read(0, 8),
                 [&](const CmdResult &r) {
                     read_done = true;
                     read_tick = r.require();
                 });
    eq_.run();
    ASSERT_TRUE(read_done);
    EXPECT_GT(read_tick, 0u);

    std::vector<SectorData> out(8);
    ssd_->peek(0, 8, out.data());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], sector(1 + i));
}

TEST_F(SsdTest, CompletionsAreOrderedPerResource)
{
    std::vector<int> order;
    ssd_->submit(Command::write(0, sectors(1, 4), IoCause::Query),
                 [&](const CmdResult &) { order.push_back(1); });
    ssd_->submit(Command::write(8, sectors(2, 4), IoCause::Query),
                 [&](const CmdResult &) { order.push_back(2); });
    eq_.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(SsdTest, TrimDiscardsData)
{
    ssd_->submit(Command::write(0, sectors(5, 4), IoCause::Query),
                 [](const CmdResult &) {});
    ssd_->submit(Command::trim(0, 4), [](const CmdResult &) {});
    eq_.run();
    std::vector<SectorData> out(4);
    ssd_->peek(0, 4, out.data());
    for (const SectorData &d : out)
        EXPECT_EQ(d, SectorData{});
}

TEST_F(SsdTest, CowSingleCopiesRecord)
{
    ssd_->submit(Command::write(0, sectors(3, 2), IoCause::Journal),
                 [](const CmdResult &) {});
    // Two full sectors.
    ssd_->submit(Command::cowSingle(CowPair::make(0, 0, 100, 8)),
                 [](const CmdResult &) {});
    eq_.run();
    std::vector<SectorData> out(2);
    ssd_->peek(100, 2, out.data());
    EXPECT_EQ(out[0], sector(3));
    EXPECT_EQ(out[1], sector(4));
    // Copy-only checkpoint: no remaps.
    EXPECT_EQ(ssd_->ftl().stats().get("ftl.remaps"), 0u);
    EXPECT_GT(ssd_->ftl().stats().get("ftl.slotWrites.checkpoint"),
              0u);
}

TEST_F(SsdTest, CowChunkShiftExtractsSubSectorRecord)
{
    // Record of 2 chunks starting at chunk 1 of sector 0.
    auto payload = sectors(9, 1);
    ssd_->submit(Command::write(0, {payload[0]}, IoCause::Journal),
                 [](const CmdResult &) {});
    ssd_->submit(Command::cowSingle(CowPair::make(0, 1, 100, 2)),
                 [](const CmdResult &) {});
    eq_.run();
    std::vector<SectorData> out(1);
    ssd_->peek(100, 1, out.data());
    // Chunks 1..2 of the source land at chunks 0..1 of the target.
    EXPECT_EQ(out[0].chunks[0], payload[0].chunks[1]);
    EXPECT_EQ(out[0].chunks[1], payload[0].chunks[2]);
    EXPECT_EQ(out[0].chunks[2], 0u);
}

TEST_F(SsdTest, CheckpointRemapUsesMappingNotCopies)
{
    ssd_->submit(Command::write(0, sectors(4, 1), IoCause::Journal),
                 [](const CmdResult &) {});
    eq_.run();
    const std::uint64_t writes_before =
        ssd_->ftl().stats().get("ftl.slotWrites");
    // Exactly one 512 B unit.
    ssd_->submit(
        Command::checkpointRemap({CowPair::make(0, 0, 100, 4)}),
        [](const CmdResult &) {});
    eq_.run();
    EXPECT_EQ(ssd_->ftl().stats().get("ftl.remaps"), 1u);
    EXPECT_EQ(ssd_->ftl().stats().get("ftl.slotWrites"),
              writes_before);
    std::vector<SectorData> out(1);
    ssd_->peek(100, 1, out.data());
    EXPECT_EQ(out[0], sector(4));
}

TEST_F(SsdTest, CheckpointRemapFallsBackToCopyWhenUnaligned)
{
    ssd_->submit(Command::write(0, sectors(4, 2), IoCause::Journal),
                 [](const CmdResult &) {});
    eq_.run();
    // Sub-sector start: cannot remap.
    ssd_->submit(
        Command::checkpointRemap({CowPair::make(0, 2, 100, 4)}),
        [](const CmdResult &) {});
    eq_.run();
    EXPECT_EQ(ssd_->ftl().stats().get("ftl.remaps"), 0u);
    EXPECT_GT(ssd_->ftl().stats().get("ftl.slotWrites.checkpoint"),
              0u);
}

TEST_F(SsdTest, ForceCopyOverridesRemapEligibility)
{
    ssd_->submit(Command::write(0, sectors(4, 1), IoCause::Journal),
                 [](const CmdResult &) {});
    eq_.run();
    // forceCopy is the merged-record flag.
    ssd_->submit(Command::checkpointRemap({CowPair::make(
                     0, 0, 100, 4, /*version=*/0,
                     /*force_copy=*/true)}),
                 [](const CmdResult &) {});
    eq_.run();
    EXPECT_EQ(ssd_->ftl().stats().get("ftl.remaps"), 0u);
}

TEST_F(SsdTest, DeleteLogsTrimsAndCountsDeallocation)
{
    ssd_->submit(Command::write(0, sectors(1, 8), IoCause::Journal),
                 [](const CmdResult &) {});
    ssd_->submit(Command::deleteLogs(0, 8),
                 [](const CmdResult &) {});
    eq_.run();
    std::vector<SectorData> out(8);
    ssd_->peek(0, 8, out.data());
    for (const SectorData &d : out)
        EXPECT_EQ(d, SectorData{});
    EXPECT_GE(ssd_->stats().get("isce.logDeletions"), 1u);
}

TEST_F(SsdTest, ReadLatencyExceedsFlashRead)
{
    // Disable the DRAM data cache so the read must touch flash.
    FtlConfig ftl_cfg;
    ftl_cfg.dataCacheBytes = 0;
    SimContext ctx;
    EventQueue &eq = ctx.events();
    Ssd ssd(ctx, smallNand(), ftl_cfg, SsdConfig{});
    ssd.submit(Command::write(0, sectors(1, 1), IoCause::Query),
               [](const CmdResult &) {});
    eq.run();
    // Force the open page out so the read touches flash.
    ssd.ftl().flushOpenPages(eq.now());
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();
    const Tick start = eq.now();
    Tick done = 0;
    ssd.submit(Command::read(0, 1), [&](const CmdResult &r) { done = r.require(); });
    eq.run();
    EXPECT_GE(done - start, smallNand().readLatency);
}

TEST_F(SsdTest, DataCacheServesRecentWrites)
{
    ssd_->submit(Command::write(0, sectors(1, 8), IoCause::Query),
                 [](const CmdResult &) {});
    eq_.run();
    ssd_->ftl().flushOpenPages(eq_.now());
    const std::uint64_t flash_reads =
        ssd_->nand().stats().get("nand.reads");
    ssd_->submit(Command::read(0, 8), [](const CmdResult &) {});
    eq_.run();
    // Served from the device DRAM cache: no flash read happened.
    EXPECT_EQ(ssd_->nand().stats().get("nand.reads"), flash_reads);
    EXPECT_GT(ssd_->ftl().stats().get("ftl.cacheHits"), 0u);
}

TEST_F(SsdTest, WriteBackpressureKicksInUnderBurst)
{
    // Saturate far beyond the write buffer: many full-page writes.
    SsdConfig cfg;
    cfg.writeBufferPages = 4;
    FtlConfig ftl_cfg;
    SimContext ctx;
    EventQueue &eq = ctx.events();
    Ssd ssd(ctx, smallNand(), ftl_cfg, cfg);
    Tick last = 0;
    for (int i = 0; i < 64; ++i) {
        ssd.submit(Command::write(Lba(i) * 8, sectors(i, 8),
                                  IoCause::Query),
                   [&](const CmdResult &r) {
                       last = std::max(last, r.require());
                   });
    }
    eq.run();
    // With only 4 buffer pages, the later acks must wait for program
    // drains: total time approaches the flash program rate.
    EXPECT_GT(ssd.stats().get("ssd.writeStalls"), 0u);
    EXPECT_GT(last, smallNand().programLatency);
}

TEST_F(SsdTest, CommandStatsTracked)
{
    ssd_->submit(Command::read(0, 1), [](const CmdResult &) {});
    ssd_->submit(Command::write(0, sectors(1, 1), IoCause::Query),
                 [](const CmdResult &) {});
    ssd_->submit(Command::trim(0, 1), [](const CmdResult &) {});
    eq_.run();
    EXPECT_EQ(ssd_->stats().get("ssd.cmd.read"), 1u);
    EXPECT_EQ(ssd_->stats().get("ssd.cmd.write"), 1u);
    EXPECT_EQ(ssd_->stats().get("ssd.cmd.trim"), 1u);
}

} // namespace
} // namespace checkin
