/**
 * @file
 * Tests for the on-disk layout computation.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/layout.h"

namespace checkin {
namespace {

EngineConfig
cfgFor(std::uint64_t records, std::uint64_t half_bytes)
{
    EngineConfig c;
    c.recordCount = records;
    c.maxValueBytes = 4096;
    c.journalHalfBytes = half_bytes;
    return c;
}

TEST(Layout, AreasAreDisjointAndOrdered)
{
    const DiskLayout l =
        DiskLayout::compute(cfgFor(1000, kMiB), 1 << 20, 8);
    EXPECT_EQ(l.catalogStart, 0u);
    EXPECT_EQ(l.journalStart[0], l.catalogStart + l.catalogSectors);
    EXPECT_EQ(l.journalStart[1],
              l.journalStart[0] + l.journalSectors);
    EXPECT_EQ(l.dataStart, l.journalStart[1] + l.journalSectors);
    EXPECT_LE(l.dataStart + l.dataSectors, std::uint64_t(1) << 20);
}

TEST(Layout, AreasAlignedToUnit)
{
    for (std::uint32_t unit_sectors : {1u, 2u, 4u, 8u}) {
        const DiskLayout l = DiskLayout::compute(
            cfgFor(777, kMiB + 3), 1 << 20, unit_sectors);
        EXPECT_EQ(l.catalogSectors % unit_sectors, 0u);
        EXPECT_EQ(l.journalStart[0] % unit_sectors, 0u);
        EXPECT_EQ(l.journalStart[1] % unit_sectors, 0u);
        EXPECT_EQ(l.dataStart % unit_sectors, 0u);
        EXPECT_EQ(l.slotSectors % unit_sectors, 0u);
    }
}

TEST(Layout, TargetLbasDoNotOverlap)
{
    const DiskLayout l =
        DiskLayout::compute(cfgFor(100, kMiB), 1 << 20, 8);
    for (std::uint64_t k = 1; k < 100; ++k)
        EXPECT_EQ(l.targetLba(k), l.targetLba(k - 1) + l.slotSectors);
}

TEST(Layout, CatalogHoldsFourEntriesPerSector)
{
    const DiskLayout l =
        DiskLayout::compute(cfgFor(100, kMiB), 1 << 20, 1);
    EXPECT_EQ(l.catalogLba(0), l.catalogLba(3));
    EXPECT_EQ(l.catalogLba(4), l.catalogLba(0) + 1);
    EXPECT_GE(l.catalogSectors, divCeil(100, 4));
}

TEST(Layout, JournalChunkLba)
{
    const DiskLayout l =
        DiskLayout::compute(cfgFor(100, kMiB), 1 << 20, 1);
    EXPECT_EQ(l.journalChunkLba(0, 0), l.journalStart[0]);
    EXPECT_EQ(l.journalChunkLba(0, 7), l.journalStart[0] + 1);
    EXPECT_EQ(l.journalChunkLba(1, 4), l.journalStart[1] + 1);
}

TEST(Layout, ThrowsWhenStoreDoesNotFit)
{
    EXPECT_THROW(
        DiskLayout::compute(cfgFor(1'000'000, kMiB), 1 << 20, 8),
        std::invalid_argument);
}

} // namespace
} // namespace checkin
