/**
 * @file
 * Tests for per-op latency attribution: OpTimeline conservation (the
 * per-stage dwells must sum to the client-visible latency exactly),
 * collector pool reuse, command-segment replay, stage overrides, the
 * slowest-K flight recorder, and the checkpoint phase timeline.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "harness/experiment.h"
#include "harness/presets.h"
#include "obs/attribution.h"
#include "obs/flight_recorder.h"

namespace checkin {
namespace {

std::size_t
idx(obs::Stage s)
{
    return std::size_t(s);
}

Tick
dwellSum(const obs::OpRecord &r)
{
    Tick sum = 0;
    for (const Tick d : r.dwell)
        sum += d;
    return sum;
}

// ----------------------------------------------------------------------
// Collector unit tests
// ----------------------------------------------------------------------

TEST(AttributionCollector, MarksAccumulateAndRemainderIsOther)
{
    obs::AttributionCollector a;
    a.setEnabled(true);
    const obs::OpToken op = a.beginOp(obs::OpClass::Read, 100);
    a.mark(op, obs::Stage::HostCpu, 150);
    // Non-monotone marks are dropped, never subtracted.
    a.mark(op, obs::Stage::SsdQueue, 140);
    a.mark(op, obs::Stage::NandMedia, 230);
    a.finishOp(op, 300);
    ASSERT_EQ(a.ops().size(), 1u);
    const obs::OpRecord &r = a.ops()[0];
    EXPECT_EQ(r.dwell[idx(obs::Stage::HostCpu)], 50u);
    EXPECT_EQ(r.dwell[idx(obs::Stage::SsdQueue)], 0u);
    EXPECT_EQ(r.dwell[idx(obs::Stage::NandMedia)], 80u);
    EXPECT_EQ(r.dwell[idx(obs::Stage::Other)], 70u);
    EXPECT_EQ(r.latency(), 200u);
    EXPECT_EQ(dwellSum(r), r.latency());
}

TEST(AttributionCollector, PoolSlotsAreReused)
{
    obs::AttributionCollector a;
    a.setEnabled(true);
    for (Tick i = 0; i < 100; ++i) {
        const obs::OpToken op = a.beginOp(obs::OpClass::Update, i);
        a.finishOp(op, i + 1);
    }
    EXPECT_EQ(a.poolSize(), 1u);
    EXPECT_EQ(a.liveTokens(), 0u);
    EXPECT_EQ(a.ops().size(), 100u);
}

TEST(AttributionCollector, CommandSegmentsReplayOntoAnOp)
{
    obs::AttributionCollector a;
    a.setEnabled(true);
    obs::AttributionScope scope(&a);
    const obs::OpToken op = a.beginOp(obs::OpClass::Read, 0);
    a.cmdBegin();
    obs::attrCmdMark(obs::Stage::SsdQueue, 10);
    {
        // Nested stage override: the NAND push is map-fetch time.
        obs::AttrStageScope ftl(obs::Stage::FtlMap);
        obs::attrCmdMark(obs::Stage::NandMedia, 30);
    }
    obs::attrCmdMark(obs::Stage::NandMedia, 40);
    a.cmdEnd();
    a.applyCmdTo(op);
    a.finishOp(op, 40);
    ASSERT_EQ(a.ops().size(), 1u);
    const obs::OpRecord &r = a.ops()[0];
    EXPECT_EQ(r.dwell[idx(obs::Stage::SsdQueue)], 10u);
    EXPECT_EQ(r.dwell[idx(obs::Stage::FtlMap)], 20u);
    EXPECT_EQ(r.dwell[idx(obs::Stage::NandMedia)], 10u);
    EXPECT_EQ(dwellSum(r), r.latency());
}

TEST(AttributionCollector, CmdMarksOutsideACommandAreDropped)
{
    obs::AttributionCollector a;
    a.setEnabled(true);
    obs::AttributionScope scope(&a);
    const obs::OpToken op = a.beginOp(obs::OpClass::Read, 0);
    // No cmdBegin: background work (e.g. idle GC) marks nothing.
    obs::attrCmdMark(obs::Stage::GcStall, 50);
    a.cmdBegin();
    a.cmdEnd();
    a.applyCmdTo(op);
    a.finishOp(op, 100);
    const obs::OpRecord &r = a.ops()[0];
    EXPECT_EQ(r.dwell[idx(obs::Stage::GcStall)], 0u);
    EXPECT_EQ(r.dwell[idx(obs::Stage::Other)], 100u);
}

TEST(AttributionCollector, DisabledCollectorAllocatesNothing)
{
    obs::AttributionCollector a;
    EXPECT_FALSE(a.enabled());
    EXPECT_EQ(a.storageBytes(), 0u);
    EXPECT_EQ(a.poolSize(), 0u);
    obs::AttributionScope scope(&a);
    // Probes must all be inert against a disabled collector.
    const obs::OpToken op =
        obs::attrBeginOp(obs::OpClass::Read, 10);
    EXPECT_EQ(op, obs::kNoOpToken);
    obs::attrMark(op, obs::Stage::HostCpu, 20);
    obs::attrCmdMark(obs::Stage::Bus, 30);
    obs::attrFinishOp(op, 40);
    EXPECT_EQ(a.storageBytes(), 0u);
    EXPECT_EQ(a.poolSize(), 0u);
    EXPECT_TRUE(a.ops().empty());
}

TEST(FlightRecorder, KeepsSlowestKWithDeterministicTies)
{
    obs::FlightRecorder f(2);
    auto rec = [](Tick issued, Tick done) {
        obs::OpRecord r;
        r.cls = obs::OpClass::Read;
        r.issued = issued;
        r.done = done;
        return r;
    };
    f.note(rec(0, 10));
    f.note(rec(0, 30));
    f.note(rec(0, 20)); // evicts the 10-tick op
    f.note(rec(5, 25)); // same 20-tick latency: earliest entry stays
    const auto s = f.slowest();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].latency(), 30u);
    EXPECT_EQ(s[1].latency(), 20u);
    EXPECT_EQ(s[1].issued, 0u);
}

// ----------------------------------------------------------------------
// End-to-end conservation across checkpoint modes
// ----------------------------------------------------------------------

constexpr CheckpointMode kModes[] = {
    CheckpointMode::Baseline, CheckpointMode::IscA,
    CheckpointMode::IscB, CheckpointMode::IscC,
    CheckpointMode::CheckIn};

ExperimentConfig
attributedConfig(CheckpointMode mode)
{
    ExperimentConfig cfg = presets::small();
    cfg.engine.mode = mode;
    cfg.workload.operationCount = 2000;
    cfg.threads = 8;
    cfg.obs.attributionEnabled = true;
    return cfg;
}

/** Every op's stage dwells must sum to its latency, exactly. */
void
expectConservation(const obs::AttributionCollector &attr,
                   const RunResult &r)
{
    ASSERT_EQ(attr.ops().size(), r.client.opsCompleted);
    for (const obs::OpRecord &rec : attr.ops()) {
        ASSERT_GE(rec.done, rec.issued);
        if (dwellSum(rec) != rec.latency()) {
            std::string msg = std::string("class=") +
                              obs::opClassName(rec.cls) +
                              " issued=" + std::to_string(rec.issued) +
                              " done=" + std::to_string(rec.done);
            for (std::size_t s = 0; s < obs::kStageCount; ++s)
                if (rec.dwell[s] != 0)
                    msg += std::string(" ") +
                           obs::stageName(obs::Stage(s)) + "=" +
                           std::to_string(rec.dwell[s]);
            SCOPED_TRACE(msg);
            ASSERT_EQ(dwellSum(rec), rec.latency());
        }
    }
    EXPECT_EQ(attr.liveTokens(), 0u);
}

TEST(AttributionRun, StageDwellsSumToLatencyInEveryMode)
{
    for (const CheckpointMode mode : kModes) {
        obs::AttributionCollector attr;
        attr.setEnabled(true);
        obs::AttributionScope scope(&attr);
        const RunResult r = runExperiment(attributedConfig(mode));
        SCOPED_TRACE(checkpointModeName(mode));
        expectConservation(attr, r);
        EXPECT_TRUE(r.attribution.enabled);
        EXPECT_EQ(r.attribution.totalOps, r.client.opsCompleted);
    }
}

TEST(AttributionRun, RmwAndScanClassesConserveToo)
{
    for (const WorkloadSpec &spec :
         {WorkloadSpec::f(), WorkloadSpec::e()}) {
        obs::AttributionCollector attr;
        attr.setEnabled(true);
        obs::AttributionScope scope(&attr);
        ExperimentConfig cfg =
            attributedConfig(CheckpointMode::CheckIn);
        cfg.workload = spec;
        cfg.workload.operationCount = 1000;
        const RunResult r = runExperiment(cfg);
        SCOPED_TRACE(spec.name);
        expectConservation(attr, r);
    }
}

TEST(AttributionRun, DeviceStagesReceiveDwellOnReadHeavyRun)
{
    obs::AttributionCollector attr;
    attr.setEnabled(true);
    obs::AttributionScope scope(&attr);
    const RunResult r =
        runExperiment(attributedConfig(CheckpointMode::CheckIn));
    Tick stage_total[obs::kStageCount] = {};
    for (const obs::OpRecord &rec : attr.ops()) {
        for (std::size_t s = 0; s < obs::kStageCount; ++s)
            stage_total[s] += rec.dwell[s];
    }
    // The op path must produce dwell in the host, journal, firmware
    // and NAND stages of this read/update mix.
    EXPECT_GT(stage_total[idx(obs::Stage::HostCpu)], 0u);
    EXPECT_GT(stage_total[idx(obs::Stage::JournalWait)], 0u);
    EXPECT_GT(stage_total[idx(obs::Stage::Firmware)], 0u);
    EXPECT_GT(stage_total[idx(obs::Stage::NandMedia)], 0u);
    EXPECT_GT(r.attribution.tailOps, 0u);
    EXPECT_LE(r.attribution.tailOps, r.attribution.totalOps);
    const auto slowest = attr.flightRecorder().slowest();
    ASSERT_FALSE(slowest.empty());
    for (std::size_t i = 1; i < slowest.size(); ++i)
        EXPECT_GE(slowest[i - 1].latency(), slowest[i].latency());
}

TEST(AttributionRun, LockedCheckpointsShowUpAsCheckpointStall)
{
    obs::AttributionCollector attr;
    attr.setEnabled(true);
    obs::AttributionScope scope(&attr);
    ExperimentConfig cfg = attributedConfig(CheckpointMode::Baseline);
    cfg.engine.lockQueriesDuringCheckpoint = true;
    cfg.workload.operationCount = 4000;
    const RunResult r = runExperiment(cfg);
    ASSERT_GT(r.checkpoints, 0u);
    Tick stall = 0;
    for (const obs::OpRecord &rec : attr.ops())
        stall += rec.dwell[idx(obs::Stage::CheckpointStall)];
    EXPECT_GT(stall, 0u);
    expectConservation(attr, r);
}

// ----------------------------------------------------------------------
// Checkpoint phase timeline
// ----------------------------------------------------------------------

TEST(AttributionRun, CheckpointTimelineMatchesCheckpointCount)
{
    obs::AttributionCollector attr;
    attr.setEnabled(true);
    obs::AttributionScope scope(&attr);
    ExperimentConfig cfg = attributedConfig(CheckpointMode::CheckIn);
    cfg.workload.operationCount = 6000;
    // Low byte threshold so the run crosses several checkpoints.
    cfg.engine.checkpointJournalBytes = 256 * kKiB;
    const RunResult r = runExperiment(cfg);
    ASSERT_GT(r.checkpoints, 0u);
    ASSERT_EQ(r.checkpointTimeline.size(), r.checkpoints);
    std::uint64_t expect_seq = 0;
    for (const obs::CheckpointStat &c : r.checkpointTimeline) {
        EXPECT_EQ(c.seq, expect_seq++);
        EXPECT_LE(c.startTick, c.dataDoneTick);
        EXPECT_LE(c.dataDoneTick, c.metaDoneTick);
        EXPECT_LE(c.metaDoneTick, c.endTick);
        EXPECT_EQ(c.entries, c.rawRecords + c.fullRecords +
                                 c.partialRecords + c.mergedRecords);
        const std::string trig = obs::ckptTriggerName(c.trigger);
        EXPECT_FALSE(trig.empty());
    }
    // Check-In moves data in storage: the timeline must show CoW
    // commands and remapped or copied pairs.
    std::uint64_t cow = 0;
    std::uint64_t moved = 0;
    for (const obs::CheckpointStat &c : r.checkpointTimeline) {
        cow += c.cowCommands;
        moved += c.remappedPairs + c.copiedPairs;
    }
    EXPECT_GT(cow, 0u);
    EXPECT_GT(moved, 0u);
}

TEST(AttributionRun, BaselineTimelineHasNoCowCommands)
{
    obs::AttributionCollector attr;
    attr.setEnabled(true);
    obs::AttributionScope scope(&attr);
    const RunResult r =
        runExperiment(attributedConfig(CheckpointMode::Baseline));
    ASSERT_GT(r.checkpointTimeline.size(), 0u);
    for (const obs::CheckpointStat &c : r.checkpointTimeline)
        EXPECT_EQ(c.cowCommands, 0u);
}

} // namespace
} // namespace checkin
