/**
 * @file
 * Tests for the experiment harness and the table printer.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/presets.h"
#include "harness/table.h"

namespace checkin {
namespace {

TEST(TablePrinter, AlignsColumnsAndUnderlinesHeader)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "123456"});
    const std::string out = t.render();
    // Header, underline, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::uint64_t(42)), "42");
    EXPECT_EQ(Table::percent(0.123, 1), "12.3 %");
    EXPECT_EQ(Table::percent(-0.05, 1), "-5.0 %");
}

TEST(Harness, SmallScalePresetIsRunnable)
{
    ExperimentConfig cfg = presets::small();
    cfg.workload.operationCount = 1000;
    cfg.threads = 8;
    const RunResult r = runExperiment(cfg);
    EXPECT_EQ(r.client.opsCompleted, 1000u);
    EXPECT_GT(r.throughputOps, 0.0);
    EXPECT_GT(r.simSpan, 0u);
    // The merged raw stats include every layer.
    EXPECT_GT(r.raw.count("nand.programs"), 0u);
    EXPECT_GT(r.raw.count("engine.updates"), 0u);
    EXPECT_GT(r.raw.count("ssd.cmd.write"), 0u);
}

TEST(Harness, JournalSpaceOverheadMath)
{
    RunResult r;
    r.journalPayloadBytes = 1000;
    r.journalChunksStored = 10;
    // Chunk size is recorded per run, not assumed: with no recorded
    // size the overhead is undefined and reads as zero.
    EXPECT_EQ(r.journalSpaceOverhead(), 0.0);
    r.journalChunkBytes = 128; // 10 chunks = 1280 bytes
    EXPECT_NEAR(r.journalSpaceOverhead(), 0.28, 1e-9);
    r.journalChunkBytes = 256; // 10 chunks = 2560 bytes
    EXPECT_NEAR(r.journalSpaceOverhead(), 1.56, 1e-9);
    r.journalPayloadBytes = 0;
    EXPECT_EQ(r.journalSpaceOverhead(), 0.0);
}

TEST(Harness, DeterministicForSameConfig)
{
    ExperimentConfig cfg = presets::small();
    cfg.workload.operationCount = 2000;
    cfg.threads = 8;
    const RunResult a = runExperiment(cfg);
    const RunResult b = runExperiment(cfg);
    EXPECT_EQ(a.client.opsCompleted, b.client.opsCompleted);
    EXPECT_EQ(a.simSpan, b.simSpan);
    EXPECT_EQ(a.nandPrograms, b.nandPrograms);
    EXPECT_EQ(a.redundantSlotWrites, b.redundantSlotWrites);
    EXPECT_EQ(a.client.all.quantile(0.999),
              b.client.all.quantile(0.999));
}

TEST(Harness, SeedChangesTheRun)
{
    ExperimentConfig cfg = presets::small();
    cfg.workload.operationCount = 2000;
    cfg.threads = 8;
    const RunResult a = runExperiment(cfg);
    cfg.workload.seed = 777;
    const RunResult b = runExperiment(cfg);
    EXPECT_NE(a.simSpan, b.simSpan);
}

} // namespace
} // namespace checkin
