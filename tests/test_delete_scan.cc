/**
 * @file
 * Tests for DELETE (tombstones) and SCAN operations: journal
 * semantics, checkpoint-time slot trims, catalog deletions,
 * crash recovery of tombstones, and scan coalescing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"
#include "workload/client.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

EngineConfig
engineCfg(CheckpointMode mode)
{
    EngineConfig c;
    c.mode = mode;
    c.recordCount = 300;
    c.journalHalfBytes = 2 * kMiB;
    c.checkpointJournalBytes = kMiB;
    c.checkpointInterval = 0;
    return c;
}

struct Stack
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;
    CheckpointMode mode;

    explicit Stack(CheckpointMode m = CheckpointMode::CheckIn)
        : mode(m)
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes =
            m == CheckpointMode::Baseline ? 4096 : 512;
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        engine = std::make_unique<KvEngine>(ctx, *ssd, engineCfg(m));
        engine->load([](std::uint64_t) { return 256u; });
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }
};

TEST(Delete, GetAfterDeleteMisses)
{
    Stack s;
    bool done = false;
    s.engine->erase(7, [&](const QueryResult &r) {
        EXPECT_TRUE(r.found);
        done = true;
    });
    s.eq.run();
    ASSERT_TRUE(done);
    bool got = true;
    s.engine->get(7, [&](const QueryResult &r) { got = r.found; });
    s.eq.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(s.engine->stats().get("engine.deletes"), 1u);
    s.engine->verifyAllKeys();
}

TEST(Delete, CheckpointTrimsSlotAndRecordsCatalogDeletion)
{
    Stack s;
    s.engine->erase(7, [](const QueryResult &) {});
    s.eq.run();
    s.engine->requestCheckpoint();
    s.eq.run();
    EXPECT_FALSE(s.engine->keymap()[7].inJournal);
    EXPECT_EQ(s.engine->keymap()[7].catalogChunks, 0u);
    EXPECT_GE(s.engine->stats().get("engine.ckptTombstoneTrims"),
              1u);
    // The data-area slot is gone.
    std::vector<SectorData> buf(1);
    s.ssd->peek(s.engine->layout().targetLba(7), 1, buf.data());
    EXPECT_EQ(buf[0], SectorData{});
    s.engine->verifyAllKeys();
}

TEST(Delete, UpdateAfterDeleteRevives)
{
    Stack s;
    s.engine->erase(9, [](const QueryResult &) {});
    s.engine->update(9, 384, [](const QueryResult &) {});
    s.eq.run();
    bool got = false;
    s.engine->get(9, [&](const QueryResult &r) { got = r.found; });
    s.eq.run();
    EXPECT_TRUE(got);
    s.engine->requestCheckpoint();
    s.eq.run();
    got = false;
    s.engine->get(9, [&](const QueryResult &r) { got = r.found; });
    s.eq.run();
    EXPECT_TRUE(got);
    s.engine->verifyAllKeys();
}

TEST(Delete, DeleteAfterUpdateInSameGroupWins)
{
    Stack s;
    s.engine->update(5, 256, [](const QueryResult &) {});
    s.engine->erase(5, [](const QueryResult &) {});
    s.eq.run();
    bool got = true;
    s.engine->get(5, [&](const QueryResult &r) { got = r.found; });
    s.eq.run();
    EXPECT_FALSE(got);
    s.engine->requestCheckpoint();
    s.eq.run();
    got = true;
    s.engine->get(5, [&](const QueryResult &r) { got = r.found; });
    s.eq.run();
    EXPECT_FALSE(got);
}

class DeleteRecovery : public ::testing::TestWithParam<bool>
{
};

TEST_P(DeleteRecovery, TombstonesSurviveCrash)
{
    const bool checkpoint_before_crash = GetParam();
    Stack s;
    for (std::uint64_t k = 10; k < 20; ++k)
        s.engine->erase(k, [](const QueryResult &) {});
    s.engine->update(15, 512, [](const QueryResult &) {});
    s.eq.run();
    if (checkpoint_before_crash) {
        s.engine->requestCheckpoint();
        s.eq.run();
    }
    // Crash + recover.
    s.eq.clear();
    s.engine.reset();
    s.engine = std::make_unique<KvEngine>(s.ctx, *s.ssd,
                                          engineCfg(s.mode));
    s.engine->recover();
    for (std::uint64_t k = 10; k < 20; ++k) {
        bool got = true;
        s.engine->get(k, [&](const QueryResult &r) {
            got = r.found;
        });
        s.eq.run();
        EXPECT_EQ(got, k == 15) << "key " << k;
    }
    s.engine->verifyAllKeys();
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, DeleteRecovery,
                         ::testing::Bool());

TEST(Scan, ReadsLiveRangeAndCountsKeys)
{
    Stack s;
    std::uint32_t scanned = 0;
    bool found = false;
    s.engine->scan(100, 20, [&](const QueryResult &r) {
        scanned = r.scanned;
        found = r.found;
    });
    s.eq.run();
    EXPECT_TRUE(found);
    EXPECT_EQ(scanned, 20u);
    EXPECT_EQ(s.engine->stats().get("engine.scans"), 1u);
    EXPECT_GT(s.engine->stats().get("engine.scanSequentialSectors"),
              0u);
}

TEST(Scan, SkipsDeletedKeys)
{
    Stack s;
    s.engine->erase(105, [](const QueryResult &) {});
    s.engine->erase(106, [](const QueryResult &) {});
    s.eq.run();
    std::uint32_t scanned = 0;
    s.engine->scan(100, 10, [&](const QueryResult &r) {
        scanned = r.scanned;
    });
    s.eq.run();
    EXPECT_EQ(scanned, 8u);
}

TEST(Scan, MixesJournalAndDataAreaResidents)
{
    Stack s;
    s.engine->update(102, 384, [](const QueryResult &) {});
    s.engine->update(104, 384, [](const QueryResult &) {});
    s.eq.run();
    ASSERT_TRUE(s.engine->keymap()[102].inJournal);
    std::uint32_t scanned = 0;
    s.engine->scan(100, 8, [&](const QueryResult &r) {
        scanned = r.scanned;
    });
    s.eq.run();
    EXPECT_EQ(scanned, 8u);
}

TEST(Scan, ClampedAtKeySpaceEnd)
{
    Stack s;
    std::uint32_t scanned = 0;
    s.engine->scan(295, 50, [&](const QueryResult &r) {
        scanned = r.scanned;
    });
    s.eq.run();
    EXPECT_EQ(scanned, 5u);
}

TEST(Scan, EmptyRangeCompletes)
{
    Stack s;
    for (std::uint64_t k = 200; k < 210; ++k)
        s.engine->erase(k, [](const QueryResult &) {});
    s.eq.run();
    bool completed = false;
    bool found = true;
    s.engine->scan(200, 10, [&](const QueryResult &r) {
        completed = true;
        found = r.found;
    });
    s.eq.run();
    EXPECT_TRUE(completed);
    EXPECT_FALSE(found);
}

TEST(WorkloadE, RunsEndToEnd)
{
    Stack s;
    WorkloadSpec spec = WorkloadSpec::e();
    spec.operationCount = 500;
    spec.maxScanLength = 16;
    ClientPool pool(s.ctx, *s.engine, spec, 8);
    pool.start();
    while (!pool.done()) {
        ASSERT_TRUE(s.eq.step()) << "deadlock";
    }
    EXPECT_EQ(pool.stats().opsCompleted, 500u);
    s.engine->verifyAllKeys();
}

TEST(WorkloadD, LatestDistributionRuns)
{
    Stack s;
    WorkloadSpec spec = WorkloadSpec::d();
    spec.operationCount = 500;
    ClientPool pool(s.ctx, *s.engine, spec, 8);
    pool.start();
    while (!pool.done()) {
        ASSERT_TRUE(s.eq.step()) << "deadlock";
    }
    EXPECT_EQ(pool.stats().opsCompleted, 500u);
}

} // namespace
} // namespace checkin
