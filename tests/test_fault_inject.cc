/**
 * @file
 * Fault-injection tests: FaultPlan determinism, the NAND ECC
 * retry/uncorrectable model, FTL bad-block retirement, the SSD
 * front-end retry budget, the writeSeq power-loss replay order, and
 * the crash-consistency oracle + sweep-worker reproducibility.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "ftl/ftl.h"
#include "harness/crash_oracle.h"
#include "harness/presets.h"
#include "harness/sweep.h"
#include "nand/nand_flash.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
tinyNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.planesPerDie = 1;
    c.blocksPerPlane = 4;
    c.pagesPerBlock = 8;
    return c;
}

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.planesPerDie = 1;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 16;
    return c;
}

PageContent
contentWith(std::uint64_t token)
{
    PageContent c;
    c.slotTokens = {token};
    OobEntry e;
    e.lpn = token;
    e.version = 1;
    c.oob = {e};
    return c;
}

SectorData
sectorFor(std::uint64_t tag)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = mix64(tag * 4 + c + 1);
    return d;
}

// ---------------------------------------------------------------------
// FaultPlan: the seed-deterministic schedule itself
// ---------------------------------------------------------------------

FaultConfig
nominalConfig()
{
    FaultConfig fc;
    fc.enabled = true;
    fc.readBitErrorProb = 0.3;
    fc.programFailProb = 0.2;
    fc.eraseFailProb = 0.1;
    fc.wearFactor = 1.0;
    return fc;
}

TEST(FaultPlan, SameSeedAndConfigGiveIdenticalSchedule)
{
    const FaultConfig fc = nominalConfig();
    FaultPlan a(fc, 99);
    FaultPlan b(fc, 99);
    for (std::uint64_t i = 0; i < 200; ++i) {
        const Ppn ppn = i * 7 + 1;
        const std::uint64_t ec = i % 5;
        EXPECT_EQ(a.readFaults(ppn, ec, 100),
                  b.readFaults(ppn, ec, 100));
        EXPECT_EQ(a.programFails(ppn, ec, 100),
                  b.programFails(ppn, ec, 100));
        EXPECT_EQ(a.eraseFails(i, ec, 100), b.eraseFails(i, ec, 100));
    }
    a.recordPowerLoss(123456);
    b.recordPowerLoss(123456);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.counters().faultyReads, b.counters().faultyReads);
    EXPECT_EQ(a.counters().readRetries, b.counters().readRetries);
    EXPECT_EQ(a.counters().uncorrectableReads,
              b.counters().uncorrectableReads);
    EXPECT_EQ(a.counters().programFails, b.counters().programFails);
    EXPECT_EQ(a.counters().eraseFails, b.counters().eraseFails);
    EXPECT_EQ(a.counters().powerLosses, b.counters().powerLosses);
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    const FaultConfig fc = nominalConfig();
    FaultPlan a(fc, 1);
    FaultPlan b(fc, 2);
    for (std::uint64_t i = 0; i < 200; ++i) {
        a.readFaults(i, 0, 100);
        b.readFaults(i, 0, 100);
    }
    EXPECT_NE(a.digest(), b.digest());
}

TEST(FaultPlan, StreamsAreCounterBasedNotInterleaved)
{
    // Decision i of one fault class never depends on how many draws
    // the other classes made first: interleaving program draws must
    // not perturb the read-fault sequence.
    const FaultConfig fc = nominalConfig();
    FaultPlan reads_only(fc, 7);
    FaultPlan interleaved(fc, 7);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const std::uint32_t want = reads_only.readFaults(i, 0, 100);
        interleaved.programFails(i, 0, 100);
        interleaved.eraseFails(i, 0, 100);
        EXPECT_EQ(interleaved.readFaults(i, 0, 100), want)
            << "read decision " << i;
    }
}

TEST(FaultPlan, CapsForceExactlyOneFault)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.readBitErrorProb = 1.0;
    fc.readRetryMax = 2;
    fc.programFailProb = 1.0;
    fc.eraseFailProb = 1.0;
    fc.maxReadFaults = 1;
    fc.maxProgramFails = 1;
    fc.maxEraseFails = 1;
    FaultPlan p(fc, 3);
    // p = 1 makes every sensing attempt fail, so the single allowed
    // read fault exhausts the whole ECC budget.
    EXPECT_EQ(p.readFaults(0, 0, 100), fc.readRetryMax + 1);
    EXPECT_EQ(p.readFaults(1, 0, 100), 0u);
    EXPECT_TRUE(p.programFails(0, 0, 100));
    EXPECT_FALSE(p.programFails(1, 0, 100));
    EXPECT_TRUE(p.eraseFails(0, 0, 100));
    EXPECT_FALSE(p.eraseFails(1, 0, 100));
    EXPECT_EQ(p.counters().faultyReads, 1u);
    EXPECT_EQ(p.counters().uncorrectableReads, 1u);
    EXPECT_EQ(p.counters().readRetries, fc.readRetryMax);
    EXPECT_EQ(p.counters().programFails, 1u);
    EXPECT_EQ(p.counters().eraseFails, 1u);
}

TEST(FaultPlan, WearScalingReachesCertaintyAtEndOfLife)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.programFailProb = 0.5;
    fc.wearFactor = 1.0;
    FaultPlan p(fc, 11);
    // scaled = 0.5 * (1 + 1.0 * maxPe/maxPe) = 1.0: certain failure.
    EXPECT_TRUE(p.programFails(0, 100, 100));
}

TEST(FaultPlan, DisabledPlanInjectsNothing)
{
    FaultConfig fc;
    fc.enabled = false;
    fc.readBitErrorProb = 1.0;
    fc.programFailProb = 1.0;
    fc.eraseFailProb = 1.0;
    FaultPlan p(fc, 5);
    for (std::uint64_t i = 0; i < 32; ++i) {
        EXPECT_EQ(p.readFaults(i, 0, 100), 0u);
        EXPECT_FALSE(p.programFails(i, 0, 100));
        EXPECT_FALSE(p.eraseFails(i, 0, 100));
    }
    EXPECT_EQ(p.counters().faultyReads, 0u);
    EXPECT_EQ(p.counters().programFails, 0u);
    EXPECT_EQ(p.counters().eraseFails, 0u);
}

TEST(FaultPlan, PowerLossFoldsIntoDigest)
{
    FaultConfig fc;
    fc.enabled = true;
    FaultPlan p(fc, 5);
    const std::uint64_t before = p.digest();
    p.recordPowerLoss(4242);
    EXPECT_NE(p.digest(), before);
    EXPECT_EQ(p.counters().powerLosses, 1u);
}

// ---------------------------------------------------------------------
// NAND: ECC retry timing, uncorrectable reads, program/erase fails
// ---------------------------------------------------------------------

TEST(NandFaults, RecoveredReadChargesRetrySenseTime)
{
    const NandConfig nc = tinyNand();
    FaultConfig fc;
    fc.enabled = true;
    fc.readBitErrorProb = 0.6;
    fc.readRetryMax = 4;
    // Probe for a seed whose first read recovers after >= 1 retry so
    // the timing assertion below exercises the retry path.
    std::uint64_t seed = 0;
    std::uint32_t fails = 0;
    for (std::uint64_t s = 0; s < 64 && fails == 0; ++s) {
        FaultPlan probe(fc, s);
        const std::uint32_t f = probe.readFaults(0, 0, nc.maxPeCycles);
        if (f >= 1 && f <= fc.readRetryMax) {
            seed = s;
            fails = f;
        }
    }
    ASSERT_GE(fails, 1u);
    ASSERT_LE(fails, fc.readRetryMax);

    NandFlash clean(nc);
    const Tick prog = clean.program(0, contentWith(7), 0).tick;
    const NandResult clean_read = clean.read(0, prog);
    ASSERT_TRUE(clean_read.ok());

    NandFlash faulty(nc);
    FaultPlan plan(fc, seed);
    faulty.setFaultPlan(&plan);
    ASSERT_EQ(faulty.program(0, contentWith(7), 0).tick, prog);
    const NandResult r = faulty.read(0, prog);
    EXPECT_TRUE(r.ok());
    // Each failed sensing attempt extends the die phase; the channel
    // transfer is unchanged.
    EXPECT_EQ(r.tick, clean_read.tick + fails * fc.readRetryLatency);
    EXPECT_EQ(plan.counters().faultyReads, 1u);
    EXPECT_EQ(plan.counters().readRetries, fails);
    EXPECT_EQ(faulty.stats().get("nand.readRetries"), fails);
}

TEST(NandFaults, UncorrectableReadSkipsChannelTransfer)
{
    const NandConfig nc = tinyNand();
    FaultConfig fc;
    fc.enabled = true;
    fc.readBitErrorProb = 1.0;
    fc.readRetryMax = 2;
    FaultPlan plan(fc, 1);
    NandFlash nand(nc);
    nand.setFaultPlan(&plan);
    const Tick prog = nand.program(0, contentWith(9), 0).tick;
    const NandResult r = nand.read(0, prog);
    EXPECT_EQ(r.status, NandStatus::Uncorrectable);
    EXPECT_FALSE(r.ok());
    // ECC gave up after the full budget: sense time only, nothing
    // crosses the channel.
    EXPECT_EQ(r.tick, prog + nc.readLatency +
                          fc.readRetryMax * fc.readRetryLatency);
    EXPECT_EQ(plan.counters().uncorrectableReads, 1u);
    EXPECT_EQ(nand.stats().get("nand.uncorrectable"), 1u);
}

TEST(NandFaults, ProgramFailConsumesThePage)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.programFailProb = 1.0;
    fc.maxProgramFails = 1;
    FaultPlan plan(fc, 2);
    NandFlash nand(tinyNand());
    nand.setFaultPlan(&plan);
    const NandResult r1 = nand.program(0, contentWith(1), 0);
    EXPECT_EQ(r1.status, NandStatus::ProgramFailed);
    // The page is consumed (in-order rule) but reads back empty.
    EXPECT_EQ(nand.nextProgramPage(0), 1u);
    EXPECT_TRUE(nand.isProgrammed(0));
    EXPECT_TRUE(nand.peek(0).slotTokens.empty());
    EXPECT_TRUE(nand.peek(0).oob.empty());
    // The cap is exhausted: the next program succeeds.
    const NandResult r2 = nand.program(1, contentWith(2), r1.tick);
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(nand.peek(1).slotTokens.at(0), 2u);
}

TEST(NandFaults, EraseFailLeavesContentsAndConsumesPeCycle)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.eraseFailProb = 1.0;
    fc.maxEraseFails = 1;
    FaultPlan plan(fc, 2);
    NandFlash nand(tinyNand());
    nand.setFaultPlan(&plan);
    const Tick prog = nand.program(0, contentWith(5), 0).tick;
    const NandResult r1 = nand.eraseBlock(0, prog);
    EXPECT_EQ(r1.status, NandStatus::EraseFailed);
    EXPECT_EQ(nand.peek(0).slotTokens.at(0), 5u);
    EXPECT_EQ(nand.nextProgramPage(0), 1u);
    EXPECT_EQ(nand.eraseCount(0), 1u);
    // Cap exhausted: the retry erase succeeds and clears the block.
    const NandResult r2 = nand.eraseBlock(0, r1.tick);
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(nand.nextProgramPage(0), 0u);
    EXPECT_EQ(nand.eraseCount(0), 2u);
}

// ---------------------------------------------------------------------
// FTL consequences: bad-block retirement with live-data rescue
// ---------------------------------------------------------------------

TEST(FtlFaults, ProgramFailRetiresBlockAndRescuesData)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.programFailProb = 1.0;
    fc.maxProgramFails = 1;
    FaultPlan plan(fc, 3);
    NandFlash nand(smallNand());
    nand.setFaultPlan(&plan);
    FtlConfig cfg;
    cfg.mappingUnitBytes = 512;
    Ftl ftl(nand, cfg);
    for (Lpn lpn = 0; lpn < 64; ++lpn) {
        const SectorData d = sectorFor(lpn + 1);
        ftl.writeSectors(lpn, 1, &d, IoCause::Query, 0, lpn + 1);
    }
    ftl.flushOpenPages(0);
    EXPECT_EQ(plan.counters().programFails, 1u);
    EXPECT_EQ(ftl.stats().get("ftl.retiredBlocks"), 1u);
    ftl.checkInvariants();
    for (Lpn lpn = 0; lpn < 64; ++lpn) {
        SectorData got;
        ftl.peekSectors(lpn, 1, &got);
        EXPECT_EQ(got, sectorFor(lpn + 1)) << "lpn " << lpn;
    }
}

TEST(FtlFaults, EraseFailDuringGcRetiresVictimBlock)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.eraseFailProb = 1.0;
    fc.maxEraseFails = 1;
    FaultPlan plan(fc, 4);
    NandFlash nand(smallNand());
    nand.setFaultPlan(&plan);
    FtlConfig cfg;
    cfg.mappingUnitBytes = 512;
    cfg.gcLowWaterBlocks = 3;
    cfg.gcHighWaterBlocks = 5;
    Ftl ftl(nand, cfg);
    // Hammer a small logical range so GC must erase victims; the one
    // allowed erase failure retires its block.
    const std::uint64_t lpns = 64;
    std::vector<std::uint64_t> generation(lpns, 0);
    std::uint64_t round = 0;
    for (int iter = 0; iter < 12000; ++iter) {
        const std::uint64_t lpn = iter % lpns;
        generation[lpn] = ++round;
        const SectorData d = sectorFor(round);
        ftl.writeSectors(lpn, 1, &d, IoCause::Query, 0, round);
    }
    EXPECT_EQ(plan.counters().eraseFails, 1u);
    EXPECT_GE(ftl.stats().get("ftl.retiredBlocks"), 1u);
    ftl.checkInvariants();
    for (std::uint64_t lpn = 0; lpn < lpns; ++lpn) {
        SectorData got;
        ftl.peekSectors(lpn, 1, &got);
        EXPECT_EQ(got, sectorFor(generation[lpn])) << "lpn " << lpn;
    }
    EXPECT_GE(ftl.freeBlocks(), 2u);
}

// ---------------------------------------------------------------------
// SSD front end: timeout/retry/backoff against uncorrectable reads
// ---------------------------------------------------------------------

struct FaultySsd
{
    explicit FaultySsd(const FaultConfig &fc) : plan(fc, 7)
    {
        ctx.setFaults(&plan);
        FtlConfig fcfg;
        fcfg.mappingUnitBytes = 512;
        // One-page data cache: reads must really sense the NAND so
        // the injected bit errors reach the front end.
        fcfg.dataCacheBytes = 4096;
        ssd = std::make_unique<Ssd>(ctx, smallNand(), fcfg,
                                    SsdConfig{});
    }

    SimContext ctx;
    FaultPlan plan;
    std::unique_ptr<Ssd> ssd;
};

std::vector<SectorData>
sectorRange(std::uint64_t base, std::uint32_t n)
{
    std::vector<SectorData> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        v.push_back(sectorFor(base + i));
    return v;
}

TEST(SsdFaults, FrontEndRetryRecoversWithinBudget)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.readBitErrorProb = 1.0;
    fc.readRetryMax = 0; // first injected fault is uncorrectable
    fc.maxReadFaults = 1; // ... and the front-end retry read is clean
    FaultySsd dev(fc);
    // Enough writes that LBA 0's slot is programmed, not open-page
    // buffered, so the read really senses NAND.
    dev.ssd->submitSync(
        Command::write(0, sectorRange(1, 64), IoCause::Query, 1));
    bool done = false;
    CmdResult res;
    dev.ssd->submit(Command::read(0, 1), [&](const CmdResult &r) {
        done = true;
        res = r;
    });
    dev.ctx.events().run();
    ASSERT_TRUE(done);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.retries, 1u);
    SectorData got;
    dev.ssd->peek(0, 1, &got);
    EXPECT_EQ(got, sectorFor(1));
}

TEST(SsdFaults, ExhaustedRetryBudgetSurfacesMediaError)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.readBitErrorProb = 1.0;
    fc.readRetryMax = 0; // every read stays uncorrectable
    FaultySsd dev(fc);
    dev.ssd->submitSync(
        Command::write(0, sectorRange(1, 64), IoCause::Query, 1));
    bool done = false;
    CmdResult res;
    dev.ssd->submit(Command::read(0, 1), [&](const CmdResult &r) {
        done = true;
        res = r;
    });
    dev.ctx.events().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(res.status, CmdStatus::MediaError);
    EXPECT_EQ(res.retries, dev.ssd->config().readRetryBudget);
    EXPECT_THROW(res.require(), std::runtime_error);
    EXPECT_THROW(dev.ssd->submitSync(Command::read(0, 1)),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Power loss: host-write order beats die flush order (regression)
// ---------------------------------------------------------------------

TEST(PowerLossWriteSeq, NewestWriteWinsRegardlessOfDieParking)
{
    // The capacitor flush seals per-die open pages in die-index
    // order, so program sequence alone would replay an older write
    // parked in a higher die *after* a newer one in a lower die and
    // resurrect stale data. Sweep both parking offsets so every
    // die/page alignment of the two writes is exercised.
    for (int pre = 0; pre <= 3; ++pre) {
        for (int mid = 0; mid <= 12; ++mid) {
            NandFlash nand(tinyNand());
            FtlConfig cfg;
            cfg.mappingUnitBytes = 512;
            Ftl ftl(nand, cfg);
            Lpn filler = 100;
            for (int f = 0; f < pre; ++f) {
                const SectorData d = sectorFor(filler);
                ftl.writeSectors(filler++, 1, &d, IoCause::Query, 0,
                                 1);
            }
            const SectorData v1 = sectorFor(1000);
            const SectorData v2 = sectorFor(2000);
            ftl.writeSectors(0, 1, &v1, IoCause::Query, 0, 1);
            for (int f = 0; f < mid; ++f) {
                const SectorData d = sectorFor(filler);
                ftl.writeSectors(filler++, 1, &d, IoCause::Query, 0,
                                 1);
            }
            ftl.writeSectors(0, 1, &v2, IoCause::Query, 0, 2);
            ftl.flushOpenPages(0);
            ftl.rebuildFromPowerLoss();
            ftl.checkInvariants();
            SectorData got;
            ftl.peekSectors(0, 1, &got);
            EXPECT_EQ(got, v2)
                << "pre=" << pre << " mid=" << mid;
        }
    }
}

// ---------------------------------------------------------------------
// Crash oracle: reproducible and clean on a small campaign
// ---------------------------------------------------------------------

TEST(CrashOracle, DeterministicAndCleanAcrossRuns)
{
    OracleConfig oc;
    oc.base = presets::faulty();
    oc.base.engine.mode = CheckpointMode::CheckIn;
    oc.base.engine.recordCount = 200;
    oc.base.engine.journalHalfBytes = 2 * kMiB;
    oc.base.engine.checkpointJournalBytes = kMiB;
    oc.base.nand.blocksPerPlane = 32;
    oc.base.nand.pagesPerBlock = 32;
    oc.seed = 7;
    oc.crashPoints = 6;
    oc.ops = 240;
    const OracleReport a = runCrashOracle(oc);
    const OracleReport b = runCrashOracle(oc);
    EXPECT_TRUE(a.ok()) << "lost=" << a.lostWrites
                        << " torn=" << a.tornRecords;
    EXPECT_EQ(a.crashesRun, oc.crashPoints);
    EXPECT_GT(a.midCheckpointCrashes, 0u)
        << "no replay crashed inside a checkpoint window";
    EXPECT_GT(a.ackedWrites, 0u);
    // Same seed + config => byte-identical campaign.
    EXPECT_EQ(a.crashesRun, b.crashesRun);
    EXPECT_EQ(a.midCheckpointCrashes, b.midCheckpointCrashes);
    EXPECT_EQ(a.ackedWrites, b.ackedWrites);
    EXPECT_EQ(a.lostWrites, b.lostWrites);
    EXPECT_EQ(a.tornRecords, b.tornRecords);
    EXPECT_EQ(a.faultDigest, b.faultDigest);
}

// ---------------------------------------------------------------------
// Sweep: worker count must not perturb the fault schedule
// ---------------------------------------------------------------------

TEST(FaultSweep, WorkerCountDoesNotChangeScheduleOrOutcome)
{
    ExperimentConfig base = presets::faulty();
    base.workload.operationCount = 2000;
    SweepGrid grid(base);
    grid.axis({{"baseline",
                [](ExperimentConfig &c) {
                    c.engine.mode = CheckpointMode::Baseline;
                }},
               {"checkin",
                [](ExperimentConfig &c) {
                    c.engine.mode = CheckpointMode::CheckIn;
                }}});
    grid.axis({{"nominal", [](ExperimentConfig &) {}},
               {"eol", [](ExperimentConfig &c) {
                    c.faults.readBitErrorProb = 5e-3;
                    c.faults.programFailProb = 1e-3;
                    c.faults.eraseFailProb = 5e-3;
                    c.faults.wearFactor = 2.0;
                }}});
    const std::vector<SweepPoint> points = grid.points();
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions wide;
    wide.jobs = 4;
    const std::vector<SweepOutcome> a = runSweep(points, serial);
    const std::vector<SweepOutcome> b = runSweep(points, wide);
    ASSERT_EQ(a.size(), points.size());
    ASSERT_EQ(b.size(), points.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].label << ": " << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].label << ": " << b[i].error;
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_GT(a[i].result.raw.at("fault.digest"), 0u);
        EXPECT_EQ(a[i].result.raw.at("fault.digest"),
                  b[i].result.raw.at("fault.digest"))
            << a[i].label;
        // The whole counter map, not just the digest: 1 worker and 4
        // workers must produce bit-identical runs.
        EXPECT_EQ(a[i].result.raw, b[i].result.raw) << a[i].label;
    }
}

} // namespace
} // namespace checkin
