/**
 * @file
 * Tests for the host-side value cache: unit behaviour (LRU,
 * version-keyed hits) and engine integration (hits avoid device
 * reads, stale versions miss, deletes evict).
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/host_cache.h"
#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

TEST(HostCache, DisabledNeverHits)
{
    HostCache c(0);
    EXPECT_FALSE(c.enabled());
    c.insert(1, 1, 100);
    EXPECT_FALSE(c.lookup(1, 1));
    EXPECT_EQ(c.entries(), 0u);
}

TEST(HostCache, HitRequiresMatchingVersion)
{
    HostCache c(1024);
    c.insert(1, 3, 100);
    EXPECT_TRUE(c.lookup(1, 3));
    EXPECT_FALSE(c.lookup(1, 4)); // newer committed version
    EXPECT_FALSE(c.lookup(2, 3)); // other key
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(HostCache, InsertRefreshesVersionAndBytes)
{
    HostCache c(1024);
    c.insert(1, 1, 100);
    c.insert(1, 2, 200);
    EXPECT_FALSE(c.lookup(1, 1));
    EXPECT_TRUE(c.lookup(1, 2));
    EXPECT_EQ(c.usedBytes(), 200u);
    EXPECT_EQ(c.entries(), 1u);
}

TEST(HostCache, LruEvictionUnderPressure)
{
    HostCache c(300);
    c.insert(1, 1, 100);
    c.insert(2, 1, 100);
    c.insert(3, 1, 100);
    // Touch key 1 so key 2 is the LRU victim.
    EXPECT_TRUE(c.lookup(1, 1));
    c.insert(4, 1, 100);
    EXPECT_TRUE(c.lookup(1, 1));
    EXPECT_FALSE(c.lookup(2, 1));
    EXPECT_TRUE(c.lookup(3, 1));
    EXPECT_TRUE(c.lookup(4, 1));
    EXPECT_LE(c.usedBytes(), 300u);
}

TEST(HostCache, OversizedValueIsNotCached)
{
    HostCache c(100);
    c.insert(1, 1, 500);
    EXPECT_FALSE(c.lookup(1, 1));
    EXPECT_EQ(c.usedBytes(), 0u);
}

TEST(HostCache, EraseDropsEntry)
{
    HostCache c(1024);
    c.insert(1, 1, 100);
    c.erase(1);
    EXPECT_FALSE(c.lookup(1, 1));
    EXPECT_EQ(c.usedBytes(), 0u);
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

struct Stack
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;

    explicit Stack(std::uint64_t cache_bytes)
    {
        NandConfig nand;
        nand.channels = 2;
        nand.diesPerChannel = 2;
        nand.blocksPerPlane = 32;
        nand.pagesPerBlock = 32;
        FtlConfig ftl_cfg;
        ssd = std::make_unique<Ssd>(ctx, nand, ftl_cfg, SsdConfig{});
        EngineConfig ecfg;
        ecfg.recordCount = 300;
        ecfg.journalHalfBytes = 2 * kMiB;
        ecfg.checkpointInterval = 0;
        ecfg.hostCacheBytes = cache_bytes;
        engine = std::make_unique<KvEngine>(ctx, *ssd, ecfg);
        engine->load([](std::uint64_t) { return 256u; });
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }
};

TEST(HostCacheEngine, RepeatGetsHitAndSkipDevice)
{
    Stack s(64 * kKiB);
    // First GET misses (cold), second hits.
    s.engine->get(5, [](const QueryResult &) {});
    s.eq.run();
    const std::uint64_t reads_before =
        s.ssd->stats().get("ssd.cmd.read");
    s.engine->get(5, [](const QueryResult &) {});
    s.eq.run();
    EXPECT_EQ(s.ssd->stats().get("ssd.cmd.read"), reads_before);
    EXPECT_GE(s.engine->stats().get("engine.hostCacheHits"), 1u);
}

TEST(HostCacheEngine, UpdateInvalidatesOldVersion)
{
    Stack s(64 * kKiB);
    s.engine->get(5, [](const QueryResult &) {});
    s.eq.run();
    s.engine->update(5, 384, [](const QueryResult &) {});
    s.eq.run();
    // The update commits into the cache, so this GET still hits —
    // but at the *new* version (content verified internally).
    const std::uint64_t hits_before =
        s.engine->stats().get("engine.hostCacheHits");
    bool found = false;
    s.engine->get(5, [&](const QueryResult &r) { found = r.found; });
    s.eq.run();
    EXPECT_TRUE(found);
    EXPECT_GT(s.engine->stats().get("engine.hostCacheHits"),
              hits_before);
}

TEST(HostCacheEngine, DeleteEvicts)
{
    Stack s(64 * kKiB);
    s.engine->get(7, [](const QueryResult &) {});
    s.eq.run();
    s.engine->erase(7, [](const QueryResult &) {});
    s.eq.run();
    bool found = true;
    s.engine->get(7, [&](const QueryResult &r) { found = r.found; });
    s.eq.run();
    EXPECT_FALSE(found);
}

TEST(HostCacheEngine, CacheLatencyIsHostOnly)
{
    Stack s(64 * kKiB);
    s.engine->get(9, [](const QueryResult &) {});
    s.eq.run();
    const Tick start = s.eq.now();
    Tick done = 0;
    s.engine->get(9, [&](const QueryResult &r) { done = r.done; });
    s.eq.run();
    // Hit latency: host CPU only, far below a flash read.
    EXPECT_LT(done - start, 10 * kUsec);
}

TEST(HostCacheEngine, DisabledCacheAlwaysReads)
{
    Stack s(0);
    s.engine->get(5, [](const QueryResult &) {});
    s.engine->get(5, [](const QueryResult &) {});
    s.eq.run();
    EXPECT_EQ(s.engine->stats().get("engine.hostCacheHits"), 0u);
    EXPECT_GE(s.ssd->stats().get("ssd.cmd.read"), 2u);
}

} // namespace
} // namespace checkin
