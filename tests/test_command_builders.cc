/**
 * @file
 * Command factory-builder tests: every builder must round-trip its
 * fields, CowPair::make must match aggregate layout, CmdResult must
 * gate on status, and Ssd::Completion must stay inline (no heap
 * allocation per submission).
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/command.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 16;
    return c;
}

SectorData
sector(std::uint64_t base)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = base * 10 + c + 1;
    return d;
}

TEST(CommandBuilders, ReadRoundTrip)
{
    const Command c = Command::read(42, 8, IoCause::Checkpoint);
    EXPECT_EQ(c.type, CmdType::Read);
    EXPECT_EQ(c.cause, IoCause::Checkpoint);
    EXPECT_EQ(c.lba, 42u);
    EXPECT_EQ(c.nsect, 8u);
    EXPECT_TRUE(c.payload.empty());
    // Default cause is the query path.
    EXPECT_EQ(Command::read(0, 1).cause, IoCause::Query);
}

TEST(CommandBuilders, WriteRoundTrip)
{
    std::vector<SectorData> payload = {sector(1), sector(2),
                                       sector(3)};
    const Command c =
        Command::write(16, payload, IoCause::Journal, 9);
    EXPECT_EQ(c.type, CmdType::Write);
    EXPECT_EQ(c.cause, IoCause::Journal);
    EXPECT_EQ(c.lba, 16u);
    // nsect is derived from the payload, never passed separately.
    EXPECT_EQ(c.nsect, 3u);
    ASSERT_EQ(c.payload.size(), 3u);
    EXPECT_EQ(c.payload[0], sector(1));
    EXPECT_EQ(c.payload[2], sector(3));
    EXPECT_EQ(c.version, 9u);
    EXPECT_TRUE(c.unitOob.empty());
}

TEST(CommandBuilders, TrimAndFlushRoundTrip)
{
    const Command t = Command::trim(100, 32);
    EXPECT_EQ(t.type, CmdType::Trim);
    EXPECT_EQ(t.lba, 100u);
    EXPECT_EQ(t.nsect, 32u);

    const Command f = Command::flush();
    EXPECT_EQ(f.type, CmdType::Flush);
    EXPECT_EQ(f.nsect, 0u);
}

TEST(CommandBuilders, CowBuildersCarryPairsAndCheckpointCause)
{
    const CowPair p1 = CowPair::make(10, 1, 200, 6, 5);
    const CowPair p2 = CowPair::make(20, 0, 300, 8, 5, true);

    const Command single = Command::cowSingle(p1);
    EXPECT_EQ(single.type, CmdType::CowSingle);
    EXPECT_EQ(single.cause, IoCause::Checkpoint);
    ASSERT_EQ(single.pairs.size(), 1u);
    EXPECT_EQ(single.pairs[0].src, 10u);

    const Command multi = Command::cowMulti({p1, p2});
    EXPECT_EQ(multi.type, CmdType::CowMulti);
    EXPECT_EQ(multi.cause, IoCause::Checkpoint);
    ASSERT_EQ(multi.pairs.size(), 2u);
    EXPECT_TRUE(multi.pairs[1].forceCopy);

    const Command remap = Command::checkpointRemap({p2});
    EXPECT_EQ(remap.type, CmdType::CheckpointRemap);
    EXPECT_EQ(remap.cause, IoCause::Checkpoint);
    ASSERT_EQ(remap.pairs.size(), 1u);
    EXPECT_EQ(remap.pairs[0].dst, 300u);
}

TEST(CommandBuilders, DeleteLogsRoundTrip)
{
    const Command c = Command::deleteLogs(512, 64);
    EXPECT_EQ(c.type, CmdType::DeleteLogs);
    EXPECT_EQ(c.cause, IoCause::Metadata);
    EXPECT_EQ(c.lba, 512u);
    EXPECT_EQ(c.nsect, 64u);
}

TEST(CommandBuilders, CowPairMakeAndSectorArithmetic)
{
    const CowPair p = CowPair::make(100, 3, 200, 6, 7, true);
    EXPECT_EQ(p.src, 100u);
    EXPECT_EQ(p.srcChunkShift, 3u);
    EXPECT_EQ(p.dst, 200u);
    EXPECT_EQ(p.chunks, 6u);
    EXPECT_EQ(p.version, 7u);
    EXPECT_TRUE(p.forceCopy);
    // 3 + 6 chunks span ceil(9/4) = 3 source sectors; the shift does
    // not apply at the destination: ceil(6/4) = 2.
    EXPECT_EQ(p.srcSectors(), 3u);
    EXPECT_EQ(p.dstSectors(), 2u);
}

TEST(CmdResultContract, RequireGatesOnStatus)
{
    CmdResult ok;
    ok.tick = 77;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.require(), 77u);

    CmdResult bad;
    bad.tick = 88;
    bad.status = CmdStatus::MediaError;
    EXPECT_FALSE(bad.ok());
    EXPECT_THROW(bad.require(), std::runtime_error);
}

TEST(CompletionCallback, TypicalCapturesStayInline)
{
    bool fired = false;
    Tick tick = 0;
    Ssd::Completion cb([&fired, &tick](const CmdResult &r) {
        fired = true;
        tick = r.tick;
    });
    EXPECT_TRUE(cb.isInline());
    CmdResult r;
    r.tick = 5;
    cb(r);
    EXPECT_TRUE(fired);
    EXPECT_EQ(tick, 5u);
}

TEST(CompletionCallback, SubmissionsNeverFallBackToHeap)
{
    SimContext ctx;
    FtlConfig fcfg;
    fcfg.mappingUnitBytes = 512;
    Ssd ssd(ctx, smallNand(), fcfg, SsdConfig{});

    const std::uint64_t before = Ssd::Completion::heapFallbacks();
    std::uint32_t completions = 0;
    for (int i = 0; i < 32; ++i) {
        std::vector<SectorData> payload = {sector(i)};
        ssd.submit(Command::write(Lba(i), std::move(payload),
                                  IoCause::Query, i + 1),
                   [&completions](const CmdResult &r) {
                       r.require();
                       ++completions;
                   });
    }
    ssd.submit(Command::read(0, 8),
               [&completions](const CmdResult &r) {
                   r.require();
                   ++completions;
               });
    ctx.events().run();
    EXPECT_EQ(completions, 33u);
    EXPECT_EQ(Ssd::Completion::heapFallbacks(), before);
}

} // namespace
} // namespace checkin
