/**
 * @file
 * Unit tests for the flat intrusive LRU used by the FTL hot caches,
 * including an equivalence check against a naive reference LRU.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ftl/flat_lru.h"
#include "sim/rng.h"

namespace checkin {
namespace {

TEST(FlatLru, InsertTouchEvictOrder)
{
    FlatLru lru;
    lru.init(16, 3);
    EXPECT_EQ(lru.insert(1), kInvalidAddr);
    EXPECT_EQ(lru.insert(2), kInvalidAddr);
    EXPECT_EQ(lru.insert(3), kInvalidAddr);
    EXPECT_EQ(lru.size(), 3u);
    EXPECT_EQ(lru.lruKey(), 1u);

    // Touch the LRU entry; 2 becomes the eviction candidate.
    EXPECT_TRUE(lru.touch(1));
    EXPECT_EQ(lru.lruKey(), 2u);
    EXPECT_EQ(lru.insert(4), 2u);
    EXPECT_FALSE(lru.contains(2));
    EXPECT_TRUE(lru.contains(1));
    EXPECT_TRUE(lru.contains(3));
    EXPECT_TRUE(lru.contains(4));
}

TEST(FlatLru, TouchMissesAndReinsertion)
{
    FlatLru lru;
    lru.init(8, 2);
    EXPECT_FALSE(lru.touch(5));
    lru.insert(5);
    EXPECT_TRUE(lru.touch(5));
    // Re-insert of a resident key is a touch, not an eviction.
    lru.insert(6);
    EXPECT_EQ(lru.insert(5), kInvalidAddr);
    EXPECT_EQ(lru.lruKey(), 6u);
}

TEST(FlatLru, EraseUnlinksAnyPosition)
{
    FlatLru lru;
    lru.init(8, 4);
    for (std::uint64_t k = 0; k < 4; ++k)
        lru.insert(k);
    lru.erase(2); // middle
    lru.erase(0); // tail
    lru.erase(3); // head
    EXPECT_EQ(lru.size(), 1u);
    EXPECT_TRUE(lru.contains(1));
    lru.erase(1);
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_EQ(lru.lruKey(), kInvalidAddr);
    lru.erase(1); // erase of absent key is a no-op
    lru.insert(7);
    EXPECT_TRUE(lru.contains(7));
}

TEST(FlatLru, ZeroCapacityDisablesResidency)
{
    FlatLru lru;
    lru.init(8, 0);
    EXPECT_EQ(lru.insert(3), kInvalidAddr);
    EXPECT_FALSE(lru.contains(3));
    EXPECT_EQ(lru.size(), 0u);
}

TEST(FlatLru, ClearKeepsLinksReusable)
{
    FlatLru lru;
    lru.init(16, 4);
    for (std::uint64_t k = 0; k < 8; ++k)
        lru.insert(k);
    lru.clear();
    EXPECT_EQ(lru.size(), 0u);
    for (std::uint64_t k = 0; k < 16; ++k)
        EXPECT_FALSE(lru.contains(k));
    lru.insert(9);
    EXPECT_TRUE(lru.contains(9));
    EXPECT_EQ(lru.lruKey(), 9u);
}

/** Randomized equivalence against the list+map LRU it replaced. */
TEST(FlatLru, MatchesReferenceLruUnderRandomOps)
{
    constexpr std::uint64_t kUniverse = 64;
    constexpr std::size_t kCapacity = 8;

    FlatLru flat;
    flat.init(kUniverse, kCapacity);

    std::list<std::uint64_t> ref_list;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        ref_index;
    auto ref_insert = [&](std::uint64_t key) {
        auto it = ref_index.find(key);
        if (it != ref_index.end()) {
            ref_list.splice(ref_list.begin(), ref_list, it->second);
            return;
        }
        ref_list.push_front(key);
        ref_index[key] = ref_list.begin();
        if (ref_list.size() > kCapacity) {
            ref_index.erase(ref_list.back());
            ref_list.pop_back();
        }
    };
    auto ref_erase = [&](std::uint64_t key) {
        auto it = ref_index.find(key);
        if (it == ref_index.end())
            return;
        ref_list.erase(it->second);
        ref_index.erase(it);
    };

    Rng rng(123);
    for (int op = 0; op < 20'000; ++op) {
        const std::uint64_t key = rng.nextBounded(kUniverse);
        switch (rng.nextBounded(4)) {
          case 0:
            flat.erase(key);
            ref_erase(key);
            break;
          default:
            flat.insert(key);
            ref_insert(key);
            break;
        }
        ASSERT_EQ(flat.size(), ref_list.size());
        ASSERT_EQ(flat.contains(key),
                  ref_index.find(key) != ref_index.end());
        if (!ref_list.empty())
            ASSERT_EQ(flat.lruKey(), ref_list.back());
    }
}

} // namespace
} // namespace checkin
