/**
 * @file
 * Tests for the observability subsystem: tracer semantics and
 * zero-cost-when-disabled guarantee, JSON writer, metrics registry
 * exporters, artifact bundles, and end-to-end trace determinism.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "harness/presets.h"
#include "harness/run_export.h"
#include "obs/artifacts.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/stats.h"

namespace checkin {
namespace {

// ----------------------------------------------------------------------
// Tracer
// ----------------------------------------------------------------------

TEST(Tracer, RecordsSpansInstantsAndCounters)
{
    obs::Tracer t;
    t.setEnabled(true);
    t.span(obs::Cat::Nand, 2, "nand.prog", 100, 250, {{"ppn", 7}});
    t.instant(obs::Cat::Ftl, 0, "ftl.remap", 300);
    t.counter(obs::Cat::Ssd, 1, "isce.smallBuf", 400, 13);
    ASSERT_EQ(t.eventCount(), 3u);
    const auto &e = t.events();
    EXPECT_EQ(e[0].phase, obs::Tracer::Phase::Span);
    EXPECT_EQ(e[0].ts, 100u);
    EXPECT_EQ(e[0].dur, 150u);
    EXPECT_EQ(e[0].nargs, 1u);
    EXPECT_STREQ(e[0].argKeys[0], "ppn");
    EXPECT_EQ(e[0].argVals[0], 7u);
    EXPECT_EQ(e[1].phase, obs::Tracer::Phase::Instant);
    EXPECT_EQ(e[2].phase, obs::Tracer::Phase::Counter);
    EXPECT_EQ(e[2].dur, 13u);
    EXPECT_EQ(t.countIn(obs::Cat::Nand), 1u);
    EXPECT_EQ(t.countIn(obs::Cat::Workload), 0u);
}

TEST(Tracer, DisabledTracerRecordsNothingAndAllocatesNothing)
{
    obs::Tracer t; // disabled by default
    obs::TraceScope scope(t);
    EXPECT_FALSE(obs::traceOn());
    obs::span(obs::Cat::Nand, 0, "nand.prog", 1, 2);
    obs::instant(obs::Cat::Ftl, 0, "ftl.remap", 3);
    obs::counterSample(obs::Cat::Ssd, 0, "ssd.writeBuf", 4, 5);
    obs::nameLane(obs::Cat::Nand, 0, "die0");
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.storageCapacity(), 0u);
}

TEST(Tracer, ProbesReachTheInstalledTracerOnlyInsideScope)
{
    obs::Tracer t;
    t.setEnabled(true);
    {
        obs::TraceScope scope(t);
        EXPECT_TRUE(obs::traceOn());
        obs::instant(obs::Cat::Sim, 0, "tick", 1);
    }
    EXPECT_FALSE(obs::traceOn());
    obs::instant(obs::Cat::Sim, 0, "tick", 2); // dropped
    EXPECT_EQ(t.eventCount(), 1u);
}

TEST(Tracer, NestedScopesRestoreThePreviousTracer)
{
    obs::Tracer outer;
    outer.setEnabled(true);
    obs::TraceScope outer_scope(outer);
    {
        obs::Tracer inner;
        inner.setEnabled(true);
        obs::TraceScope inner_scope(inner);
        obs::instant(obs::Cat::Sim, 0, "inner", 1);
        EXPECT_EQ(inner.eventCount(), 1u);
    }
    obs::instant(obs::Cat::Sim, 0, "outer", 2);
    EXPECT_EQ(outer.eventCount(), 1u);
}

TEST(Tracer, JsonHasMetadataAndSortedEvents)
{
    obs::Tracer t;
    t.setEnabled(true);
    t.setLaneName(obs::Cat::Nand, 0, "die0");
    // Emit out of timestamp order; writeJson sorts by ts.
    t.instant(obs::Cat::Nand, 0, "late", 900);
    t.span(obs::Cat::Nand, 0, "early", 100, 200);
    const std::string json = t.toJson();
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"die0\""), std::string::npos);
    EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
}

TEST(Tracer, ClearDropsEventsButKeepsLaneNames)
{
    obs::Tracer t;
    t.setEnabled(true);
    t.setLaneName(obs::Cat::Ftl, 0, "ftl");
    t.instant(obs::Cat::Ftl, 0, "ftl.remap", 5);
    t.clear();
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_NE(t.toJson().find("\"ftl\""), std::string::npos);
}

// ----------------------------------------------------------------------
// JSON writer
// ----------------------------------------------------------------------

TEST(JsonWriter, CommasNestingAndEscaping)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject()
        .kv("a", std::uint64_t(1))
        .key("b")
        .beginArray()
        .value(std::uint64_t(2))
        .value("x\"y\n")
        .endArray()
        .kv("c", true)
        .endObject();
    EXPECT_EQ(os.str(), "{\"a\":1,\"b\":[2,\"x\\\"y\\n\"],"
                        "\"c\":true}");
}

TEST(JsonWriter, StableDoubleFormat)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginArray().value(0.5).value(1.0 / 3.0).endArray();
    EXPECT_EQ(os.str(), "[0.5,0.333333]");
}

// ----------------------------------------------------------------------
// StatRegistry interning
// ----------------------------------------------------------------------

TEST(StatRegistry, InternedAddAliasesTheStringCounter)
{
    StatRegistry s;
    const StatId id = s.intern("x.count");
    s.add(id, 2);
    s.add("x.count", 3);
    EXPECT_EQ(s.get(id), 5u);
    EXPECT_EQ(s.get("x.count"), 5u);
    EXPECT_EQ(s.intern("x.count"), id); // idempotent
    EXPECT_EQ(s.all().at("x.count"), 5u);
}

// ----------------------------------------------------------------------
// Metrics registry
// ----------------------------------------------------------------------

TEST(MetricsRegistry, ScalarsSeriesAndHistogramsExport)
{
    obs::MetricsRegistry m;
    const obs::MetricId c = m.counter("ops");
    const obs::MetricId g = m.gauge("depth");
    const obs::MetricId s = m.series("lat", 100);
    const obs::MetricId h = m.histogram("lat");
    m.add(c, 4);
    m.set(g, 9);
    m.sample(s, 50, 10);
    m.sample(s, 250, 30);
    m.observe(h, 10);
    m.observe(h, 30);
    EXPECT_EQ(m.value(c), 4u);
    EXPECT_EQ(m.seriesData(s).interval(), 100u);
    EXPECT_EQ(m.histogramData(h).count(), 2u);

    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"ops\":4"), std::string::npos);
    EXPECT_NE(json.find("\"depth\":9"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);

    EXPECT_NE(m.scalarsCsv().find("ops,4"), std::string::npos);
    const std::string csv = m.seriesCsv();
    EXPECT_NE(csv.find("series,bucket,start_tick,count,sum,max"),
              std::string::npos);
    EXPECT_NE(csv.find("lat,0,0,1,10,10"), std::string::npos);
    EXPECT_NE(csv.find("lat,2,200,1,30,30"), std::string::npos);
}

TEST(MetricsRegistry, CsvEscapesDelimitersAndQuotes)
{
    // RFC 4180: names with a comma/quote/newline are quoted with
    // internal quotes doubled, so they cannot shift CSV columns.
    obs::MetricsRegistry m;
    m.add(m.counter("bad,name\"x\""), 3);
    m.sample(m.series("s,1", 10), 5, 50);

    const std::string sc = m.scalarsCsv();
    EXPECT_EQ(sc.rfind("name,value\n", 0), 0u);
    EXPECT_NE(sc.find("\"bad,name\"\"x\"\"\",3"), std::string::npos)
        << sc;

    const std::string se = m.seriesCsv();
    EXPECT_EQ(se.rfind("series,bucket,start_tick,count,sum,max\n", 0),
              0u);
    EXPECT_NE(se.find("\"s,1\",0,0,1,50,50"), std::string::npos)
        << se;
}

TEST(MetricsRegistry, ImportStatsMergesLegacyCounters)
{
    StatRegistry legacy;
    legacy.add("nand.reads", 7);
    obs::MetricsRegistry m;
    m.add(m.counter("nand.reads"), 1);
    m.importStats(legacy);
    EXPECT_EQ(m.value(m.counter("nand.reads")), 8u);
}

TEST(MetricsRegistry, ExportersAreDeterministic)
{
    auto build = [] {
        obs::MetricsRegistry m;
        m.add(m.counter("b"), 2);
        m.add(m.counter("a"), 1);
        m.sample(m.series("s", 10), 5, 50);
        m.observe(m.histogram("h"), 123);
        return m.toJson() + m.scalarsCsv() + m.seriesCsv();
    };
    EXPECT_EQ(build(), build());
}

// ----------------------------------------------------------------------
// Artifacts + end-to-end runs
// ----------------------------------------------------------------------

namespace {

ExperimentConfig
tinyTracedConfig(const std::string &artifact_dir)
{
    ExperimentConfig cfg = presets::small();
    cfg.workload.operationCount = 1200;
    cfg.threads = 8;
    cfg.obs.traceEnabled = true;
    cfg.obs.attributionEnabled = true;
    cfg.obs.artifactDir = artifact_dir;
    cfg.obs.runName = "obs-test";
    return cfg;
}

/** Run a traced experiment and return the trace JSON bytes. */
std::string
tracedRunJson()
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    obs::TraceScope scope(tracer);
    ExperimentConfig cfg = tinyTracedConfig("");
    runExperiment(cfg);
    return tracer.toJson();
}

} // namespace

TEST(ObsRun, TraceCoversAllDeviceLayersWithSpans)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    obs::TraceScope scope(tracer);
    ExperimentConfig cfg = tinyTracedConfig("");
    runExperiment(cfg);
    std::set<obs::Cat> span_layers;
    for (const auto &e : tracer.events()) {
        if (e.phase == obs::Tracer::Phase::Span)
            span_layers.insert(e.cat);
    }
    EXPECT_TRUE(span_layers.count(obs::Cat::Workload));
    EXPECT_TRUE(span_layers.count(obs::Cat::Engine));
    EXPECT_TRUE(span_layers.count(obs::Cat::Ssd));
    EXPECT_TRUE(span_layers.count(obs::Cat::Ftl));
    EXPECT_TRUE(span_layers.count(obs::Cat::Nand));
}

TEST(ObsRun, SameSeedProducesByteIdenticalTraces)
{
    const std::string a = tracedRunJson();
    const std::string b = tracedRunJson();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ObsRun, DisabledTracingAllocatesNoTraceStorage)
{
    obs::Tracer tracer; // installed but disabled
    obs::TraceScope scope(tracer);
    ExperimentConfig cfg = tinyTracedConfig("");
    cfg.obs.traceEnabled = false;
    cfg.obs.attributionEnabled = false;
    const RunResult r = runExperiment(cfg);
    EXPECT_GT(r.client.opsCompleted, 0u);
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.storageCapacity(), 0u);
    EXPECT_TRUE(r.artifacts.empty());
}

TEST(ObsRun, DisabledAttributionAllocatesNoStorageOrTokens)
{
    // The zero-overhead guard: with attribution off, the whole op
    // path must never touch the installed (disabled) collector — no
    // pooled tokens are created and no storage is allocated.
    obs::AttributionCollector attr; // installed but disabled
    obs::AttributionScope scope(&attr);
    ExperimentConfig cfg = tinyTracedConfig("");
    cfg.obs.traceEnabled = false;
    cfg.obs.attributionEnabled = false;
    const RunResult r = runExperiment(cfg);
    EXPECT_GT(r.client.opsCompleted, 0u);
    EXPECT_EQ(attr.poolSize(), 0u);
    EXPECT_EQ(attr.liveTokens(), 0u);
    EXPECT_EQ(attr.storageBytes(), 0u);
    EXPECT_FALSE(r.attribution.enabled);
    EXPECT_TRUE(r.checkpointTimeline.empty());
}

TEST(ObsRun, ArtifactBundleIsWrittenToDisk)
{
    const std::string dir =
        ::testing::TempDir() + "checkin-obs-artifacts";
    ExperimentConfig cfg = tinyTracedConfig(dir);
    const RunResult r = runExperiment(cfg);
    ASSERT_FALSE(r.artifacts.empty());
    EXPECT_EQ(r.artifacts.dir, dir + "/obs-test");
    const std::vector<std::string> expect = {
        "trace.json",        "metrics.json",     "metrics.csv",
        "series.csv",        "attribution.json", "checkpoints.json",
        "summary.json"};
    EXPECT_EQ(r.artifacts.files, expect);
    for (const std::string &f : r.artifacts.files) {
        std::ifstream in(r.artifacts.dir + "/" + f);
        ASSERT_TRUE(in.good()) << f;
        std::string first;
        std::getline(in, first);
        EXPECT_FALSE(first.empty()) << f;
    }
}

TEST(ObsRun, RunSummaryJsonIsDeterministicAndComplete)
{
    ExperimentConfig cfg = tinyTracedConfig("");
    cfg.obs.traceEnabled = false;
    const RunResult r = runExperiment(cfg);
    const std::string json = runResultJson(r);
    EXPECT_EQ(json, runResultJson(r));
    EXPECT_EQ(json.back(), '\n');
    for (const char *k :
         {"\"throughputOps\"", "\"checkpoints\"", "\"flash\"",
          "\"journal\"", "\"client\"", "\"raw\""}) {
        EXPECT_NE(json.find(k), std::string::npos) << k;
    }
}

} // namespace
} // namespace checkin
