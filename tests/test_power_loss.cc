/**
 * @file
 * Device-level power-loss rebuild tests (paper §III-G): the FTL
 * reconstructs its RAM mapping structures from the OOB area —
 * including checkpoint remaps, which were never physically
 * rewritten — and the engine then recovers on top.
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/kv_engine.h"
#include "ftl/ftl.h"
#include "nand/nand_flash.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

SectorData
sectorFor(std::uint64_t tag)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = mix64(tag * 4 + c + 1);
    return d;
}

// ---------------------------------------------------------------------
// FTL-level rebuild
// ---------------------------------------------------------------------

TEST(PowerLossFtl, RestoresWriteOriginMappings)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    for (Lpn lpn = 0; lpn < 64; ++lpn) {
        const SectorData d = sectorFor(lpn + 1);
        ftl.writeSectors(lpn, 1, &d, IoCause::Query, 0, lpn + 1);
    }
    ftl.flushOpenPages(0);
    const auto report = ftl.rebuildFromPowerLoss();
    EXPECT_GE(report.slotsRecovered, 64u);
    ftl.checkInvariants();
    for (Lpn lpn = 0; lpn < 64; ++lpn) {
        SectorData got;
        ftl.peekSectors(lpn, 1, &got);
        EXPECT_EQ(got, sectorFor(lpn + 1)) << "lpn " << lpn;
    }
}

TEST(PowerLossFtl, NewestVersionOfAnLpnWins)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    const SectorData v1 = sectorFor(1);
    const SectorData v2 = sectorFor(2);
    ftl.writeSectors(5, 1, &v1, IoCause::Query, 0, 1);
    ftl.writeSectors(5, 1, &v2, IoCause::Query, 0, 2);
    ftl.flushOpenPages(0);
    ftl.rebuildFromPowerLoss();
    SectorData got;
    ftl.peekSectors(5, 1, &got);
    EXPECT_EQ(got, v2);
}

TEST(PowerLossFtl, RemapRecoveredViaOobTargetAnnotation)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    // Journal write annotated with its checkpoint target (LPN 40).
    const SectorData d = sectorFor(9);
    OobEntry ann;
    ann.version = 7;
    ann.targetLpn = 40;
    ftl.writeSectors(0, 1, &d, IoCause::Journal, 0, 7, &ann);
    // The checkpoint remap itself is a pure RAM update.
    ftl.remapUnit(0, 40, 0);
    ftl.flushOpenPages(0);

    ftl.rebuildFromPowerLoss();
    ftl.checkInvariants();
    SectorData got;
    ftl.peekSectors(40, 1, &got);
    EXPECT_EQ(got, d) << "remapped data lost by rebuild";
}

TEST(PowerLossFtl, RemapSurvivesEvenAfterJournalTrim)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    const SectorData d = sectorFor(11);
    OobEntry ann;
    ann.version = 3;
    ann.targetLpn = 50;
    ftl.writeSectors(0, 1, &d, IoCause::Journal, 0, 3, &ann);
    ftl.remapUnit(0, 50, 0);
    ftl.trimSectors(0, 1); // journal log deleted after checkpoint
    ftl.flushOpenPages(0);

    ftl.rebuildFromPowerLoss();
    SectorData got;
    ftl.peekSectors(50, 1, &got);
    EXPECT_EQ(got, d);
}

TEST(PowerLossFtl, NewerDirectWriteBeatsStaleAnnotation)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    const SectorData journal_v3 = sectorFor(3);
    const SectorData direct_v5 = sectorFor(5);
    OobEntry ann;
    ann.version = 3;
    ann.targetLpn = 60;
    ftl.writeSectors(0, 1, &journal_v3, IoCause::Journal, 0, 3,
                     &ann);
    ftl.remapUnit(0, 60, 0);
    // A later (higher-version) direct write of the target.
    ftl.writeSectors(60, 1, &direct_v5, IoCause::Checkpoint, 0, 5);
    ftl.flushOpenPages(0);

    ftl.rebuildFromPowerLoss();
    SectorData got;
    ftl.peekSectors(60, 1, &got);
    EXPECT_EQ(got, direct_v5);
}

TEST(PowerLossFtl, RebuildKeepsDeviceOperable)
{
    NandFlash nand(smallNand());
    FtlConfig cfg;
    cfg.exportedRatio = 0.7;
    Ftl ftl(nand, cfg);
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const SectorData d = sectorFor(std::uint64_t(i) + 100);
        ftl.writeSectors(rng.nextBounded(256), 1, &d, IoCause::Query,
                         0, std::uint64_t(i) + 1);
    }
    ftl.flushOpenPages(0);
    ftl.rebuildFromPowerLoss();
    ftl.checkInvariants();
    // Keep writing; GC must still function on rebuilt state.
    for (int i = 0; i < 5000; ++i) {
        const SectorData d = sectorFor(std::uint64_t(i) + 9000);
        ftl.writeSectors(rng.nextBounded(256), 1, &d, IoCause::Query,
                         0, std::uint64_t(i) + 6000);
    }
    ftl.checkInvariants();
}

// ---------------------------------------------------------------------
// Full-stack: SPOR + firmware rebuild + engine recovery
// ---------------------------------------------------------------------

class PowerLossStack
    : public ::testing::TestWithParam<CheckpointMode>
{
  protected:
    EngineConfig
    engineCfg() const
    {
        EngineConfig c;
        c.mode = GetParam();
        c.recordCount = 300;
        c.journalHalfBytes = 2 * kMiB;
        c.checkpointJournalBytes = kMiB;
        c.checkpointInterval = 0;
        return c;
    }
};

TEST_P(PowerLossStack, NoCommittedUpdateLostThroughFirmwareRebuild)
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    FtlConfig ftl_cfg;
    ftl_cfg.mappingUnitBytes =
        GetParam() == CheckpointMode::Baseline ||
                GetParam() == CheckpointMode::IscA ||
                GetParam() == CheckpointMode::IscB
            ? 4096
            : 512;
    Ssd ssd(ctx, smallNand(), ftl_cfg, SsdConfig{});
    auto engine = std::make_unique<KvEngine>(ctx, ssd, engineCfg());
    engine->load([](std::uint64_t) { return 384u; });
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();

    Rng rng(5);
    std::map<std::uint64_t, std::uint32_t> committed;
    for (int i = 0; i < 600; ++i) {
        const std::uint64_t key = rng.nextBounded(300);
        engine->update(key,
                       std::uint32_t(128 * (1 + rng.nextBounded(4))),
                       [&committed, key,
                        &engine](const QueryResult &) {
                           committed[key] =
                               engine->keymap()[key].version;
                       });
        if (i == 300)
            engine->requestCheckpoint();
    }
    eq.run();

    // Host crash + device power loss with SPOR + firmware rebuild.
    eq.clear();
    engine.reset();
    const auto report = ssd.suddenPowerLoss();
    EXPECT_GT(report.slotsRecovered, 0u);
    ssd.ftl().checkInvariants();

    engine = std::make_unique<KvEngine>(ctx, ssd, engineCfg());
    engine->recover();
    for (const auto &[key, version] : committed) {
        EXPECT_GE(engine->keymap()[key].version, version)
            << "lost key " << key;
    }
    engine->verifyAllKeys();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PowerLossStack,
    ::testing::Values(CheckpointMode::Baseline, CheckpointMode::IscC,
                      CheckpointMode::CheckIn),
    [](const ::testing::TestParamInfo<CheckpointMode> &info) {
        switch (info.param) {
          case CheckpointMode::Baseline: return "Baseline";
          case CheckpointMode::IscC: return "IscC";
          case CheckpointMode::CheckIn: return "CheckIn";
          default: return "Other";
        }
    });

} // namespace
} // namespace checkin
