/**
 * @file
 * Property/fuzz tests: random operation sequences against the FTL
 * with full invariant checking and a shadow-model content oracle.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "ftl/ftl.h"
#include "nand/nand_flash.h"
#include "sim/rng.h"

namespace checkin {
namespace {

NandConfig
fuzzNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 12;
    c.pagesPerBlock = 12;
    return c;
}

SectorData
sectorFor(std::uint64_t tag)
{
    SectorData d;
    for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
        d.chunks[c] = mix64(tag * 4 + c + 1);
    return d;
}

/**
 * Reference model: logical sector -> expected SectorData. Remaps are
 * modeled as content copies (both LPNs then read the same content).
 */
class FtlFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    FtlFuzz() : nand_(fuzzNand())
    {
        FtlConfig cfg;
        cfg.mappingUnitBytes = 512;
        cfg.exportedRatio = 0.7;
        cfg.gcLowWaterBlocks = 3;
        cfg.gcHighWaterBlocks = 5;
        ftl_ = std::make_unique<Ftl>(nand_, cfg);
        span_ = ftl_->logicalUnits() / 2;
    }

    void
    checkAll()
    {
        ftl_->checkInvariants();
        for (const auto &[lpn, want] : model_) {
            SectorData got;
            ftl_->peekSectors(lpn, 1, &got);
            ASSERT_EQ(got, want) << "lpn " << lpn;
        }
    }

    NandFlash nand_;
    std::unique_ptr<Ftl> ftl_;
    std::map<Lpn, SectorData> model_;
    std::uint64_t span_ = 0;
    std::uint64_t tag_ = 0;
};

TEST_P(FtlFuzz, RandomOpsKeepInvariantsAndContent)
{
    Rng rng(GetParam() * 7919 + 13);
    for (int step = 0; step < 4000; ++step) {
        const Lpn a = rng.nextBounded(span_);
        const Lpn b = rng.nextBounded(span_);
        switch (rng.nextBounded(100)) {
          case 0 ... 59: { // write
            const SectorData d = sectorFor(++tag_);
            ftl_->writeSectors(a, 1, &d, IoCause::Query, 0);
            model_[a] = d;
            break;
          }
          case 60 ... 74: { // remap a -> b (CoW share)
            if (!ftl_->isMapped(a) || a == b)
                break;
            ftl_->remapUnit(a, b, 0);
            model_[b] = model_[a];
            break;
          }
          case 75 ... 84: { // copy a -> b (physical)
            if (a == b)
                break;
            ftl_->copySectors(a, b, 1, IoCause::Checkpoint, 0);
            model_[b] = ftl_->isMapped(a) ? model_[a] : SectorData{};
            if (!ftl_->isMapped(a))
                model_.erase(b);
            break;
          }
          case 85 ... 94: { // trim
            ftl_->trimSectors(a, 1);
            model_.erase(a);
            break;
          }
          default: { // background GC kick
            ftl_->runBackgroundGc(0);
            break;
          }
        }
        if (step % 500 == 499)
            checkAll();
    }
    checkAll();
    // Device must still be operable afterwards.
    const SectorData d = sectorFor(++tag_);
    ftl_->writeSectors(0, 1, &d, IoCause::Query, 0);
    model_[0] = d;
    checkAll();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlFuzz,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(FtlInvariants, CleanAfterTypicalSequences)
{
    NandFlash nand(fuzzNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    ftl.checkInvariants(); // empty device

    SectorData d = sectorFor(1);
    ftl.writeSectors(0, 1, &d, IoCause::Journal, 0);
    ftl.checkInvariants();
    ftl.remapUnit(0, 9, 0);
    ftl.checkInvariants();
    ftl.trimSectors(0, 1);
    ftl.checkInvariants();
    ftl.trimSectors(9, 1);
    ftl.checkInvariants();
}

} // namespace
} // namespace checkin
