/**
 * @file
 * Unit tests for the inline-storage event callback: move semantics,
 * inline-vs-heap selection by capture size, destruction accounting
 * (no leaks, no double-destroy), and concurrent construction across
 * threads (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_event.h"

namespace checkin {
namespace {

/** Callable that counts constructions/destructions of its copies. */
struct LifeTracker
{
    struct Counts
    {
        int constructed = 0;
        int destroyed = 0;
        int invoked = 0;
    };

    explicit LifeTracker(Counts *counts) : counts(counts)
    {
        ++counts->constructed;
    }
    LifeTracker(const LifeTracker &o) : counts(o.counts)
    {
        ++counts->constructed;
    }
    LifeTracker(LifeTracker &&o) noexcept : counts(o.counts)
    {
        ++counts->constructed;
    }
    ~LifeTracker() { ++counts->destroyed; }

    void operator()() const { ++counts->invoked; }

    Counts *counts;
};

TEST(InlineCallback, EmptyAndBool)
{
    InlineCallback cb;
    EXPECT_FALSE(bool(cb));
    cb = InlineCallback([] {});
    EXPECT_TRUE(bool(cb));
    cb.reset();
    EXPECT_FALSE(bool(cb));
}

TEST(InlineCallback, SmallCapturesStayInline)
{
    int hits = 0;
    int *p = &hits;
    InlineCallback small([p] { ++*p; });
    EXPECT_TRUE(small.isInline());
    small();
    EXPECT_EQ(hits, 1);

    // The simulator's biggest hot lambda shape: this + two words +
    // a std::function continuation. Must not allocate.
    std::function<void()> cont = [p] { ++*p; };
    std::uint64_t key = 7;
    std::uint32_t bytes = 512;
    InlineCallback hot(
        [p, key, bytes, cont = std::move(cont)]() mutable {
            (void)key;
            (void)bytes;
            cont();
        });
    EXPECT_TRUE(hot.isInline());
    hot();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, OversizedCapturesFallBackToHeap)
{
    const std::uint64_t before = InlineCallback::heapFallbacks();
    std::array<std::uint64_t, 16> big{};
    big[0] = 41;
    std::uint64_t out = 0;
    InlineCallback cb([big, &out] { out = big[0] + 1; });
    EXPECT_FALSE(cb.isInline());
    EXPECT_EQ(InlineCallback::heapFallbacks(), before + 1);
    cb();
    EXPECT_EQ(out, 42u);
}

TEST(InlineCallback, MoveTransfersOwnershipInline)
{
    LifeTracker::Counts counts;
    {
        InlineCallback a{LifeTracker(&counts)};
        ASSERT_TRUE(a.isInline());
        InlineCallback b(std::move(a));
        EXPECT_FALSE(bool(a)); // NOLINT: post-move state is defined
        EXPECT_TRUE(bool(b));
        b();
        InlineCallback c;
        c = std::move(b);
        EXPECT_FALSE(bool(b)); // NOLINT
        c();
    }
    EXPECT_EQ(counts.invoked, 2);
    // Every constructed copy is destroyed exactly once.
    EXPECT_EQ(counts.destroyed, counts.constructed);
}

TEST(InlineCallback, MoveTransfersOwnershipHeap)
{
    LifeTracker::Counts counts;
    {
        std::array<std::uint64_t, 16> pad{};
        auto fn = [tracker = LifeTracker(&counts), pad] {
            (void)pad;
            tracker();
        };
        InlineCallback a(std::move(fn));
        ASSERT_FALSE(a.isInline());
        InlineCallback b(std::move(a));
        b();
        // Self-contained move-assignment over a live target.
        InlineCallback c([] {});
        c = std::move(b);
        c();
    }
    EXPECT_EQ(counts.invoked, 2);
    EXPECT_EQ(counts.destroyed, counts.constructed);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget)
{
    LifeTracker::Counts old_counts;
    LifeTracker::Counts new_counts;
    InlineCallback cb{LifeTracker(&old_counts)};
    const int constructed = old_counts.constructed;
    cb = InlineCallback{LifeTracker(&new_counts)};
    // The displaced callable is destroyed exactly when replaced.
    EXPECT_EQ(old_counts.destroyed, constructed);
    cb();
    EXPECT_EQ(new_counts.invoked, 1);
}

TEST(InlineCallback, DispatchThroughQueueDestroysExactlyOnce)
{
    LifeTracker::Counts counts;
    {
        EventQueue eq;
        for (Tick t = 0; t < 100; ++t)
            eq.schedule(t * 1000, LifeTracker(&counts));
        // Half dispatch, half are dropped by a power cut.
        eq.runUntil(49 * 1000);
        eq.clear();
    }
    EXPECT_EQ(counts.invoked, 50);
    EXPECT_EQ(counts.destroyed, counts.constructed);
}

TEST(InlineCallback, ConcurrentConstructionAcrossWorkers)
{
    // Sweep workers each run their own EventQueue concurrently; the
    // only shared InlineCallback state is the heap-fallback counter.
    // TSan (CI job) verifies this test race-free.
    const std::uint64_t before = InlineCallback::heapFallbacks();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::atomic<std::uint64_t> total{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&total] {
            EventQueue eq;
            std::uint64_t local = 0;
            std::array<std::uint64_t, 16> big{};
            big[1] = 1;
            for (int i = 0; i < kPerThread; ++i) {
                eq.scheduleAfter(std::uint64_t(i) % 7,
                                 [&local] { ++local; });
                // Heap-fallback path, concurrently with other
                // workers' fallbacks.
                eq.scheduleAfter(std::uint64_t(i) % 11,
                                 [&local, big] { local += big[1]; });
            }
            eq.run();
            total.fetch_add(local, std::memory_order_relaxed);
        });
    }
    for (std::thread &t : workers)
        t.join();
    EXPECT_EQ(total.load(), std::uint64_t(kThreads) * kPerThread * 2);
    EXPECT_GE(InlineCallback::heapFallbacks(),
              before + std::uint64_t(kThreads) * kPerThread);
}

} // namespace
} // namespace checkin
