/**
 * @file
 * Crash-recovery tests: power-cut the host at arbitrary points
 * (including mid-checkpoint), rebuild a fresh engine from the device,
 * and verify no committed update is lost and all content is intact.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "engine/kv_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"
#include "workload/ycsb.h"

namespace checkin {
namespace {

NandConfig
smallNand()
{
    NandConfig c;
    c.channels = 2;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 32;
    c.pagesPerBlock = 32;
    return c;
}

EngineConfig
engineCfg(CheckpointMode mode)
{
    EngineConfig c;
    c.mode = mode;
    c.recordCount = 300;
    c.journalHalfBytes = 2 * kMiB;
    c.checkpointJournalBytes = 512 * kKiB;
    c.checkpointInterval = 0;
    return c;
}

std::uint32_t
unitFor(CheckpointMode mode)
{
    return mode == CheckpointMode::Baseline ||
                   mode == CheckpointMode::IscA ||
                   mode == CheckpointMode::IscB
               ? 4096
               : 512;
}

/** Device + crashed/recovered engines sharing one event queue. */
struct CrashRig
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<KvEngine> engine;
    CheckpointMode mode;
    /** Last version whose commit callback fired, per key. */
    std::map<std::uint64_t, std::uint32_t> committed;

    explicit CrashRig(CheckpointMode m) : mode(m)
    {
        FtlConfig ftl_cfg;
        ftl_cfg.mappingUnitBytes = unitFor(m);
        ssd = std::make_unique<Ssd>(ctx, smallNand(), ftl_cfg,
                                    SsdConfig{});
        engine = std::make_unique<KvEngine>(ctx, *ssd, engineCfg(m));
        engine->load([](std::uint64_t) { return 256u; });
        for (std::uint64_t k = 0; k < 300; ++k)
            committed[k] = 1;
        eq.schedule(ssd->quiesceTick(), [] {});
        eq.run();
    }

    void
    issueUpdates(int n, Rng &rng)
    {
        for (int i = 0; i < n; ++i) {
            const std::uint64_t key = rng.nextBounded(300);
            const auto bytes =
                std::uint32_t(128 * (1 + rng.nextBounded(4)));
            engine->update(key, bytes,
                           [this, key](const QueryResult &) {
                               auto &v = committed[key];
                               const std::uint32_t got =
                                   engine->keymap()[key].version;
                               v = std::max(v, got);
                           });
        }
    }

    /** Power cut: drop all host work, discard the engine. */
    void
    crash()
    {
        eq.clear();
        engine.reset();
    }

    /** Build a fresh engine over the surviving device and recover. */
    RecoveryInfo
    recover()
    {
        engine = std::make_unique<KvEngine>(ctx, *ssd, engineCfg(mode));
        return engine->recover();
    }

    /** No committed update may be lost; content must verify. */
    void
    checkDurability() const
    {
        for (const auto &[key, version] : committed) {
            EXPECT_GE(engine->keymap()[key].version, version)
                << "lost committed update for key " << key;
        }
        engine->verifyAllKeys();
    }
};

class RecoveryAllModes
    : public ::testing::TestWithParam<CheckpointMode>
{
};

TEST_P(RecoveryAllModes, CleanJournalReplay)
{
    CrashRig rig(GetParam());
    Rng rng(1);
    rig.issueUpdates(400, rng);
    rig.eq.run(); // everything committed, no checkpoint yet
    rig.crash();
    const RecoveryInfo info = rig.recover();
    EXPECT_GT(info.replayedLogs, 0u);
    EXPECT_EQ(info.catalogKeys, 300u);
    rig.checkDurability();
}

TEST_P(RecoveryAllModes, CrashMidWorkloadLosesNoCommit)
{
    CrashRig rig(GetParam());
    Rng rng(2);
    rig.issueUpdates(800, rng);
    // Drain only part of the event queue: some updates committed,
    // some in flight, some still buffered.
    for (int i = 0; i < 200 && rig.eq.step(); ++i) {
    }
    rig.crash();
    rig.recover();
    rig.checkDurability();
}

TEST_P(RecoveryAllModes, CrashDuringCheckpoint)
{
    CrashRig rig(GetParam());
    Rng rng(3);
    rig.issueUpdates(500, rng);
    rig.eq.run();
    rig.engine->requestCheckpoint();
    // More traffic while the checkpoint runs, then cut power while
    // both the checkpoint and the new updates are in flight.
    rig.issueUpdates(200, rng);
    for (int i = 0; i < 50 && rig.eq.step(); ++i) {
    }
    rig.crash();
    rig.recover();
    rig.checkDurability();
}

TEST_P(RecoveryAllModes, CrashAfterCheckpointBeforeMoreUpdates)
{
    CrashRig rig(GetParam());
    Rng rng(4);
    rig.issueUpdates(300, rng);
    rig.eq.run();
    rig.engine->requestCheckpoint();
    rig.eq.run();
    rig.crash();
    const RecoveryInfo info = rig.recover();
    // Everything was checkpointed: no logs to replay.
    EXPECT_EQ(info.replayedLogs, 0u);
    rig.checkDurability();
}

TEST_P(RecoveryAllModes, RecoveredStoreKeepsServing)
{
    CrashRig rig(GetParam());
    Rng rng(5);
    rig.issueUpdates(400, rng);
    for (int i = 0; i < 300 && rig.eq.step(); ++i) {
    }
    rig.crash();
    rig.recover();
    // The recovered store must accept and persist new work.
    rig.issueUpdates(200, rng);
    rig.eq.run();
    rig.engine->requestCheckpoint();
    rig.eq.run();
    rig.checkDurability();
    EXPECT_EQ(rig.engine->verifyAllKeys(), 300u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RecoveryAllModes,
    ::testing::Values(CheckpointMode::Baseline, CheckpointMode::IscA,
                      CheckpointMode::IscB, CheckpointMode::IscC,
                      CheckpointMode::CheckIn),
    [](const ::testing::TestParamInfo<CheckpointMode> &info) {
        switch (info.param) {
          case CheckpointMode::Baseline: return "Baseline";
          case CheckpointMode::IscA: return "IscA";
          case CheckpointMode::IscB: return "IscB";
          case CheckpointMode::IscC: return "IscC";
          case CheckpointMode::CheckIn: return "CheckIn";
        }
        return "Unknown";
    });

/** Property sweep: crash at many different drain depths. */
class CrashPointSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CrashPointSweep, NoCommittedUpdateLost)
{
    CrashRig rig(CheckpointMode::CheckIn);
    Rng rng(std::uint64_t(GetParam()) * 977 + 5);
    rig.issueUpdates(300, rng);
    if (GetParam() % 3 == 1)
        rig.engine->requestCheckpoint();
    rig.issueUpdates(300, rng);
    const int steps = GetParam() * 37;
    for (int i = 0; i < steps && rig.eq.step(); ++i) {
    }
    rig.crash();
    const RecoveryInfo info = rig.recover();
    (void)info;
    rig.checkDurability();
}

INSTANTIATE_TEST_SUITE_P(Depths, CrashPointSweep,
                         ::testing::Range(0, 24));

} // namespace
} // namespace checkin
