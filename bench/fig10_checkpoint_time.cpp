/**
 * @file
 * Figure 10 — pure checkpointing time vs thread count for every
 * configuration. Query processing is locked during checkpoints so
 * the measurement matches the paper's methodology (§IV-C). The
 * threads x mode grid is declared with SweepGrid and executed by the
 * parallel sweep runner.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    printHeader("Fig 10", "checkpointing time (ms) vs threads, "
                          "YCSB-A zipfian, queries locked during "
                          "checkpoint");

    ExperimentConfig base = presets::paper();
    base.engine.lockQueriesDuringCheckpoint = true;
    base.workload = WorkloadSpec::a();
    // The per-checkpoint phase timeline feeds the breakdown below.
    base.obs.attributionEnabled = true;

    const std::vector<std::uint32_t> thread_axis{4, 8, 16, 32,
                                                 64, 128};
    SweepGrid grid(base);
    std::vector<SweepGrid::Value> threads_values;
    for (std::uint32_t threads : thread_axis) {
        threads_values.push_back(
            {"t" + std::to_string(threads),
             [threads](ExperimentConfig &c) {
                 c.threads = threads;
             }});
    }
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : kAllModes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(threads_values))
        .axis(std::move(mode_values));

    BenchReport report("fig10_checkpoint_time");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"threads", "Baseline", "ISC-A", "ISC-B", "ISC-C",
             "Check-In"});
    for (std::uint32_t threads : thread_axis) {
        const std::string prefix =
            "t" + std::to_string(threads) + "-";
        std::vector<std::string> row{
            Table::num(std::uint64_t(threads))};
        for (CheckpointMode mode : kAllModes) {
            const SweepOutcome &o =
                outcomeByLabel(outcomes, prefix + modeName(mode));
            row.push_back(Table::num(o.result.avgCheckpointMs, 2));
            report.add(o.label, o.result);
        }
        t.addRow(std::move(row));
    }
    std::printf("%s", t.render().c_str());

    // Per-phase breakdown of the checkpoints at the paper's headline
    // thread count, from the attribution subsystem's timeline.
    printHeader("Fig 10", "per-checkpoint phase breakdown, "
                          "128 threads (averages across the run's "
                          "checkpoints)");
    Table phases({"mode", "ckpts", "data ms", "meta ms", "delete ms",
                  "CoW cmds", "remapped", "copied"});
    for (CheckpointMode mode : kAllModes) {
        const RunResult &r =
            outcomeByLabel(outcomes,
                           "t128-" + std::string(modeName(mode)))
                .result;
        const std::size_t n = r.checkpointTimeline.size();
        double data = 0.0, meta = 0.0, del = 0.0;
        std::uint64_t cow = 0, remapped = 0, copied = 0;
        for (const obs::CheckpointStat &c : r.checkpointTimeline) {
            data += double(c.dataDoneTick - c.startTick);
            meta += double(c.metaDoneTick - c.dataDoneTick);
            del += double(c.endTick - c.metaDoneTick);
            cow += c.cowCommands;
            remapped += c.remappedPairs;
            copied += c.copiedPairs;
        }
        const double per = n == 0 ? 0.0 : 1.0 / double(n);
        phases.addRow({modeName(mode), Table::num(std::uint64_t(n)),
                       Table::num(data * per / double(kMsec), 2),
                       Table::num(meta * per / double(kMsec), 2),
                       Table::num(del * per / double(kMsec), 2),
                       Table::num(cow), Table::num(remapped),
                       Table::num(copied)});
    }
    std::printf("%s", phases.render().c_str());
    printPaperNote("checkpoint time grows with threads for the "
                   "copy-based schemes; Check-In stays nearly flat.");
    return 0;
}
