/**
 * @file
 * Figure 10 — pure checkpointing time vs thread count for every
 * configuration. Query processing is locked during checkpoints so
 * the measurement matches the paper's methodology (§IV-C). The
 * threads x mode grid is declared with SweepGrid and executed by the
 * parallel sweep runner.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    printHeader("Fig 10", "checkpointing time (ms) vs threads, "
                          "YCSB-A zipfian, queries locked during "
                          "checkpoint");

    ExperimentConfig base = presets::paper();
    base.engine.lockQueriesDuringCheckpoint = true;
    base.workload = WorkloadSpec::a();

    const std::vector<std::uint32_t> thread_axis{4, 8, 16, 32,
                                                 64, 128};
    SweepGrid grid(base);
    std::vector<SweepGrid::Value> threads_values;
    for (std::uint32_t threads : thread_axis) {
        threads_values.push_back(
            {"t" + std::to_string(threads),
             [threads](ExperimentConfig &c) {
                 c.threads = threads;
             }});
    }
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : kAllModes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(threads_values))
        .axis(std::move(mode_values));

    BenchReport report("fig10_checkpoint_time");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"threads", "Baseline", "ISC-A", "ISC-B", "ISC-C",
             "Check-In"});
    std::size_t i = 0;
    for (std::uint32_t threads : thread_axis) {
        std::vector<std::string> row{
            Table::num(std::uint64_t(threads))};
        for (std::size_t m = 0; m < kAllModes.size(); ++m, ++i) {
            const RunResult &r = outcomes[i].result;
            row.push_back(Table::num(r.avgCheckpointMs, 2));
            report.add(outcomes[i].label, r);
        }
        t.addRow(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("checkpoint time grows with threads for the "
                   "copy-based schemes; Check-In stays nearly flat.");
    return 0;
}
