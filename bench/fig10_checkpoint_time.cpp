/**
 * @file
 * Figure 10 — pure checkpointing time vs thread count for every
 * configuration. Query processing is locked during checkpoints so
 * the measurement matches the paper's methodology (§IV-C).
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main()
{
    printConfigOnce(figureScale());
    printHeader("Fig 10", "checkpointing time (ms) vs threads, "
                          "YCSB-A zipfian, queries locked during "
                          "checkpoint");
    Table t({"threads", "Baseline", "ISC-A", "ISC-B", "ISC-C",
             "Check-In"});
    BenchReport report("fig10_checkpoint_time");
    for (std::uint32_t threads : {4u, 8u, 16u, 32u, 64u, 128u}) {
        std::vector<std::string> row{
            Table::num(std::uint64_t(threads))};
        for (CheckpointMode mode : kAllModes) {
            ExperimentConfig c = figureScale();
            c.engine.mode = mode;
            c.engine.lockQueriesDuringCheckpoint = true;
            c.workload = WorkloadSpec::a();
            c.threads = threads;
            const RunResult r = runExperiment(c);
            row.push_back(Table::num(r.avgCheckpointMs, 2));
            report.add(std::string(modeName(mode)) + "-t" +
                           std::to_string(threads),
                       r);
        }
        t.addRow(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("checkpoint time grows with threads for the "
                   "copy-based schemes; Check-In stays nearly flat.");
    return 0;
}
