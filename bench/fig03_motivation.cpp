/**
 * @file
 * Figure 3 — motivation analysis of conventional checkpointing
 * (baseline configuration only).
 *
 *  (a) I/O and flash-operation amplification of write queries under
 *      uniform vs zipfian access.
 *  (b) checkpointing time vs thread count, and the latest-version
 *      ratio explaining the uniform/zipfian slope difference.
 *  (c) query latency during checkpointing vs overall average.
 *
 * Each part's point set runs on the parallel sweep runner.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

ExperimentConfig
baseCfg(Distribution dist, std::uint32_t threads)
{
    ExperimentConfig c = presets::paper();
    c.engine.mode = CheckpointMode::Baseline;
    c.workload = WorkloadSpec::wo();
    c.workload.distribution = dist;
    c.threads = threads;
    return c;
}

void
partA(BenchReport &report, const SweepOptions &opts)
{
    printHeader("Fig 3(a)", "I/O and flash-op amplification due to "
                            "checkpointing (baseline, YCSB-WO)");
    const std::vector<Distribution> dists{Distribution::Uniform,
                                          Distribution::Zipfian};
    std::vector<SweepPoint> points;
    for (Distribution dist : dists) {
        points.push_back({std::string("a-") + distributionName(dist),
                          baseCfg(dist, 32)});
    }
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    Table t({"distribution", "write-query MiB", "host I/O x",
             "flash-op x"});
    for (std::size_t i = 0; i < dists.size(); ++i) {
        const RunResult &r = outcomes[i].result;
        report.add(outcomes[i].label, r);
        const double payload = double(r.journalPayloadBytes);
        // Total host I/O moved for writes: journal + checkpoint +
        // metadata traffic, both directions.
        const double host_io =
            double(r.hostWriteSectors + r.hostReadSectors) * 512.0;
        const double flash_io =
            double(r.nandPrograms + r.nandReads) * 4096.0;
        t.addRow({distributionName(dists[i]),
                  Table::num(payload / double(kMiB), 1),
                  Table::num(host_io / payload, 2),
                  Table::num(flash_io / payload, 2)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("I/O amplification 2.98x (uniform) / 1.91x "
                   "(zipfian); flash ops 7.9x / 4.7x.");
}

void
partB(BenchReport &report, const SweepOptions &opts)
{
    printHeader("Fig 3(b)", "checkpointing time vs threads "
                            "(baseline, normalized to 4 threads)");
    const std::vector<std::uint32_t> thread_axis{4, 8, 16, 32, 64,
                                                 128};
    std::vector<SweepPoint> points;
    for (std::uint32_t threads : thread_axis) {
        for (Distribution dist :
             {Distribution::Uniform, Distribution::Zipfian}) {
            ExperimentConfig c = baseCfg(dist, threads);
            c.engine.lockQueriesDuringCheckpoint = true;
            // Timer-driven checkpoints only, with journal halves
            // large enough that space pressure never caps
            // accumulation: more threads then mean more logs per
            // checkpoint (Fig 3(b)).
            c.engine.checkpointJournalBytes = 1 * kGiB;
            c.engine.journalHalfBytes = 24 * kMiB;
            // Scale the run with the thread count so every point
            // spans several checkpoint intervals at its own
            // throughput.
            c.workload.operationCount =
                std::uint64_t(threads) * 2'500;
            points.push_back({std::string("b-t") +
                                  std::to_string(threads) + "-" +
                                  distributionName(dist),
                              c});
        }
    }
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    Table t({"threads", "uniform ckpt ms", "uniform norm",
             "zipfian ckpt ms", "zipfian norm", "uni/zipf latest"});
    double norm_u = 0.0, norm_z = 0.0;
    for (std::size_t i = 0; i < thread_axis.size(); ++i) {
        const RunResult &ru = outcomes[2 * i].result;
        const RunResult &rz = outcomes[2 * i + 1].result;
        report.add(outcomes[2 * i].label, ru);
        report.add(outcomes[2 * i + 1].label, rz);
        if (norm_u == 0.0) {
            norm_u = ru.avgCheckpointMs;
            norm_z = rz.avgCheckpointMs;
        }
        // Ratio of latest-version fractions: uniform keeps almost
        // every log latest; zipfian saturates (paper: 5.02x at 128).
        const double lat_u = ru.ckptLogsSeen
                                 ? double(ru.ckptLatestEntries) /
                                       double(ru.ckptLogsSeen)
                                 : 0.0;
        const double lat_z = rz.ckptLogsSeen
                                 ? double(rz.ckptLatestEntries) /
                                       double(rz.ckptLogsSeen)
                                 : 0.0;
        t.addRow({Table::num(std::uint64_t(thread_axis[i])),
                  Table::num(ru.avgCheckpointMs, 2),
                  Table::num(ru.avgCheckpointMs / norm_u, 2),
                  Table::num(rz.avgCheckpointMs, 2),
                  Table::num(rz.avgCheckpointMs / norm_z, 2),
                  Table::num(lat_z > 0 ? lat_u / lat_z : 0.0, 2)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("checkpoint time grows with threads, steeper for "
                   "uniform; latest-version ratio uniform/zipfian "
                   "~5.02x at 128 threads.");
}

void
partC(BenchReport &report, const SweepOptions &opts)
{
    printHeader("Fig 3(c)", "query latency during checkpointing vs "
                            "average (baseline, YCSB-A zipfian)");
    ExperimentConfig c = presets::paper();
    c.engine.mode = CheckpointMode::Baseline;
    c.workload = WorkloadSpec::a();
    c.threads = 32;
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep({{"c-a-zipfian", c}}, opts, report);
    const RunResult &r = outcomes[0].result;
    report.add(outcomes[0].label, r);
    const auto &cl = r.client;
    Table t({"class", "avg us", "during-ckpt avg us", "ratio"});
    const double read_avg = cl.reads.mean() / 1e3;
    const double read_ck = cl.readsDuringCheckpoint.mean() / 1e3;
    const double write_avg = cl.writes.mean() / 1e3;
    const double write_ck = cl.writesDuringCheckpoint.mean() / 1e3;
    t.addRow({"read", Table::num(read_avg, 1), Table::num(read_ck, 1),
              Table::num(read_avg > 0 ? read_ck / read_avg : 0, 2)});
    t.addRow({"write", Table::num(write_avg, 1),
              Table::num(write_ck, 1),
              Table::num(write_avg > 0 ? write_ck / write_avg : 0,
                         2)});
    std::printf("%s", t.render().c_str());
    printPaperNote("during checkpointing, reads ~4x and writes ~21x "
                   "the average latency.");
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    BenchReport report("fig03_motivation");
    partA(report, opts);
    partB(report, opts);
    partC(report, opts);
    return 0;
}
