/**
 * @file
 * Extension experiment — latency timeline around checkpoints.
 *
 * Renders what the paper's Fig 3(c) describes: per-interval average
 * query latency over the run, with checkpoint windows marked, for the
 * baseline and Check-In. The baseline shows tall latency plateaus at
 * every checkpoint; Check-In's timeline stays flat.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "engine/storage_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/timeseries.h"
#include "ssd/ssd.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

void
runTimeline(CheckpointMode mode)
{
    ExperimentConfig cfg = presets::paper();
    cfg.engine.mode = mode;
    cfg.workload = WorkloadSpec::a();
    cfg.workload.operationCount = 60'000;
    cfg.threads = 64;
    cfg.engine.checkpointInterval = 100 * kMsec;
    cfg.engine.checkpointJournalBytes = 64 * kMiB; // timer-driven

    SimContext ctx;
    EventQueue &eq = ctx.events();
    FtlConfig ftl_cfg = cfg.ftl;
    ftl_cfg.mappingUnitBytes = cfg.resolvedMappingUnit();
    Ssd ssd(ctx, cfg.nand, ftl_cfg, cfg.ssd);
    const std::unique_ptr<StorageEngine> engine_ptr =
        presets::makeEngine(ctx, ssd, cfg.engine);
    StorageEngine &engine = *engine_ptr;
    WorkloadGenerator sizer(cfg.workload, cfg.engine.recordCount);
    engine.load([&sizer](std::uint64_t k) {
        return sizer.initialSize(k);
    });
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();
    const Tick t0 = eq.now();

    const Tick bucket = 20 * kMsec;
    TimeSeries lat(bucket);
    TimeSeries ckpt(bucket);
    ClientPool pool(ctx, engine, cfg.workload, cfg.threads);
    pool.setSampler([&](Tick issued, Tick done, bool during, bool) {
        lat.record(done - t0, done - issued);
        if (during)
            ckpt.record(done - t0, 1);
    });
    engine.start();
    pool.start();
    while (!pool.done() && eq.step()) {
    }

    printHeader("Timeline",
                (std::string(checkpointModeName(mode)) +
                 " — avg latency per 20 ms window ('#' ~ 250 us, "
                 "'C' = checkpoint active)")
                    .c_str());
    const auto [first, last] = lat.activeRange();
    for (std::size_t i = first; i <= last && i < first + 40; ++i) {
        const auto &b = lat.buckets()[i];
        const double avg_us = b.mean() / 1e3;
        int bars = int(avg_us / 250.0);
        bars = std::min(bars, 60);
        const bool in_ckpt =
            i < ckpt.buckets().size() && ckpt.buckets()[i].count > 0;
        std::printf("%6.0f ms |%c %8.0f us |", double(i * bucket) /
                                                   double(kMsec),
                    in_ckpt ? 'C' : ' ', avg_us);
        for (int k = 0; k < bars; ++k)
            std::printf("#");
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    printConfigOnce(presets::paper());
    runTimeline(CheckpointMode::Baseline);
    runTimeline(CheckpointMode::CheckIn);
    printPaperNote("the baseline's latency plateaus coincide with "
                   "checkpoint windows (reads ~4x, writes ~21x the "
                   "average in the paper's Fig 3c); Check-In's "
                   "timeline stays flat.");
    return 0;
}
