/**
 * @file
 * Figure 13 — mapping-unit sensitivity.
 *
 *  (a) query throughput of ISC-C and Check-In with 512 B to 4 KiB
 *      mapping units.
 *  (b) journal space overhead of Check-In vs ISC-C for the four
 *      mixed record-size patterns.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

void
partA()
{
    printHeader("Fig 13(a)", "throughput (kops/s) vs mapping unit, "
                             "YCSB-A zipfian, 64 threads");
    Table t({"unit B", "ISC-C kops/s", "Check-In kops/s"});
    for (std::uint32_t unit : {512u, 1024u, 2048u, 4096u}) {
        double vals[2];
        int i = 0;
        for (CheckpointMode mode :
             {CheckpointMode::IscC, CheckpointMode::CheckIn}) {
            ExperimentConfig c = figureScale();
            c.engine.mode = mode;
            c.mappingUnitOverride = unit;
            // Model the full-scale device's metadata-processing
            // pressure as serialized per-unit CPU time. (The library
            // also has a locality-aware map-cache model,
            // FtlConfig::mapCacheBytes, but at this scale zipfian
            // locality keeps its hit rate high and flash write
            // amplification dominates instead — see EXPERIMENTS.md.)
            c.ssd.perUnitCpuTime = 40 * kUsec;
            c.workload = WorkloadSpec::a();
            // Medium-to-large records (P3): large enough that coarse
            // mapping does not explode write amplification, varied
            // enough that alignment (Check-In) matters vs ISC-C.
            c.workload.valueSizes = WorkloadSpec::sizePattern(3);
            c.workload.operationCount = 25'000;
            c.threads = 64;
            vals[i++] = runExperiment(c).throughputOps / 1e3;
        }
        t.addRow({Table::num(std::uint64_t(unit)),
                  Table::num(vals[0], 2), Table::num(vals[1], 2)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("throughput rises with the mapping unit (less "
                   "metadata); Check-In gains most at 4096 B, ISC-C "
                   "is limited by low reusability.");
}

void
partB()
{
    printHeader("Fig 13(b)",
                "device space overhead of Check-In vs ISC-C (flash "
                "bytes consumed for the same workload), record-size "
                "patterns P1..P4");
    Table t({"pattern", "unit B", "ISC-C flash MiB",
             "Check-In flash MiB", "journal pad %",
             "overhead vs ISC-C"});
    for (std::uint32_t pattern = 1; pattern <= 4; ++pattern) {
        for (std::uint32_t unit : {512u, 4096u}) {
            double flash_mib[2];
            double pad = 0.0;
            int i = 0;
            for (CheckpointMode mode :
                 {CheckpointMode::IscC, CheckpointMode::CheckIn}) {
                ExperimentConfig c = figureScale();
                c.engine.mode = mode;
                c.mappingUnitOverride = unit;
                c.workload = WorkloadSpec::wo();
                c.workload.valueSizes =
                    WorkloadSpec::sizePattern(pattern);
                c.workload.operationCount = 15'000;
                c.threads = 32;
                const RunResult r = runExperiment(c);
                // Space the device actually consumed: pages
                // programmed for the same logical workload.
                flash_mib[i] = double(r.nandPrograms) * 4096.0 /
                               double(kMiB);
                if (mode == CheckpointMode::CheckIn)
                    pad = r.journalSpaceOverhead();
                ++i;
            }
            t.addRow({"P" + std::to_string(pattern),
                      Table::num(std::uint64_t(unit)),
                      Table::num(flash_mib[0], 1),
                      Table::num(flash_mib[1], 1),
                      Table::percent(pad),
                      Table::percent(flash_mib[1] / flash_mib[0] -
                                     1.0)});
        }
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("space overhead of Check-In grows with the "
                   "mapping unit, ~3 % over ISC-C at 4096 B (the "
                   "journal padding is offset by eliminated "
                   "duplicate writes).");
}

} // namespace

int
main()
{
    printConfigOnce(figureScale());
    partA();
    partB();
    return 0;
}
