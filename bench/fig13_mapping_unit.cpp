/**
 * @file
 * Figure 13 — mapping-unit sensitivity.
 *
 *  (a) query throughput of ISC-C and Check-In with 512 B to 4 KiB
 *      mapping units.
 *  (b) journal space overhead of Check-In vs ISC-C for the four
 *      mixed record-size patterns.
 *
 * Both grids are declared with SweepGrid and executed by the
 * parallel sweep runner.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

std::vector<SweepGrid::Value>
unitAxis(const std::vector<std::uint32_t> &units)
{
    std::vector<SweepGrid::Value> values;
    for (std::uint32_t unit : units) {
        values.push_back({"u" + std::to_string(unit),
                          [unit](ExperimentConfig &c) {
                              c.mappingUnitOverride = unit;
                          }});
    }
    return values;
}

std::vector<SweepGrid::Value>
modeAxis(const std::vector<CheckpointMode> &modes)
{
    std::vector<SweepGrid::Value> values;
    for (CheckpointMode mode : modes) {
        values.push_back({modeName(mode),
                          [mode](ExperimentConfig &c) {
                              c.engine.mode = mode;
                          }});
    }
    return values;
}

void
partA(BenchReport &report, const SweepOptions &opts)
{
    printHeader("Fig 13(a)", "throughput (kops/s) vs mapping unit, "
                             "YCSB-A zipfian, 64 threads");
    const std::vector<std::uint32_t> units{512u, 1024u, 2048u,
                                           4096u};
    ExperimentConfig base = presets::paper();
    // Model the full-scale device's metadata-processing pressure as
    // serialized per-unit CPU time. (The library also has a
    // locality-aware map-cache model, FtlConfig::mapCacheBytes, but
    // at this scale zipfian locality keeps its hit rate high and
    // flash write amplification dominates instead — see
    // EXPERIMENTS.md.)
    base.ssd.perUnitCpuTime = 40 * kUsec;
    base.workload = WorkloadSpec::a();
    // Medium-to-large records (P3): large enough that coarse mapping
    // does not explode write amplification, varied enough that
    // alignment (Check-In) matters vs ISC-C.
    base.workload.valueSizes = WorkloadSpec::sizePattern(3);
    base.workload.operationCount = 25'000;
    base.threads = 64;

    SweepGrid grid(base);
    grid.axis(unitAxis(units))
        .axis(modeAxis(
            {CheckpointMode::IscC, CheckpointMode::CheckIn}));

    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"unit B", "ISC-C kops/s", "Check-In kops/s"});
    std::size_t i = 0;
    for (std::uint32_t unit : units) {
        const RunResult &iscc = outcomes[i].result;
        const RunResult &ours = outcomes[i + 1].result;
        report.add(outcomes[i].label, iscc);
        report.add(outcomes[i + 1].label, ours);
        i += 2;
        t.addRow({Table::num(std::uint64_t(unit)),
                  Table::num(iscc.throughputOps / 1e3, 2),
                  Table::num(ours.throughputOps / 1e3, 2)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("throughput rises with the mapping unit (less "
                   "metadata); Check-In gains most at 4096 B, ISC-C "
                   "is limited by low reusability.");
}

void
partB(BenchReport &report, const SweepOptions &opts)
{
    printHeader("Fig 13(b)",
                "device space overhead of Check-In vs ISC-C (flash "
                "bytes consumed for the same workload), record-size "
                "patterns P1..P4");
    ExperimentConfig base = presets::paper();
    base.workload = WorkloadSpec::wo();
    base.workload.operationCount = 15'000;
    base.threads = 32;

    SweepGrid grid(base);
    std::vector<SweepGrid::Value> pattern_values;
    for (std::uint32_t pattern = 1; pattern <= 4; ++pattern) {
        pattern_values.push_back(
            {"P" + std::to_string(pattern),
             [pattern](ExperimentConfig &c) {
                 c.workload.valueSizes =
                     WorkloadSpec::sizePattern(pattern);
             }});
    }
    grid.axis(std::move(pattern_values))
        .axis(unitAxis({512u, 4096u}))
        .axis(modeAxis(
            {CheckpointMode::IscC, CheckpointMode::CheckIn}));

    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"pattern", "unit B", "ISC-C flash MiB",
             "Check-In flash MiB", "journal pad %",
             "overhead vs ISC-C"});
    std::size_t i = 0;
    for (std::uint32_t pattern = 1; pattern <= 4; ++pattern) {
        for (std::uint32_t unit : {512u, 4096u}) {
            const RunResult &iscc = outcomes[i].result;
            const RunResult &ours = outcomes[i + 1].result;
            report.add(outcomes[i].label, iscc);
            report.add(outcomes[i + 1].label, ours);
            i += 2;
            // Space the device actually consumed: pages programmed
            // for the same logical workload.
            const double iscc_mib =
                double(iscc.nandPrograms) * 4096.0 / double(kMiB);
            const double ours_mib =
                double(ours.nandPrograms) * 4096.0 / double(kMiB);
            t.addRow({"P" + std::to_string(pattern),
                      Table::num(std::uint64_t(unit)),
                      Table::num(iscc_mib, 1),
                      Table::num(ours_mib, 1),
                      Table::percent(ours.journalSpaceOverhead()),
                      Table::percent(ours_mib / iscc_mib - 1.0)});
        }
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("space overhead of Check-In grows with the "
                   "mapping unit, ~3 % over ISC-C at 4096 B (the "
                   "journal padding is offset by eliminated "
                   "duplicate writes).");
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    BenchReport report("fig13_mapping_unit");
    partA(report, opts);
    partB(report, opts);
    return 0;
}
