/**
 * @file
 * Ablation study of Check-In's design choices (beyond the paper's
 * own ISC-A/B/C ladder): disable each mechanism independently and
 * measure what it buys.
 *
 *  full        — complete Check-In
 *  -merge      — Algorithm 2 without MergePartialLogs (each partial
 *                record padded to its own unit)
 *  -compress   — no journal compression for values above the unit
 *  -smallbuf   — no §III-E small-copy buffer (immediate copies)
 *  -align      — no sector-aligned journaling at all (== ISC-C)
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

struct Variant
{
    const char *name;
    void (*apply)(ExperimentConfig &);
};

const Variant kVariants[] = {
    {"full", [](ExperimentConfig &) {}},
    {"-merge",
     [](ExperimentConfig &c) { c.engine.mergePartials = false; }},
    {"-compress",
     [](ExperimentConfig &c) { c.engine.compressRatio = 1.0; }},
    {"-smallbuf",
     [](ExperimentConfig &c) { c.ssd.smallBufferSectors = 0; }},
    {"-align",
     [](ExperimentConfig &c) {
         c.engine.mode = CheckpointMode::IscC;
     }},
};

} // namespace

int
main()
{
    printConfigOnce(figureScale());
    printHeader("Ablation", "Check-In design choices, YCSB-A "
                            "zipfian, 64 threads");
    Table t({"variant", "kops/s", "p99.9 ms", "redundant MiB",
             "journal pad %", "remaps", "ckpt avg ms"});
    BenchReport report("ablation_checkin");
    for (const Variant &v : kVariants) {
        ExperimentConfig c = figureScale();
        c.engine.mode = CheckpointMode::CheckIn;
        c.engine.checkpointInterval = 25 * kMsec;
        c.engine.checkpointJournalBytes = 2 * kMiB;
        c.workload = WorkloadSpec::a();
        // Odd value sizes exercise bucketing, merging & compression.
        c.workload.valueSizes = {100, 200, 300, 500, 700, 1000,
                                 1800, 3000};
        c.workload.operationCount = 30'000;
        c.threads = 64;
        v.apply(c);
        const RunResult r = runExperiment(c);
        report.add(v.name, r);
        t.addRow({v.name, Table::num(r.throughputOps / 1e3, 2),
                  Table::num(
                      double(r.client.all.quantile(0.999)) / 1e6, 2),
                  Table::num(double(r.redundantBytes) / double(kMiB),
                             2),
                  Table::percent(r.journalSpaceOverhead()),
                  Table::num(r.remaps),
                  Table::num(r.avgCheckpointMs, 2)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nReading guide: '-align' shows the combined value "
                "of Algorithm 2 (vs ISC-C);\n'-merge' isolates "
                "MergePartialLogs (space + invalid pages);\n"
                "'-compress' isolates journal compression;\n"
                "'-smallbuf' isolates the §III-E deferral/elision "
                "buffer (redundant writes).\n");
    return 0;
}
