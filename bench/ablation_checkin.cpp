/**
 * @file
 * Ablation study of Check-In's design choices (beyond the paper's
 * own ISC-A/B/C ladder): disable each mechanism independently and
 * measure what it buys. Variants run as one parallel sweep.
 *
 *  full        — complete Check-In
 *  -merge      — Algorithm 2 without MergePartialLogs (each partial
 *                record padded to its own unit)
 *  -compress   — no journal compression for values above the unit
 *  -smallbuf   — no §III-E small-copy buffer (immediate copies)
 *  -align      — no sector-aligned journaling at all (== ISC-C)
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

struct Variant
{
    const char *name;
    void (*apply)(ExperimentConfig &);
};

const Variant kVariants[] = {
    {"full", [](ExperimentConfig &) {}},
    {"-merge",
     [](ExperimentConfig &c) { c.engine.mergePartials = false; }},
    {"-compress",
     [](ExperimentConfig &c) { c.engine.compressRatio = 1.0; }},
    {"-smallbuf",
     [](ExperimentConfig &c) { c.ssd.smallBufferSectors = 0; }},
    {"-align",
     [](ExperimentConfig &c) {
         c.engine.mode = CheckpointMode::IscC;
     }},
};

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    printHeader("Ablation", "Check-In design choices, YCSB-A "
                            "zipfian, 64 threads");

    ExperimentConfig base = presets::paper();
    base.engine.mode = CheckpointMode::CheckIn;
    base.engine.checkpointInterval = 25 * kMsec;
    base.engine.checkpointJournalBytes = 2 * kMiB;
    base.workload = WorkloadSpec::a();
    // Odd value sizes exercise bucketing, merging & compression.
    base.workload.valueSizes = {100, 200, 300, 500, 700, 1000,
                                1800, 3000};
    base.workload.operationCount = 30'000;
    base.threads = 64;

    std::vector<SweepPoint> points;
    for (const Variant &v : kVariants) {
        ExperimentConfig c = base;
        v.apply(c);
        points.push_back({v.name, c});
    }

    BenchReport report("ablation_checkin");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    Table t({"variant", "kops/s", "p99.9 ms", "redundant MiB",
             "journal pad %", "remaps", "ckpt avg ms"});
    for (const SweepOutcome &o : outcomes) {
        const RunResult &r = o.result;
        report.add(o.label, r);
        t.addRow({o.label, Table::num(r.throughputOps / 1e3, 2),
                  Table::num(
                      double(r.client.all.quantile(0.999)) / 1e6, 2),
                  Table::num(double(r.redundantBytes) / double(kMiB),
                             2),
                  Table::percent(r.journalSpaceOverhead()),
                  Table::num(r.remaps),
                  Table::num(r.avgCheckpointMs, 2)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nReading guide: '-align' shows the combined value "
                "of Algorithm 2 (vs ISC-C);\n'-merge' isolates "
                "MergePartialLogs (space + invalid pages);\n"
                "'-compress' isolates journal compression;\n"
                "'-smallbuf' isolates the §III-E deferral/elision "
                "buffer (redundant writes).\n");
    return 0;
}
