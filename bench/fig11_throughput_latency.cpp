/**
 * @file
 * Figure 11 — overall average query throughput (a) and latency (b)
 * for write-heavy workloads A, F, and WO (zipfian) across thread
 * counts, all five configurations. The 20-point grid per workload is
 * executed by the parallel sweep runner (--jobs N / CHECKIN_JOBS).
 */

#include <cstdio>
#include <map>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

void
runWorkload(const WorkloadSpec &wl, BenchReport &report,
            const SweepOptions &opts)
{
    printHeader("Fig 11",
                (wl.name + " — throughput (kops/s) and avg latency "
                           "(us) vs threads")
                    .c_str());
    const std::vector<std::uint32_t> thread_axis{4, 16, 64, 128};
    std::vector<SweepPoint> points;
    for (std::uint32_t threads : thread_axis) {
        for (CheckpointMode mode : kAllModes) {
            ExperimentConfig c = presets::paper();
            c.engine.mode = mode;
            // A modest checkpoint duty cycle, as with the paper's
            // 60 s interval: checkpoints recur (timer or threshold)
            // but do not dominate the run.
            c.engine.checkpointInterval = 1500 * kMsec;
            c.engine.checkpointJournalBytes = 12 * kMiB;
            c.engine.journalHalfBytes = 16 * kMiB;
            c.workload = wl;
            c.workload.operationCount = 30'000;
            c.threads = threads;
            points.push_back({wl.name + "-" + modeName(mode) + "-t" +
                                  std::to_string(threads),
                              c});
        }
    }
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    Table t({"threads", "mode", "kops/s", "avg us"});
    std::map<std::uint32_t,
             std::map<CheckpointMode, RunResult>> all;
    std::size_t i = 0;
    for (std::uint32_t threads : thread_axis) {
        for (CheckpointMode mode : kAllModes) {
            const RunResult &r = outcomes[i].result;
            t.addRow({Table::num(std::uint64_t(threads)),
                      modeName(mode),
                      Table::num(r.throughputOps / 1e3, 2),
                      Table::num(r.avgLatencyUs, 1)});
            report.add(outcomes[i].label, r);
            all[threads].emplace(mode, r);
            ++i;
        }
    }
    std::printf("%s", t.render().c_str());
    const auto &base = all[128].at(CheckpointMode::Baseline);
    const auto &ours = all[128].at(CheckpointMode::CheckIn);
    std::printf("\nmeasured @128 threads: throughput +%0.1f %%, "
                "latency %0.1f %% vs baseline\n",
                (ours.throughputOps / base.throughputOps - 1.0) *
                    100.0,
                (ours.avgLatencyUs / base.avgLatencyUs - 1.0) *
                    100.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    BenchReport report("fig11_throughput_latency");
    runWorkload(WorkloadSpec::a(), report, opts);
    runWorkload(WorkloadSpec::f(), report, opts);
    runWorkload(WorkloadSpec::wo(), report, opts);
    printPaperNote("average throughput +8.1 % and latency -10.2 % "
                   "for Check-In vs baseline at 128 threads.");
    return 0;
}
