/**
 * @file
 * Shared configuration presets and printing helpers for the
 * figure-reproduction benches. Each bench binary regenerates one of
 * the paper's tables/figures and prints the paper's reported numbers
 * next to the measured ones (shape comparison, not absolute).
 */

#ifndef CHECKIN_BENCH_BENCH_COMMON_H_
#define CHECKIN_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/config_dump.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "harness/run_export.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "obs/json.h"

namespace checkin::bench {

/** The five evaluated configurations, in paper order. */
inline const std::vector<CheckpointMode> kAllModes = {
    CheckpointMode::Baseline, CheckpointMode::IscA,
    CheckpointMode::IscB, CheckpointMode::IscC,
    CheckpointMode::CheckIn};

inline void
printHeader(const char *figure, const char *what)
{
    std::printf("\n============================================"
                "====================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("=============================================="
                "==================\n");
}

/** Print the Table I block once per bench binary. */
inline void
printConfigOnce(const ExperimentConfig &cfg)
{
    static bool printed = false;
    if (printed)
        return;
    printed = true;
    std::printf("%s\n", describeConfig(cfg).c_str());
}

inline void
printPaperNote(const char *note)
{
    std::printf("\npaper: %s\n", note);
}

inline const char *
modeName(CheckpointMode m)
{
    return checkpointModeName(m);
}

/**
 * The sweep outcome carrying @p label. Aborts loudly when the sweep
 * has no such point: positional indexing into a sweep silently
 * misattributes rows when an axis is reordered, so benches must look
 * points up by the label the grid generated.
 */
inline const SweepOutcome &
outcomeByLabel(const std::vector<SweepOutcome> &outcomes,
               const std::string &label)
{
    for (const SweepOutcome &o : outcomes) {
        if (o.label == label)
            return o;
    }
    std::fprintf(stderr,
                 "fatal: no sweep outcome labeled '%s' (have:",
                 label.c_str());
    for (const SweepOutcome &o : outcomes)
        std::fprintf(stderr, " '%s'", o.label.c_str());
    std::fprintf(stderr, ")\n");
    std::abort();
}

/** Tail dwell per stage summed over all op classes. */
inline std::array<Tick, obs::kStageCount>
tailStageTotals(const obs::AttributionSummary &s)
{
    std::array<Tick, obs::kStageCount> tot{};
    for (const obs::ClassBreakdown &cb : s.tailPerClass) {
        for (std::size_t st = 0; st < obs::kStageCount; ++st)
            tot[st] += cb.dwell[st];
    }
    return tot;
}

/**
 * Machine-readable bench artifact: labeled RunResults serialized
 * through the run exporter into BENCH_<name>.json (one line per run,
 * deterministic bytes — two identical bench invocations diff clean).
 *
 * Written on destruction (or an explicit write()) into
 * $CHECKIN_BENCH_DIR, defaulting to the working directory.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    ~BenchReport() { write(); }

    void
    add(std::string label, RunResult result)
    {
        entries_.push_back(
            Entry{std::move(label), std::move(result)});
    }

    /**
     * Record the worker count and wall-clock of a sweep this report
     * covers; seconds accumulate across multiple sweeps so the perf
     * trajectory captures the parallel-harness speedup. Emitted as a
     * trailing "sweep" object (its own line, so byte-comparison of
     * the deterministic "runs" lines can skip it).
     */
    void
    noteSweep(unsigned jobs, double wall_seconds)
    {
        sweepJobs_ = jobs;
        sweepSeconds_ += wall_seconds;
    }

    std::string
    toJson() const
    {
        std::ostringstream os;
        obs::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", name_);
        w.key("runs").beginArray();
        for (const Entry &e : entries_) {
            w.newline().beginObject();
            w.kv("label", e.label);
            w.key("result");
            writeRunResultJson(w, e.result);
            w.endObject();
        }
        w.newline().endArray();
        if (sweepJobs_ > 0) {
            w.newline().key("sweep").beginObject();
            w.kv("jobs", std::uint64_t(sweepJobs_));
            w.kv("wallSeconds", sweepSeconds_);
            w.endObject();
        }
        w.endObject();
        os << "\n";
        return os.str();
    }

    void
    write()
    {
        if (written_ || entries_.empty())
            return;
        written_ = true;
        const char *dir = std::getenv("CHECKIN_BENCH_DIR");
        if (dir != nullptr) {
            std::error_code ec;
            std::filesystem::create_directories(dir, ec);
        }
        const std::string path = std::string(dir ? dir : ".") +
                                 "/BENCH_" + name_ + ".json";
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "could not write %s\n",
                         path.c_str());
            return;
        }
        f << toJson();
        std::printf("\nwrote %s\n", path.c_str());
    }

  private:
    struct Entry
    {
        std::string label;
        RunResult result;
    };

    std::string name_;
    std::vector<Entry> entries_;
    bool written_ = false;
    unsigned sweepJobs_ = 0;
    double sweepSeconds_ = 0.0;
};

/**
 * Run a sweep for a bench: execute @p points with @p opts, record
 * worker count + wall-clock into @p report, and abort the bench (exit
 * 1) after printing every captured per-point failure — matching the
 * pre-sweep behaviour where the first exception killed the process,
 * but with all failures visible.
 */
inline std::vector<SweepOutcome>
runBenchSweep(const std::vector<SweepPoint> &points,
              const SweepOptions &opts, BenchReport &report)
{
    const unsigned jobs = std::min<unsigned>(
        std::max(1u, resolveJobs(opts.jobs)),
        points.empty() ? 1u
                       : static_cast<unsigned>(points.size()));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<SweepOutcome> outcomes = runSweep(points, opts);
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    report.noteSweep(jobs, secs);
    std::printf("\n[sweep] %zu points, %u worker%s, %.2f s\n",
                points.size(), jobs, jobs == 1 ? "" : "s", secs);
    bool failed = false;
    for (const SweepOutcome &o : outcomes) {
        if (!o.ok) {
            failed = true;
            std::fprintf(stderr, "sweep point '%s' failed: %s\n",
                         o.label.c_str(), o.error.c_str());
        }
    }
    if (failed)
        std::exit(1);
    return outcomes;
}

} // namespace checkin::bench

#endif // CHECKIN_BENCH_BENCH_COMMON_H_
