/**
 * @file
 * Shared configuration presets and printing helpers for the
 * figure-reproduction benches. Each bench binary regenerates one of
 * the paper's tables/figures and prints the paper's reported numbers
 * next to the measured ones (shape comparison, not absolute).
 */

#ifndef CHECKIN_BENCH_BENCH_COMMON_H_
#define CHECKIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "harness/config_dump.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace checkin::bench {

/** The five evaluated configurations, in paper order. */
inline const std::vector<CheckpointMode> kAllModes = {
    CheckpointMode::Baseline, CheckpointMode::IscA,
    CheckpointMode::IscB, CheckpointMode::IscC,
    CheckpointMode::CheckIn};

/**
 * Default experiment scale used by the figure benches: a scaled-down
 * device (128 MiB) and store so checkpoint/GC dynamics appear within
 * simulation-friendly run lengths. All configurations share it.
 */
inline ExperimentConfig
figureScale()
{
    ExperimentConfig c = ExperimentConfig::smallScale();
    c.engine.checkpointInterval = 200 * kMsec;
    c.engine.checkpointJournalBytes = 6 * kMiB;
    c.workload.operationCount = 20'000;
    c.threads = 32;
    return c;
}

inline void
printHeader(const char *figure, const char *what)
{
    std::printf("\n============================================"
                "====================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("=============================================="
                "==================\n");
}

/** Print the Table I block once per bench binary. */
inline void
printConfigOnce(const ExperimentConfig &cfg)
{
    static bool printed = false;
    if (printed)
        return;
    printed = true;
    std::printf("%s\n", describeConfig(cfg).c_str());
}

inline void
printPaperNote(const char *note)
{
    std::printf("\npaper: %s\n", note);
}

inline const char *
modeName(CheckpointMode m)
{
    return checkpointModeName(m);
}

} // namespace checkin::bench

#endif // CHECKIN_BENCH_BENCH_COMMON_H_
