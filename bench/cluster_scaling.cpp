/**
 * @file
 * Cluster scaling bench: simulation throughput (DES events per
 * wall-clock second) and client-visible tail latency (p99.9) versus
 * shard count, for each cross-shard checkpoint coordination policy.
 *
 * The interesting comparison is the policy column at fixed shard
 * count: Synchronized stalls every shard at once (worst cluster-wide
 * p99.9 spike, but aligned), Staggered spreads the stalls so at most
 * one shard pauses at a time, Independent lets the timers drift.
 *
 * Writes BENCH_cluster.json into $CHECKIN_BENCH_DIR (default: the
 * working directory). `--quick` shrinks the per-run workload for CI;
 * the shard-count axis {1, 4, 16} is kept in both modes.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "harness/table.h"
#include "obs/json.h"

using namespace checkin;

namespace {

constexpr std::uint32_t kShardCounts[] = {1, 4, 16};
constexpr CkptCoordination kPolicies[] = {
    CkptCoordination::Independent, CkptCoordination::Synchronized,
    CkptCoordination::Staggered};

struct BenchRun
{
    std::string label;
    std::uint32_t shards;
    const char *policy;
    ClusterResult result;
    double wallSeconds;
};

void
writeReport(const std::vector<BenchRun> &runs)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.kv("bench", "cluster");
    w.key("runs").beginArray();
    for (const BenchRun &r : runs) {
        std::uint64_t checkpoints = 0;
        for (const ShardSummary &s : r.result.shards)
            checkpoints += s.checkpoints;
        w.newline().beginObject();
        w.kv("label", r.label);
        w.key("result").beginObject();
        w.kv("checkpoints", checkpoints);
        w.kv("coordination", r.policy);
        w.kv("eventsPerSec",
             r.wallSeconds > 0.0
                 ? double(r.result.totalEvents) / r.wallSeconds
                 : 0.0);
        w.kv("meanUs",
             r.result.router.all.mean() / double(kUsec));
        w.kv("opsCompleted", r.result.router.opsCompleted);
        w.kv("p50Us", double(r.result.router.all.quantile(0.5)) /
                          double(kUsec));
        w.kv("p999Us", double(r.result.router.all.quantile(0.999)) /
                           double(kUsec));
        w.kv("shardCount", std::uint64_t(r.shards));
        w.kv("simSpanTicks", r.result.simSpan);
        w.kv("throughputOps", r.result.throughputOps);
        w.kv("totalEvents", r.result.totalEvents);
        w.kv("wallSeconds", r.wallSeconds);
        w.endObject();
        w.endObject();
    }
    w.newline().endArray();
    w.endObject();
    os << "\n";

    const char *dir = std::getenv("CHECKIN_BENCH_DIR");
    if (dir != nullptr) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    const std::string path =
        std::string(dir ? dir : ".") + "/BENCH_cluster.json";
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "could not write %s\n", path.c_str());
        std::exit(1);
    }
    f << os.str();
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    std::printf("cluster scaling — events/sec and p99.9 vs shard "
                "count vs checkpoint coordination%s\n",
                quick ? " (quick)" : "");

    std::vector<BenchRun> runs;
    Table table({"shards", "policy", "ops", "events/sec", "p50 us",
                 "p99.9 us", "ckpts", "wall s"});
    for (const std::uint32_t shards : kShardCounts) {
        for (const CkptCoordination policy : kPolicies) {
            ClusterConfig cfg = presets::cluster();
            cfg.shardCount = shards;
            cfg.coordination = policy;
            cfg.syncThreads = 0; // resolve via CHECKIN_JOBS/cores
            cfg.shard.engine.recordCount = quick ? 500 : 2000;
            // The cluster-total op count is fixed across shard
            // counts so rows compare the same client workload.
            cfg.workload.operationCount = quick ? 2000 : 16000;
            // Quick runs span only a few simulated ms; shorten the
            // checkpoint cadence so every policy still checkpoints.
            if (quick)
                cfg.shard.engine.checkpointInterval = 1 * kMsec;

            const auto t0 = std::chrono::steady_clock::now();
            ClusterResult r = runCluster(cfg);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            const char *name = ckptCoordinationName(policy);
            std::uint64_t checkpoints = 0;
            for (const ShardSummary &s : r.shards)
                checkpoints += s.checkpoints;
            table.addRow(
                {Table::num(std::uint64_t(shards)), name,
                 Table::num(r.router.opsCompleted),
                 Table::num(secs > 0.0
                                ? double(r.totalEvents) / secs
                                : 0.0,
                            0),
                 Table::num(double(r.router.all.quantile(0.5)) /
                                double(kUsec),
                            1),
                 Table::num(double(r.router.all.quantile(0.999)) /
                                double(kUsec),
                            1),
                 Table::num(checkpoints), Table::num(secs, 2)});
            runs.push_back(BenchRun{std::string("shards") +
                                        std::to_string(shards) +
                                        "/" + name,
                                    shards, name, std::move(r),
                                    secs});
        }
    }

    std::printf("\n%s\n", table.render().c_str());
    writeReport(runs);
    return 0;
}
