/**
 * @file
 * Figure 9 — tail latency (p99, p99.9, p99.99) of YCSB-A under
 * uniform and zipfian request distributions for all configurations,
 * swept in parallel.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    const std::vector<Distribution> dists{Distribution::Uniform,
                                          Distribution::Zipfian};

    ExperimentConfig base = presets::paper();
    base.workload = WorkloadSpec::a();
    base.workload.operationCount = 40'000;
    base.threads = 128;
    // Per-op stage attribution feeds the tail-breakdown table below.
    base.obs.attributionEnabled = true;

    SweepGrid grid(base);
    std::vector<SweepGrid::Value> dist_values;
    for (Distribution dist : dists) {
        dist_values.push_back({distributionName(dist),
                               [dist](ExperimentConfig &c) {
                                   c.workload.distribution = dist;
                               }});
    }
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : kAllModes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(dist_values)).axis(std::move(mode_values));

    BenchReport report("fig09_tail_latency");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    for (Distribution dist : dists) {
        const std::string prefix =
            std::string(distributionName(dist)) + "-";
        printHeader("Fig 9", (std::string("tail latency, YCSB-A, ") +
                              distributionName(dist) +
                              " distribution, 128 threads")
                                 .c_str());
        Table t({"mode", "avg us", "p99 us", "p99.9 us",
                 "p99.99 us"});
        for (CheckpointMode mode : kAllModes) {
            const SweepOutcome &o =
                outcomeByLabel(outcomes, prefix + modeName(mode));
            const auto &h = o.result.client.all;
            t.addRow({modeName(mode),
                      Table::num(h.mean() / 1e3, 1),
                      Table::num(double(h.quantile(0.99)) / 1e3, 1),
                      Table::num(double(h.quantile(0.999)) / 1e3, 1),
                      Table::num(double(h.quantile(0.9999)) / 1e3,
                                 1)});
            report.add(o.label, o.result);
        }
        std::printf("%s", t.render().c_str());

        // Where the tail ops spend their time, per mode: share of
        // the tail dwell attributed to each pipeline stage.
        std::array<bool, obs::kStageCount> used{};
        for (CheckpointMode mode : kAllModes) {
            const auto tot = tailStageTotals(
                outcomeByLabel(outcomes, prefix + modeName(mode))
                    .result.attribution);
            for (std::size_t s = 0; s < obs::kStageCount; ++s)
                used[s] = used[s] || tot[s] > 0;
        }
        std::vector<std::string> cols{"mode", "tail ops"};
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
            if (used[s])
                cols.push_back(
                    std::string(obs::stageName(obs::Stage(s))) +
                    " %");
        }
        Table attr_t(cols);
        for (CheckpointMode mode : kAllModes) {
            const obs::AttributionSummary &sum =
                outcomeByLabel(outcomes, prefix + modeName(mode))
                    .result.attribution;
            const auto tot = tailStageTotals(sum);
            Tick all = 0;
            for (const Tick d : tot)
                all += d;
            std::vector<std::string> row{
                modeName(mode), std::to_string(sum.tailOps)};
            for (std::size_t s = 0; s < obs::kStageCount; ++s) {
                if (used[s])
                    row.push_back(Table::num(
                        all == 0 ? 0.0
                                 : 100.0 * double(tot[s]) /
                                       double(all),
                        1));
            }
            attr_t.addRow(row);
        }
        std::printf("\ntail-op stage attribution "
                    "(>= p%g of end-to-end latency):\n%s",
                    100.0 * base.obs.attrTailQuantile,
                    attr_t.render().c_str());
        const auto &base_r =
            outcomeByLabel(outcomes, prefix + "Baseline").result;
        const auto &iscc_r =
            outcomeByLabel(outcomes, prefix + "ISC-C").result;
        const auto &ours_r =
            outcomeByLabel(outcomes, prefix + "Check-In").result;
        const double red999 =
            1.0 - double(ours_r.client.all.quantile(0.999)) /
                      double(base_r.client.all.quantile(0.999));
        const double red9999 =
            1.0 - double(ours_r.client.all.quantile(0.9999)) /
                      double(iscc_r.client.all.quantile(0.9999));
        std::printf("\nmeasured: p99.9 Check-In vs Baseline: "
                    "-%0.1f %% | p99.99 vs ISC-C: -%0.1f %%\n",
                    red999 * 100.0, red9999 * 100.0);
        printPaperNote("p99.9 -92.1 % (uniform) / -92.4 % (zipfian) "
                       "vs baseline; p99.99 -51.3 % / -50.8 % vs "
                       "ISC-C.");
    }
    return 0;
}
