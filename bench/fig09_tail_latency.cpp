/**
 * @file
 * Figure 9 — tail latency (p99, p99.9, p99.99) of YCSB-A under
 * uniform and zipfian request distributions for all configurations.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main()
{
    printConfigOnce(figureScale());
    for (Distribution dist :
         {Distribution::Uniform, Distribution::Zipfian}) {
        printHeader("Fig 9", (std::string("tail latency, YCSB-A, ") +
                              distributionName(dist) +
                              " distribution, 128 threads")
                                 .c_str());
        Table t({"mode", "avg us", "p99 us", "p99.9 us",
                 "p99.99 us"});
        std::map<CheckpointMode, RunResult> results;
        for (CheckpointMode mode : kAllModes) {
            ExperimentConfig c = figureScale();
            c.engine.mode = mode;
            c.workload = WorkloadSpec::a();
            c.workload.distribution = dist;
            c.workload.operationCount = 40'000;
            c.threads = 128;
            results.emplace(mode, runExperiment(c));
        }
        for (CheckpointMode mode : kAllModes) {
            const auto &h = results.at(mode).client.all;
            t.addRow({modeName(mode), Table::num(h.mean() / 1e3, 1),
                      Table::num(double(h.quantile(0.99)) / 1e3, 1),
                      Table::num(double(h.quantile(0.999)) / 1e3, 1),
                      Table::num(double(h.quantile(0.9999)) / 1e3,
                                 1)});
        }
        std::printf("%s", t.render().c_str());
        const auto &base = results.at(CheckpointMode::Baseline);
        const auto &iscc = results.at(CheckpointMode::IscC);
        const auto &ours = results.at(CheckpointMode::CheckIn);
        const double red999 =
            1.0 - double(ours.client.all.quantile(0.999)) /
                      double(base.client.all.quantile(0.999));
        const double red9999 =
            1.0 - double(ours.client.all.quantile(0.9999)) /
                      double(iscc.client.all.quantile(0.9999));
        std::printf("\nmeasured: p99.9 Check-In vs Baseline: "
                    "-%0.1f %% | p99.99 vs ISC-C: -%0.1f %%\n",
                    red999 * 100.0, red9999 * 100.0);
        printPaperNote("p99.9 -92.1 % (uniform) / -92.4 % (zipfian) "
                       "vs baseline; p99.99 -51.3 % / -50.8 % vs "
                       "ISC-C.");
    }
    return 0;
}
