/**
 * @file
 * Figure 9 — tail latency (p99, p99.9, p99.99) of YCSB-A under
 * uniform and zipfian request distributions for all configurations,
 * swept in parallel.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    const std::vector<Distribution> dists{Distribution::Uniform,
                                          Distribution::Zipfian};

    ExperimentConfig base = presets::paper();
    base.workload = WorkloadSpec::a();
    base.workload.operationCount = 40'000;
    base.threads = 128;

    SweepGrid grid(base);
    std::vector<SweepGrid::Value> dist_values;
    for (Distribution dist : dists) {
        dist_values.push_back({distributionName(dist),
                               [dist](ExperimentConfig &c) {
                                   c.workload.distribution = dist;
                               }});
    }
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : kAllModes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(dist_values)).axis(std::move(mode_values));

    BenchReport report("fig09_tail_latency");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    std::size_t i = 0;
    for (Distribution dist : dists) {
        printHeader("Fig 9", (std::string("tail latency, YCSB-A, ") +
                              distributionName(dist) +
                              " distribution, 128 threads")
                                 .c_str());
        Table t({"mode", "avg us", "p99 us", "p99.9 us",
                 "p99.99 us"});
        const std::size_t first = i;
        for (std::size_t m = 0; m < kAllModes.size(); ++m, ++i) {
            const auto &h = outcomes[i].result.client.all;
            t.addRow({modeName(kAllModes[m]),
                      Table::num(h.mean() / 1e3, 1),
                      Table::num(double(h.quantile(0.99)) / 1e3, 1),
                      Table::num(double(h.quantile(0.999)) / 1e3, 1),
                      Table::num(double(h.quantile(0.9999)) / 1e3,
                                 1)});
            report.add(outcomes[i].label, outcomes[i].result);
        }
        std::printf("%s", t.render().c_str());
        const auto &base_r = outcomes[first + 0].result;
        const auto &iscc_r = outcomes[first + 3].result;
        const auto &ours_r = outcomes[first + 4].result;
        const double red999 =
            1.0 - double(ours_r.client.all.quantile(0.999)) /
                      double(base_r.client.all.quantile(0.999));
        const double red9999 =
            1.0 - double(ours_r.client.all.quantile(0.9999)) /
                      double(iscc_r.client.all.quantile(0.9999));
        std::printf("\nmeasured: p99.9 Check-In vs Baseline: "
                    "-%0.1f %% | p99.99 vs ISC-C: -%0.1f %%\n",
                    red999 * 100.0, red9999 * 100.0);
        printPaperNote("p99.9 -92.1 % (uniform) / -92.4 % (zipfian) "
                       "vs baseline; p99.99 -51.3 % / -50.8 % vs "
                       "ISC-C.");
    }
    return 0;
}
