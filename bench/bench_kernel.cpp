/**
 * @file
 * DES kernel microbenchmark: events/sec and allocations/event of the
 * calendar-queue + inline-callback kernel against the binary-heap +
 * std::function kernel it replaced, plus a full-stack fig08-style
 * experiment timing.
 *
 * Both kernels dispatch the *same* deterministic event stream (the
 * golden test in tests/test_event_queue_golden.cc proves order
 * equality), so the comparison isolates kernel overhead. Unlike the
 * figure benches, BENCH_kernel.json contains wall-clock-derived
 * numbers and is not byte-deterministic across invocations.
 *
 * Usage: bench_kernel [--quick]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/inline_event.h"
#include "sim/rng.h"
#include "ssd/ssd.h"

// ----------------------------------------------------------------
// Allocation accounting: count every global operator new so the two
// kernels' per-event allocation behaviour is measured, not inferred.
// ----------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace checkin {
namespace {

using bench::BenchReport;
using bench::modeName;
using bench::printHeader;

/** The pre-calendar kernel: std::priority_queue + std::function. */
class ReferenceEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            when = now_;
        events_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    bool
    step()
    {
        if (events_.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        now_ = ev.when;
        ev.cb();
        return true;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

struct KernelRun
{
    double eventsPerSec = 0.0;
    std::uint64_t dispatched = 0;
    std::uint64_t allocs = 0;
};

/**
 * Dispatch @p target self-rescheduling events through @p Queue. A
 * fixed population of actors reschedules itself with the simulator's
 * delay mix (same-tick fan-out, CPU/NAND latencies, far timers); each
 * callback captures 32 bytes — the engine/FTL hot-path shape that
 * overflows std::function's inline buffer but fits InlineCallback's.
 */
/**
 * In-flight event population: roughly the figure-scale experiment's
 * steady state (32 client chains plus per-die NAND completions, GC,
 * journal and checkpoint machinery all pending at once).
 */
constexpr std::uint64_t kActors = 256;

template <typename Queue, typename Prep = void (*)(Queue &)>
KernelRun
driveKernel(
    std::uint64_t target, std::uint64_t seed,
    Prep prep = [](Queue &) {})
{
    Queue q;
    prep(q);
    Rng rng(seed);
    std::uint64_t dispatched = 0;
    std::uint64_t sink = 0;

    struct Rearm
    {
        Queue *q;
        Rng *rng;
        std::uint64_t *dispatched;
        std::uint64_t *sink;
        std::uint64_t target;

        /**
         * Count-weighted delay mix from the simulator: same-tick
         * layer handoffs and ~1-2 us host CPU steps dominate, NAND
         * page ops land 50-600 us out, and erase-class /
         * checkpoint-interval timers are rare.
         */
        Tick
        drawDelay() const
        {
            const std::uint64_t roll = rng->nextBounded(100);
            if (roll < 30)
                return 0;
            if (roll < 55)
                return 500 + rng->nextBounded(2'000);
            if (roll < 90)
                return 50'000 + rng->nextBounded(600'000);
            if (roll < 98)
                return rng->nextBounded(3'000'000);
            return rng->nextBounded(200'000'000);
        }

        void
        operator()() const
        {
            const Tick d = drawDelay();
            const std::uint64_t key = *dispatched;
            const std::uint64_t bytes = key ^ d;
            const std::uint64_t gen = key * 0x9e3779b97f4a7c15ULL;
            auto *self = this;
            q->scheduleAfter(d, [self, key, bytes, gen] {
                ++*self->dispatched;
                *self->sink += key ^ bytes ^ gen;
                if (*self->dispatched + kActors <= self->target)
                    (*self)();
            });
        }
    };

    Rearm rearm{&q, &rng, &dispatched, &sink, target};

    const std::uint64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kActors; ++i)
        rearm();
    while (dispatched < target && q.step()) {
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    KernelRun r;
    r.dispatched = dispatched;
    r.allocs = g_allocs.load(std::memory_order_relaxed) -
               allocs_before;
    r.eventsPerSec = secs > 0 ? double(dispatched) / secs : 0.0;
    if (sink == 0x5eed) // defeat dead-code elimination
        std::printf("%llu\n", (unsigned long long)sink);
    return r;
}

void
microbench(BenchReport &report, bool quick)
{
    printHeader("Kernel microbench",
                "events/sec, calendar+inline vs heap+std::function "
                "(identical event streams)");
    const std::uint64_t target = quick ? 300'000 : 3'000'000;
    constexpr int kReps = 3;

    KernelRun ref;
    KernelRun cal;
    std::uint64_t fallbacks = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        const KernelRun a =
            driveKernel<ReferenceEventQueue>(target, 42);
        if (a.eventsPerSec > ref.eventsPerSec)
            ref = a;
        const std::uint64_t fb_before =
            InlineCallback::heapFallbacks();
        const KernelRun b = driveKernel<EventQueue>(target, 42);
        fallbacks = InlineCallback::heapFallbacks() - fb_before;
        if (b.eventsPerSec > cal.eventsPerSec)
            cal = b;
    }

    const double speedup =
        ref.eventsPerSec > 0 ? cal.eventsPerSec / ref.eventsPerSec
                             : 0.0;
    Table t({"kernel", "events/sec", "allocs/event",
             "heap fallbacks"});
    t.addRow({"heap + std::function",
              Table::num(std::uint64_t(ref.eventsPerSec)),
              Table::num(double(ref.allocs) / double(ref.dispatched),
                         3),
              "n/a"});
    t.addRow({"calendar + inline cb",
              Table::num(std::uint64_t(cal.eventsPerSec)),
              Table::num(double(cal.allocs) / double(cal.dispatched),
                         3),
              Table::num(fallbacks)});
    std::printf("%s", t.render().c_str());
    std::printf("\nspeedup: %.2fx over the pre-change kernel "
                "(%llu events each)\n",
                speedup, (unsigned long long)cal.dispatched);

    RunResult r;
    r.raw["kernel.eventsPerSec"] =
        std::uint64_t(cal.eventsPerSec);
    r.raw["kernel.referenceEventsPerSec"] =
        std::uint64_t(ref.eventsPerSec);
    r.raw["kernel.speedupX100"] = std::uint64_t(speedup * 100.0);
    r.raw["kernel.dispatched"] = cal.dispatched;
    r.raw["kernel.allocs"] = cal.allocs;
    r.raw["kernel.referenceAllocs"] = ref.allocs;
    r.raw["kernel.heapFallbacks"] = fallbacks;
    report.add("microbench", r);
}

void
fullStack(BenchReport &report, bool quick)
{
    printHeader("Full-stack timing",
                "fig08-style experiment wall time through the new "
                "kernel (YCSB-WO, zipfian)");
    ExperimentConfig cfg = presets::paper();
    cfg.workload = WorkloadSpec::wo();
    cfg.workload.distribution = Distribution::Zipfian;
    if (quick)
        cfg.workload.operationCount = 5'000;

    Table t({"mode", "wall ms", "sim ops/s", "avg lat us",
             "nand programs"});
    // Gate, not just a metric: a full experiment issues every
    // command type, so any Ssd::Completion (or event callback) that
    // outgrows the inline buffer shows up here as a heap fallback.
    const std::uint64_t fb_before = Ssd::Completion::heapFallbacks();
    // Second gate: an installed-but-disabled attribution collector
    // must stay untouched through whole runs — the probes compile to
    // a pointer + flag check, never a token acquire or an allocation.
    obs::AttributionCollector attr_guard;
    obs::AttributionScope attr_scope(&attr_guard);
    for (const CheckpointMode mode :
         {CheckpointMode::Baseline, CheckpointMode::CheckIn}) {
        cfg.engine.mode = mode;
        const auto t0 = std::chrono::steady_clock::now();
        RunResult r = runExperiment(cfg);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        r.raw["kernel.fullstackWallMs"] = std::uint64_t(ms);
        r.raw["kernel.ssdHeapFallbacks"] =
            Ssd::Completion::heapFallbacks() - fb_before;
        t.addRow({modeName(mode), Table::num(ms, 1),
                  Table::num(r.throughputOps, 0),
                  Table::num(r.avgLatencyUs, 1),
                  Table::num(r.nandPrograms)});
        report.add(std::string("fullstack_") + modeName(mode), r);
    }
    std::printf("%s", t.render().c_str());
    const std::uint64_t fb =
        Ssd::Completion::heapFallbacks() - fb_before;
    if (fb != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu completion/event callbacks fell "
                     "back to the heap during the full-stack runs\n",
                     (unsigned long long)fb);
        std::exit(1);
    }
    if (attr_guard.poolSize() != 0 || attr_guard.liveTokens() != 0 ||
        attr_guard.storageBytes() != 0) {
        std::fprintf(stderr,
                     "FAIL: disabled attribution collector was "
                     "touched (pool %zu, live %zu, bytes %llu)\n",
                     attr_guard.poolSize(), attr_guard.liveTokens(),
                     (unsigned long long)attr_guard.storageBytes());
        std::exit(1);
    }
    std::printf("\nssd completion heap fallbacks: 0 (asserted)\n");
    std::printf("disabled-attribution storage/tokens: 0 "
                "(asserted)\n");
}

void
telemetryGate(BenchReport &report, bool quick)
{
    printHeader("Telemetry zero-overhead gate",
                "disabled sampler stores nothing; a disarmed step "
                "hook changes no dispatch/alloc counts");

    // Gate 1: a disabled sampler must ignore registration and every
    // hot-path note — the layers' probes compile down to a pointer +
    // flag check, never storage.
    obs::TelemetrySampler off;
    off.addGauge("gate.g", [] { return std::uint64_t(1); });
    off.addCounter("gate.c", [] { return std::uint64_t(1); });
    EventQueue dummy;
    off.begin(dummy); // no-op: must not install the hook
    off.noteEvent(obs::TelemetryEvent::JournalStall, 1, 1);
    off.noteSloResult(1, true);
    off.noteCheckpointStart(1);
    off.noteCheckpointEnd(2, 1);
    off.finalize(2);
    if (off.probeCount() != 0 || off.sampleCount() != 0 ||
        off.eventCount() != 0 || off.storageBytes() != 0 ||
        dummy.stepHookDue() != kInvalidTick) {
        std::fprintf(
            stderr,
            "FAIL: disabled telemetry sampler was touched "
            "(probes %zu, samples %llu, events %llu, bytes %llu)\n",
            off.probeCount(),
            (unsigned long long)off.sampleCount(),
            (unsigned long long)off.eventCount(),
            (unsigned long long)off.storageBytes());
        std::exit(1);
    }

    // Gate 2: the same event storm with and without an installed
    // (never armed) hook must dispatch identically and allocate
    // identically — the disarmed path is one always-false compare.
    const std::uint64_t target = quick ? 200'000 : 2'000'000;
    const KernelRun plain = driveKernel<EventQueue>(target, 7);
    const KernelRun hooked = driveKernel<EventQueue>(
        target, 7, [](EventQueue &q) {
            q.installStepHook([](void *, Tick) {}, nullptr);
        });
    if (plain.dispatched != hooked.dispatched ||
        plain.allocs != hooked.allocs) {
        std::fprintf(stderr,
                     "FAIL: disarmed step hook changed the kernel "
                     "(dispatched %llu vs %llu, allocs %llu vs "
                     "%llu)\n",
                     (unsigned long long)plain.dispatched,
                     (unsigned long long)hooked.dispatched,
                     (unsigned long long)plain.allocs,
                     (unsigned long long)hooked.allocs);
        std::exit(1);
    }

    Table t({"kernel", "events/sec", "allocs/event"});
    t.addRow({"no hook",
              Table::num(std::uint64_t(plain.eventsPerSec)),
              Table::num(double(plain.allocs) /
                             double(plain.dispatched),
                         3)});
    t.addRow({"hook installed, disarmed",
              Table::num(std::uint64_t(hooked.eventsPerSec)),
              Table::num(double(hooked.allocs) /
                             double(hooked.dispatched),
                         3)});
    std::printf("%s", t.render().c_str());
    std::printf("\ndisabled-telemetry storage/samples: 0 "
                "(asserted)\ndisarmed-hook dispatch/alloc parity "
                "(asserted)\n");

    RunResult r;
    r.raw["telemetry.gate.dispatched"] = hooked.dispatched;
    r.raw["telemetry.gate.allocs"] = hooked.allocs;
    r.raw["telemetry.gate.eventsPerSec"] =
        std::uint64_t(hooked.eventsPerSec);
    r.raw["telemetry.gate.plainEventsPerSec"] =
        std::uint64_t(plain.eventsPerSec);
    report.add("telemetry_gate", r);
}

} // namespace
} // namespace checkin

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }
    checkin::bench::BenchReport report("kernel");
    checkin::microbench(report, quick);
    checkin::fullStack(report, quick);
    checkin::telemetryGate(report, quick);
    return 0;
}
