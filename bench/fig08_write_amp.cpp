/**
 * @file
 * Figure 8 + Equation (1) — write amplification and flash lifetime.
 *
 *  (a) redundant (checkpoint-caused) flash writes vs checkpoint
 *      interval for all five configurations.
 *  (b) GC invocation counts vs write-query count.
 *  (eq1) relative flash lifetime from block erase counts.
 *
 * Both parts declare their grids with SweepGrid and run on the
 * parallel sweep runner.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

ExperimentConfig
baseCfg()
{
    ExperimentConfig c = presets::paper();
    c.workload = WorkloadSpec::wo();
    c.workload.distribution = Distribution::Zipfian;
    return c;
}

void
partA(BenchReport &report, const SweepOptions &opts)
{
    printHeader("Fig 8(a)", "redundant writes on the SSD vs "
                            "checkpoint interval (YCSB-WO, MiB "
                            "written by checkpoints)");
    const std::vector<Tick> intervals = {50 * kMsec, 100 * kMsec,
                                         200 * kMsec, 400 * kMsec};
    SweepGrid grid(baseCfg());
    std::vector<SweepGrid::Value> interval_values;
    for (Tick interval : intervals) {
        interval_values.push_back(
            {"interval" + std::to_string(interval / kMsec) + "ms",
             [interval](ExperimentConfig &c) {
                 c.engine.checkpointInterval = interval;
             }});
    }
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : kAllModes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(interval_values))
        .axis(std::move(mode_values));

    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"interval ms", "Baseline", "ISC-A", "ISC-B", "ISC-C",
             "Check-In", "CkIn vs Base", "CkIn vs ISC-C"});
    std::size_t i = 0;
    for (const Tick interval : intervals) {
        std::vector<double> mib;
        for (std::size_t m = 0; m < kAllModes.size(); ++m, ++i) {
            const RunResult &r = outcomes[i].result;
            mib.push_back(double(r.redundantBytes) / double(kMiB));
            report.add(outcomes[i].label, r);
        }
        const double base = mib[0];
        const double iscc = mib[3];
        const double ours = mib[4];
        t.addRow({Table::num(std::uint64_t(interval / kMsec)),
                  Table::num(mib[0], 2), Table::num(mib[1], 2),
                  Table::num(mib[2], 2), Table::num(iscc, 2),
                  Table::num(ours, 2),
                  Table::percent(base > 0 ? 1.0 - ours / base : 0.0),
                  Table::percent(iscc > 0 ? 1.0 - ours / iscc
                                          : 0.0)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("Check-In reduces redundant writes by 94.3 % vs "
                   "baseline and 45.6 % vs ISC-C.");
}

void
partB(BenchReport &report, const SweepOptions &opts)
{
    printHeader("Fig 8(b) + Eq (1)",
                "GC invocations and relative lifetime vs write-query "
                "count (YCSB-WO, 96 MiB device for GC pressure)");
    const std::vector<std::uint64_t> op_axis{120'000, 240'000,
                                             480'000};
    const std::vector<CheckpointMode> modes{CheckpointMode::Baseline,
                                            CheckpointMode::IscC,
                                            CheckpointMode::CheckIn};
    ExperimentConfig base = baseCfg();
    // Shrink the flash array so every configuration reaches
    // steady-state GC within the run.
    base.nand.blocksPerPlane = 48;

    SweepGrid grid(base);
    std::vector<SweepGrid::Value> ops_values;
    for (std::uint64_t ops : op_axis) {
        ops_values.push_back({"ops" + std::to_string(ops),
                              [ops](ExperimentConfig &c) {
                                  c.workload.operationCount = ops;
                              }});
    }
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : modes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(ops_values)).axis(std::move(mode_values));

    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"write queries", "mode", "GC count", "erases",
             "lifetime x vs Base"});
    std::size_t i = 0;
    for (const std::uint64_t ops : op_axis) {
        const std::size_t first = i;
        const double base_erases =
            double(outcomes[first].result.nandErases);
        for (std::size_t m = 0; m < modes.size(); ++m, ++i) {
            const RunResult &r = outcomes[i].result;
            report.add(outcomes[i].label, r);
            // Eq (1): lifetime ~ PEC_max * T_op / BEC; with identical
            // workloads, relative lifetime = BEC_base / BEC_mode.
            const double lifetime =
                r.nandErases > 0 ? base_erases / double(r.nandErases)
                                 : 0.0;
            t.addRow({Table::num(ops), modeName(modes[m]),
                      Table::num(r.gcInvocations),
                      Table::num(r.nandErases),
                      r.nandErases > 0 ? Table::num(lifetime, 2)
                                       : "inf"});
        }
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("GC count -74.1 % vs baseline / -44.8 % vs ISC-C; "
                   "lifetime x3.86 vs baseline, x1.81 vs ISC-C.");
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    BenchReport report("fig08_write_amp");
    partA(report, opts);
    partB(report, opts);
    return 0;
}
