/**
 * @file
 * Figure 8 + Equation (1) — write amplification and flash lifetime.
 *
 *  (a) redundant (checkpoint-caused) flash writes vs checkpoint
 *      interval for all five configurations.
 *  (b) GC invocation counts vs write-query count.
 *  (eq1) relative flash lifetime from block erase counts.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

ExperimentConfig
cfgFor(CheckpointMode mode)
{
    ExperimentConfig c = figureScale();
    c.engine.mode = mode;
    c.workload = WorkloadSpec::wo();
    c.workload.distribution = Distribution::Zipfian;
    return c;
}

void
partA(BenchReport &report)
{
    printHeader("Fig 8(a)", "redundant writes on the SSD vs "
                            "checkpoint interval (YCSB-WO, MiB "
                            "written by checkpoints)");
    const std::vector<Tick> intervals = {50 * kMsec, 100 * kMsec,
                                         200 * kMsec, 400 * kMsec};
    Table t({"interval ms", "Baseline", "ISC-A", "ISC-B", "ISC-C",
             "Check-In", "CkIn vs Base", "CkIn vs ISC-C"});
    for (const Tick interval : intervals) {
        std::map<CheckpointMode, double> mib;
        for (CheckpointMode mode : kAllModes) {
            ExperimentConfig c = cfgFor(mode);
            c.engine.checkpointInterval = interval;
            const RunResult r = runExperiment(c);
            mib[mode] = double(r.redundantBytes) / double(kMiB);
            report.add(std::string(modeName(mode)) + "-interval" +
                           std::to_string(interval / kMsec) + "ms",
                       r);
        }
        const double base = mib[CheckpointMode::Baseline];
        const double iscc = mib[CheckpointMode::IscC];
        const double ours = mib[CheckpointMode::CheckIn];
        t.addRow({Table::num(std::uint64_t(interval / kMsec)),
                  Table::num(mib[CheckpointMode::Baseline], 2),
                  Table::num(mib[CheckpointMode::IscA], 2),
                  Table::num(mib[CheckpointMode::IscB], 2),
                  Table::num(iscc, 2), Table::num(ours, 2),
                  Table::percent(base > 0 ? 1.0 - ours / base : 0.0),
                  Table::percent(iscc > 0 ? 1.0 - ours / iscc
                                          : 0.0)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("Check-In reduces redundant writes by 94.3 % vs "
                   "baseline and 45.6 % vs ISC-C.");
}

void
partB(BenchReport &report)
{
    printHeader("Fig 8(b) + Eq (1)",
                "GC invocations and relative lifetime vs write-query "
                "count (YCSB-WO, 96 MiB device for GC pressure)");
    Table t({"write queries", "mode", "GC count", "erases",
             "lifetime x vs Base"});
    for (const std::uint64_t ops : {120'000ULL, 240'000ULL,
                                    480'000ULL}) {
        std::map<CheckpointMode, RunResult> results;
        for (CheckpointMode mode :
             {CheckpointMode::Baseline, CheckpointMode::IscC,
              CheckpointMode::CheckIn}) {
            ExperimentConfig c = cfgFor(mode);
            // Shrink the flash array so every configuration reaches
            // steady-state GC within the run.
            c.nand.blocksPerPlane = 48;
            c.workload.operationCount = ops;
            const auto it =
                results.emplace(mode, runExperiment(c)).first;
            report.add(std::string(modeName(mode)) + "-ops" +
                           std::to_string(ops),
                       it->second);
        }
        const double base_erases = double(
            results.at(CheckpointMode::Baseline).nandErases);
        for (CheckpointMode mode :
             {CheckpointMode::Baseline, CheckpointMode::IscC,
              CheckpointMode::CheckIn}) {
            const RunResult &r = results.at(mode);
            // Eq (1): lifetime ~ PEC_max * T_op / BEC; with identical
            // workloads, relative lifetime = BEC_base / BEC_mode.
            const double lifetime =
                r.nandErases > 0 ? base_erases / double(r.nandErases)
                                 : 0.0;
            t.addRow({Table::num(ops), modeName(mode),
                      Table::num(r.gcInvocations),
                      Table::num(r.nandErases),
                      r.nandErases > 0 ? Table::num(lifetime, 2)
                                       : "inf"});
        }
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("GC count -74.1 % vs baseline / -44.8 % vs ISC-C; "
                   "lifetime x3.86 vs baseline, x1.81 vs ISC-C.");
}

} // namespace

int
main()
{
    printConfigOnce(figureScale());
    BenchReport report("fig08_write_amp");
    partA(report);
    partB(report);
    return 0;
}
