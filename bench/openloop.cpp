/**
 * @file
 * Open-loop traffic sweep: fixed vs adaptive checkpoint trigger
 * under arrival processes a closed-loop driver cannot express —
 * Poisson, bursty MMPP, diurnal load curves, a hot-key flash crowd,
 * and a multi-tenant mix with per-tenant SLOs.
 *
 * The claim under test (ROADMAP item 2): with arrivals on their own
 * clock, checkpoint device work that lands inside an arrival burst
 * compounds into queue delay, so an adaptive trigger that defers
 * checkpoints through bursts and paces them into lulls — while a
 * hard safety bound keeps the journal from ever overflowing — beats
 * the paper's fixed interval/threshold trigger on p99.9 latency at
 * equal offered load and durability (same bounded journal, similar
 * checkpoint cadence). Emits BENCH_openloop.json through the
 * deterministic sweep runner (byte-identical for any --jobs value).
 *
 * Usage: openloop [--quick] [--jobs N]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/rng.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

struct Scenario
{
    const char *name;
    TrafficSpec traffic;
};

TrafficSpec
openBase()
{
    TrafficSpec t;
    t.mode = LoopMode::Open;
    return t;
}

std::vector<Scenario>
scenarios()
{
    std::vector<Scenario> out;

    TrafficSpec poisson = openBase();
    poisson.process = ArrivalProcess::Poisson;
    poisson.offeredOpsPerSec = 120'000.0;
    out.push_back({"poisson", poisson});

    // Bursty MMPP: 90k base with 4x bursts — past the sustainable
    // service rate while the burst lasts, so the queue (and any
    // checkpoint scheduled mid-burst) shows up at p99.9.
    TrafficSpec mmpp = openBase();
    mmpp.process = ArrivalProcess::Mmpp;
    mmpp.offeredOpsPerSec = 90'000.0;
    mmpp.burstMultiplier = 4.0;
    mmpp.meanBaseDwell = 50 * kMsec;
    mmpp.meanBurstDwell = 25 * kMsec;
    out.push_back({"mmpp", mmpp});

    TrafficSpec diurnal = openBase();
    diurnal.process = ArrivalProcess::Diurnal;
    diurnal.offeredOpsPerSec = 110'000.0;
    diurnal.diurnalAmplitude = 0.6;
    diurnal.diurnalPeriod = 150 * kMsec;
    out.push_back({"diurnal", diurnal});

    // Hot-key flash crowd: mid-run the rate quadruples and the
    // surge hammers recently-updated keys (`latest` distribution).
    TrafficSpec crowd = openBase();
    crowd.process = ArrivalProcess::Poisson;
    crowd.offeredOpsPerSec = 100'000.0;
    crowd.flashCrowdStart = 100 * kMsec;
    crowd.flashCrowdDuration = 60 * kMsec;
    crowd.flashCrowdMultiplier = 4.0;
    out.push_back({"flashcrowd", crowd});

    // Multi-tenant MMPP mix with per-tenant SLOs.
    TrafficSpec tenants = mmpp;
    tenants.tenants = {
        TenantSpec{"gold", 0.2, 2 * kMsec},
        TenantSpec{"silver", 0.3, 6 * kMsec},
        TenantSpec{"bronze", 0.5, 20 * kMsec},
    };
    out.push_back({"multitenant", tenants});

    return out;
}

const char *
policyName(CheckpointPolicyKind k)
{
    return checkpointPolicyName(k);
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    printConfigOnce(presets::small());
    printHeader("Open-loop traffic sweep",
                "fixed vs adaptive checkpoint trigger, arrival-"
                "driven load");

    ExperimentConfig base = presets::small();
    // The adaptive controller's stall feedback reads the live
    // attribution signal; keep it on for both policies so the runs
    // differ only in the trigger rule.
    base.obs.attributionEnabled = true;
    base.workload = WorkloadSpec::a();
    base.workload.operationCount = quick ? 6'000 : 40'000;
    base.threads = 32;

    const CheckpointPolicyKind policies[] = {
        CheckpointPolicyKind::Fixed,
        CheckpointPolicyKind::Adaptive,
    };

    const std::vector<Scenario> scens = scenarios();
    std::vector<SweepPoint> points;
    for (std::size_t si = 0; si < scens.size(); ++si) {
        const Scenario &s = scens[si];
        for (const CheckpointPolicyKind p : policies) {
            ExperimentConfig c = base;
            c.traffic = s.traffic;
            c.engine.checkpointPolicy = p;
            // Pin the seed per scenario (not per sweep point) so
            // both policies face the byte-identical arrival
            // sequence: the comparison is at equal offered load.
            c.seed = Rng(0x09E2'10AF).childSeed(si);
            points.push_back({std::string(s.name) + "-" +
                                  policyName(p),
                              c});
        }
    }

    BenchReport report("openloop");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    Table t({"scenario", "policy", "offered k/s", "ach k/s",
             "p99.9 ms", "qdelay p99.9 ms", "ckpts", "stalls",
             "SLO viol"});
    for (const Scenario &s : scens) {
        for (const CheckpointPolicyKind p : policies) {
            const std::string label =
                std::string(s.name) + "-" + policyName(p);
            const SweepOutcome &o = outcomeByLabel(outcomes, label);
            const RunResult &r = o.result;
            report.add(o.label, r);
            t.addRow({s.name, policyName(p),
                      Table::num(r.client.offeredOpsPerSec() / 1e3,
                                 1),
                      Table::num(r.client.opsPerSec() / 1e3, 1),
                      Table::num(
                          double(r.client.all.quantile(0.999)) /
                              1e6,
                          2),
                      Table::num(
                          double(r.client.queueDelay.quantile(
                              0.999)) /
                              1e6,
                          2),
                      Table::num(r.checkpoints),
                      Table::num(r.journalStalls),
                      Table::num(r.client.sloViolations)});
        }
    }
    std::printf("%s", t.render().c_str());

    // Headline number: adaptive's p99.9 win under bursty arrivals.
    {
        const RunResult &fixed =
            outcomeByLabel(outcomes, "mmpp-fixed").result;
        const RunResult &adaptive =
            outcomeByLabel(outcomes, "mmpp-adaptive").result;
        const double pf =
            double(fixed.client.all.quantile(0.999)) / 1e6;
        const double pa =
            double(adaptive.client.all.quantile(0.999)) / 1e6;
        if (pf > 0.0) {
            std::printf("\nmmpp p99.9: fixed %.2f ms, adaptive "
                        "%.2f ms (%+.1f%%)\n",
                        pf, pa, 100.0 * (pa - pf) / pf);
        }
    }
    printPaperNote(
        "(extension, no paper counterpart) the paper evaluates "
        "closed-loop clients, where a stalled checkpoint throttles "
        "the arrival process itself; an open-loop driver keeps "
        "offering load through the stall, so trigger placement "
        "moves the tail. Both policies run the same safety-bounded "
        "dual-half journal: durability is identical, only the "
        "trigger timing differs.");
    return 0;
}
