/**
 * @file
 * Extension experiment — the full YCSB suite (A, B, C, D, E, F, WO)
 * across checkpoint configurations. The paper evaluates only the
 * write-heavy set (A, F, WO); this bench records how Check-In
 * behaves when reads, scans, or the latest distribution dominate.
 * The workload x mode grid runs on the parallel sweep runner.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    printHeader("Extension", "full YCSB suite, 64 threads");

    const WorkloadSpec specs[] = {
        WorkloadSpec::a(), WorkloadSpec::b(), WorkloadSpec::c(),
        WorkloadSpec::d(), WorkloadSpec::e(), WorkloadSpec::f(),
        WorkloadSpec::wo()};
    const std::vector<CheckpointMode> modes{CheckpointMode::Baseline,
                                            CheckpointMode::CheckIn};

    std::vector<SweepPoint> points;
    for (const WorkloadSpec &spec : specs) {
        for (CheckpointMode mode : modes) {
            ExperimentConfig c = presets::paper();
            c.engine.mode = mode;
            c.workload = spec;
            c.workload.operationCount = 20'000;
            c.workload.maxScanLength = 32;
            c.threads = 64;
            points.push_back(
                {std::string(spec.name) + "-" + modeName(mode), c});
        }
    }

    BenchReport report("ext_workloads");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    Table t({"workload", "mode", "kops/s", "avg us", "p99.9 ms",
             "redundant MiB"});
    std::size_t i = 0;
    for (const WorkloadSpec &spec : specs) {
        for (CheckpointMode mode : modes) {
            const RunResult &r = outcomes[i].result;
            report.add(outcomes[i].label, r);
            ++i;
            t.addRow({spec.name, modeName(mode),
                      Table::num(r.throughputOps / 1e3, 2),
                      Table::num(r.avgLatencyUs, 1),
                      Table::num(
                          double(r.client.all.quantile(0.999)) / 1e6,
                          2),
                      Table::num(double(r.redundantBytes) /
                                     double(kMiB),
                                 2)});
        }
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("(extension, no paper counterpart) read-dominated "
                   "workloads narrow the gap — checkpointing is a "
                   "write-path problem; scans benefit from the data "
                   "area's sequential layout after checkpoints.");
    return 0;
}
