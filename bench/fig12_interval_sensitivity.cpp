/**
 * @file
 * Figure 12 — sensitivity to the checkpoint interval: baseline
 * improves with longer intervals (fewer duplicate writes of hot
 * keys), Check-In stays steady. The interval x mode grid runs on the
 * parallel sweep runner.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    printHeader("Fig 12", "checkpoint-interval sensitivity, YCSB-A "
                          "zipfian, 64 threads");

    ExperimentConfig base = presets::paper();
    base.engine.checkpointJournalBytes = 7 * kMiB;
    base.workload = WorkloadSpec::a();
    base.workload.operationCount = 60'000;
    base.threads = 64;

    const std::vector<Tick> intervals{25 * kMsec, 50 * kMsec,
                                      100 * kMsec, 200 * kMsec,
                                      400 * kMsec};
    const std::vector<CheckpointMode> modes{CheckpointMode::Baseline,
                                            CheckpointMode::CheckIn};

    SweepGrid grid(base);
    std::vector<SweepGrid::Value> interval_values;
    for (Tick interval : intervals) {
        interval_values.push_back(
            {std::to_string(interval / kMsec) + "ms",
             [interval](ExperimentConfig &c) {
                 c.engine.checkpointInterval = interval;
             }});
    }
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : modes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(interval_values))
        .axis(std::move(mode_values));

    BenchReport report("fig12_interval_sensitivity");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"interval ms", "Base kops/s", "Base avg us",
             "CkIn kops/s", "CkIn avg us"});
    std::size_t i = 0;
    for (Tick interval : intervals) {
        const RunResult &base_r = outcomes[i].result;
        const RunResult &ours_r = outcomes[i + 1].result;
        report.add(outcomes[i].label, base_r);
        report.add(outcomes[i + 1].label, ours_r);
        i += 2;
        t.addRow({Table::num(std::uint64_t(interval / kMsec)),
                  Table::num(base_r.throughputOps / 1e3, 2),
                  Table::num(base_r.avgLatencyUs, 1),
                  Table::num(ours_r.throughputOps / 1e3, 2),
                  Table::num(ours_r.avgLatencyUs, 1)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("baseline throughput rises / latency falls as the "
                   "interval grows; Check-In is steady regardless.");
    return 0;
}
