/**
 * @file
 * Figure 12 — sensitivity to the checkpoint interval: baseline
 * improves with longer intervals (fewer duplicate writes of hot
 * keys), Check-In stays steady.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main()
{
    printConfigOnce(figureScale());
    printHeader("Fig 12", "checkpoint-interval sensitivity, YCSB-A "
                          "zipfian, 64 threads");
    Table t({"interval ms", "Base kops/s", "Base avg us",
             "CkIn kops/s", "CkIn avg us"});
    for (Tick interval : {25 * kMsec, 50 * kMsec, 100 * kMsec,
                          200 * kMsec, 400 * kMsec}) {
        RunResult res[2];
        int i = 0;
        for (CheckpointMode mode : {CheckpointMode::Baseline,
                                    CheckpointMode::CheckIn}) {
            ExperimentConfig c = figureScale();
            c.engine.mode = mode;
            c.engine.checkpointInterval = interval;
            c.engine.checkpointJournalBytes = 7 * kMiB;
            c.workload = WorkloadSpec::a();
            c.workload.operationCount = 60'000;
            c.threads = 64;
            res[i++] = runExperiment(c);
        }
        t.addRow({Table::num(std::uint64_t(interval / kMsec)),
                  Table::num(res[0].throughputOps / 1e3, 2),
                  Table::num(res[0].avgLatencyUs, 1),
                  Table::num(res[1].throughputOps / 1e3, 2),
                  Table::num(res[1].avgLatencyUs, 1)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("baseline throughput rises / latency falls as the "
                   "interval grows; Check-In is steady regardless.");
    return 0;
}
