/**
 * @file
 * Storage-engine backend comparison — the same YCSB A/B/C workloads
 * driven through both StorageEngine backends (`checkin`
 * checkpoint-journal vs `lsm` memtable/WAL with ISCE-offloaded
 * compaction) on identical devices. Reports throughput, tail
 * latency, flash write amplification, and where op time went
 * (device-busy share from the latency attribution), and emits
 * BENCH_engines.json through the deterministic sweep runner.
 *
 * Usage: engine_compare [--quick] [--jobs N]
 */

#include <cstdio>
#include <cstring>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

/** Dwell spent inside the device, summed over all op classes. */
Tick
deviceDwell(const obs::AttributionSummary &s)
{
    Tick t = 0;
    for (const obs::ClassBreakdown &cb : s.perClass) {
        for (std::size_t st = 0; st < obs::kStageCount; ++st) {
            switch (obs::Stage(st)) {
              case obs::Stage::SsdQueue:
              case obs::Stage::Firmware:
              case obs::Stage::FtlMap:
              case obs::Stage::DramCache:
              case obs::Stage::NandWait:
              case obs::Stage::NandMedia:
              case obs::Stage::GcStall:
              case obs::Stage::Bus:
              case obs::Stage::Backpressure:
                t += cb.dwell[st];
                break;
              default:
                break;
            }
        }
    }
    return t;
}

Tick
totalDwell(const obs::AttributionSummary &s)
{
    Tick t = 0;
    for (const obs::ClassBreakdown &cb : s.perClass)
        t += cb.totalTicks();
    return t;
}

const char *
backendName(EngineBackend b)
{
    return engineBackendName(b);
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    printConfigOnce(presets::paper());
    printHeader("Engine comparison",
                "checkpoint-journal vs LSM backend, YCSB A/B/C");

    ExperimentConfig base = presets::paper();
    base.obs.attributionEnabled = true;
    base.workload.operationCount = quick ? 5'000 : 20'000;
    // Tight enough that even the quick run drives several
    // checkpoint/flush cycles (and LSM compactions) per point.
    base.engine.checkpointJournalBytes = 256 * kKiB;

    const WorkloadSpec specs[] = {WorkloadSpec::a(),
                                  WorkloadSpec::b(),
                                  WorkloadSpec::c()};
    const EngineBackend backends[] = {EngineBackend::CheckIn,
                                      EngineBackend::Lsm};

    std::vector<SweepPoint> points;
    for (const WorkloadSpec &spec : specs) {
        for (EngineBackend b : backends) {
            ExperimentConfig c = base;
            c.workload = spec;
            c.workload.operationCount =
                base.workload.operationCount;
            c.engine.backend = b;
            points.push_back({std::string(spec.name) + "-" +
                                  backendName(b),
                              c});
        }
    }

    BenchReport report("engines");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    Table t({"workload", "engine", "kops/s", "p99.9 ms", "WAF",
             "device busy %", "ckpt/flush", "jrnl stalls"});
    for (const WorkloadSpec &spec : specs) {
        for (EngineBackend b : backends) {
            const std::string label =
                std::string(spec.name) + "-" + backendName(b);
            const SweepOutcome &o = outcomeByLabel(outcomes, label);
            const RunResult &r = o.result;
            report.add(o.label, r);
            const Tick total = totalDwell(r.attribution);
            const double busy =
                total == 0 ? 0.0
                           : 100.0 * double(deviceDwell(
                                         r.attribution)) /
                                 double(total);
            t.addRow({spec.name, backendName(b),
                      Table::num(r.throughputOps / 1e3, 2),
                      Table::num(
                          double(r.client.all.quantile(0.999)) /
                              1e6,
                          2),
                      Table::num(r.waf, 2), Table::num(busy, 1),
                      Table::num(r.checkpoints),
                      Table::num(r.journalStalls)});
        }
    }
    std::printf("%s", t.render().c_str());
    printPaperNote(
        "(extension, no paper counterpart) both backends ride the "
        "same ISCE offload: the checkpoint-journal engine remaps "
        "journal units over data slots, the LSM engine remaps WAL "
        "units into L0 runs and merges runs device-side. "
        "Write-amplification splits on update size: in-place slots "
        "rewrite whole units, the LSM pays compaction copies "
        "instead.");
    return 0;
}
