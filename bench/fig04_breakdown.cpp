/**
 * @file
 * Figure 4 analogue — checkpoint time breakdown per configuration.
 *
 * The paper's Fig 4 shows conceptual timing diagrams: conventional
 * checkpointing spends its time in journal reads + data writes +
 * metadata through the block interface; offloading removes the host
 * transfer; the engine-aware FTL removes most flash operations. This
 * bench measures the actual phase split (data movement / metadata /
 * log deletion) for all five configurations, run as one parallel
 * sweep.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);
    printConfigOnce(presets::paper());
    printHeader("Fig 4 (analogue)",
                "checkpoint phase breakdown, YCSB-A zipfian, 64 "
                "threads, queries locked");

    ExperimentConfig base = presets::paper();
    base.engine.lockQueriesDuringCheckpoint = true;
    base.engine.checkpointInterval = 25 * kMsec;
    base.engine.checkpointJournalBytes = 3 * kMiB;
    base.workload = WorkloadSpec::a();
    base.workload.operationCount = 30'000;
    base.threads = 64;

    SweepGrid grid(base);
    std::vector<SweepGrid::Value> mode_values;
    for (CheckpointMode mode : kAllModes) {
        mode_values.push_back({modeName(mode),
                               [mode](ExperimentConfig &c) {
                                   c.engine.mode = mode;
                               }});
    }
    grid.axis(std::move(mode_values));

    BenchReport report("fig04_breakdown");
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(grid.points(), opts, report);

    Table t({"mode", "ckpts", "data ms/ckpt", "meta ms/ckpt",
             "delete ms/ckpt", "total ms/ckpt", "WAF"});
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunResult &r = outcomes[i].result;
        report.add(outcomes[i].label, r);
        const double n = double(std::max<std::uint64_t>(
            1, r.checkpoints));
        t.addRow({modeName(kAllModes[i]), Table::num(r.checkpoints),
                  Table::num(double(r.ckptDataTicks) / n / 1e6, 2),
                  Table::num(double(r.ckptMetaTicks) / n / 1e6, 2),
                  Table::num(double(r.ckptDeleteTicks) / n / 1e6,
                             2),
                  Table::num(r.avgCheckpointMs, 2),
                  Table::num(r.waf, 2)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("offloading removes host transfer time; the "
                   "engine-aware FTL (remapping) removes most flash "
                   "operations, leaving metadata as the residue "
                   "(Fig 4(c)).");
    return 0;
}
