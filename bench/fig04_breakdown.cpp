/**
 * @file
 * Figure 4 analogue — checkpoint time breakdown per configuration.
 *
 * The paper's Fig 4 shows conceptual timing diagrams: conventional
 * checkpointing spends its time in journal reads + data writes +
 * metadata through the block interface; offloading removes the host
 * transfer; the engine-aware FTL removes most flash operations. This
 * bench measures the actual phase split (data movement / metadata /
 * log deletion) for all five configurations.
 */

#include <cstdio>

#include "bench_common.h"

using namespace checkin;
using namespace checkin::bench;

int
main()
{
    printConfigOnce(figureScale());
    printHeader("Fig 4 (analogue)",
                "checkpoint phase breakdown, YCSB-A zipfian, 64 "
                "threads, queries locked");
    Table t({"mode", "ckpts", "data ms/ckpt", "meta ms/ckpt",
             "delete ms/ckpt", "total ms/ckpt", "WAF"});
    for (CheckpointMode mode : kAllModes) {
        ExperimentConfig c = figureScale();
        c.engine.mode = mode;
        c.engine.lockQueriesDuringCheckpoint = true;
        c.engine.checkpointInterval = 25 * kMsec;
        c.engine.checkpointJournalBytes = 3 * kMiB;
        c.workload = WorkloadSpec::a();
        c.workload.operationCount = 30'000;
        c.threads = 64;
        const RunResult r = runExperiment(c);
        const double n = double(std::max<std::uint64_t>(
            1, r.checkpoints));
        t.addRow({modeName(mode), Table::num(r.checkpoints),
                  Table::num(double(r.ckptDataTicks) / n / 1e6, 2),
                  Table::num(double(r.ckptMetaTicks) / n / 1e6, 2),
                  Table::num(double(r.ckptDeleteTicks) / n / 1e6,
                             2),
                  Table::num(r.avgCheckpointMs, 2),
                  Table::num(r.waf, 2)});
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("offloading removes host transfer time; the "
                   "engine-aware FTL (remapping) removes most flash "
                   "operations, leaving metadata as the residue "
                   "(Fig 4(c)).");
    return 0;
}
