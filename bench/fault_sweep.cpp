/**
 * @file
 * Fault-injection sweep + crash-consistency oracle.
 *
 * Part 1 sweeps fault intensity (off / nominal / end-of-life) across
 * all five checkpoint configurations on the parallel sweep runner and
 * records throughput, retry, and retirement behaviour into
 * BENCH_fault.json.
 *
 * Part 2 runs the crash oracle for the Baseline and Check-In modes
 * under the nominal fault plan: N seeded power cuts (half of them
 * aimed inside checkpoint windows), each followed by SPOR + firmware
 * rebuild + engine recovery, asserting that no acknowledged write is
 * lost and no torn record is served. A violated invariant fails the
 * process (exit 1), so CI can run this binary as a correctness gate.
 *
 * Flags: --quick (CI-sized: fewer ops and 8 crash points instead of
 * 50), --jobs N (sweep workers).
 */

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "harness/crash_oracle.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

/** Labeled fault intensities; "off" anchors the no-fault baseline. */
std::vector<SweepGrid::Value>
faultAxis()
{
    return {
        {"faults:off", [](ExperimentConfig &c) { c.faults = {}; }},
        {"faults:nominal",
         [](ExperimentConfig &c) {
             c.faults = presets::faulty().faults;
         }},
        {"faults:eol",
         [](ExperimentConfig &c) {
             c.faults = presets::faulty().faults;
             c.faults.readBitErrorProb = 5e-3;
             c.faults.programFailProb = 1e-3;
             c.faults.eraseFailProb = 5e-3;
             c.faults.wearFactor = 2.0;
         }},
    };
}

void
intensitySweep(BenchReport &report, const SweepOptions &opts,
               bool quick)
{
    printHeader("Fault sweep",
                "fault intensity x checkpoint configuration");
    ExperimentConfig base = presets::faulty();
    base.faults = {}; // the axis sets it
    if (quick)
        base.workload.operationCount = 4'000;
    printConfigOnce(base);

    std::vector<SweepGrid::Value> modes;
    for (CheckpointMode m : kAllModes) {
        modes.push_back({modeName(m), [m](ExperimentConfig &c) {
                             c.engine.mode = m;
                         }});
    }
    const std::vector<SweepPoint> points =
        SweepGrid(base).axis(modes).axis(faultAxis()).points();
    const std::vector<SweepOutcome> outcomes =
        runBenchSweep(points, opts, report);

    std::printf("%-22s %10s %10s %8s %8s %8s %8s\n", "config",
                "kops/s", "retries", "uncorr", "pgmFail", "badBlk",
                "digest16");
    for (const SweepOutcome &o : outcomes) {
        const auto &raw = o.result.raw;
        const auto get = [&raw](const char *k) {
            const auto it = raw.find(k);
            return it == raw.end() ? std::uint64_t(0) : it->second;
        };
        std::printf("%-22s %10.1f %10llu %8llu %8llu %8llu %8llx\n",
                    o.label.c_str(),
                    o.result.throughputOps / 1e3,
                    (unsigned long long)get("fault.readRetries"),
                    (unsigned long long)get(
                        "fault.uncorrectableReads"),
                    (unsigned long long)get("fault.programFails"),
                    (unsigned long long)get("ftl.retiredBlocks"),
                    (unsigned long long)(get("fault.digest") &
                                         0xFFFF));
        report.add(o.label, o.result);
    }
}

/** Oracle campaign for one mode; returns false on any violation. */
bool
oracleFor(CheckpointMode mode, bool quick)
{
    OracleConfig cfg;
    cfg.base = presets::faulty();
    // Small store so each of the N replays loads fast; the oracle
    // drives its own ops, the workload spec is unused.
    cfg.base.engine.mode = mode;
    cfg.base.engine.recordCount = 300;
    cfg.base.engine.journalHalfBytes = 2 * kMiB;
    cfg.base.engine.checkpointJournalBytes = kMiB;
    cfg.base.nand.blocksPerPlane = 32;
    cfg.base.nand.pagesPerBlock = 32;
    cfg.seed = 42;
    cfg.crashPoints = quick ? 8 : 50;
    cfg.ops = quick ? 300 : 600;

    const OracleReport r = runCrashOracle(cfg);
    std::printf("%-10s crashes=%u midCkpt=%u acked=%llu lost=%llu "
                "torn=%llu digest=%016llx -> %s\n",
                modeName(mode), r.crashesRun,
                r.midCheckpointCrashes,
                (unsigned long long)r.ackedWrites,
                (unsigned long long)r.lostWrites,
                (unsigned long long)r.tornRecords,
                (unsigned long long)r.faultDigest,
                r.ok() ? "OK" : "VIOLATION");
    return r.ok();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }
    const SweepOptions opts = sweepOptionsFromArgs(argc, argv);

    BenchReport report("fault");
    intensitySweep(report, opts, quick);

    printHeader("Crash-consistency oracle",
                "seeded power cuts + SPOR + recovery, acked-write "
                "durability and torn-record checks");
    bool ok = true;
    ok &= oracleFor(CheckpointMode::Baseline, quick);
    ok &= oracleFor(CheckpointMode::CheckIn, quick);
    if (!ok) {
        std::fprintf(stderr,
                     "crash oracle detected a durability "
                     "violation\n");
        return 1;
    }
    std::printf("\noracle passed for all probed modes\n");
    return 0;
}
