/**
 * @file
 * google-benchmark microbenchmarks of the substrate hot paths: key
 * distributions, token codec, histogram, event queue, and FTL
 * write/remap operations.
 */

#include <benchmark/benchmark.h>

#include "engine/journal.h"
#include "engine/record.h"
#include "ftl/ftl.h"
#include "nand/nand_flash.h"
#include "sim/event_queue.h"
#include "sim/histogram.h"
#include "sim/rng.h"
#include "sim/sim_context.h"
#include "sim/zipf.h"
#include "ssd/ssd.h"

namespace checkin {
namespace {

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_ZipfianNext(benchmark::State &state)
{
    Rng rng(1);
    ZipfianDistribution dist(std::uint64_t(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.next(rng));
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(100000);

void
BM_ScrambledZipfianNext(benchmark::State &state)
{
    Rng rng(1);
    ScrambledZipfianDistribution dist(100000);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.next(rng));
}
BENCHMARK(BM_ScrambledZipfianNext);

void
BM_TokenEncodeDecode(benchmark::State &state)
{
    std::uint64_t i = 0;
    for (auto _ : state) {
        const std::uint64_t t = dataChunkToken(i & 0xffffff, i, 3);
        benchmark::DoNotOptimize(decodeToken(t));
        ++i;
    }
}
BENCHMARK(BM_TokenEncodeDecode);

void
BM_HistogramRecord(benchmark::State &state)
{
    LatencyHistogram h;
    Rng rng(1);
    for (auto _ : state)
        h.record(rng.nextBounded(100'000'000));
}
BENCHMARK(BM_HistogramRecord);

void
BM_HistogramQuantile(benchmark::State &state)
{
    LatencyHistogram h;
    Rng rng(1);
    for (int i = 0; i < 100'000; ++i)
        h.record(rng.nextBounded(100'000'000));
    for (auto _ : state)
        benchmark::DoNotOptimize(h.quantile(0.999));
}
BENCHMARK(BM_HistogramQuantile);

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.scheduleAfter(10, [] {});
        eq.step();
    }
}
BENCHMARK(BM_EventQueueScheduleStep);

NandConfig
benchNand()
{
    NandConfig c;
    c.channels = 4;
    c.diesPerChannel = 2;
    c.blocksPerPlane = 64;
    c.pagesPerBlock = 64;
    return c;
}

void
BM_FtlSectorWrite(benchmark::State &state)
{
    NandFlash nand(benchNand());
    FtlConfig cfg;
    cfg.mappingUnitBytes = std::uint32_t(state.range(0));
    Ftl ftl(nand, cfg);
    Rng rng(1);
    const std::uint32_t spu = ftl.sectorsPerUnit();
    std::vector<SectorData> data(spu);
    const std::uint64_t span = ftl.logicalUnits() / 2;
    for (auto _ : state) {
        const Lba lba = rng.nextBounded(span) * spu;
        benchmark::DoNotOptimize(ftl.writeSectors(
            lba, spu, data.data(), IoCause::Query, 0));
    }
    state.counters["gc"] = double(ftl.stats().get("gc.invocations"));
}
BENCHMARK(BM_FtlSectorWrite)->Arg(512)->Arg(4096);

void
BM_FtlRemap(benchmark::State &state)
{
    NandFlash nand(benchNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    SectorData d;
    ftl.writeSectors(0, 1, &d, IoCause::Journal, 0);
    std::uint64_t dst = 1;
    const std::uint64_t limit = ftl.logicalUnits();
    for (auto _ : state) {
        ftl.remapUnit(0, dst, 0);
        dst = dst % (limit - 2) + 1;
    }
}
BENCHMARK(BM_FtlRemap);

void
BM_FormatLogSize(benchmark::State &state)
{
    const bool aligned = state.range(0) != 0;
    std::uint32_t bytes = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            formatLogSize(bytes, 512, aligned, 0.85));
        bytes = bytes % 4096 + 37;
    }
}
BENCHMARK(BM_FormatLogSize)->Arg(0)->Arg(1);

void
BM_SsdWriteCommandPath(benchmark::State &state)
{
    SimContext ctx;
    EventQueue &eq = ctx.events();
    NandConfig nand = benchNand();
    FtlConfig ftl_cfg;
    Ssd ssd(ctx, nand, ftl_cfg, SsdConfig{});
    Rng rng(1);
    const std::uint64_t span = ssd.capacitySectors() / 2;
    std::vector<SectorData> payload(1);
    for (auto _ : state) {
        ssd.submit(Command::write(rng.nextBounded(span), payload,
                                  IoCause::Query),
                   [](const CmdResult &) {});
        eq.run();
    }
    state.counters["gc"] =
        double(ssd.ftl().stats().get("gc.invocations"));
}
BENCHMARK(BM_SsdWriteCommandPath);

void
BM_GcReclaimCycle(benchmark::State &state)
{
    // Steady-state GC cost: device driven to continuous collection.
    NandConfig nand_cfg = benchNand();
    nand_cfg.blocksPerPlane = 16;
    NandFlash nand(nand_cfg);
    FtlConfig cfg;
    cfg.exportedRatio = 0.7;
    Ftl ftl(nand, cfg);
    Rng rng(1);
    const std::uint64_t span = ftl.logicalUnits() * 9 / 10;
    SectorData d;
    // Warm up to steady state.
    for (int i = 0; i < 60'000; ++i)
        ftl.writeSectors(rng.nextBounded(span), 1, &d,
                         IoCause::Query, 0);
    for (auto _ : state) {
        ftl.writeSectors(rng.nextBounded(span), 1, &d,
                         IoCause::Query, 0);
    }
    state.counters["gcPerKWrite"] =
        double(ftl.stats().get("gc.invocations")) /
        double(ftl.stats().get("ftl.slotWrites")) * 1000.0;
}
BENCHMARK(BM_GcReclaimCycle);

void
BM_PowerLossRebuild(benchmark::State &state)
{
    NandFlash nand(benchNand());
    FtlConfig cfg;
    Ftl ftl(nand, cfg);
    Rng rng(1);
    SectorData d;
    for (int i = 0; i < 50'000; ++i)
        ftl.writeSectors(rng.nextBounded(10'000), 1, &d,
                         IoCause::Query, 0, std::uint64_t(i));
    ftl.flushOpenPages(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ftl.rebuildFromPowerLoss());
}
BENCHMARK(BM_PowerLossRebuild);

} // namespace
} // namespace checkin

BENCHMARK_MAIN();
