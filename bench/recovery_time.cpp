/**
 * @file
 * Extension experiment — crash-recovery time vs accumulated journal
 * (paper §III-G describes the recovery flow; no figure is given, so
 * this records the behaviour of our implementation): catalog load +
 * journal scan + replay-checkpoint, for every configuration.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "engine/storage_engine.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

using namespace checkin;
using namespace checkin::bench;

namespace {

struct Probe
{
    double recoveryMs = 0.0;
    std::uint64_t replayed = 0;
};

Probe
measure(CheckpointMode mode, std::uint64_t updates)
{
    ExperimentConfig base = presets::small();
    SimContext ctx;
    EventQueue &eq = ctx.events();
    FtlConfig ftl_cfg = base.ftl;
    ftl_cfg.mappingUnitBytes =
        (mode == CheckpointMode::IscC ||
         mode == CheckpointMode::CheckIn)
            ? 512
            : base.nand.pageBytes;
    Ssd ssd(ctx, base.nand, ftl_cfg, base.ssd);
    EngineConfig ecfg = base.engine;
    ecfg.mode = mode;
    ecfg.checkpointInterval = 0;
    ecfg.checkpointJournalBytes = 1 * kGiB; // no auto checkpoints
    std::unique_ptr<StorageEngine> engine =
        presets::makeEngine(ctx, ssd, ecfg);
    engine->load([](std::uint64_t) { return 384u; });
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();

    Rng rng(3);
    for (std::uint64_t i = 0; i < updates; ++i) {
        engine->update(rng.nextBounded(ecfg.recordCount),
                       std::uint32_t(128 * (1 + rng.nextBounded(4))),
                       [](const QueryResult &) {});
    }
    eq.run();

    // Power cut, then recover on a fresh engine.
    eq.clear();
    engine.reset();
    engine = presets::makeEngine(ctx, ssd, ecfg);
    const RecoveryInfo info = engine->recover();
    engine->verifyAllKeys();
    return Probe{double(info.duration) / double(kMsec),
                 info.replayedLogs};
}

} // namespace

int
main()
{
    printConfigOnce(presets::paper());
    printHeader("Recovery (extension)",
                "crash-recovery time vs un-checkpointed updates");
    Table t({"updates", "mode", "replayed logs", "recovery ms"});
    for (std::uint64_t updates : {2'000ULL, 8'000ULL, 24'000ULL}) {
        for (CheckpointMode mode :
             {CheckpointMode::Baseline, CheckpointMode::IscC,
              CheckpointMode::CheckIn}) {
            const Probe p = measure(mode, updates);
            t.addRow({Table::num(updates), modeName(mode),
                      Table::num(p.replayed),
                      Table::num(p.recoveryMs, 2)});
        }
    }
    std::printf("%s", t.render().c_str());
    printPaperNote("recovery = catalog read + journal scan + replay "
                   "checkpoint (paper §III-G); remapping modes "
                   "replay by remapping, so recovery is cheaper.");
    return 0;
}
