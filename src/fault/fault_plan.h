/**
 * @file
 * Seed-deterministic fault injection plan.
 *
 * A FaultPlan is the single source of hardware misbehavior for one
 * simulated run: NAND read bit errors (with an ECC read-retry model),
 * program failures, erase failures, and an optionally scheduled
 * sudden power loss. It is owned by the harness, registered on the
 * run's SimContext, and consulted by NandFlash at every media
 * operation; the FTL and SSD front-end only ever see the *outcomes*
 * (NandStatus codes) and implement the consequences — bad-block
 * retirement, live-data remap, command retry/backoff.
 *
 * Determinism contract: every decision is drawn as
 * mix64(stream seed ^ decision index), so the full fault schedule is
 * a pure function of (config, seed) and of the order of media ops —
 * which is itself deterministic per run. Identical seed + config
 * therefore yield a byte-identical schedule regardless of how many
 * sweep workers run concurrently; digest() folds every decision into
 * one value so tests can assert exactly that.
 *
 * The plan is intentionally layered *below* nand_types.h: it speaks
 * Ppn/Tick (sim/types.h) and raw block numbers, so checkin_fault
 * depends only on checkin_sim and every upper layer can link it.
 */

#ifndef CHECKIN_FAULT_FAULT_PLAN_H_
#define CHECKIN_FAULT_FAULT_PLAN_H_

#include <cstdint>

#include "sim/types.h"

namespace checkin {

/** Knobs for one run's fault plan; all off by default. */
struct FaultConfig
{
    /** Master switch; when false the plan never injects anything. */
    bool enabled = false;

    /** Per-read probability that the first page sense fails ECC. */
    double readBitErrorProb = 0.0;

    /**
     * Read-retry budget of the ECC model: a read whose sensing keeps
     * failing after this many re-reads is uncorrectable and surfaces
     * as NandStatus::Uncorrectable to the FTL.
     */
    std::uint32_t readRetryMax = 4;

    /** Extra die-busy time charged per failed sensing attempt. */
    Tick readRetryLatency = 25 * kUsec;

    /** Per-program probability of a program (tPROG) failure. */
    double programFailProb = 0.0;

    /** Per-erase probability of an erase (tBERS) failure. */
    double eraseFailProb = 0.0;

    /**
     * Wear skew: effective fault probability is scaled by
     * (1 + wearFactor * eraseCount / maxPeCycles), so hot blocks fail
     * first, like real NAND end-of-life behavior.
     */
    double wearFactor = 0.0;

    /** Caps on injected faults; 0 means unlimited. Deterministic
     *  tests use cap=1 with probability 1 to force exactly one. */
    std::uint64_t maxReadFaults = 0;
    std::uint64_t maxProgramFails = 0;
    std::uint64_t maxEraseFails = 0;

    /**
     * Explicitly scheduled sudden power loss (kInvalidTick: none).
     * Consumed by the crash-consistency oracle, which cuts power the
     * moment simulated time reaches this tick — including mid-way
     * through a multi-CoW checkpoint.
     */
    Tick powerLossTick = kInvalidTick;
};

/** Counters for everything a plan injected (and its consequences). */
struct FaultCounters
{
    /** Reads that needed at least one retry sense. */
    std::uint64_t faultyReads = 0;
    /** Total extra sensing attempts across all reads. */
    std::uint64_t readRetries = 0;
    /** Reads that exhausted the ECC retry budget. */
    std::uint64_t uncorrectableReads = 0;
    std::uint64_t programFails = 0;
    std::uint64_t eraseFails = 0;
    std::uint64_t powerLosses = 0;
};

/** One run's deterministic fault schedule. Never shared. */
class FaultPlan
{
  public:
    /** SimContext::deriveSeed stream id for the plan's RNG. */
    static constexpr std::uint64_t kSeedStream = 0xFA01;

    FaultPlan(const FaultConfig &cfg, std::uint64_t seed);

    const FaultConfig &config() const { return cfg_; }

    /**
     * Number of failed sensing attempts for a page read. 0 is a
     * clean read; values in [1, readRetryMax] recover after that
     * many retries; readRetryMax + 1 means uncorrectable.
     */
    std::uint32_t readFaults(Ppn ppn, std::uint64_t erase_count,
                             std::uint64_t max_pe);

    /** True when this program op fails. */
    bool programFails(Ppn ppn, std::uint64_t erase_count,
                      std::uint64_t max_pe);

    /** True when this erase op fails. */
    bool eraseFails(std::uint64_t pbn, std::uint64_t erase_count,
                    std::uint64_t max_pe);

    /** Fold a sudden power loss into the schedule digest. */
    void recordPowerLoss(Tick tick);

    const FaultCounters &counters() const { return counters_; }

    /**
     * Rolling digest of every decision the plan ever made
     * (kind, address, outcome). Two runs with identical seed +
     * config and identical media-op order have identical digests.
     */
    std::uint64_t digest() const { return digest_; }

  private:
    /** Deterministic uniform draw in [0, 1) for decision @p n. */
    double draw(std::uint64_t stream_seed, std::uint64_t n) const;

    /** Wear-scaled probability for the given erase count. */
    double scaled(double p, std::uint64_t erase_count,
                  std::uint64_t max_pe) const;

    void fold(std::uint64_t kind, std::uint64_t addr,
              std::uint64_t outcome);

    FaultConfig cfg_;
    std::uint64_t readSeed_;
    std::uint64_t programSeed_;
    std::uint64_t eraseSeed_;
    std::uint64_t nRead_ = 0;
    std::uint64_t nProgram_ = 0;
    std::uint64_t nErase_ = 0;
    FaultCounters counters_;
    std::uint64_t digest_;
};

} // namespace checkin

#endif // CHECKIN_FAULT_FAULT_PLAN_H_
