#include "fault/fault_plan.h"

#include "sim/rng.h"

namespace checkin {

namespace {

/** Digest tags; part of the schedule identity, never reorder. */
constexpr std::uint64_t kKindRead = 1;
constexpr std::uint64_t kKindProgram = 2;
constexpr std::uint64_t kKindErase = 3;
constexpr std::uint64_t kKindPowerLoss = 4;

} // namespace

FaultPlan::FaultPlan(const FaultConfig &cfg, std::uint64_t seed)
    : cfg_(cfg),
      readSeed_(mix64(seed ^ mix64(kKindRead))),
      programSeed_(mix64(seed ^ mix64(kKindProgram))),
      eraseSeed_(mix64(seed ^ mix64(kKindErase))),
      digest_(mix64(seed))
{
}

double
FaultPlan::draw(std::uint64_t stream_seed, std::uint64_t n) const
{
    // Counter-based, not a stateful generator: decision i never
    // depends on how many draws other fault classes made before it.
    const std::uint64_t bits = mix64(stream_seed ^ (n + 1));
    return static_cast<double>(bits >> 11) *
           (1.0 / 9007199254740992.0);
}

double
FaultPlan::scaled(double p, std::uint64_t erase_count,
                  std::uint64_t max_pe) const
{
    if (cfg_.wearFactor <= 0.0 || max_pe == 0)
        return p;
    const double wear = static_cast<double>(erase_count) /
                        static_cast<double>(max_pe);
    const double s = p * (1.0 + cfg_.wearFactor * wear);
    return s < 1.0 ? s : 1.0;
}

void
FaultPlan::fold(std::uint64_t kind, std::uint64_t addr,
                std::uint64_t outcome)
{
    digest_ = mix64(digest_ ^ (kind << 56) ^ mix64(addr) ^ outcome);
}

std::uint32_t
FaultPlan::readFaults(Ppn ppn, std::uint64_t erase_count,
                      std::uint64_t max_pe)
{
    if (!cfg_.enabled || cfg_.readBitErrorProb <= 0.0)
        return 0;
    if (cfg_.maxReadFaults != 0 &&
        counters_.faultyReads >= cfg_.maxReadFaults)
        return 0;
    const double p =
        scaled(cfg_.readBitErrorProb, erase_count, max_pe);
    // Each sensing attempt fails independently; the first success
    // ends the sequence. More than readRetryMax failures exhausts
    // the ECC retry budget: the page is uncorrectable.
    std::uint32_t fails = 0;
    while (fails <= cfg_.readRetryMax &&
           draw(readSeed_, nRead_++) < p)
        ++fails;
    if (fails == 0)
        return 0;
    ++counters_.faultyReads;
    if (fails > cfg_.readRetryMax) {
        counters_.readRetries += cfg_.readRetryMax;
        ++counters_.uncorrectableReads;
    } else {
        counters_.readRetries += fails;
    }
    fold(kKindRead, ppn, fails);
    return fails;
}

bool
FaultPlan::programFails(Ppn ppn, std::uint64_t erase_count,
                        std::uint64_t max_pe)
{
    if (!cfg_.enabled || cfg_.programFailProb <= 0.0)
        return false;
    if (cfg_.maxProgramFails != 0 &&
        counters_.programFails >= cfg_.maxProgramFails)
        return false;
    const double p =
        scaled(cfg_.programFailProb, erase_count, max_pe);
    if (draw(programSeed_, nProgram_++) >= p)
        return false;
    ++counters_.programFails;
    fold(kKindProgram, ppn, 1);
    return true;
}

bool
FaultPlan::eraseFails(std::uint64_t pbn, std::uint64_t erase_count,
                      std::uint64_t max_pe)
{
    if (!cfg_.enabled || cfg_.eraseFailProb <= 0.0)
        return false;
    if (cfg_.maxEraseFails != 0 &&
        counters_.eraseFails >= cfg_.maxEraseFails)
        return false;
    const double p = scaled(cfg_.eraseFailProb, erase_count, max_pe);
    if (draw(eraseSeed_, nErase_++) >= p)
        return false;
    ++counters_.eraseFails;
    fold(kKindErase, pbn, 1);
    return true;
}

void
FaultPlan::recordPowerLoss(Tick tick)
{
    ++counters_.powerLosses;
    fold(kKindPowerLoss, tick, counters_.powerLosses);
}

} // namespace checkin
