#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "obs/json.h"

namespace checkin::obs {

const char *
catName(Cat cat)
{
    switch (cat) {
      case Cat::Workload: return "workload";
      case Cat::Engine: return "engine";
      case Cat::Ssd: return "ssd";
      case Cat::Ftl: return "ftl";
      case Cat::Nand: return "nand";
      case Cat::Sim: return "sim";
      case Cat::kCount: break;
    }
    return "?";
}

void
Tracer::push(Phase phase, Cat cat, std::uint32_t lane,
             const char *name, Tick ts, std::uint64_t dur,
             std::initializer_list<TraceArg> args)
{
    Event e;
    e.phase = phase;
    e.cat = cat;
    e.lane = lane;
    e.name = name;
    e.ts = ts;
    e.dur = dur;
    e.nargs = 0;
    for (const TraceArg &a : args) {
        if (e.nargs >= kMaxArgs)
            break;
        e.argKeys[e.nargs] = a.key;
        e.argVals[e.nargs] = a.value;
        ++e.nargs;
    }
    events_.push_back(e);
}

void
Tracer::span(Cat cat, std::uint32_t lane, const char *name,
             Tick begin, Tick end,
             std::initializer_list<TraceArg> args)
{
    if (!enabled_)
        return;
    const std::uint64_t dur = end > begin ? end - begin : 0;
    push(Phase::Span, cat, lane, name, begin, dur, args);
}

void
Tracer::instant(Cat cat, std::uint32_t lane, const char *name,
                Tick at, std::initializer_list<TraceArg> args)
{
    if (!enabled_)
        return;
    push(Phase::Instant, cat, lane, name, at, 0, args);
}

void
Tracer::counter(Cat cat, std::uint32_t lane, const char *name,
                Tick at, std::uint64_t value)
{
    if (!enabled_)
        return;
    push(Phase::Counter, cat, lane, name, at, value, {});
}

void
Tracer::setLaneName(Cat cat, std::uint32_t lane, std::string name)
{
    const std::uint64_t key =
        (std::uint64_t(static_cast<std::uint8_t>(cat)) << 32) | lane;
    laneNames_[key] = std::move(name);
}

std::uint64_t
Tracer::countIn(Cat cat) const
{
    std::uint64_t n = 0;
    for (const Event &e : events_) {
        if (e.cat == cat)
            ++n;
    }
    return n;
}

namespace {

/** Ticks (ns) rendered as microseconds with ns precision. */
std::string
ticksAsUs(std::uint64_t ticks)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64,
                  ticks / 1000, ticks % 1000);
    return buf;
}

} // namespace

void
Tracer::writeJson(std::ostream &os) const
{
    // Chrome trace ts/dur fields are microseconds; ticks are ns.
    // Everything is emitted with integer math so the bytes are a pure
    // function of the recorded events.
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    const auto sep = [&os, &first] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: process (layer) names, then lane (thread) names.
    for (std::size_t c = 0; c < kCatCount; ++c) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << c + 1
           << ",\"name\":\"process_name\",\"args\":{\"name\":\""
           << catName(static_cast<Cat>(c)) << "\"}}";
    }
    for (const auto &[key, name] : laneNames_) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << (key >> 32) + 1
           << ",\"tid\":" << (key & 0xffffffffu)
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(name) << "\"}}";
    }

    // Events, sorted by timestamp; emission order breaks ties so the
    // output is stable.
    std::vector<std::size_t> order(events_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return events_[a].ts < events_[b].ts;
                     });
    for (const std::size_t i : order) {
        const Event &e = events_[i];
        sep();
        const int pid = static_cast<std::uint8_t>(e.cat) + 1;
        os << "{\"ph\":\"";
        switch (e.phase) {
          case Phase::Span: os << 'X'; break;
          case Phase::Instant: os << 'i'; break;
          case Phase::Counter: os << 'C'; break;
        }
        os << "\",\"pid\":" << pid << ",\"tid\":" << e.lane
           << ",\"ts\":" << ticksAsUs(e.ts);
        if (e.phase == Phase::Span)
            os << ",\"dur\":" << ticksAsUs(e.dur);
        os << ",\"cat\":\"" << catName(e.cat) << "\",\"name\":\""
           << jsonEscape(e.name) << '"';
        if (e.phase == Phase::Instant)
            os << ",\"s\":\"t\"";
        if (e.phase == Phase::Counter) {
            os << ",\"args\":{\"value\":" << e.dur << '}';
        } else if (e.nargs > 0) {
            os << ",\"args\":{";
            for (std::uint8_t a = 0; a < e.nargs; ++a) {
                if (a > 0)
                    os << ',';
                os << '"' << jsonEscape(e.argKeys[a])
                   << "\":" << e.argVals[a];
            }
            os << '}';
        }
        os << '}';
    }
    os << "\n]}\n";
}

std::string
Tracer::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace checkin::obs
