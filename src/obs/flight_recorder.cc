#include "obs/flight_recorder.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace checkin::obs {

const char *
stageName(Stage s)
{
    switch (s) {
        case Stage::QueueDelay:
            return "queueDelay";
        case Stage::HostCpu:
            return "hostCpu";
        case Stage::CheckpointStall:
            return "checkpointStall";
        case Stage::JournalWait:
            return "journalWait";
        case Stage::SsdQueue:
            return "ssdQueue";
        case Stage::Firmware:
            return "firmware";
        case Stage::FtlMap:
            return "ftlMap";
        case Stage::DramCache:
            return "dramCache";
        case Stage::NandWait:
            return "nandWait";
        case Stage::NandMedia:
            return "nandMedia";
        case Stage::GcStall:
            return "gcStall";
        case Stage::Bus:
            return "bus";
        case Stage::Backpressure:
            return "backpressure";
        case Stage::Other:
            return "other";
    }
    return "?";
}

const char *
opClassName(OpClass c)
{
    switch (c) {
        case OpClass::Read:
            return "read";
        case OpClass::Update:
            return "update";
        case OpClass::Rmw:
            return "rmw";
        case OpClass::Scan:
            return "scan";
        case OpClass::Delete:
            return "delete";
    }
    return "?";
}

const char *
ckptTriggerName(CkptTrigger t)
{
    switch (t) {
        case CkptTrigger::Manual:
            return "manual";
        case CkptTrigger::Timer:
            return "timer";
        case CkptTrigger::JournalBytes:
            return "journalBytes";
        case CkptTrigger::SpacePressure:
            return "spacePressure";
        case CkptTrigger::Backlog:
            return "backlog";
        case CkptTrigger::AdaptivePace:
            return "adaptivePace";
        case CkptTrigger::Safety:
            return "safety";
    }
    return "?";
}

void
FlightRecorder::note(const OpRecord &rec)
{
    const std::uint64_t seq = nextSeq_++;
    if (k_ == 0)
        return;
    if (entries_.size() < k_) {
        entries_.push_back(Entry{rec, seq});
        return;
    }
    // Replace the smallest retained latency, but only on a strict
    // improvement: ties keep the earliest op, so retention does not
    // depend on scan order.
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        const Entry &m = entries_[min_i];
        if (e.rec.latency() < m.rec.latency() ||
            (e.rec.latency() == m.rec.latency() && e.seq > m.seq))
            min_i = i;
    }
    if (rec.latency() > entries_[min_i].rec.latency())
        entries_[min_i] = Entry{rec, seq};
}

std::vector<OpRecord>
FlightRecorder::slowest() const
{
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.rec.latency() != b.rec.latency())
                      return a.rec.latency() > b.rec.latency();
                  return a.seq < b.seq;
              });
    std::vector<OpRecord> out;
    out.reserve(sorted.size());
    for (const Entry &e : sorted)
        out.push_back(e.rec);
    return out;
}

void
FlightRecorder::clear()
{
    entries_.clear();
    nextSeq_ = 0;
}

std::string
CheckpointTimeline::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("checkpoints").beginArray();
    for (const CheckpointStat &c : stats_) {
        w.newline().beginObject();
        w.kv("bufferedSmallRecords", c.bufferedSmallRecords);
        w.kv("copiedChunks", c.copiedChunks);
        w.kv("copiedPairs", c.copiedPairs);
        w.kv("cowCommands", c.cowCommands);
        w.kv("dataTicks", c.dataDoneTick - c.startTick);
        w.kv("deleteTicks", c.endTick - c.metaDoneTick);
        w.kv("endTick", c.endTick);
        w.kv("entries", c.entries);
        w.kv("fullRecords", c.fullRecords);
        w.kv("mergedRecords", c.mergedRecords);
        w.kv("metaTicks", c.metaDoneTick - c.dataDoneTick);
        w.kv("partialRecords", c.partialRecords);
        w.kv("rawRecords", c.rawRecords);
        w.kv("remappedPairs", c.remappedPairs);
        w.kv("remappedUnits", c.remappedUnits);
        w.kv("seq", c.seq);
        w.kv("startTick", c.startTick);
        w.kv("tombstones", c.tombstones);
        w.kv("totalTicks", c.endTick - c.startTick);
        w.kv("trigger", ckptTriggerName(c.trigger));
        w.endObject();
    }
    w.newline().endArray();
    w.kv("count", std::uint64_t(stats_.size()));
    w.endObject();
    os << "\n";
    return os.str();
}

} // namespace checkin::obs
