#include "obs/telemetry.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "sim/event_queue.h"

namespace checkin::obs {

const char *
probeKindName(ProbeKind k)
{
    return k == ProbeKind::Counter ? "counter" : "gauge";
}

const char *
telemetryEventName(TelemetryEvent ev)
{
    switch (ev) {
      case TelemetryEvent::CkptStart:
        return "ckptStart";
      case TelemetryEvent::CkptEnd:
        return "ckptEnd";
      case TelemetryEvent::JournalStall:
        return "journalStall";
      case TelemetryEvent::SafetyTrip:
        return "safetyTrip";
      case TelemetryEvent::SloViolation:
        return "sloViolation";
      case TelemetryEvent::MediaError:
        return "mediaError";
      case TelemetryEvent::PowerCut:
        return "powerCut";
    }
    return "unknown";
}

const char *
anomalyName(Anomaly a)
{
    switch (a) {
      case Anomaly::SloStreak:
        return "sloStreak";
      case Anomaly::SafetyTrip:
        return "safetyTrip";
      case Anomaly::CkptOverrun:
        return "ckptOverrun";
      case Anomaly::MediaError:
        return "mediaError";
      case Anomaly::PowerCut:
        return "powerCut";
    }
    return "unknown";
}

TelemetrySampler::TelemetrySampler(TelemetryOptions opts)
    : opts_(opts), enabled_(opts.enabled)
{
    if (opts_.window == 0)
        opts_.window = 1;
}

void
TelemetrySampler::addGauge(std::string name, ProbeFn fn)
{
    if (!enabled_)
        return;
    probes_.push_back(Probe{std::move(name), ProbeKind::Gauge,
                            std::move(fn), 0, 0, {}});
}

void
TelemetrySampler::addCounter(std::string name, ProbeFn fn)
{
    if (!enabled_)
        return;
    probes_.push_back(Probe{std::move(name), ProbeKind::Counter,
                            std::move(fn), 0, 0, {}});
}

void
TelemetrySampler::begin(EventQueue &eq)
{
    if (!enabled_ || active_)
        return;
    eq_ = &eq;
    baselineTick_ = eq.now();
    finalTick_ = baselineTick_;
    // Counter baselines: windows cover the measured run only, so
    // sum(window deltas) == final counter - baseline, exactly.
    for (Probe &p : probes_) {
        if (p.kind == ProbeKind::Counter)
            p.lastRaw = p.fn();
    }
    active_ = true;
    eq.installStepHook(&TelemetrySampler::hookThunk, this);
    eq.setStepHookDue((baselineTick_ / opts_.window + 1) *
                      opts_.window);
}

void
TelemetrySampler::finalize(Tick now)
{
    if (!active_)
        return;
    sample(now);
    finalTick_ = now;
    active_ = false;
    if (eq_ != nullptr)
        eq_->clearStepHook();
}

void
TelemetrySampler::hookThunk(void *self, Tick now)
{
    static_cast<TelemetrySampler *>(self)->onHook(now);
}

void
TelemetrySampler::onHook(Tick now)
{
    sample(now);
    // Re-arm at the next window boundary past now; the hook fires at
    // most once per window, so window indices strictly increase.
    eq_->setStepHookDue((now / opts_.window + 1) * opts_.window);
}

void
TelemetrySampler::sample(Tick now)
{
    const std::uint64_t w = std::uint64_t(now / opts_.window);
    SampleRec rec;
    rec.tick = now;
    rec.values.reserve(probes_.size());
    for (Probe &p : probes_) {
        const std::uint64_t raw = p.fn();
        rec.values.push_back(raw);
        if (p.kind == ProbeKind::Counter) {
            const std::uint64_t d = raw - p.lastRaw;
            p.lastRaw = raw;
            p.final += d;
            if (d == 0)
                continue;
            // finalize() may land in the last hook's window: merge
            // rather than emit a duplicate window index.
            if (!p.points.empty() && p.points.back().first == w)
                p.points.back().second += d;
            else
                p.points.emplace_back(w, d);
        } else {
            p.final = raw;
            if (!p.points.empty() && p.points.back().first == w)
                p.points.back().second = raw;
            else
                p.points.emplace_back(w, raw);
        }
    }
    if (opts_.blackboxSamples > 0) {
        if (sampleRing_.size() < opts_.blackboxSamples) {
            sampleRing_.push_back(std::move(rec));
        } else {
            sampleRing_[sampleHead_] = std::move(rec);
            sampleHead_ = (sampleHead_ + 1) % sampleRing_.size();
        }
    }
    ++samples_;
}

void
TelemetrySampler::record(TelemetryEvent ev, Tick now,
                         std::uint64_t value)
{
    if (opts_.blackboxEvents > 0) {
        const EventRec rec{now, ev, value};
        if (eventRing_.size() < opts_.blackboxEvents) {
            eventRing_.push_back(rec);
        } else {
            eventRing_[eventHead_] = rec;
            eventHead_ = (eventHead_ + 1) % eventRing_.size();
        }
    }
    ++events_;
    switch (ev) {
      case TelemetryEvent::SafetyTrip:
        trigger(Anomaly::SafetyTrip, now, value);
        break;
      case TelemetryEvent::MediaError:
        trigger(Anomaly::MediaError, now, value);
        break;
      case TelemetryEvent::PowerCut:
        trigger(Anomaly::PowerCut, now, value);
        break;
      default:
        break;
    }
}

void
TelemetrySampler::slo(Tick now, bool violated)
{
    if (!violated) {
        sloStreak_ = 0;
        return;
    }
    record(TelemetryEvent::SloViolation, now, ++sloStreak_);
    if (sloStreak_ >= opts_.sloStreak) {
        trigger(Anomaly::SloStreak, now, sloStreak_);
        sloStreak_ = 0; // re-arm: the next streak counts from zero
    }
}

void
TelemetrySampler::ckptEnd(Tick now, Tick duration)
{
    record(TelemetryEvent::CkptEnd, now,
           std::uint64_t(duration));
    if (ckptSeen_ >= opts_.ckptOverrunMinHistory &&
        ckptEwma_ > 0.0 &&
        double(duration) > opts_.ckptOverrunFactor * ckptEwma_) {
        trigger(Anomaly::CkptOverrun, now, std::uint64_t(duration));
    }
    ckptEwma_ = ckptSeen_ == 0
                    ? double(duration)
                    : 0.25 * double(duration) + 0.75 * ckptEwma_;
    ++ckptSeen_;
}

void
TelemetrySampler::trigger(Anomaly a, Tick now, std::uint64_t value)
{
    ++anomalies_;
    if (dumps_.size() >= opts_.maxDumps)
        return;
    Dump d;
    d.anomaly = a;
    d.triggerTick = now;
    d.value = value;
    d.seq = anomalies_ - 1;
    d.samples = orderedSamples();
    d.events = orderedEvents();
    dumps_.push_back(std::move(d));
}

std::vector<TelemetrySampler::SampleRec>
TelemetrySampler::orderedSamples() const
{
    std::vector<SampleRec> out;
    out.reserve(sampleRing_.size());
    for (std::size_t i = 0; i < sampleRing_.size(); ++i) {
        out.push_back(
            sampleRing_[(sampleHead_ + i) % sampleRing_.size()]);
    }
    return out;
}

std::vector<TelemetrySampler::EventRec>
TelemetrySampler::orderedEvents() const
{
    std::vector<EventRec> out;
    out.reserve(eventRing_.size());
    for (std::size_t i = 0; i < eventRing_.size(); ++i) {
        out.push_back(
            eventRing_[(eventHead_ + i) % eventRing_.size()]);
    }
    return out;
}

std::vector<TelemetrySeries>
TelemetrySampler::series() const
{
    std::vector<TelemetrySeries> out;
    out.reserve(probes_.size());
    for (const Probe &p : probes_)
        out.push_back(TelemetrySeries{p.name, p.kind, p.final,
                                      p.points});
    std::sort(out.begin(), out.end(),
              [](const TelemetrySeries &a, const TelemetrySeries &b) {
                  return a.name < b.name;
              });
    return out;
}

TelemetrySummary
TelemetrySampler::summary() const
{
    TelemetrySummary s;
    s.enabled = enabled_;
    s.windowTicks = opts_.window;
    s.probes = probes_.size();
    s.samples = samples_;
    s.events = events_;
    s.anomalies = anomalies_;
    return s;
}

std::size_t
TelemetrySampler::storageBytes() const
{
    std::size_t b = probes_.capacity() * sizeof(Probe);
    for (const Probe &p : probes_) {
        b += p.name.capacity();
        b += p.points.capacity() *
             sizeof(std::pair<std::uint64_t, std::uint64_t>);
    }
    b += sampleRing_.capacity() * sizeof(SampleRec);
    for (const SampleRec &s : sampleRing_)
        b += s.values.capacity() * sizeof(std::uint64_t);
    b += eventRing_.capacity() * sizeof(EventRec);
    b += dumps_.capacity() * sizeof(Dump);
    for (const Dump &d : dumps_) {
        b += d.events.capacity() * sizeof(EventRec);
        b += d.samples.capacity() * sizeof(SampleRec);
        for (const SampleRec &s : d.samples)
            b += s.values.capacity() * sizeof(std::uint64_t);
    }
    return b;
}

namespace {

void
writeSeriesMap(JsonWriter &w,
               const std::map<std::string, TelemetrySeries> &byName)
{
    w.key("probes").beginObject();
    for (const auto &[name, s] : byName) {
        w.newline().key(name).beginObject();
        w.kv("final", s.final);
        w.kv("kind", probeKindName(s.kind));
        w.key("points").beginArray();
        for (const auto &[win, v] : s.points) {
            w.beginArray();
            w.value(win).value(v);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.newline().endObject();
}

} // namespace

std::string
TelemetrySampler::telemetryJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("anomalies", anomalies_);
    w.kv("baselineTick", std::uint64_t(baselineTick_));
    w.kv("events", events_);
    w.kv("finalTick", std::uint64_t(finalTick_));
    std::vector<TelemetrySeries> sv = series();
    std::map<std::string, TelemetrySeries> byName;
    for (TelemetrySeries &s : sv) {
        std::string n = s.name;
        byName.emplace(std::move(n), std::move(s));
    }
    writeSeriesMap(w, byName);
    w.kv("samples", samples_);
    w.kv("windowTicks", std::uint64_t(opts_.window));
    w.endObject();
    os << '\n';
    return os.str();
}

void
writeBlackboxBody(JsonWriter &w, const TelemetrySampler &t)
{
    w.kv("anomalies", t.anomalies_);
    w.kv("depthEvents",
         std::uint64_t(t.opts_.blackboxEvents));
    w.kv("depthSamples",
         std::uint64_t(t.opts_.blackboxSamples));
    w.key("dumps").beginArray();
    for (const TelemetrySampler::Dump &d : t.dumps_) {
        w.newline().beginObject();
        w.kv("anomaly", anomalyName(d.anomaly));
        w.key("events").beginArray();
        for (const TelemetrySampler::EventRec &e : d.events) {
            w.beginArray();
            w.value(std::uint64_t(e.tick))
                .value(telemetryEventName(e.ev))
                .value(e.value);
            w.endArray();
        }
        w.endArray();
        w.key("samples").beginArray();
        for (const TelemetrySampler::SampleRec &s : d.samples) {
            w.newline().beginObject();
            w.kv("tick", std::uint64_t(s.tick));
            w.key("values").beginArray();
            for (std::uint64_t v : s.values)
                w.value(v);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.kv("seq", d.seq);
        w.kv("triggerTick", std::uint64_t(d.triggerTick));
        w.kv("value", d.value);
        w.endObject();
    }
    w.newline().endArray();
    w.key("probeNames").beginArray();
    for (const TelemetrySampler::Probe &p : t.probes_)
        w.value(p.name);
    w.endArray();
}

std::string
TelemetrySampler::blackboxJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    writeBlackboxBody(w, *this);
    w.endObject();
    os << '\n';
    return os.str();
}

std::string
clusterTelemetryJson(
    const std::vector<const TelemetrySampler *> &shards)
{
    std::map<std::string, TelemetrySeries> byName;
    // Per-window rollups: "cluster.<name>" sums the shards' values
    // at each window index.
    std::map<std::string,
             std::map<std::uint64_t, std::uint64_t>>
        rollPoints;
    std::map<std::string, TelemetrySeries> roll;
    std::uint64_t anomalies = 0;
    std::uint64_t events = 0;
    std::uint64_t samples = 0;
    Tick baseline = 0;
    Tick final_tick = 0;
    Tick window = 1;
    bool first = true;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const TelemetrySampler &t = *shards[i];
        anomalies += t.anomalyCount();
        events += t.eventCount();
        samples += t.sampleCount();
        if (first || t.baselineTick() < baseline)
            baseline = t.baselineTick();
        if (first || t.finalTick() > final_tick)
            final_tick = t.finalTick();
        if (first)
            window = t.options().window;
        first = false;
        for (TelemetrySeries &s : t.series()) {
            const std::string base = s.name;
            auto [it, inserted] = roll.try_emplace(
                "cluster." + base,
                TelemetrySeries{"cluster." + base, s.kind, 0, {}});
            it->second.final += s.final;
            auto &pts = rollPoints["cluster." + base];
            for (const auto &[win, v] : s.points)
                pts[win] += v;
            s.name = "shard" + std::to_string(i) + "." + base;
            byName.emplace(s.name, std::move(s));
        }
    }
    for (auto &[name, s] : roll) {
        s.points.assign(rollPoints[name].begin(),
                        rollPoints[name].end());
        byName.emplace(name, std::move(s));
    }
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("anomalies", anomalies);
    w.kv("baselineTick", std::uint64_t(baseline));
    w.kv("events", events);
    w.kv("finalTick", std::uint64_t(final_tick));
    writeSeriesMap(w, byName);
    w.kv("samples", samples);
    w.kv("shardCount", std::uint64_t(shards.size()));
    w.kv("windowTicks", std::uint64_t(window));
    w.endObject();
    os << '\n';
    return os.str();
}

std::string
clusterBlackboxJson(
    const std::vector<const TelemetrySampler *> &shards)
{
    std::uint64_t anomalies = 0;
    for (const TelemetrySampler *t : shards)
        anomalies += t->anomalyCount();
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("anomalies", anomalies);
    w.key("shards").beginArray();
    for (std::size_t i = 0; i < shards.size(); ++i) {
        w.newline().beginObject();
        writeBlackboxBody(w, *shards[i]);
        w.kv("shard", std::uint64_t(i));
        w.endObject();
    }
    w.newline().endArray();
    w.endObject();
    os << '\n';
    return os.str();
}

} // namespace checkin::obs
