/**
 * @file
 * Run artifact bundles: a per-run directory of machine-readable
 * observability outputs (trace JSON, metrics JSON/CSV, run summary)
 * written with deterministic bytes so artifacts can be diffed across
 * runs and commits.
 */

#ifndef CHECKIN_OBS_ARTIFACTS_H_
#define CHECKIN_OBS_ARTIFACTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "sim/types.h"

namespace checkin::obs {

/** What to collect and where to put it for one run. */
struct ObsOptions
{
    /** Record trace events during the run (spans/instants/counters). */
    bool traceEnabled = false;

    /**
     * When non-empty, write the artifact bundle into
     * <artifactDir>/<runName>/ after the run.
     */
    std::string artifactDir;

    /** Bundle subdirectory name (one per experiment point). */
    std::string runName = "run";

    /** Bucket width for collected time series. */
    Tick seriesInterval = kMsec;

    /**
     * Collect per-op latency attribution and the checkpoint phase
     * timeline (obs/attribution.h). Adds attribution.json and
     * checkpoints.json to the bundle and fills
     * RunResult::attribution / RunResult::checkpointTimeline.
     */
    bool attributionEnabled = false;

    /** Tail cut for the attribution report (ops at or above this
     *  latency quantile make the tail breakdown). */
    double attrTailQuantile = 0.999;

    /** Slowest-K ops retained by the flight recorder. */
    std::uint32_t attrFlightRecorderK = 16;

    /**
     * Continuous telemetry: windowed sampling + anomaly black box
     * (obs/telemetry.h). Adds telemetry.json and blackbox.json to
     * the bundle and fills RunResult::telemetry.
     */
    TelemetryOptions telemetry;
};

/** Files written for one run. */
struct ArtifactBundle
{
    /** Bundle directory ("" when artifacts were not requested). */
    std::string dir;

    /** File names inside dir (e.g. "trace.json"). */
    std::vector<std::string> files;

    bool empty() const { return dir.empty(); }
};

/**
 * Writes artifact files into a bundle directory, creating it (and
 * parents) on first use.
 */
class ArtifactWriter
{
  public:
    /** Bundle lives at <base_dir>/<run_name>. */
    ArtifactWriter(const std::string &base_dir,
                   const std::string &run_name);

    /**
     * Write @p content to @p filename inside the bundle directory
     * and record it in the bundle.
     * @throws std::runtime_error when the file cannot be written.
     */
    void writeText(const std::string &filename,
                   const std::string &content);

    const ArtifactBundle &bundle() const { return bundle_; }

  private:
    ArtifactBundle bundle_;
};

} // namespace checkin::obs

#endif // CHECKIN_OBS_ARTIFACTS_H_
