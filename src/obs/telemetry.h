/**
 * @file
 * Continuous telemetry: sim-time-windowed sampling + black box.
 *
 * A TelemetrySampler turns the stack's instantaneous state into
 * evidence of *how a run evolved*: layers register named gauge and
 * counter probes (journal fill, queue depth, FTL free blocks, NAND
 * program counts, per-tenant load, ...) and the sampler snapshots all
 * of them at fixed sim-time windows, driven by a post-dispatch hook on
 * the run's EventQueue (see EventQueue::installStepHook). Counter
 * probes record the per-window delta, so window sums reconcile
 * *exactly* with the end-of-run counter (validated by
 * tools/validate_artifacts.py); gauges record the sampled value.
 *
 * Alongside the series it keeps a bounded "black box": ring buffers of
 * the most recent samples and of high-resolution recent events
 * (checkpoint start/end, journal stalls, SLO violations, media
 * errors). When an anomaly fires — an SLO violation streak, an
 * AdaptivePolicy safety-bound trip, a checkpoint overrunning its
 * running average, a MediaError, or a power cut — the sampler freezes
 * a copy of both rings as a pre-trigger dump, exactly like a flight
 * recorder: the state leading *into* the incident survives even when
 * the incident destroys the run.
 *
 * Determinism: everything is keyed to sim time and driven by the
 * event queue of one SimContext, so telemetry.json / blackbox.json
 * are byte-identical across sweep workers and cluster synchronizer
 * thread counts (tested in tests/test_telemetry.cc).
 *
 * Zero overhead when disabled: layers hold a TelemetrySampler pointer
 * (from their SimContext) and every note is a pointer + flag check; a
 * disabled sampler registers no probes, allocates nothing, and the
 * event queue pays one always-false compare per dispatch
 * (bench_kernel gates this).
 */

#ifndef CHECKIN_OBS_TELEMETRY_H_
#define CHECKIN_OBS_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace checkin {
class EventQueue;
} // namespace checkin

namespace checkin::obs {

/** What a probe's samples mean. */
enum class ProbeKind : std::uint8_t
{
    /** Instantaneous level; each window records the sampled value. */
    Gauge,
    /** Monotone cumulative count; each window records the delta. */
    Counter,
};

const char *probeKindName(ProbeKind k);

/** High-resolution event classes recorded into the black box. */
enum class TelemetryEvent : std::uint8_t
{
    CkptStart = 0,
    CkptEnd,
    JournalStall,
    SafetyTrip,
    SloViolation,
    MediaError,
    PowerCut,
};

inline constexpr std::size_t kTelemetryEventCount = 7;

const char *telemetryEventName(TelemetryEvent ev);

/** Why a black-box dump was captured. */
enum class Anomaly : std::uint8_t
{
    SloStreak = 0,
    SafetyTrip,
    CkptOverrun,
    MediaError,
    PowerCut,
};

const char *anomalyName(Anomaly a);

/** Sampler configuration (part of ObsOptions). */
struct TelemetryOptions
{
    /** Master switch; a disabled sampler stores nothing. */
    bool enabled = false;

    /** Sampling window width (sim ticks). */
    Tick window = kMsec;

    /** Black-box ring depth: retained recent samples. */
    std::uint32_t blackboxSamples = 64;

    /** Black-box ring depth: retained recent events. */
    std::uint32_t blackboxEvents = 256;

    /** Dumps retained; further anomalies are counted, not dumped. */
    std::uint32_t maxDumps = 4;

    /** Consecutive SLO violations that fire the SloStreak anomaly. */
    std::uint32_t sloStreak = 16;

    /** Checkpoint overrun: duration > factor x running EWMA. */
    double ckptOverrunFactor = 4.0;

    /** Checkpoints observed before overrun detection arms. */
    std::uint32_t ckptOverrunMinHistory = 4;
};

/** End-of-run rollup (rides in RunResult / summary.json). */
struct TelemetrySummary
{
    bool enabled = false;
    Tick windowTicks = 0;
    std::uint64_t probes = 0;
    std::uint64_t samples = 0;
    std::uint64_t events = 0;
    std::uint64_t anomalies = 0;
};

/** One exported probe series (cluster rollups merge these). */
struct TelemetrySeries
{
    std::string name;
    ProbeKind kind = ProbeKind::Gauge;
    /** Counter: cumulative post-baseline delta (== sum of points).
     *  Gauge: last sampled value. */
    std::uint64_t final = 0;
    /** (absolute window index, value); windows strictly increase. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> points;
};

/**
 * Windowed sampler + anomaly black box for one SimContext.
 *
 * Lifecycle: construct (with the run's options) before the device so
 * layer constructors can register probes and capture the pointer;
 * begin() after the load phase (snapshots counter baselines, arms the
 * event-queue hook); finalize() after the measured run (flushes the
 * residual window, disarms the hook). Notes outside begin()/finalize()
 * are dropped, so artifacts cover exactly the measured run.
 */
class TelemetrySampler
{
  public:
    using ProbeFn = std::function<std::uint64_t()>;

    explicit TelemetrySampler(TelemetryOptions opts = {});

    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /** True when the run asked for telemetry. */
    bool enabled() const { return enabled_; }

    /** True between begin() and finalize(). */
    bool active() const { return active_; }

    const TelemetryOptions &options() const { return opts_; }

    /** Register an instantaneous-level probe (no-op when disabled). */
    void addGauge(std::string name, ProbeFn fn);

    /** Register a cumulative-counter probe (no-op when disabled). */
    void addCounter(std::string name, ProbeFn fn);

    /**
     * Arm sampling on @p eq: snapshot counter baselines at eq.now()
     * and install the post-dispatch hook (first fire at the next
     * window boundary). No-op when disabled.
     */
    void begin(EventQueue &eq);

    /** Flush the residual window at @p now and disarm the hook. */
    void finalize(Tick now);

    // ---- hot-path notes (inline flag check, out-of-line body) ----

    /** Record a high-resolution event; some kinds fire anomalies
     *  (SafetyTrip, MediaError, PowerCut). */
    void
    noteEvent(TelemetryEvent ev, Tick now, std::uint64_t value = 0)
    {
        if (!active_)
            return;
        record(ev, now, value);
    }

    /** Per-op SLO outcome; a violation streak fires SloStreak. */
    void
    noteSloResult(Tick now, bool violated)
    {
        if (!active_)
            return;
        slo(now, violated);
    }

    void
    noteCheckpointStart(Tick now)
    {
        noteEvent(TelemetryEvent::CkptStart, now);
    }

    /** Checkpoint completion; overruns vs the EWMA fire CkptOverrun. */
    void
    noteCheckpointEnd(Tick now, Tick duration)
    {
        if (!active_)
            return;
        ckptEnd(now, duration);
    }

    // ---- exports ----

    /** telemetry.json: every probe series + run window metadata. */
    std::string telemetryJson() const;

    /** blackbox.json: anomaly dumps (pre-trigger rings). */
    std::string blackboxJson() const;

    TelemetrySummary summary() const;

    /** Exported series, sorted by name (cluster rollups use this). */
    std::vector<TelemetrySeries> series() const;

    // ---- introspection (tests + zero-overhead gates) ----

    std::size_t probeCount() const { return probes_.size(); }
    std::uint64_t sampleCount() const { return samples_; }
    std::uint64_t eventCount() const { return events_; }
    std::uint64_t anomalyCount() const { return anomalies_; }
    Tick baselineTick() const { return baselineTick_; }
    Tick finalTick() const { return finalTick_; }

    /** Bytes held by probes, series, and rings; 0 when disabled. */
    std::size_t storageBytes() const;

  private:
    struct Probe
    {
        std::string name;
        ProbeKind kind;
        ProbeFn fn;
        /** Raw value at the previous sample (counter baseline). */
        std::uint64_t lastRaw = 0;
        /** Cumulative post-baseline delta / last gauge value. */
        std::uint64_t final = 0;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> points;
    };

    struct EventRec
    {
        Tick tick;
        TelemetryEvent ev;
        std::uint64_t value;
    };

    struct SampleRec
    {
        Tick tick;
        std::vector<std::uint64_t> values;
    };

    struct Dump
    {
        Anomaly anomaly;
        Tick triggerTick;
        std::uint64_t value;
        std::uint64_t seq;
        std::vector<SampleRec> samples;
        std::vector<EventRec> events;
    };

    static void hookThunk(void *self, Tick now);
    void onHook(Tick now);

    /** Take one sample at @p now, merging into an already-sampled
     *  window (finalize can land in the last hook's window). */
    void sample(Tick now);

    void record(TelemetryEvent ev, Tick now, std::uint64_t value);
    void slo(Tick now, bool violated);
    void ckptEnd(Tick now, Tick duration);
    void trigger(Anomaly a, Tick now, std::uint64_t value);

    /** Ring contents oldest -> newest. */
    std::vector<SampleRec> orderedSamples() const;
    std::vector<EventRec> orderedEvents() const;

    friend void writeBlackboxBody(class JsonWriter &w,
                                  const TelemetrySampler &t);

    TelemetryOptions opts_;
    bool enabled_ = false;
    bool active_ = false;
    EventQueue *eq_ = nullptr;

    std::vector<Probe> probes_;

    // Black-box rings (bounded; head_ = oldest once full).
    std::vector<SampleRec> sampleRing_;
    std::size_t sampleHead_ = 0;
    std::vector<EventRec> eventRing_;
    std::size_t eventHead_ = 0;

    std::vector<Dump> dumps_;

    // Anomaly detector state.
    std::uint32_t sloStreak_ = 0;
    double ckptEwma_ = 0.0;
    std::uint32_t ckptSeen_ = 0;

    std::uint64_t samples_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t anomalies_ = 0;
    Tick baselineTick_ = 0;
    Tick finalTick_ = 0;
};

/**
 * Merged cluster artifact: every shard's series prefixed
 * "shard<i>.<name>" plus "cluster.<name>" per-window rollups (values
 * summed across shards). Deterministic for any synchronizer thread
 * count because each shard's sampler is driven by that shard's own
 * event queue and shards are merged in index order.
 */
std::string clusterTelemetryJson(
    const std::vector<const TelemetrySampler *> &shards);

/** Merged cluster black box: per-shard dump sections, shard order. */
std::string clusterBlackboxJson(
    const std::vector<const TelemetrySampler *> &shards);

} // namespace checkin::obs

#endif // CHECKIN_OBS_TELEMETRY_H_
