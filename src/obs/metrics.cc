#include "obs/metrics.h"

#include <sstream>

#include "obs/json.h"

namespace checkin::obs {

namespace {

/** RFC 4180 field escaping: names containing a comma, quote, or
 *  newline are quoted with internal quotes doubled, so a series name
 *  like `lat,p99` cannot shift columns in the exported CSV. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

MetricId
MetricsRegistry::internScalar(const std::string &name, Kind kind)
{
    auto [it, inserted] = scalarIndex_.try_emplace(
        name, MetricId(scalarValues_.size()));
    if (inserted) {
        scalarNames_.push_back(name);
        scalarKinds_.push_back(kind);
        scalarValues_.push_back(0);
    }
    return it->second;
}

MetricId
MetricsRegistry::counter(const std::string &name)
{
    return internScalar(name, Kind::Counter);
}

MetricId
MetricsRegistry::gauge(const std::string &name)
{
    return internScalar(name, Kind::Gauge);
}

MetricId
MetricsRegistry::series(const std::string &name, Tick interval)
{
    auto [it, inserted] =
        seriesIndex_.try_emplace(name, MetricId(series_.size()));
    if (inserted)
        series_.push_back(NamedSeries{name, TimeSeries(interval)});
    return it->second;
}

MetricId
MetricsRegistry::histogram(const std::string &name)
{
    auto [it, inserted] =
        histIndex_.try_emplace(name, MetricId(hists_.size()));
    if (inserted)
        hists_.push_back(NamedHist{name, LatencyHistogram()});
    return it->second;
}

void
MetricsRegistry::importStats(const StatRegistry &stats)
{
    for (const auto &[name, value] : stats.all())
        add(counter(name), value);
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[name, id] : scalarIndex_) {
        if (scalarKinds_[id] == Kind::Counter)
            w.kv(name, scalarValues_[id]);
    }
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, id] : scalarIndex_) {
        if (scalarKinds_[id] == Kind::Gauge)
            w.kv(name, scalarValues_[id]);
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, id] : histIndex_) {
        const LatencyHistogram &h = hists_[id].data;
        w.key(name).beginObject();
        w.kv("count", h.count());
        w.kv("sum", h.sum());
        w.kv("min", h.min());
        w.kv("mean", h.mean());
        w.kv("p50", h.quantile(0.5));
        w.kv("p99", h.quantile(0.99));
        w.kv("p999", h.quantile(0.999));
        w.kv("max", h.max());
        w.endObject();
    }
    w.endObject();

    w.key("series").beginObject();
    for (const auto &[name, id] : seriesIndex_) {
        const TimeSeries &s = series_[id].data;
        w.key(name).beginObject();
        w.kv("intervalTicks", std::uint64_t(s.interval()));
        w.key("buckets").beginArray();
        const auto [first, last] = s.activeRange();
        for (std::size_t b = first;
             b <= last && b < s.buckets().size(); ++b) {
            const TimeSeries::Bucket &bk = s.buckets()[b];
            w.beginArray();
            w.value(std::uint64_t(b));
            w.value(bk.count);
            w.value(bk.sum);
            w.value(bk.max);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << '\n';
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
MetricsRegistry::writeScalarsCsv(std::ostream &os) const
{
    os << "name,value\n";
    for (const auto &[name, id] : scalarIndex_)
        os << csvField(name) << ',' << scalarValues_[id] << '\n';
}

std::string
MetricsRegistry::scalarsCsv() const
{
    std::ostringstream os;
    writeScalarsCsv(os);
    return os.str();
}

void
MetricsRegistry::writeSeriesCsv(std::ostream &os) const
{
    os << "series,bucket,start_tick,count,sum,max\n";
    for (const auto &[name, id] : seriesIndex_) {
        const TimeSeries &s = series_[id].data;
        const auto [first, last] = s.activeRange();
        for (std::size_t b = first;
             b <= last && b < s.buckets().size(); ++b) {
            const TimeSeries::Bucket &bk = s.buckets()[b];
            if (bk.count == 0)
                continue;
            os << csvField(name) << ',' << b << ','
               << std::uint64_t(b) * s.interval() << ',' << bk.count
               << ',' << bk.sum << ',' << bk.max << '\n';
        }
    }
}

std::string
MetricsRegistry::seriesCsv() const
{
    std::ostringstream os;
    writeSeriesCsv(os);
    return os.str();
}

} // namespace checkin::obs
