#include "obs/attribution.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "obs/json.h"

namespace checkin::obs {

OpToken
AttributionCollector::beginOp(OpClass cls, Tick issued)
{
    OpToken op;
    if (freeHead_ != kNoOpToken) {
        op = freeHead_;
        freeHead_ = pool_[op].nextFree;
    } else {
        op = OpToken(pool_.size());
        pool_.emplace_back();
    }
    Slot &s = pool_[op];
    s.cls = cls;
    s.active = true;
    s.issued = issued;
    s.cursor = issued;
    s.dwell.fill(0);
    s.nextFree = kNoOpToken;
    ++live_;
    return op;
}

void
AttributionCollector::mark(OpToken op, Stage stage, Tick up_to)
{
    assert(op < pool_.size());
    Slot &s = pool_[op];
    if (!s.active || up_to <= s.cursor)
        return;
    s.dwell[std::size_t(stage)] += up_to - s.cursor;
    liveDwell_[std::size_t(stage)] += up_to - s.cursor;
    s.cursor = up_to;
}

void
AttributionCollector::finishOp(OpToken op, Tick done)
{
    assert(op < pool_.size());
    Slot &s = pool_[op];
    if (!s.active)
        return;
    if (done > s.cursor) {
        s.dwell[std::size_t(Stage::Other)] += done - s.cursor;
        liveDwell_[std::size_t(Stage::Other)] += done - s.cursor;
        s.cursor = done;
    }
    OpRecord rec;
    rec.cls = s.cls;
    rec.issued = s.issued;
    rec.done = done;
    rec.dwell = s.dwell;
    flight_.note(rec);
    records_.push_back(rec);
    s.active = false;
    s.nextFree = freeHead_;
    freeHead_ = op;
    --live_;
    if (current_ == op)
        current_ = kNoOpToken;
}

void
AttributionCollector::applyCmdTo(OpToken op)
{
    for (std::uint32_t i = 0; i < cmdSegCount_; ++i) {
        const Tick up =
            cmdDone_ != 0 ? std::min(cmdSegs_[i].upTo, cmdDone_)
                          : cmdSegs_[i].upTo;
        mark(op, cmdSegs_[i].stage, up);
    }
}

void
AttributionCollector::clearForMeasurement()
{
    records_.clear();
    flight_.clear();
    ckpts_.clear();
    liveDwell_.fill(0);
}

AttributionSummary
AttributionCollector::summary(double tail_quantile) const
{
    AttributionSummary out;
    out.enabled = true;
    out.tailQuantile = tail_quantile;
    out.totalOps = records_.size();
    for (const OpRecord &r : records_) {
        ClassBreakdown &cb = out.perClass[std::size_t(r.cls)];
        ++cb.ops;
        for (std::size_t s = 0; s < kStageCount; ++s)
            cb.dwell[s] += r.dwell[s];
    }
    if (records_.empty())
        return out;
    std::vector<Tick> lats;
    lats.reserve(records_.size());
    for (const OpRecord &r : records_)
        lats.push_back(r.latency());
    std::sort(lats.begin(), lats.end());
    const double q =
        std::min(std::max(tail_quantile, 0.0), 1.0);
    const std::size_t idx = std::min(
        lats.size() - 1, std::size_t(q * double(lats.size())));
    out.tailThresholdTicks = lats[idx];
    for (const OpRecord &r : records_) {
        if (r.latency() < out.tailThresholdTicks)
            continue;
        ++out.tailOps;
        ClassBreakdown &cb = out.tailPerClass[std::size_t(r.cls)];
        ++cb.ops;
        for (std::size_t s = 0; s < kStageCount; ++s)
            cb.dwell[s] += r.dwell[s];
    }
    return out;
}

namespace {

void
writeStages(JsonWriter &w, const std::array<Tick, kStageCount> &dwell)
{
    w.key("stages").beginObject();
    for (std::size_t s = 0; s < kStageCount; ++s) {
        if (dwell[s] != 0)
            w.kv(stageName(Stage(s)), dwell[s]);
    }
    w.endObject();
}

void
writeClasses(JsonWriter &w,
             const std::array<ClassBreakdown, kOpClassCount> &classes)
{
    w.beginObject();
    for (std::size_t c = 0; c < kOpClassCount; ++c) {
        const ClassBreakdown &cb = classes[c];
        if (cb.ops == 0)
            continue;
        w.key(opClassName(OpClass(c))).beginObject();
        w.kv("ops", cb.ops);
        writeStages(w, cb.dwell);
        w.kv("totalTicks", cb.totalTicks());
        w.endObject();
    }
    w.endObject();
}

} // namespace

std::string
AttributionCollector::toJson(double tail_quantile) const
{
    const AttributionSummary sum = summary(tail_quantile);
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("classes");
    writeClasses(w, sum.perClass);
    w.key("flightRecorder").beginArray();
    for (const OpRecord &r : flight_.slowest()) {
        w.newline().beginObject();
        w.kv("class", opClassName(r.cls));
        w.kv("done", r.done);
        w.kv("issued", r.issued);
        w.kv("latencyTicks", r.latency());
        writeStages(w, r.dwell);
        w.endObject();
    }
    w.newline().endArray();
    w.key("tail").beginObject();
    w.key("classes");
    writeClasses(w, sum.tailPerClass);
    w.kv("ops", sum.tailOps);
    w.kv("quantile", sum.tailQuantile);
    w.kv("thresholdTicks", sum.tailThresholdTicks);
    w.endObject();
    w.kv("totalOps", sum.totalOps);
    w.endObject();
    os << "\n";
    return os.str();
}

} // namespace checkin::obs
