/**
 * @file
 * Structured event tracer: zero-cost-when-disabled spans, instants
 * and counters keyed to simulation ticks, exported as Chrome
 * trace_event JSON (loadable in Perfetto / chrome://tracing).
 *
 * Layers emit probes through the free functions at the bottom of this
 * header (obs::span / obs::instant / obs::counterSample). Probes
 * consult a *thread-local* installed Tracer: when none is installed
 * on the calling thread, or the installed tracer is disabled, a probe
 * is a single pointer + flag check and performs no allocation.
 * Install a tracer with TraceScope (RAII) around the code under
 * observation, or activate a whole run with SimContextScope
 * (sim/sim_context.h), which installs the context's tracer.
 *
 * The probe target is deliberately not process-global: concurrent
 * simulation runs (harness/sweep.h workers) each install their own
 * tracer on their own thread, so runs never share mutable trace
 * state. Callers that used the former process-global installation
 * only need changes if they installed a tracer on one thread and ran
 * the simulation on another — install on the running thread instead.
 *
 * Layout convention (see docs/OBSERVABILITY.md):
 *  - Chrome "process" (pid) = layer (Cat): workload, engine, ssd,
 *    ftl, nand;
 *  - Chrome "thread" (tid) = lane inside the layer: client thread,
 *    die index, channel index, ... Lanes can be named.
 *  - event names are "noun.verb" strings, lowercase, prefixed by
 *    their subsystem ("nand.sense", "ckpt.data", "op.read").
 *
 * Determinism contract: all timestamps are simulation ticks and event
 * order is the (deterministic) emission order, so the same seed
 * produces a byte-identical trace JSON.
 */

#ifndef CHECKIN_OBS_TRACE_H_
#define CHECKIN_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace checkin::obs {

/** Trace category: one Chrome "process" per simulated layer. */
enum class Cat : std::uint8_t
{
    Workload = 0,
    Engine,
    Ssd,
    Ftl,
    Nand,
    Sim,
    kCount,
};

inline constexpr std::size_t kCatCount =
    static_cast<std::size_t>(Cat::kCount);

/** Lowercase layer name ("workload", "engine", ...). */
const char *catName(Cat cat);

/** One key/value annotation attached to an event. */
struct TraceArg
{
    const char *key;
    std::uint64_t value;
};

/**
 * Event recorder. Event names and arg keys must be string literals
 * (or otherwise outlive the tracer): only the pointer is stored.
 */
class Tracer
{
  public:
    static constexpr std::size_t kMaxArgs = 3;

    enum class Phase : std::uint8_t
    {
        Span,    //!< Chrome "X" complete event (ts + dur)
        Instant, //!< Chrome "i" instant event
        Counter, //!< Chrome "C" counter sample
    };

    struct Event
    {
        Phase phase;
        Cat cat;
        std::uint8_t nargs;
        std::uint32_t lane;
        const char *name;
        Tick ts;
        /** Span: duration. Counter: sampled value. Instant: 0. */
        std::uint64_t dur;
        std::array<const char *, kMaxArgs> argKeys;
        std::array<std::uint64_t, kMaxArgs> argVals;
    };

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Record a completed span [begin, end] on (cat, lane). */
    void span(Cat cat, std::uint32_t lane, const char *name,
              Tick begin, Tick end,
              std::initializer_list<TraceArg> args = {});

    /** Record an instant event at @p at. */
    void instant(Cat cat, std::uint32_t lane, const char *name,
                 Tick at, std::initializer_list<TraceArg> args = {});

    /** Record a counter sample (rendered as a counter track). */
    void counter(Cat cat, std::uint32_t lane, const char *name,
                 Tick at, std::uint64_t value);

    /** Name a (cat, lane) track, e.g. lane 2 of Nand -> "die2". */
    void setLaneName(Cat cat, std::uint32_t lane, std::string name);

    std::size_t eventCount() const { return events_.size(); }

    /** Bytes reserved for event storage (0 until first event). */
    std::size_t
    storageCapacity() const
    {
        return events_.capacity() * sizeof(Event);
    }

    /** Events recorded in category @p cat (any phase). */
    std::uint64_t countIn(Cat cat) const;

    /** Drop all recorded events (lane names are kept). */
    void clear() { events_.clear(); }

    const std::vector<Event> &events() const { return events_; }

    /**
     * Write the whole trace as Chrome trace_event JSON: metadata
     * (process/thread names) first, then events sorted by timestamp
     * with emission order as the tie-breaker. One event per line.
     */
    void writeJson(std::ostream &os) const;

    /** writeJson into a string. */
    std::string toJson() const;

  private:
    void push(Phase phase, Cat cat, std::uint32_t lane,
              const char *name, Tick ts, std::uint64_t dur,
              std::initializer_list<TraceArg> args);

    bool enabled_ = false;
    std::vector<Event> events_;
    /** (cat << 32 | lane) -> display name. */
    std::map<std::uint64_t, std::string> laneNames_;
};

namespace detail {
/** Per-thread probe target; nullptr when tracing is off. */
inline thread_local Tracer *t_tracer = nullptr;
} // namespace detail

/** Tracer installed on this thread (nullptr when none). */
inline Tracer *
installedTracer()
{
    return detail::t_tracer;
}

/** Install @p t as this thread's probe target (nullptr uninstalls). */
inline void
installTracer(Tracer *t)
{
    detail::t_tracer = t;
}

/**
 * RAII installation of a tracer on the calling thread; restores the
 * previous target on exit. Install and probes must happen on the
 * same thread.
 */
class TraceScope
{
  public:
    explicit TraceScope(Tracer &t) : prev_(detail::t_tracer)
    {
        detail::t_tracer = &t;
    }
    ~TraceScope() { detail::t_tracer = prev_; }
    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    Tracer *prev_;
};

/** True when this thread's probes will record. */
inline bool
traceOn()
{
    const Tracer *t = detail::t_tracer;
    return t != nullptr && t->enabled();
}

// ----------------------------------------------------------------------
// Probe points. Names and arg keys must be string literals.
// ----------------------------------------------------------------------

inline void
span(Cat cat, std::uint32_t lane, const char *name, Tick begin,
     Tick end, std::initializer_list<TraceArg> args = {})
{
    if (Tracer *t = detail::t_tracer; t != nullptr && t->enabled())
        t->span(cat, lane, name, begin, end, args);
}

inline void
instant(Cat cat, std::uint32_t lane, const char *name, Tick at,
        std::initializer_list<TraceArg> args = {})
{
    if (Tracer *t = detail::t_tracer; t != nullptr && t->enabled())
        t->instant(cat, lane, name, at, args);
}

inline void
counterSample(Cat cat, std::uint32_t lane, const char *name, Tick at,
              std::uint64_t value)
{
    if (Tracer *t = detail::t_tracer; t != nullptr && t->enabled())
        t->counter(cat, lane, name, at, value);
}

/** Register a lane display name on the installed tracer, if any. */
inline void
nameLane(Cat cat, std::uint32_t lane, const std::string &name)
{
    if (Tracer *t = detail::t_tracer; t != nullptr && t->enabled())
        t->setLaneName(cat, lane, name);
}

} // namespace checkin::obs

#endif // CHECKIN_OBS_TRACE_H_
