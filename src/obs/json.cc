#include "obs/json.h"

#include <cinttypes>
#include <cstdio>

namespace checkin::obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (stack_.empty())
        return;
    Level &top = stack_.back();
    if (top.pendingKey) {
        // The comma was already written before the key.
        top.pendingKey = false;
        return;
    }
    if (top.any)
        os_ << ',';
    top.any = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Level{});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    os_ << '}';
    stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Level{});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    os_ << ']';
    stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    Level &top = stack_.back();
    if (top.any)
        os_ << ',';
    top.any = true;
    top.pendingKey = true;
    os_ << '"' << jsonEscape(k) << "\":";
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    // Fixed format keeps output byte-stable for identical inputs.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    preValue();
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::newline()
{
    os_ << '\n';
    return *this;
}

} // namespace checkin::obs
