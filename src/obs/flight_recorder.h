/**
 * @file
 * Attribution data model and bounded retention structures.
 *
 * This header defines the vocabulary of the latency-attribution
 * subsystem — the pipeline stages an op can dwell in, the op classes,
 * the per-op breakdown record — plus two retention structures built
 * on it:
 *
 *  - FlightRecorder: an online slowest-K recorder that keeps the full
 *    stage breakdown of the worst ops seen, so a tail spike can be
 *    explained after the fact without retaining every op.
 *  - CheckpointTimeline: one record per checkpoint (trigger reason,
 *    phase boundary ticks, CoW command count, remapped vs copied
 *    work, FULL/PARTIAL/MERGED journal-record counts per the paper's
 *    Algorithm 2).
 *
 * The hot-path collector that feeds these lives in obs/attribution.h.
 * Both exports are deterministic: content derives only from simulated
 * ticks and DES order, never from wall-clock, so sweep runs are
 * byte-identical for any worker count.
 */

#ifndef CHECKIN_OBS_FLIGHT_RECORDER_H_
#define CHECKIN_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace checkin::obs {

/**
 * Pipeline stages a client op can dwell in, in rough pipeline order.
 * Every tick of an op's end-to-end latency is attributed to exactly
 * one stage; Other catches whatever no probe claimed (completion
 * delivery, host-cache hits, unattributed gaps).
 */
enum class Stage : std::uint8_t
{
    QueueDelay,      //!< open-loop arrival waited for a free client
                     //!< slot (offered load exceeded service rate)
    HostCpu,         //!< engine scheduling + host CPU per query
    CheckpointStall, //!< query locked out / journal starved by a
                     //!< running checkpoint
    JournalWait,     //!< append buffered until its group commit
    SsdQueue,        //!< NVMe submission-queue admission wait
    Firmware,        //!< SSD controller CPU occupancy
    FtlMap,          //!< mapping-table fetch on a map-cache miss
    DramCache,       //!< device DRAM data-cache service
    NandWait,        //!< die/channel contention before a media op
    NandMedia,       //!< NAND sense/program/transfer occupancy
    GcStall,         //!< inline garbage collection on the op's path
    Bus,             //!< host interface (PCIe) transfer
    Backpressure,    //!< write ack delayed by a full write buffer
    Other,           //!< remainder not claimed by any probe
};

inline constexpr std::size_t kStageCount = 14;

/** Stable lowercase stage name ("hostCpu", "nandMedia", ...). */
const char *stageName(Stage s);

/** Client-visible op classes (the workload mix legs). */
enum class OpClass : std::uint8_t
{
    Read,
    Update,
    Rmw,
    Scan,
    Delete,
};

inline constexpr std::size_t kOpClassCount = 5;

/** Stable lowercase class name ("read", "update", ...). */
const char *opClassName(OpClass c);

/** Completed-op breakdown: per-stage dwell ticks summing exactly to
 *  (done - issued). */
struct OpRecord
{
    OpClass cls = OpClass::Read;
    Tick issued = 0;
    Tick done = 0;
    std::array<Tick, kStageCount> dwell{};

    Tick latency() const { return done - issued; }
};

/**
 * Online slowest-K retention. note() keeps the K largest-latency
 * records seen; ties keep the earliest-finishing op so the content is
 * deterministic. slowest() returns them sorted worst-first.
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t k = 16) : k_(k) {}

    void note(const OpRecord &rec);

    /** Retained records, highest latency first (ties: finish order). */
    std::vector<OpRecord> slowest() const;

    std::size_t capacity() const { return k_; }
    std::size_t size() const { return entries_.size(); }

    void clear();

  private:
    struct Entry
    {
        OpRecord rec;
        std::uint64_t seq = 0; //!< finish order, the tie-breaker
    };

    std::size_t k_;
    std::uint64_t nextSeq_ = 0;
    std::vector<Entry> entries_;
};

/** Why a checkpoint started. */
enum class CkptTrigger : std::uint8_t
{
    Manual,        //!< explicit requestCheckpoint() call
    Timer,         //!< periodic checkpointInterval timer
    JournalBytes,  //!< active-journal-bytes threshold
    SpacePressure, //!< journal half out of space (appends stalled)
    Backlog,       //!< re-triggered right after a checkpoint finished
    AdaptivePace,  //!< adaptive controller's pacing/lull decision
    Safety,        //!< adaptive controller's hard overflow bound
};

const char *ckptTriggerName(CkptTrigger t);

/**
 * One checkpoint's phase timeline and work breakdown. Boundary ticks
 * are absolute; phase durations derive from them (data = dataDone -
 * start, meta = metaDone - dataDone, delete = end - metaDone).
 */
struct CheckpointStat
{
    std::uint64_t seq = 0;
    CkptTrigger trigger = CkptTrigger::Manual;
    Tick startTick = 0;    //!< quiesce completed, strategy started
    Tick dataDoneTick = 0; //!< value/data movement finished
    Tick metaDoneTick = 0; //!< catalog (metadata) persisted
    Tick endTick = 0;      //!< old logs deleted, checkpoint done

    /** JMT record-class counts at the checkpoint snapshot. */
    std::uint64_t rawRecords = 0;
    std::uint64_t fullRecords = 0;
    std::uint64_t partialRecords = 0;
    std::uint64_t mergedRecords = 0;
    std::uint64_t entries = 0;
    std::uint64_t tombstones = 0;

    /** Device-side work issued by this checkpoint (stat deltas). */
    std::uint64_t cowCommands = 0;
    std::uint64_t remappedPairs = 0;
    std::uint64_t remappedUnits = 0;
    std::uint64_t copiedPairs = 0;
    std::uint64_t copiedChunks = 0;
    std::uint64_t bufferedSmallRecords = 0;
};

/** Per-checkpoint record list with a deterministic JSON export. */
class CheckpointTimeline
{
  public:
    void note(const CheckpointStat &stat) { stats_.push_back(stat); }

    const std::vector<CheckpointStat> &stats() const { return stats_; }

    void clear() { stats_.clear(); }

    /** checkpoints.json: {"checkpoints":[...],"count":N}. */
    std::string toJson() const;

  private:
    std::vector<CheckpointStat> stats_;
};

} // namespace checkin::obs

#endif // CHECKIN_OBS_FLIGHT_RECORDER_H_
