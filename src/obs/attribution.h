/**
 * @file
 * End-to-end latency attribution: per-op stage profiling.
 *
 * Every client op can carry an OpTimeline token from issue to
 * completion. The token is a cursor-based segment accumulator: marks
 * are monotone absolute ticks, each mark attributes the interval
 * [cursor, upTo) to one Stage and advances the cursor, and finish
 * sweeps the remainder into Stage::Other — so the per-stage dwell
 * times sum to the client-observed end-to-end latency *exactly*, by
 * construction (tick arithmetic, no rounding).
 *
 * Threading model (mirrors obs/trace.h):
 *  - AttributionCollector is installed per run thread via the
 *    thread-local detail::t_attr slot (AttributionScope, or
 *    SimContextScope inside runExperiment).
 *  - With no collector installed — or a disabled one — every probe is
 *    a single pointer + flag check: no token is acquired, nothing
 *    allocates, and storageBytes()/poolSize() stay 0 (asserted in
 *    tests/test_obs.cc and bench_kernel).
 *  - Tokens are pooled indices: an op acquires a pooled OpTimeline
 *    slot at issue and releases it at finish, so steady state does
 *    zero allocations beyond the high-water pool.
 *
 * Layer plumbing: the client begins/finishes ops; the engine passes
 * the token through its task closures as a 4-byte index (so hot
 * lambdas stay within InlineCallback's inline buffer) and re-installs
 * it as the collector's *current op* around synchronous downstream
 * calls. Ssd::processCommand records its internal stage boundaries
 * into a per-command segment buffer (FTL and NAND append their own
 * sub-stages while the command is active) and the segments are then
 * replayed onto the op's timeline — directly for query-caused
 * commands, by the journal's group commit for each member op of a
 * shared flush.
 */

#ifndef CHECKIN_OBS_ATTRIBUTION_H_
#define CHECKIN_OBS_ATTRIBUTION_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "sim/types.h"

namespace checkin::obs {

/** Pooled-timeline handle; kNoOpToken means "not attributed". */
using OpToken = std::uint32_t;
inline constexpr OpToken kNoOpToken = ~OpToken{0};

/** Aggregate dwell breakdown for one op class. */
struct ClassBreakdown
{
    std::uint64_t ops = 0;
    std::array<Tick, kStageCount> dwell{};

    Tick
    totalTicks() const
    {
        Tick t = 0;
        for (const Tick d : dwell)
            t += d;
        return t;
    }
};

/** Whole-run attribution rollup (lands in RunResult). */
struct AttributionSummary
{
    bool enabled = false;
    double tailQuantile = 0.0;
    Tick tailThresholdTicks = 0;
    std::uint64_t totalOps = 0;
    std::uint64_t tailOps = 0;
    /** All completed ops, by class. */
    std::array<ClassBreakdown, kOpClassCount> perClass{};
    /** Only ops at or above the tail-latency threshold. */
    std::array<ClassBreakdown, kOpClassCount> tailPerClass{};
};

/**
 * Per-run attribution collector: the OpTimeline pool, the per-command
 * segment buffer, the completed-op records, the slowest-K flight
 * recorder, and the checkpoint phase timeline.
 */
class AttributionCollector
{
  public:
    AttributionCollector() = default;

    AttributionCollector(const AttributionCollector &) = delete;
    AttributionCollector &
    operator=(const AttributionCollector &) = delete;

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    // ---- op lifecycle (client) ----

    /** Acquire a pooled timeline; cursor starts at @p issued. */
    OpToken beginOp(OpClass cls, Tick issued);

    /** Attribute [cursor, upTo) to @p stage; no-op when upTo is not
     *  past the cursor (marks are monotone). */
    void mark(OpToken op, Stage stage, Tick up_to);

    /** Sweep [cursor, done) into Stage::Other, record the op, feed
     *  the flight recorder, release the token. */
    void finishOp(OpToken op, Tick done);

    // ---- ambient current op (engine plumbing) ----

    OpToken currentOp() const { return current_; }
    void setCurrentOp(OpToken op) { current_ = op; }

    // ---- per-command stage segments (device layers) ----

    /** Start recording stage boundaries for one SSD command. */
    void
    cmdBegin()
    {
        cmdSegCount_ = 0;
        cmdDone_ = 0;
        cmdActive_ = true;
    }

    /**
     * Append a stage boundary for the active command. Dropped when no
     * command is active (e.g. background GC off any op's path). When
     * a stage override is in effect (GC, map fetch) the override
     * label wins. Overflow folds into the last segment: attribution
     * detail degrades, conservation does not.
     */
    void
    cmdMark(Stage stage, Tick up_to)
    {
        if (!cmdActive_)
            return;
        const Stage s = overrideDepth_ > 0 ? overrideStage_ : stage;
        if (cmdSegCount_ == kMaxCmdSegments) {
            Seg &last = cmdSegs_[kMaxCmdSegments - 1];
            if (up_to > last.upTo)
                last.upTo = up_to;
            return;
        }
        cmdSegs_[cmdSegCount_++] = Seg{s, up_to};
    }

    /**
     * Stop recording and note the command's completion tick. Replay
     * clamps segment boundaries to it: buffered writes ack before
     * their NAND programs finish, and media time past the ack is
     * background work, not op latency. 0 means "no clamp".
     */
    void
    cmdEnd(Tick done = 0)
    {
        cmdActive_ = false;
        cmdDone_ = done;
    }

    /** Replay the active command's segments onto @p op. */
    void applyCmdTo(OpToken op);

    /** applyCmdTo(currentOp()) if a current op is set. */
    void
    applyCmdToCurrent()
    {
        if (current_ != kNoOpToken)
            applyCmdTo(current_);
    }

    /** Relabel nested cmdMark()s (RAII via AttrStageScope). */
    void
    setStageOverride(Stage stage)
    {
        overrideStage_ = stage;
        ++overrideDepth_;
    }

    void clearStageOverride(Stage prev, std::uint32_t depth)
    {
        overrideStage_ = prev;
        overrideDepth_ = depth;
    }

    std::uint32_t overrideDepth() const { return overrideDepth_; }
    Stage overrideStage() const { return overrideStage_; }

    // ---- checkpoint phase timeline ----

    void noteCheckpoint(const CheckpointStat &s) { ckpts_.note(s); }

    const std::vector<CheckpointStat> &
    checkpoints() const
    {
        return ckpts_.stats();
    }

    // ---- results / introspection ----

    const std::vector<OpRecord> &ops() const { return records_; }

    const FlightRecorder &flightRecorder() const { return flight_; }

    /**
     * Running dwell total for @p s across every mark so far — live,
     * including segments of ops still in flight. Feedback consumers
     * (the adaptive checkpoint policy) read this mid-run; it is
     * reset with clearForMeasurement().
     */
    Tick
    liveStageTicks(Stage s) const
    {
        return liveDwell_[std::size_t(s)];
    }

    /** Timeline slots ever created; 0 proves no op was attributed. */
    std::size_t poolSize() const { return pool_.size(); }

    /** In-flight (unfinished) tokens. */
    std::size_t liveTokens() const { return live_; }

    /** Bytes of attribution storage; 0 until the first op. */
    std::uint64_t
    storageBytes() const
    {
        return pool_.capacity() * sizeof(Slot) +
               records_.capacity() * sizeof(OpRecord);
    }

    /** Drop load-phase records (pool and lane state survive). */
    void clearForMeasurement();

    /** Whole-run rollup with the tail cut at @p tail_quantile. */
    AttributionSummary summary(double tail_quantile) const;

    /** attribution.json (deterministic bytes). */
    std::string toJson(double tail_quantile) const;

    /** checkpoints.json (deterministic bytes). */
    std::string checkpointsJson() const { return ckpts_.toJson(); }

    void setFlightRecorderK(std::size_t k) { flight_ = FlightRecorder(k); }

  private:
    struct Slot
    {
        OpClass cls = OpClass::Read;
        bool active = false;
        Tick issued = 0;
        Tick cursor = 0;
        std::array<Tick, kStageCount> dwell{};
        std::uint32_t nextFree = kNoOpToken;
    };

    struct Seg
    {
        Stage stage;
        Tick upTo;
    };

    static constexpr std::size_t kMaxCmdSegments = 64;

    bool enabled_ = false;
    OpToken current_ = kNoOpToken;

    std::vector<Slot> pool_;
    std::uint32_t freeHead_ = kNoOpToken;
    std::size_t live_ = 0;

    bool cmdActive_ = false;
    Tick cmdDone_ = 0;
    std::uint32_t cmdSegCount_ = 0;
    std::array<Seg, kMaxCmdSegments> cmdSegs_;

    std::uint32_t overrideDepth_ = 0;
    Stage overrideStage_ = Stage::Other;

    std::vector<OpRecord> records_;
    FlightRecorder flight_;
    CheckpointTimeline ckpts_;
    std::array<Tick, kStageCount> liveDwell_{};
};

namespace detail {
/** Per-thread collector slot (see obs/trace.h for the rationale). */
inline thread_local AttributionCollector *t_attr = nullptr;
} // namespace detail

/** Install @p a as the calling thread's collector (nullptr clears). */
inline void
installAttribution(AttributionCollector *a)
{
    detail::t_attr = a;
}

/** The calling thread's collector, or nullptr. */
inline AttributionCollector *
installedAttribution()
{
    return detail::t_attr;
}

/** True when an enabled collector is installed on this thread. */
inline bool
attributionOn()
{
    const AttributionCollector *a = detail::t_attr;
    return a != nullptr && a->enabled();
}

/** RAII collector install/restore (the TraceScope analogue). */
class AttributionScope
{
  public:
    explicit AttributionScope(AttributionCollector *a)
        : prev_(detail::t_attr)
    {
        detail::t_attr = a;
    }

    ~AttributionScope() { detail::t_attr = prev_; }

    AttributionScope(const AttributionScope &) = delete;
    AttributionScope &operator=(const AttributionScope &) = delete;

  private:
    AttributionCollector *prev_;
};

// ---- hot-path probes: one pointer + flag check when disabled ----

inline OpToken
attrBeginOp(OpClass cls, Tick issued)
{
    if (AttributionCollector *a = detail::t_attr;
        a != nullptr && a->enabled())
        return a->beginOp(cls, issued);
    return kNoOpToken;
}

inline void
attrMark(OpToken op, Stage stage, Tick up_to)
{
    if (op == kNoOpToken)
        return;
    if (AttributionCollector *a = detail::t_attr; a != nullptr)
        a->mark(op, stage, up_to);
}

inline void
attrFinishOp(OpToken op, Tick done)
{
    if (op == kNoOpToken)
        return;
    if (AttributionCollector *a = detail::t_attr; a != nullptr)
        a->finishOp(op, done);
}

inline OpToken
attrCurrentOp()
{
    if (AttributionCollector *a = detail::t_attr;
        a != nullptr && a->enabled())
        return a->currentOp();
    return kNoOpToken;
}

/** Live cumulative dwell of @p stage; 0 when attribution is off. */
inline Tick
attrLiveStageTicks(Stage stage)
{
    if (AttributionCollector *a = detail::t_attr;
        a != nullptr && a->enabled())
        return a->liveStageTicks(stage);
    return 0;
}

/** Device-layer probe: stage boundary of the active SSD command. */
inline void
attrCmdMark(Stage stage, Tick up_to)
{
    if (AttributionCollector *a = detail::t_attr;
        a != nullptr && a->enabled())
        a->cmdMark(stage, up_to);
}

/** Checkpoint phase record (engine). */
inline void
attrNoteCheckpoint(const CheckpointStat &s)
{
    if (AttributionCollector *a = detail::t_attr;
        a != nullptr && a->enabled())
        a->noteCheckpoint(s);
}

/** RAII "current op" install around synchronous downstream calls. */
class AttrOpScope
{
  public:
    explicit AttrOpScope(OpToken op)
    {
        if (AttributionCollector *a = detail::t_attr;
            a != nullptr && a->enabled()) {
            a_ = a;
            prev_ = a->currentOp();
            a->setCurrentOp(op);
        }
    }

    ~AttrOpScope()
    {
        if (a_ != nullptr)
            a_->setCurrentOp(prev_);
    }

    AttrOpScope(const AttrOpScope &) = delete;
    AttrOpScope &operator=(const AttrOpScope &) = delete;

  private:
    AttributionCollector *a_ = nullptr;
    OpToken prev_ = kNoOpToken;
};

/** RAII stage relabel for nested device work (GC, map fetches). */
class AttrStageScope
{
  public:
    explicit AttrStageScope(Stage stage)
    {
        if (AttributionCollector *a = detail::t_attr;
            a != nullptr && a->enabled()) {
            a_ = a;
            prevStage_ = a->overrideStage();
            prevDepth_ = a->overrideDepth();
            a->setStageOverride(stage);
        }
    }

    ~AttrStageScope()
    {
        if (a_ != nullptr)
            a_->clearStageOverride(prevStage_, prevDepth_);
    }

    AttrStageScope(const AttrStageScope &) = delete;
    AttrStageScope &operator=(const AttrStageScope &) = delete;

  private:
    AttributionCollector *a_ = nullptr;
    Stage prevStage_ = Stage::Other;
    std::uint32_t prevDepth_ = 0;
};

} // namespace checkin::obs

#endif // CHECKIN_OBS_ATTRIBUTION_H_
