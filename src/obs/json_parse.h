/**
 * @file
 * Minimal recursive-descent JSON parser for the repo's own artifacts.
 *
 * The report generator (harness/report.h) reads back the JSON files
 * the harness itself wrote (summary.json, telemetry.json,
 * blackbox.json, attribution.json), so this parser only needs to
 * cover what obs::JsonWriter can emit: objects, arrays, strings with
 * \" \\ \n \t \u escapes, numbers (integers and doubles), booleans,
 * and null. It keeps everything in a tree of JsonValue nodes; numbers
 * are stored as double plus the raw text so 64-bit tick values
 * round-trip exactly via asU64().
 *
 * Errors throw std::runtime_error with a byte offset; artifacts are
 * machine-written, so a parse error means a real bug, not bad input.
 */

#ifndef CHECKIN_OBS_JSON_PARSE_H_
#define CHECKIN_OBS_JSON_PARSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace checkin::obs {

/** One node of a parsed JSON document. */
struct JsonValue
{
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    /** Raw numeric text (exact u64 round-trip) or string payload. */
    std::string text;
    std::vector<JsonValue> items;
    /** Sorted by key: JsonWriter emits sorted keys, std::map keeps
     *  them that way. */
    std::map<std::string, JsonValue> fields;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member lookup with a Null fallback (chainable). */
    const JsonValue &at(const std::string &key) const;

    /** Array element with a Null fallback. */
    const JsonValue &at(std::size_t index) const;

    double asDouble(double fallback = 0.0) const;
    /** Exact for integers JsonWriter wrote (parses the raw text). */
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    std::string asString(const std::string &fallback = "") const;
    bool asBool(bool fallback = false) const;
};

/** Parse @p text; throws std::runtime_error on malformed input. */
JsonValue parseJson(const std::string &text);

} // namespace checkin::obs

#endif // CHECKIN_OBS_JSON_PARSE_H_
