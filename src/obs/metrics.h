/**
 * @file
 * Typed metrics registry: interned-ID counters and gauges plus
 * tick-bucketed time series and latency histograms, with JSON and
 * CSV exporters.
 *
 * This supersedes raw string-keyed StatRegistry use for run-level
 * reporting: names are interned once at registration, updates are
 * array-indexed, and exporters emit in sorted-name order so artifacts
 * are stable and diffable. Legacy StatRegistry counters merge in via
 * importStats() so one exporter covers both worlds.
 */

#ifndef CHECKIN_OBS_METRICS_H_
#define CHECKIN_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/histogram.h"
#include "sim/stats.h"
#include "sim/timeseries.h"
#include "sim/types.h"

namespace checkin::obs {

/** Interned metric handle; indexes are stable after registration. */
using MetricId = std::uint32_t;

/** Registry of typed metrics with stable, diffable exporters. */
class MetricsRegistry
{
  public:
    // ------------------------------------------------------------------
    // Registration (intern once, then hot-path updates by id)
    // ------------------------------------------------------------------
    /** Register (or look up) a monotonically increasing counter. */
    MetricId counter(const std::string &name);

    /** Register (or look up) a last-value-wins gauge. */
    MetricId gauge(const std::string &name);

    /** Register (or look up) a tick-bucketed time series. */
    MetricId series(const std::string &name, Tick interval);

    /** Register (or look up) a log-linear latency histogram. */
    MetricId histogram(const std::string &name);

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------
    void
    add(MetricId id, std::uint64_t delta = 1)
    {
        scalarValues_[id] += delta;
    }

    void
    set(MetricId id, std::uint64_t value)
    {
        scalarValues_[id] = value;
    }

    std::uint64_t
    value(MetricId id) const
    {
        return scalarValues_[id];
    }

    /** Add a (when, value) sample to time series @p id. */
    void
    sample(MetricId id, Tick when, std::uint64_t value)
    {
        series_[id].data.record(when, value);
    }

    /** Record @p value into histogram @p id. */
    void
    observe(MetricId id, std::uint64_t value)
    {
        hists_[id].data.record(value);
    }

    const TimeSeries &
    seriesData(MetricId id) const
    {
        return series_[id].data;
    }

    const LatencyHistogram &
    histogramData(MetricId id) const
    {
        return hists_[id].data;
    }

    // ------------------------------------------------------------------
    // Legacy bridge + export
    // ------------------------------------------------------------------
    /** Merge every counter of @p stats (add semantics). */
    void importStats(const StatRegistry &stats);

    /**
     * Full registry as JSON: {"counters":{}, "gauges":{},
     * "histograms":{}, "series":{}} with sorted keys.
     */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

    /** Counters + gauges as "name,value" CSV (sorted by name). */
    void writeScalarsCsv(std::ostream &os) const;
    std::string scalarsCsv() const;

    /** All series as "series,bucket,start_tick,count,sum,max" CSV. */
    void writeSeriesCsv(std::ostream &os) const;
    std::string seriesCsv() const;

  private:
    enum class Kind : std::uint8_t { Counter, Gauge };

    MetricId internScalar(const std::string &name, Kind kind);

    struct NamedSeries
    {
        std::string name;
        TimeSeries data;
    };

    struct NamedHist
    {
        std::string name;
        LatencyHistogram data;
    };

    std::map<std::string, MetricId> scalarIndex_;
    std::vector<std::string> scalarNames_;
    std::vector<Kind> scalarKinds_;
    std::vector<std::uint64_t> scalarValues_;

    std::map<std::string, MetricId> seriesIndex_;
    std::vector<NamedSeries> series_;

    std::map<std::string, MetricId> histIndex_;
    std::vector<NamedHist> hists_;
};

} // namespace checkin::obs

#endif // CHECKIN_OBS_METRICS_H_
