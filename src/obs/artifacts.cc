#include "obs/artifacts.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace checkin::obs {

ArtifactWriter::ArtifactWriter(const std::string &base_dir,
                               const std::string &run_name)
{
    std::filesystem::path dir(base_dir);
    dir /= run_name;
    std::filesystem::create_directories(dir);
    bundle_.dir = dir.string();
}

void
ArtifactWriter::writeText(const std::string &filename,
                          const std::string &content)
{
    const std::filesystem::path path =
        std::filesystem::path(bundle_.dir) / filename;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("cannot write artifact: " +
                                 path.string());
    os << content;
    if (!os)
        throw std::runtime_error("artifact write failed: " +
                                 path.string());
    bundle_.files.push_back(filename);
}

} // namespace checkin::obs
