/**
 * @file
 * Minimal deterministic JSON emitter for observability artifacts.
 *
 * All exporters in obs/ (trace, metrics, run summaries) go through
 * this writer so their output is byte-stable: keys are emitted in the
 * order the caller provides (callers sort), doubles use a fixed
 * printf format, and strings are escaped per RFC 8259. No reflection,
 * no DOM — just a comma-managing stream wrapper.
 */

#ifndef CHECKIN_OBS_JSON_H_
#define CHECKIN_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace checkin::obs {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Streaming JSON writer with automatic comma placement. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value call supplies its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** Insert a raw newline (for line-per-record diffability). */
    JsonWriter &newline();

  private:
    /** Emit a separating comma when needed and mark a value written. */
    void preValue();

    struct Level
    {
        bool any = false;      //!< a member was already written
        bool pendingKey = false;
    };

    std::ostream &os_;
    std::vector<Level> stack_;
};

} // namespace checkin::obs

#endif // CHECKIN_OBS_JSON_H_
