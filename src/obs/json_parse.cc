#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace checkin::obs {

namespace {

/** Cursor over the input with shared error reporting. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        ws();
        if (pos_ != s_.size())
            fail("trailing bytes after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json parse error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        ws();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
          case 'f':
            return boolean();
          case 'n':
            literal("null");
            return JsonValue{};
          default:
            return number();
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                fail(std::string("expected literal ") + word);
            ++pos_;
        }
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        ws();
        if (consume('}'))
            return v;
        while (true) {
            ws();
            JsonValue key = string();
            ws();
            expect(':');
            v.fields[key.text] = value();
            ws();
            if (consume(','))
                continue;
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        ws();
        if (consume(']'))
            return v;
        while (true) {
            v.items.push_back(value());
            ws();
            if (consume(','))
                continue;
            expect(']');
            return v;
        }
    }

    JsonValue
    string()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.text.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                v.text.push_back(e);
                break;
              case 'b':
                v.text.push_back('\b');
                break;
              case 'f':
                v.text.push_back('\f');
                break;
              case 'n':
                v.text.push_back('\n');
                break;
              case 'r':
                v.text.push_back('\r');
                break;
              case 't':
                v.text.push_back('\t');
                break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Artifacts are ASCII; encode the BMP code point as
                // UTF-8 without surrogate-pair handling.
                if (cp < 0x80) {
                    v.text.push_back(char(cp));
                } else if (cp < 0x800) {
                    v.text.push_back(char(0xC0 | (cp >> 6)));
                    v.text.push_back(char(0x80 | (cp & 0x3F)));
                } else {
                    v.text.push_back(char(0xE0 | (cp >> 12)));
                    v.text.push_back(
                        char(0x80 | ((cp >> 6) & 0x3F)));
                    v.text.push_back(char(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) !=
                    0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.text = s_.substr(start, pos_ - start);
        v.number = std::strtod(v.text.c_str(), nullptr);
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

const JsonValue kNullValue{};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    return v != nullptr ? *v : kNullValue;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    if (type != Type::Array || index >= items.size())
        return kNullValue;
    return items[index];
}

double
JsonValue::asDouble(double fallback) const
{
    return type == Type::Number ? number : fallback;
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    if (type != Type::Number)
        return fallback;
    // Parse the raw text: doubles lose precision above 2^53 and tick
    // values are full 64-bit.
    return std::strtoull(text.c_str(), nullptr, 10);
}

std::string
JsonValue::asString(const std::string &fallback) const
{
    return type == Type::String ? text : fallback;
}

bool
JsonValue::asBool(bool fallback) const
{
    return type == Type::Bool ? boolean : fallback;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace checkin::obs
