/**
 * @file
 * Flash block allocation, state tracking, and GC victim selection.
 *
 * Free blocks are pooled per die and every write stream keeps one
 * active block per die, so the FTL can stripe sequential writes
 * across the whole array (superblock-style) instead of serializing
 * on a single die.
 */

#ifndef CHECKIN_FTL_BLOCK_MANAGER_H_
#define CHECKIN_FTL_BLOCK_MANAGER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "ftl/ftl_types.h"
#include "nand/nand_types.h"
#include "sim/types.h"

namespace checkin {

/**
 * Tracks every erase block's lifecycle (FREE -> ACTIVE -> CLOSED ->
 * FREE, or any state -> BAD on retirement) and per-block valid-slot
 * counts; implements wear-aware allocation (lowest erase count
 * first, per die) and greedy GC victim selection (fewest valid
 * slots).
 *
 * Purely functional bookkeeping: no NAND access, no timing.
 */
class BlockManager
{
  public:
    enum class State : std::uint8_t { Free, Active, Closed, Bad };

    /**
     * @param total_blocks blocks in the device.
     * @param slots_per_block sub-page slots each block holds.
     * @param die_count dies; blocks are assumed contiguous per die.
     */
    BlockManager(std::uint64_t total_blocks,
                 std::uint32_t slots_per_block,
                 std::uint32_t die_count);

    /**
     * Take the least-worn free block of @p die and make it the
     * active block of (@p stream, @p die). Any previous active block
     * there must have been closed.
     * @return the allocated block, or kInvalidAddr if the die has no
     *         free block.
     */
    Pbn allocate(Stream stream, std::uint32_t die);

    /** Active block of (@p stream, @p die); kInvalidAddr if none. */
    Pbn activeBlock(Stream stream, std::uint32_t die) const;

    /** Move the active block of (@p stream, @p die) to CLOSED. */
    void closeActive(Stream stream, std::uint32_t die);

    /** Record @p count newly valid slots in @p pbn. */
    void addValid(Pbn pbn, std::uint32_t count = 1);

    /** Record one slot of @p pbn turning invalid. */
    void invalidate(Pbn pbn);

    /** Return an erased block to its die's free pool. */
    void release(Pbn pbn, std::uint32_t erase_count);

    /**
     * Retire @p pbn after a program or erase failure: the block
     * leaves circulation permanently (never allocated, never a GC
     * victim). Works from any state — a Free block is pulled from
     * its pool, an Active block is detached from its stream slot, a
     * Closed block simply flips. Valid-slot counts are kept: the
     * caller migrates the survivors and invalidates them as it goes.
     */
    void retire(Pbn pbn, std::uint32_t erase_count);

    /** Number of retired (bad) blocks device-wide. */
    std::uint32_t badBlocks() const { return totalBad_; }

    /** Number of free blocks device-wide. */
    std::uint32_t freeBlocks() const { return totalFree_; }

    /** Number of free blocks on @p die. */
    std::uint32_t
    freeBlocksOnDie(std::uint32_t die) const
    {
        return std::uint32_t(pools_[die].size());
    }

    std::uint32_t dieCount() const
    {
        return std::uint32_t(pools_.size());
    }

    /**
     * Closed block with the fewest valid slots (greedy policy);
     * kInvalidAddr when no closed block exists.
     */
    Pbn pickGcVictim() const;

    /**
     * Power-loss rebuild: forget all state and reinitialize from the
     * surviving flash facts — per-block erase counts, whether the
     * block holds programmed pages (-> CLOSED) or is erased
     * (-> FREE), and the firmware's persistent defect list
     * (@p bad -> BAD, overriding both). Valid counts restart at
     * zero; the caller re-adds them while replaying OOB.
     */
    void resetForRebuild(const std::vector<std::uint32_t> &erase_counts,
                         const std::vector<bool> &closed,
                         const std::vector<bool> &bad);

    State state(Pbn pbn) const { return state_[pbn]; }
    std::uint32_t validCount(Pbn pbn) const { return valid_[pbn]; }

    /** Total valid slots across all blocks. */
    std::uint64_t totalValid() const { return totalValid_; }

  private:
    std::uint32_t dieOf(Pbn pbn) const
    {
        return std::uint32_t(pbn / blocksPerDie_);
    }

    std::uint32_t slotsPerBlock_;
    std::uint64_t blocksPerDie_;
    std::vector<State> state_;
    std::vector<std::uint32_t> valid_;
    // Per-die (eraseCount, pbn) ordered sets: wear-aware allocation.
    std::vector<std::set<std::pair<std::uint32_t, Pbn>>> pools_;
    // active_[stream * dieCount + die]
    std::vector<Pbn> active_;
    std::uint64_t totalValid_ = 0;
    std::uint32_t totalFree_ = 0;
    std::uint32_t totalBad_ = 0;
};

} // namespace checkin

#endif // CHECKIN_FTL_BLOCK_MANAGER_H_
