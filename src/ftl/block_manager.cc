#include "ftl/block_manager.h"

#include <cassert>
#include <limits>

namespace checkin {

BlockManager::BlockManager(std::uint64_t total_blocks,
                           std::uint32_t slots_per_block,
                           std::uint32_t die_count)
    : slotsPerBlock_(slots_per_block),
      blocksPerDie_(total_blocks / die_count),
      state_(total_blocks, State::Free),
      valid_(total_blocks, 0),
      pools_(die_count),
      active_(std::size_t(kStreamCount) * die_count, kInvalidAddr)
{
    assert(total_blocks % die_count == 0);
    for (Pbn b = 0; b < total_blocks; ++b)
        pools_[dieOf(b)].insert({0, b});
    totalFree_ = std::uint32_t(total_blocks);
}

Pbn
BlockManager::allocate(Stream stream, std::uint32_t die)
{
    auto &slot = active_[std::size_t(std::uint32_t(stream)) *
                             pools_.size() +
                         die];
    assert(slot == kInvalidAddr && "close the active block first");
    auto &pool = pools_[die];
    if (pool.empty())
        return kInvalidAddr;
    auto it = pool.begin();
    const Pbn pbn = it->second;
    pool.erase(it);
    --totalFree_;
    state_[pbn] = State::Active;
    slot = pbn;
    return pbn;
}

Pbn
BlockManager::activeBlock(Stream stream, std::uint32_t die) const
{
    return active_[std::size_t(std::uint32_t(stream)) *
                       pools_.size() +
                   die];
}

void
BlockManager::closeActive(Stream stream, std::uint32_t die)
{
    auto &slot = active_[std::size_t(std::uint32_t(stream)) *
                             pools_.size() +
                         die];
    assert(slot != kInvalidAddr);
    state_[slot] = State::Closed;
    slot = kInvalidAddr;
}

void
BlockManager::addValid(Pbn pbn, std::uint32_t count)
{
    valid_[pbn] += count;
    totalValid_ += count;
    assert(valid_[pbn] <= slotsPerBlock_);
}

void
BlockManager::invalidate(Pbn pbn)
{
    assert(valid_[pbn] > 0);
    --valid_[pbn];
    --totalValid_;
}

void
BlockManager::release(Pbn pbn, std::uint32_t erase_count)
{
    assert(state_[pbn] == State::Closed);
    assert(valid_[pbn] == 0);
    state_[pbn] = State::Free;
    pools_[dieOf(pbn)].insert({erase_count, pbn});
    ++totalFree_;
}

void
BlockManager::retire(Pbn pbn, std::uint32_t erase_count)
{
    switch (state_[pbn]) {
    case State::Bad:
        return;
    case State::Free: {
        auto &pool = pools_[dieOf(pbn)];
        const auto erased = pool.erase({erase_count, pbn});
        assert(erased == 1 && "free block missing from its pool");
        (void)erased;
        --totalFree_;
        break;
    }
    case State::Active:
        for (auto &slot : active_) {
            if (slot == pbn)
                slot = kInvalidAddr;
        }
        break;
    case State::Closed:
        break;
    }
    state_[pbn] = State::Bad;
    ++totalBad_;
}

void
BlockManager::resetForRebuild(
    const std::vector<std::uint32_t> &erase_counts,
    const std::vector<bool> &closed,
    const std::vector<bool> &bad)
{
    assert(erase_counts.size() == state_.size());
    assert(closed.size() == state_.size());
    assert(bad.size() == state_.size());
    for (auto &pool : pools_)
        pool.clear();
    std::fill(active_.begin(), active_.end(), kInvalidAddr);
    std::fill(valid_.begin(), valid_.end(), 0);
    totalValid_ = 0;
    totalFree_ = 0;
    totalBad_ = 0;
    for (Pbn b = 0; b < state_.size(); ++b) {
        if (bad[b]) {
            state_[b] = State::Bad;
            ++totalBad_;
        } else if (closed[b]) {
            state_[b] = State::Closed;
        } else {
            state_[b] = State::Free;
            pools_[dieOf(b)].insert({erase_counts[b], b});
            ++totalFree_;
        }
    }
}

Pbn
BlockManager::pickGcVictim() const
{
    Pbn best = kInvalidAddr;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (Pbn b = 0; b < state_.size(); ++b) {
        if (state_[b] != State::Closed)
            continue;
        if (valid_[b] < best_valid) {
            best_valid = valid_[b];
            best = b;
        }
    }
    return best;
}

} // namespace checkin
