/**
 * @file
 * Shared FTL-level types: I/O causes, streams, slot addressing.
 */

#ifndef CHECKIN_FTL_FTL_TYPES_H_
#define CHECKIN_FTL_FTL_TYPES_H_

#include <cstdint>

#include "sim/types.h"

namespace checkin {

/** Flat sub-page slot identifier: ppn * slotsPerPage + slotIndex. */
using SlotId = std::uint64_t;

/**
 * Why an I/O happened. Used to attribute flash operations so the
 * benches can separate checkpoint-induced (redundant) writes from
 * query/journal traffic (paper Fig 8).
 */
enum class IoCause : std::uint8_t
{
    Query,      //!< data-area access on behalf of a client query
    Journal,    //!< journal-area log write / read
    Checkpoint, //!< checkpoint copy or remap traffic
    Metadata,   //!< engine metadata (superblock, checkpoint record)
    Gc,         //!< garbage-collection migration
    MapFlush,   //!< FTL mapping-table persistence
};

/** Human-readable cause name for stats keys. */
const char *ioCauseName(IoCause cause);

/** Write streams: each keeps its own active block + open page. */
enum class Stream : std::uint8_t
{
    Data = 0,   //!< host data-area writes
    Journal,    //!< host journal-area writes
    Gc,         //!< GC migration destination
    Map,        //!< mapping-table flush pages
    kCount,
};

inline constexpr std::uint32_t kStreamCount =
    static_cast<std::uint32_t>(Stream::kCount);

} // namespace checkin

#endif // CHECKIN_FTL_FTL_TYPES_H_
