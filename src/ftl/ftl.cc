#include "ftl/ftl.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/attribution.h"
#include "sim/rng.h"

namespace checkin {

const char *
ioCauseName(IoCause cause)
{
    switch (cause) {
      case IoCause::Query: return "query";
      case IoCause::Journal: return "journal";
      case IoCause::Checkpoint: return "checkpoint";
      case IoCause::Metadata: return "metadata";
      case IoCause::Gc: return "gc";
      case IoCause::MapFlush: return "mapflush";
    }
    return "unknown";
}

namespace {

Stream
streamFor(IoCause cause)
{
    switch (cause) {
      case IoCause::Journal: return Stream::Journal;
      case IoCause::Gc: return Stream::Gc;
      case IoCause::MapFlush: return Stream::Map;
      default: return Stream::Data;
    }
}

} // namespace

Ftl::Ftl(NandFlash &nand, const FtlConfig &cfg)
    : nand_(nand),
      cfg_(cfg),
      layout_(nand.config()),
      bm_(nand.config().totalBlocks(),
          nand.config().pagesPerBlock *
              (nand.config().pageBytes / cfg.mappingUnitBytes),
          nand.config().dieCount()),
      pageSeq_(nand.config().totalPages(), 0)
{
    const NandConfig &nc = nand_.config();
    if (cfg_.mappingUnitBytes % kSectorBytes != 0 ||
        nc.pageBytes % cfg_.mappingUnitBytes != 0) {
        throw std::invalid_argument(
            "mapping unit must be a sector multiple dividing the page");
    }
    sectorsPerUnit_ =
        std::uint32_t(cfg_.mappingUnitBytes / kSectorBytes);
    slotsPerPage_ = nc.pageBytes / cfg_.mappingUnitBytes;
    logicalUnits_ = std::uint64_t(double(nc.totalBytes()) *
                                  cfg_.exportedRatio) /
                    cfg_.mappingUnitBytes;
    dataCache_.init(nc.totalPages(),
                    std::size_t(cfg_.dataCacheBytes / nc.pageBytes));
    if (cfg_.mapCacheBytes > 0) {
        const std::uint64_t seg_bytes =
            std::uint64_t(cfg_.mapEntriesPerFetch) *
            cfg_.mapEntryBytes;
        const std::uint64_t total_segs =
            divCeil(logicalUnits_, cfg_.mapEntriesPerFetch);
        const std::uint64_t cap = cfg_.mapCacheBytes / seg_bytes;
        // Capacity >= table: everything resident, no miss modeling.
        mapSegCapacity_ =
            cap >= total_segs ? 0 : std::size_t(cap);
        mapCache_.init(total_segs, mapSegCapacity_);
    }
    map_.assign(logicalUnits_, kInvalidAddr);
    badBlock_.assign(nc.totalBlocks(), 0);
    open_.assign(std::size_t(kStreamCount) * nc.dieCount(),
                 OpenPage{});
    const std::uint64_t total_slots = nc.totalPages() * slotsPerPage_;
    slotInfo_.assign(total_slots, SlotInfo{});
    sectors_.assign(total_slots * sectorsPerUnit_, SectorData{});
    slotOob_.assign(total_slots, OobEntry{});
    // Rare >2-reference CoW chains hash into refOverflow_; reserve a
    // geometry-derived bucket count so warmup never rehashes.
    refOverflow_.reserve(
        std::size_t(std::max<std::uint64_t>(64, total_slots / 1024)));

    // Intern the hot-path counters once; per-event updates are then
    // plain array indexing (no per-write string construction).
    sSlotWrites_ = stats_.intern("ftl.slotWrites");
    sPageReads_ = stats_.intern("ftl.pageReads");
    for (std::size_t c = 0; c < kIoCauseCount; ++c) {
        const char *cause = ioCauseName(static_cast<IoCause>(c));
        sSlotWritesBy_[c] =
            stats_.intern(std::string("ftl.slotWrites.") + cause);
        sPageReadsBy_[c] =
            stats_.intern(std::string("ftl.pageReads.") + cause);
    }
    sCacheHits_ = stats_.intern("ftl.cacheHits");
    sMapCacheHits_ = stats_.intern("ftl.mapCacheHits");
    sMapCacheMisses_ = stats_.intern("ftl.mapCacheMisses");
    sHostReadSectors_ = stats_.intern("ftl.hostReadSectors");
    sHostWriteSectors_ = stats_.intern("ftl.hostWriteSectors");
    sRmwReads_ = stats_.intern("ftl.rmwReads");
    sRemaps_ = stats_.intern("ftl.remaps");
    sInvalidatedSlots_ = stats_.intern("ftl.invalidatedSlots");
    sTrimmedUnits_ = stats_.intern("ftl.trimmedUnits");
    sGcPageReads_ = stats_.intern("gc.pageReads");
    sGcMigratedSlots_ = stats_.intern("gc.migratedSlots");

    obs::nameLane(obs::Cat::Ftl, kFtlLane, "ftl");
    for (std::uint32_t d = 0; d < bm_.dieCount(); ++d) {
        obs::nameLane(obs::Cat::Ftl, kFtlLane + 1 + d,
                      "ftl-die" + std::to_string(d));
    }
}

SlotId
Ftl::slotOf(Ppn ppn, std::uint32_t idx) const
{
    return ppn * slotsPerPage_ + idx;
}

Pbn
Ftl::blockOfSlot(SlotId slot) const
{
    return pageOfSlot(slot) / nand_.config().pagesPerBlock;
}

Ppn
Ftl::pageOfSlot(SlotId slot) const
{
    return slot / slotsPerPage_;
}

Tick
Ftl::mapAccess(Lpn lpn, Tick earliest)
{
    if (mapSegCapacity_ == 0)
        return earliest;
    const std::uint64_t seg = lpn / cfg_.mapEntriesPerFetch;
    if (mapCache_.touch(seg)) {
        stats_.add(sMapCacheHits_);
        return earliest;
    }
    stats_.add(sMapCacheMisses_);
    mapCache_.insert(seg);
    // Fetch the segment's translation page from flash; the die is
    // determined by where the map stream last persisted it — model
    // as a hash spread over the array.
    const auto die = std::uint32_t(mix64(seg) %
                                   nand_.config().dieCount());
    // The aux read's NAND occupancy is map-fetch time from the op's
    // point of view.
    obs::AttrStageScope attr_map(obs::Stage::FtlMap);
    return nand_.chargeAuxRead(die, earliest);
}

Tick
Ftl::mapAccessRange(Lpn first, Lpn last, Tick earliest)
{
    Tick done = earliest;
    for (Lpn u = first; u <= last; ++u)
        done = std::max(done, mapAccess(u, earliest));
    return done;
}

bool
Ftl::isCached(Ppn ppn) const
{
    return dataCache_.contains(ppn);
}

void
Ftl::cacheInsert(Ppn ppn)
{
    dataCache_.insert(ppn);
}

void
Ftl::cacheEvict(Ppn ppn)
{
    dataCache_.erase(ppn);
}

bool
Ftl::isBuffered(SlotId slot) const
{
    const Ppn page = pageOfSlot(slot);
    for (const OpenPage &op : open_) {
        if (op.ppn == page)
            return true;
    }
    return false;
}

void
Ftl::programOpenPage(Stream stream, std::uint32_t die, Tick earliest)
{
    OpenPage &op = open_[std::size_t(std::uint32_t(stream)) *
                             bm_.dieCount() +
                         die];
    assert(op.ppn != kInvalidAddr);
    const Ppn ppn = op.ppn;

    PageContent content;
    content.slotTokens.reserve(slotsPerPage_ * sectorsPerUnit_ *
                               kChunksPerSector);
    content.oob.reserve(slotsPerPage_);
    for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
        const SlotId slot = slotOf(ppn, s);
        content.oob.push_back(slotOob_[slot]);
        for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k) {
            for (std::uint64_t c :
                 sectors_[slot * sectorsPerUnit_ + k].chunks) {
                content.slotTokens.push_back(c);
            }
        }
    }
    pageSeq_[ppn] = nextProgramSeq_++;
    content.seq = pageSeq_[ppn];
    const NandResult done =
        nand_.program(ppn, std::move(content), earliest);
    // Request-to-completion view of sealing the open page (the die
    // lanes in Cat::Nand show the physical occupancy).
    obs::span(obs::Cat::Ftl, kFtlLane + 1 + die, "ftl.program",
              earliest, done.tick, {{"ppn", ppn}});
    if (onProgram_)
        onProgram_(done.tick);
    op.ppn = kInvalidAddr;
    op.nextSlot = 0;

    if (!done.ok()) {
        // tPROG failure. The page's data still sits in the
        // SPOR-protected buffer (the shadows), so nothing is lost;
        // the page itself is consumed and unreadable, and the whole
        // block leaves circulation.
        pageSeq_[ppn] = 0;
        stats_.add("ftl.programFails");
        handleProgramFail(ppn, done.tick);
        return;
    }
    cacheInsert(ppn);

    const NandConfig &nc = nand_.config();
    if (ppn % nc.pagesPerBlock == nc.pagesPerBlock - 1)
        bm_.closeActive(stream, die);
}

void
Ftl::handleProgramFail(Ppn failed_ppn, Tick now)
{
    const NandConfig &nc = nand_.config();
    const Pbn bad = failed_ppn / nc.pagesPerBlock;
    // Rescue migration is reclaim work on the op's critical path.
    obs::AttrStageScope attr_gc(obs::Stage::GcStall);
    badBlock_[bad] = 1;
    // Retire before migrating: the block must be out of the free
    // pool and detached from its stream before allocateSlot runs, or
    // migration could land new data back in it.
    bm_.retire(bad, nand_.eraseCount(bad));
    stats_.add("ftl.retiredBlocks");
    obs::instant(obs::Cat::Ftl, kFtlLane, "ftl.badBlock", now,
                 {{"pbn", bad}, {"ppn", failed_ppn}});

    // Rescue every live slot of the retired block. The sector/OOB
    // shadows mirror what was (or was about to be) programmed, so
    // the rewrite sources from the SPOR-protected buffer; pages
    // other than the failed one charge a NAND read like GC
    // migration. A nested program failure during migration retires
    // another block and terminates the same way.
    const Ppn first = layout_.firstPpnOfBlock(bad);
    Tick last_read = now;
    for (std::uint32_t p = 0; p < nc.pagesPerBlock; ++p) {
        const Ppn ppn = first + p;
        bool any_valid = false;
        for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
            if (slotInfo_[slotOf(ppn, s)].nrefs > 0) {
                any_valid = true;
                break;
            }
        }
        if (!any_valid)
            continue;
        if (ppn != failed_ppn && nand_.isProgrammed(ppn) &&
            !isCached(ppn)) {
            const NandResult r = nand_.read(ppn, now);
            last_read = std::max(last_read, r.tick);
            if (!r.ok())
                stats_.add("ftl.internalReadErrors");
            stats_.add(sGcPageReads_);
        }
        for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
            const SlotId old_slot = slotOf(ppn, s);
            if (slotInfo_[old_slot].nrefs == 0)
                continue;
            std::vector<SectorData> payload(sectorsPerUnit_);
            for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
                payload[k] = sectors_[old_slot * sectorsPerUnit_ + k];
            const OobEntry oob = slotOob_[old_slot];
            std::vector<Lpn> refs;
            refs.reserve(slotInfo_[old_slot].nrefs);
            forEachRef(old_slot,
                       [&refs](Lpn lpn) { refs.push_back(lpn); });

            const SlotId ns = allocateSlot(Stream::Gc, last_read);
            for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
                sectors_[ns * sectorsPerUnit_ + k] = payload[k];
            slotOob_[ns] = oob;
            for (Lpn lpn : refs) {
                map_[lpn] = ns;
                addRef(ns, lpn);
                touchMapEntry(last_read);
            }
            slotInfo_[old_slot] = SlotInfo{};
            refOverflow_.erase(old_slot);
            bm_.invalidate(bad);
            stats_.add("ftl.badBlockMigratedSlots");
            stats_.add(sSlotWrites_);
            stats_.add(sSlotWritesBy_[std::size_t(IoCause::Gc)]);
        }
    }
    assert(bm_.validCount(bad) == 0);
    for (std::uint32_t p = 0; p < nc.pagesPerBlock; ++p)
        cacheEvict(first + p);
}

SlotId
Ftl::allocateSlot(Stream stream, Tick earliest)
{
    const std::uint32_t dies = bm_.dieCount();
    // Round-robin starting die (superblock-style write striping);
    // fall over to the next die when one runs out of blocks.
    const std::uint32_t start = rot_[std::uint32_t(stream)]++ % dies;
    for (std::uint32_t probe = 0; probe < dies; ++probe) {
        const std::uint32_t die = (start + probe) % dies;
        OpenPage &op =
            open_[std::size_t(std::uint32_t(stream)) * dies + die];
        if (op.ppn != kInvalidAddr && op.nextSlot == slotsPerPage_)
            programOpenPage(stream, die, earliest); // resets op
        if (op.ppn == kInvalidAddr) {
            Pbn active = bm_.activeBlock(stream, die);
            if (active == kInvalidAddr) {
                maybeGc(earliest);
                active = bm_.allocate(stream, die);
                if (active == kInvalidAddr)
                    continue; // this die is out of free blocks
            }
            op.ppn = layout_.firstPpnOfBlock(active) +
                     nand_.nextProgramPage(active);
            op.nextSlot = 0;
        }
        const SlotId slot = slotOf(op.ppn, op.nextSlot);
        ++op.nextSlot;
        // Fresh slot: wipe stale shadow left from before the erase.
        slotInfo_[slot] = SlotInfo{};
        refOverflow_.erase(slot);
        slotOob_[slot] = OobEntry{};
        for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
            sectors_[slot * sectorsPerUnit_ + k] = SectorData{};
        return slot;
    }
    throw std::runtime_error("FTL: out of flash blocks");
}

void
Ftl::addRef(SlotId slot, Lpn lpn)
{
    SlotInfo &info = slotInfo_[slot];
    if (info.nrefs < kInlineRefs)
        info.refs[info.nrefs] = lpn;
    else
        refOverflow_[slot].push_back(lpn);
    ++info.nrefs;
    if (info.nrefs == 1) {
        bm_.addValid(blockOfSlot(slot));
        info.everValid = true;
    }
}

void
Ftl::deref(SlotId slot, Lpn lpn)
{
    SlotInfo &info = slotInfo_[slot];
    assert(info.nrefs > 0);
    const std::uint16_t inline_n =
        std::min<std::uint16_t>(info.nrefs, kInlineRefs);
    std::uint16_t i = 0;
    while (i < inline_n && info.refs[i] != lpn)
        ++i;
    if (i < inline_n) {
        // Backfill the inline hole, preferring an overflow entry.
        if (info.nrefs > kInlineRefs) {
            auto it = refOverflow_.find(slot);
            info.refs[i] = it->second.back();
            it->second.pop_back();
            if (it->second.empty())
                refOverflow_.erase(it);
        } else {
            info.refs[i] = info.refs[inline_n - 1];
            info.refs[inline_n - 1] = kInvalidAddr;
        }
    } else {
        auto it = refOverflow_.find(slot);
        assert(it != refOverflow_.end() &&
               "deref of non-referencing LPN");
        auto &v = it->second;
        auto pos = std::find(v.begin(), v.end(), lpn);
        assert(pos != v.end() && "deref of non-referencing LPN");
        *pos = v.back();
        v.pop_back();
        if (v.empty())
            refOverflow_.erase(it);
    }
    --info.nrefs;
    if (info.nrefs == 0) {
        bm_.invalidate(blockOfSlot(slot));
        stats_.add(sInvalidatedSlots_);
    }
}

void
Ftl::unmap(Lpn lpn)
{
    if (map_[lpn] == kInvalidAddr)
        return;
    deref(map_[lpn], lpn);
    map_[lpn] = kInvalidAddr;
}

void
Ftl::mapLpn(Lpn lpn, SlotId slot)
{
    unmap(lpn);
    map_[lpn] = slot;
    addRef(slot, lpn);
}

void
Ftl::touchMapEntry(Tick earliest)
{
    dirtyMapBytes_ += cfg_.mapEntryBytes;
    if (dirtyMapBytes_ < cfg_.mapFlushThresholdBytes)
        return;
    if (inMapFlush_)
        return;
    inMapFlush_ = true;
    // Persist one table page: dead-on-arrival slots in the map stream
    // (superseded table pages are garbage immediately).
    dirtyMapBytes_ = 0;
    for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
        allocateSlot(Stream::Map, earliest);
        stats_.add(sSlotWrites_);
        stats_.add(
            sSlotWritesBy_[std::size_t(IoCause::MapFlush)]);
    }
    stats_.add("ftl.mapFlushes");
    obs::instant(obs::Cat::Ftl, kFtlLane, "ftl.mapFlush", earliest,
                 {{"slots", slotsPerPage_}});
    inMapFlush_ = false;
}

Tick
Ftl::readSlotPages(const std::vector<SlotId> &slots, IoCause cause,
                   Tick earliest)
{
    Tick done = earliest;
    std::vector<Ppn> pages;
    pages.reserve(slots.size());
    for (SlotId s : slots) {
        if (isBuffered(s))
            continue;
        pages.push_back(pageOfSlot(s));
    }
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    for (Ppn p : pages) {
        if (isCached(p)) {
            cacheInsert(p); // LRU touch
            stats_.add(sCacheHits_);
            continue;
        }
        const NandResult r = nand_.read(p, earliest);
        done = std::max(done, r.tick);
        if (r.ok()) {
            cacheInsert(p);
        } else {
            // Not cached on purpose: a front-end retry must re-read
            // the NAND (and may then succeed), not hit a cache
            // entry that was never filled.
            ++pendingReadErrors_;
            stats_.add("ftl.uncorrectableReads");
        }
        stats_.add(sPageReadsBy_[std::size_t(cause)]);
        stats_.add(sPageReads_);
    }
    return done;
}

Tick
Ftl::readSectors(Lba lba, std::uint32_t nsect, IoCause cause,
                 Tick earliest)
{
    assert(lba + nsect <= logicalSectors());
    stats_.add(sHostReadSectors_, nsect);
    std::vector<SlotId> slots;
    const Lpn first = lba / sectorsPerUnit_;
    const Lpn last = (lba + nsect - 1) / sectorsPerUnit_;
    earliest = mapAccessRange(first, last, earliest);
    for (Lpn u = first; u <= last; ++u) {
        if (map_[u] != kInvalidAddr)
            slots.push_back(map_[u]);
    }
    return readSlotPages(slots, cause, earliest);
}

Tick
Ftl::writeSectors(Lba lba, std::uint32_t nsect, const SectorData *data,
                  IoCause cause, Tick earliest, std::uint64_t version,
                  const OobEntry *unit_oob)
{
    assert(nsect > 0);
    assert(lba + nsect <= logicalSectors());
    stats_.add(sHostWriteSectors_, nsect);
    const Stream stream = streamFor(cause);
    const Lpn first = lba / sectorsPerUnit_;
    const Lpn last = (lba + nsect - 1) / sectorsPerUnit_;
    earliest = mapAccessRange(first, last, earliest);
    Tick ack = earliest;
    for (Lpn u = first; u <= last; ++u) {
        const Lba unit_start = u * sectorsPerUnit_;
        const std::uint32_t s0 = std::uint32_t(
            std::max<Lba>(lba, unit_start) - unit_start);
        const std::uint32_t s1 = std::uint32_t(
            std::min<Lba>(lba + nsect, unit_start + sectorsPerUnit_) -
            unit_start);
        const bool partial = (s1 - s0) != sectorsPerUnit_;

        // Read-modify-write: fetch the rest of the unit first.
        std::vector<SectorData> merged(sectorsPerUnit_);
        const SlotId old_slot = map_[u];
        if (partial && old_slot != kInvalidAddr) {
            ack = std::max(ack, readSlotPages({old_slot}, cause,
                                              earliest));
            stats_.add(sRmwReads_);
            for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
                merged[k] = sectors_[old_slot * sectorsPerUnit_ + k];
        }
        for (std::uint32_t k = s0; k < s1; ++k)
            merged[k] = data[(unit_start + k) - lba];

        const SlotId slot = allocateSlot(stream, earliest);
        for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
            sectors_[slot * sectorsPerUnit_ + k] = merged[k];
        if (unit_oob != nullptr) {
            slotOob_[slot] = unit_oob[u - first];
            slotOob_[slot].lpn = u;
        } else {
            slotOob_[slot] = OobEntry{u, version, kInvalidAddr};
        }
        slotOob_[slot].writeSeq = nextWriteSeq_++;
        mapLpn(u, slot);
        touchMapEntry(earliest);
        stats_.add(sSlotWrites_);
        stats_.add(sSlotWritesBy_[std::size_t(cause)]);
    }
    return ack;
}

void
Ftl::peekSectors(Lba lba, std::uint32_t nsect, SectorData *out) const
{
    assert(lba + nsect <= logicalSectors());
    for (std::uint32_t i = 0; i < nsect; ++i) {
        const Lba cur = lba + i;
        const Lpn u = cur / sectorsPerUnit_;
        const SlotId slot = map_[u];
        if (slot == kInvalidAddr) {
            out[i] = SectorData{};
        } else {
            out[i] = sectors_[slot * sectorsPerUnit_ +
                              cur % sectorsPerUnit_];
        }
    }
}

void
Ftl::trimSectors(Lba lba, std::uint64_t nsect)
{
    const Lpn first = divCeil(lba, sectorsPerUnit_);
    const Lpn last_excl = (lba + nsect) / sectorsPerUnit_;
    for (Lpn u = first; u < last_excl; ++u) {
        if (map_[u] == kInvalidAddr)
            continue;
        unmap(u);
        touchMapEntry(0);
        stats_.add(sTrimmedUnits_);
    }
}

bool
Ftl::isUnitAligned(Lba lba, std::uint32_t nsect) const
{
    return lba % sectorsPerUnit_ == 0 && nsect % sectorsPerUnit_ == 0;
}

bool
Ftl::isMapped(Lpn lpn) const
{
    return lpn < map_.size() && map_[lpn] != kInvalidAddr;
}

Tick
Ftl::remapUnit(Lpn src, Lpn dst, Tick earliest)
{
    assert(isMapped(src));
    earliest = std::max(mapAccess(src, earliest),
                        mapAccess(dst, earliest));
    const SlotId slot = map_[src];
    if (map_[dst] == slot)
        return earliest;
    unmap(dst);
    map_[dst] = slot;
    addRef(slot, dst);
    touchMapEntry(earliest);
    stats_.add(sRemaps_);
    obs::instant(obs::Cat::Ftl, kFtlLane, "ftl.remap", earliest,
                 {{"src", src}, {"dst", dst}, {"slot", slot}});
    return earliest;
}

Tick
Ftl::copySectors(Lba src, Lba dst, std::uint32_t nsect, IoCause cause,
                 Tick earliest)
{
    std::vector<SectorData> buf(nsect);
    peekSectors(src, nsect, buf.data());

    std::vector<SlotId> slots;
    const Lpn first = src / sectorsPerUnit_;
    const Lpn last = (src + nsect - 1) / sectorsPerUnit_;
    for (Lpn u = first; u <= last; ++u) {
        if (map_[u] != kInvalidAddr)
            slots.push_back(map_[u]);
    }
    const Tick fetched = readSlotPages(slots, cause, earliest);
    return writeSectors(dst, nsect, buf.data(), cause, fetched);
}

void
Ftl::maybeGc(Tick earliest)
{
    if (inGc_ || bm_.freeBlocks() >= cfg_.gcLowWaterBlocks)
        return;
    inGc_ = true;
    std::uint32_t guard = 0;
    const auto limit = std::uint32_t(nand_.config().totalBlocks());
    while (bm_.freeBlocks() < cfg_.gcHighWaterBlocks &&
           guard++ < limit) {
        if (!gcOnce(earliest, false))
            break;
    }
    inGc_ = false;
}

std::uint32_t
Ftl::runBackgroundGc(Tick now)
{
    if (inGc_)
        return 0;
    std::uint32_t reclaimed = 0;
    inGc_ = true;
    while (bm_.freeBlocks() < cfg_.gcBackgroundBlocks) {
        if (!gcOnce(now, true))
            break;
        ++reclaimed;
    }
    inGc_ = false;
    // Idle time is also when static wear leveling runs.
    wearLevelOnce(now);
    return reclaimed;
}

bool
Ftl::gcOnce(Tick earliest, bool background)
{
    const Pbn victim = bm_.pickGcVictim();
    if (victim == kInvalidAddr)
        return false;
    const std::uint32_t slots_per_block =
        nand_.config().pagesPerBlock * slotsPerPage_;
    // Refuse to "collect" a fully valid block: it frees nothing.
    if (bm_.validCount(victim) >= slots_per_block)
        return false;

    stats_.add("gc.invocations");
    stats_.add(background ? "gc.background" : "gc.inline");
    // Inline GC inside a host command is a stall on that op's path;
    // background GC runs with no active command and marks nothing.
    obs::AttrStageScope attr_gc(obs::Stage::GcStall);
    obs::instant(obs::Cat::Ftl, kFtlLane, "gc.victim", earliest,
                 {{"victim", victim},
                  {"valid", bm_.validCount(victim)},
                  {"background", background ? 1u : 0u}});
    reclaimBlock(victim, earliest);
    return true;
}

void
Ftl::reclaimBlock(Pbn victim, Tick earliest)
{
    const Ppn first = layout_.firstPpnOfBlock(victim);
    Tick last_read = earliest;
    for (std::uint32_t p = 0; p < nand_.config().pagesPerBlock; ++p) {
        const Ppn ppn = first + p;
        if (!nand_.isProgrammed(ppn))
            continue;
        bool any_valid = false;
        for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
            if (slotInfo_[slotOf(ppn, s)].nrefs > 0) {
                any_valid = true;
                break;
            }
        }
        if (!any_valid)
            continue;
        if (!isCached(ppn)) {
            // Device-internal read: an uncorrectable result is
            // recovered from the shadows (counted, not surfaced).
            const NandResult r = nand_.read(ppn, earliest);
            last_read = std::max(last_read, r.tick);
            if (!r.ok())
                stats_.add("ftl.internalReadErrors");
            stats_.add(sGcPageReads_);
        }
        for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
            const SlotId old_slot = slotOf(ppn, s);
            if (slotInfo_[old_slot].nrefs == 0)
                continue;
            // Snapshot payload + references before allocateSlot can
            // wipe shadows.
            std::vector<SectorData> payload(sectorsPerUnit_);
            for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
                payload[k] = sectors_[old_slot * sectorsPerUnit_ + k];
            const OobEntry oob = slotOob_[old_slot];
            std::vector<Lpn> refs;
            refs.reserve(slotInfo_[old_slot].nrefs);
            forEachRef(old_slot,
                       [&refs](Lpn lpn) { refs.push_back(lpn); });

            const SlotId ns = allocateSlot(Stream::Gc, last_read);
            for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
                sectors_[ns * sectorsPerUnit_ + k] = payload[k];
            slotOob_[ns] = oob;
            for (Lpn lpn : refs) {
                map_[lpn] = ns;
                addRef(ns, lpn);
                touchMapEntry(last_read);
            }
            // Retire the old copy.
            slotInfo_[old_slot] = SlotInfo{};
            refOverflow_.erase(old_slot);
            bm_.invalidate(victim);
            stats_.add(sGcMigratedSlots_);
            stats_.add(sSlotWrites_);
            stats_.add(sSlotWritesBy_[std::size_t(IoCause::Gc)]);
        }
    }
    assert(bm_.validCount(victim) == 0);
    // Valid data now sits in the SPOR-protected GC open page, so the
    // erase may proceed as soon as the reads are done.
    const NandResult erased = nand_.eraseBlock(victim, last_read);
    obs::span(obs::Cat::Ftl, kFtlLane, "ftl.gc", earliest,
              erased.tick, {{"victim", victim}});
    for (std::uint32_t p = 0; p < nand_.config().pagesPerBlock; ++p)
        cacheEvict(first + p);
    stats_.add("gc.erases");
    if (erased.ok()) {
        bm_.release(victim, nand_.eraseCount(victim));
    } else {
        // tBERS failure: the stale contents stay in the cells and
        // the block leaves circulation. Every live slot was already
        // migrated, so no data consequence — the stale copies are
        // superseded by the migrated ones (newer program sequence)
        // should a power-loss rebuild ever scan them.
        badBlock_[victim] = 1;
        bm_.retire(victim, nand_.eraseCount(victim));
        stats_.add("ftl.retiredBlocks");
        obs::instant(obs::Cat::Ftl, kFtlLane, "ftl.badBlock",
                     erased.tick, {{"pbn", victim}});
    }
}

bool
Ftl::wearLevelOnce(Tick now)
{
    if (cfg_.wearLevelThreshold == 0 || inGc_)
        return false;
    // Find the coldest closed block and the overall wear spread.
    Pbn coldest = kInvalidAddr;
    std::uint32_t min_erase = ~std::uint32_t{0};
    const std::uint64_t total = nand_.config().totalBlocks();
    for (Pbn b = 0; b < total; ++b) {
        if (bm_.state(b) != BlockManager::State::Closed)
            continue;
        const std::uint32_t ec = nand_.eraseCount(b);
        if (ec < min_erase) {
            min_erase = ec;
            coldest = b;
        }
    }
    if (coldest == kInvalidAddr)
        return false;
    if (nand_.maxEraseCount() - min_erase < cfg_.wearLevelThreshold)
        return false;
    // Relocating the cold data frees the least-worn block back into
    // the (wear-ordered) pool, where it absorbs future writes.
    inGc_ = true;
    stats_.add("wl.migrations");
    reclaimBlock(coldest, now);
    inGc_ = false;
    return true;
}

void
Ftl::flushOpenPages(Tick now)
{
    const std::uint32_t dies = bm_.dieCount();
    for (std::uint32_t s = 0; s < kStreamCount; ++s) {
        for (std::uint32_t d = 0; d < dies; ++d) {
            if (open_[std::size_t(s) * dies + d].ppn != kInvalidAddr)
                programOpenPage(Stream(s), d, now);
        }
    }
}

Ftl::RebuildReport
Ftl::rebuildFromPowerLoss()
{
    RebuildReport report;
    const NandConfig &nc = nand_.config();

    // 1. All RAM state is gone. Unprogrammed open pages are lost.
    for (OpenPage &op : open_)
        op = OpenPage{};
    std::fill(map_.begin(), map_.end(), kInvalidAddr);
    slotInfo_.assign(slotInfo_.size(), SlotInfo{});
    refOverflow_.clear();
    dataCache_.clear();
    dirtyMapBytes_ = 0;
    // Suppress map-flush writes while replaying OOB.
    inMapFlush_ = true;

    // 2. Block states from the surviving flash facts, plus the
    //    firmware's persistent defect list (bad blocks stay bad).
    std::vector<std::uint32_t> erase_counts(nc.totalBlocks());
    std::vector<bool> closed(nc.totalBlocks());
    std::vector<bool> bad(nc.totalBlocks());
    for (Pbn b = 0; b < nc.totalBlocks(); ++b) {
        erase_counts[b] = nand_.eraseCount(b);
        closed[b] = nand_.nextProgramPage(b) > 0;
        bad[b] = badBlock_[b] != 0;
    }
    bm_.resetForRebuild(erase_counts, closed, bad);

    // 3. Restore the sector/OOB shadows from NAND and collect every
    //    readable slot with its replay rank: host-write order first
    //    (program order lies across the power cut — the capacitor
    //    flush seals per-die open pages in die order, not write
    //    order), program order second so that after an erase failure
    //    the migrated copy of a write beats its stale original.
    struct Replay
    {
        std::uint64_t writeSeq;
        std::uint64_t pageSeq;
        SlotId slot;

        bool
        operator<(const Replay &o) const
        {
            if (writeSeq != o.writeSeq)
                return writeSeq < o.writeSeq;
            if (pageSeq != o.pageSeq)
                return pageSeq < o.pageSeq;
            return slot < o.slot;
        }
    };
    std::vector<Replay> ordered;
    for (Ppn p = 0; p < nc.totalPages(); ++p) {
        if (!nand_.isProgrammed(p)) {
            for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
                const SlotId slot = slotOf(p, s);
                slotOob_[slot] = OobEntry{};
                for (std::uint32_t k = 0; k < sectorsPerUnit_; ++k)
                    sectors_[slot * sectorsPerUnit_ + k] =
                        SectorData{};
            }
            pageSeq_[p] = 0;
            continue;
        }
        const PageContent &content = nand_.peek(p);
        // A page whose program failed is consumed but holds nothing
        // readable (empty tokens/OOB); its shadows reset like an
        // unprogrammed page and it contributes no mappings.
        const bool readable =
            content.slotTokens.size() >=
            std::size_t(slotsPerPage_) * sectorsPerUnit_ *
                kChunksPerSector;
        for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
            const SlotId slot = slotOf(p, s);
            slotOob_[slot] = s < content.oob.size()
                                 ? content.oob[s]
                                 : OobEntry{};
            for (std::uint32_t k = 0;
                 k < sectorsPerUnit_ * kChunksPerSector; ++k) {
                sectors_[slot * sectorsPerUnit_ +
                         k / kChunksPerSector]
                    .chunks[k % kChunksPerSector] =
                    readable
                        ? content.slotTokens[(s * sectorsPerUnit_ *
                                              kChunksPerSector) +
                                             k]
                        : 0;
            }
        }
        pageSeq_[p] = content.seq;
        if (readable) {
            for (std::uint32_t s = 0; s < slotsPerPage_; ++s) {
                const SlotId slot = slotOf(p, s);
                if (slotOob_[slot].lpn != kInvalidAddr) {
                    ordered.push_back(Replay{
                        slotOob_[slot].writeSeq, content.seq, slot});
                }
            }
        }
        nextProgramSeq_ =
            std::max(nextProgramSeq_, content.seq + 1);
    }
    std::sort(ordered.begin(), ordered.end());

    // 4. Replay write-origin mappings in host-write order (newest
    //    version of an LPN wins) and collect checkpoint-target
    //    candidates from journal-slot annotations.
    struct Candidate
    {
        std::uint64_t version = 0;
        SlotId slot = kInvalidAddr;
    };
    std::unordered_map<Lpn, Candidate> targets;
    for (const Replay &r : ordered) {
        const OobEntry &oob = slotOob_[r.slot];
        mapLpn(oob.lpn, r.slot);
        ++report.slotsRecovered;
        nextWriteSeq_ = std::max(nextWriteSeq_, oob.writeSeq + 1);
        if (oob.targetLpn != kInvalidAddr &&
            oob.targetLpn != oob.lpn) {
            Candidate &c = targets[oob.targetLpn];
            if (oob.version >= c.version) {
                c.version = oob.version;
                c.slot = r.slot;
            }
        }
    }

    // 5. Re-apply checkpoint remaps: a journal slot annotated with a
    //    target beats whatever the data area holds if it is newer.
    //    (A slot superseded at its *origin* LPN can still carry the
    //    newest copy of its target, so zero-reference slots are
    //    revived here.)
    for (const auto &[target, cand] : targets) {
        if (cand.slot == kInvalidAddr)
            continue;
        const SlotId current = map_[target];
        const std::uint64_t current_version =
            current == kInvalidAddr ? 0 : slotOob_[current].version;
        if (cand.version < current_version)
            continue;
        unmap(target);
        map_[target] = cand.slot;
        addRef(cand.slot, target);
        ++report.remapsRecovered;
    }

    inMapFlush_ = false;
    stats_.add("ftl.powerLossRebuilds");
    stats_.add("ftl.rebuiltSlots", report.slotsRecovered);
    stats_.add("ftl.rebuiltRemaps", report.remapsRecovered);
    return report;
}

void
Ftl::checkInvariants() const
{
    auto fail = [](const std::string &what) {
        throw std::logic_error("FTL invariant violated: " + what);
    };
    // Forward map -> slot references.
    for (Lpn lpn = 0; lpn < map_.size(); ++lpn) {
        const SlotId slot = map_[lpn];
        if (slot == kInvalidAddr)
            continue;
        bool listed = false;
        forEachRef(slot,
                   [&](Lpn ref) { listed |= ref == lpn; });
        if (!listed) {
            fail("LPN " + std::to_string(lpn) +
                 " maps to a slot that does not reference it");
        }
    }
    // Slot references -> forward map, and per-block valid counts.
    std::vector<std::uint32_t> live(
        nand_.config().totalBlocks(), 0);
    std::uint64_t total_live = 0;
    for (SlotId slot = 0; slot < slotInfo_.size(); ++slot) {
        const SlotInfo &info = slotInfo_[slot];
        if (info.nrefs == 0)
            continue;
        std::uint16_t counted = 0;
        forEachRef(slot, [&](Lpn lpn) {
            ++counted;
            if (lpn >= map_.size() || map_[lpn] != slot) {
                fail("slot " + std::to_string(slot) +
                     " references LPN " + std::to_string(lpn) +
                     " which does not map back");
            }
        });
        if (counted != info.nrefs)
            fail("slot " + std::to_string(slot) +
                 " reference count mismatch");
        ++live[blockOfSlot(slot)];
        ++total_live;
    }
    for (Pbn b = 0; b < live.size(); ++b) {
        if (bm_.validCount(b) != live[b]) {
            fail("block " + std::to_string(b) + " valid count " +
                 std::to_string(bm_.validCount(b)) + " != live " +
                 std::to_string(live[b]));
        }
        if (bm_.state(b) == BlockManager::State::Free && live[b] != 0)
            fail("free block " + std::to_string(b) +
                 " has live slots");
    }
    if (bm_.totalValid() != total_live)
        fail("total valid mismatch");
}

std::vector<std::pair<Lpn, SlotId>>
Ftl::scanOobMappings() const
{
    std::vector<std::pair<std::uint64_t, Ppn>> ordered;
    for (Ppn p = 0; p < pageSeq_.size(); ++p) {
        if (pageSeq_[p] != 0 && nand_.isProgrammed(p))
            ordered.push_back({pageSeq_[p], p});
    }
    std::sort(ordered.begin(), ordered.end());
    std::unordered_map<Lpn, SlotId> rebuilt;
    for (const auto &[seq, ppn] : ordered) {
        const PageContent &content = nand_.peek(ppn);
        for (std::uint32_t s = 0;
             s < content.oob.size() && s < slotsPerPage_; ++s) {
            const OobEntry &e = content.oob[s];
            if (e.lpn == kInvalidAddr)
                continue;
            rebuilt[e.lpn] = slotOf(ppn, s);
        }
    }
    std::vector<std::pair<Lpn, SlotId>> out(rebuilt.begin(),
                                            rebuilt.end());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace checkin
