/**
 * @file
 * Index-based intrusive LRU over a dense key universe.
 *
 * The FTL's hot caches (DRAM data cache keyed by PPN, map cache keyed
 * by translation segment) have keys that are small dense integers
 * bounded by the device geometry. A node-based
 * unordered_map + std::list LRU pays a hash lookup, pointer chasing,
 * and a list-node allocation per touch; this structure instead keeps
 * one flat vector of {prev, next} links indexed directly by the key,
 * so every operation is O(1) array arithmetic with no hashing and no
 * allocation after init().
 *
 * Trade-off: memory is proportional to the universe, not the
 * residency (~9 bytes per possible key). That is the right trade for
 * geometry-bounded universes (pages, segments); it would be wrong for
 * sparse 64-bit key spaces.
 */

#ifndef CHECKIN_FTL_FLAT_LRU_H_
#define CHECKIN_FTL_FLAT_LRU_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace checkin {

/** O(1), allocation-free LRU over keys in [0, universe). */
class FlatLru
{
  public:
    FlatLru() = default;

    /**
     * Size the link table for keys in [0, @p universe) with at most
     * @p capacity resident entries. Discards any previous contents.
     * A zero capacity disables the cache (nothing is ever resident).
     */
    void
    init(std::uint64_t universe, std::size_t capacity)
    {
        assert(universe < kNil);
        nodes_.assign(universe, Node{});
        capacity_ = capacity;
        head_ = kNil;
        tail_ = kNil;
        count_ = 0;
    }

    /** Drop every resident entry (links are kept allocated). */
    void
    clear()
    {
        std::uint32_t cur = head_;
        while (cur != kNil) {
            const std::uint32_t next = nodes_[cur].next;
            nodes_[cur] = Node{};
            cur = next;
        }
        head_ = kNil;
        tail_ = kNil;
        count_ = 0;
    }

    /** True when @p key is resident. */
    bool
    contains(std::uint64_t key) const
    {
        return nodes_[key].resident;
    }

    /**
     * Move @p key to the MRU position if resident.
     * @retval true the key was resident (and is now MRU).
     */
    bool
    touch(std::uint64_t key)
    {
        if (!nodes_[key].resident)
            return false;
        moveToFront(std::uint32_t(key));
        return true;
    }

    /**
     * Make @p key resident at the MRU position, evicting the LRU
     * entry if the cache is full. Touches instead when already
     * resident.
     * @return the evicted key, or kInvalidAddr when nothing was
     *         evicted (also when capacity is zero: nothing inserted).
     */
    std::uint64_t
    insert(std::uint64_t key)
    {
        if (capacity_ == 0)
            return kInvalidAddr;
        if (nodes_[key].resident) {
            moveToFront(std::uint32_t(key));
            return kInvalidAddr;
        }
        std::uint64_t evicted = kInvalidAddr;
        if (count_ >= capacity_) {
            evicted = tail_;
            eraseLinked(tail_);
        }
        Node &n = nodes_[key];
        n.resident = true;
        n.prev = kNil;
        n.next = head_;
        if (head_ != kNil)
            nodes_[head_].prev = std::uint32_t(key);
        head_ = std::uint32_t(key);
        if (tail_ == kNil)
            tail_ = head_;
        ++count_;
        return evicted;
    }

    /** Drop @p key if resident (e.g. invalidation by erase). */
    void
    erase(std::uint64_t key)
    {
        if (nodes_[key].resident)
            eraseLinked(std::uint32_t(key));
    }

    /** Resident entry count. */
    std::size_t size() const { return count_; }

    /** Configured capacity (0 = disabled). */
    std::size_t capacity() const { return capacity_; }

    /** LRU key (kInvalidAddr when empty); exposed for tests. */
    std::uint64_t
    lruKey() const
    {
        return tail_ == kNil ? kInvalidAddr : tail_;
    }

  private:
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    struct Node
    {
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
        bool resident = false;
    };

    void
    unlink(std::uint32_t key)
    {
        Node &n = nodes_[key];
        if (n.prev != kNil)
            nodes_[n.prev].next = n.next;
        else
            head_ = n.next;
        if (n.next != kNil)
            nodes_[n.next].prev = n.prev;
        else
            tail_ = n.prev;
    }

    void
    moveToFront(std::uint32_t key)
    {
        if (head_ == key)
            return;
        unlink(key);
        Node &n = nodes_[key];
        n.prev = kNil;
        n.next = head_;
        nodes_[head_].prev = key;
        head_ = key;
    }

    void
    eraseLinked(std::uint32_t key)
    {
        unlink(key);
        nodes_[key] = Node{};
        --count_;
    }

    std::vector<Node> nodes_;
    std::uint32_t head_ = kNil;
    std::uint32_t tail_ = kNil;
    std::size_t count_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace checkin

#endif // CHECKIN_FTL_FLAT_LRU_H_
