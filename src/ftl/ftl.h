/**
 * @file
 * Sub-page-mapping flash translation layer with CoW remapping.
 *
 * This is the device-side heart of the reproduction: a log-structured
 * FTL whose mapping unit can be smaller than the physical page, with
 * refcounted physical slots so a journal LPN and a data LPN can share
 * one slot after a checkpoint remap (paper §III-D), greedy GC, and
 * batched mapping-table persistence (SPOR-backed).
 */

#ifndef CHECKIN_FTL_FTL_H_
#define CHECKIN_FTL_FTL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ftl/block_manager.h"
#include "ftl/flat_lru.h"
#include "ftl/ftl_config.h"
#include "ftl/ftl_types.h"
#include "nand/nand_flash.h"
#include "obs/trace.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace checkin {

/** 128 B content grain; matches the paper's minimum value bucket. */
inline constexpr std::uint32_t kChunkBytes = 128;
/** Chunks per 512 B host sector. */
inline constexpr std::uint32_t kChunksPerSector = 4;

/**
 * Simulated content of one 512 B host sector — the "bytes on disk".
 *
 * The sector is modeled as four 128 B chunks, each holding an opaque
 * 64-bit token. Journal records are laid down as runs of chunk tokens
 * that *invertibly* encode (key, version, chunk index) — see
 * engine/record.h — so crash recovery can parse the journal area back
 * out of the device exactly like a real engine parses bytes. A zero
 * token is an empty chunk.
 */
struct SectorData
{
    std::array<std::uint64_t, kChunksPerSector> chunks{0, 0, 0, 0};

    bool
    operator==(const SectorData &o) const
    {
        return chunks == o.chunks;
    }
};

/** Log-structured sub-page-mapping FTL over a NandFlash array. */
class Ftl
{
  public:
    /** Observer invoked with the completion tick of every program. */
    using ProgramObserver = std::function<void(Tick)>;

    Ftl(NandFlash &nand, const FtlConfig &cfg);

    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------
    std::uint32_t mappingUnitBytes() const
    {
        return cfg_.mappingUnitBytes;
    }
    std::uint32_t sectorsPerUnit() const { return sectorsPerUnit_; }
    std::uint32_t slotsPerPage() const { return slotsPerPage_; }
    /** Logical capacity in mapping units. */
    std::uint64_t logicalUnits() const { return logicalUnits_; }
    /** Logical capacity in 512 B sectors. */
    std::uint64_t
    logicalSectors() const
    {
        return logicalUnits_ * sectorsPerUnit_;
    }

    // ------------------------------------------------------------------
    // Host data path (sector granularity; timing + function)
    // ------------------------------------------------------------------
    /**
     * Read @p nsect sectors starting at @p lba.
     * @return completion tick (max over the flash pages touched).
     */
    Tick readSectors(Lba lba, std::uint32_t nsect, IoCause cause,
                     Tick earliest);

    /**
     * Write @p nsect sectors. Sub-unit writes trigger device-side
     * read-modify-write of the containing mapping unit.
     * @param data one SectorData per sector.
     * @param version recovery version recorded in the slots' OOB.
     * @param unit_oob optional per-mapping-unit OOB annotations (one
     *        entry per unit covered, in order): a journal write uses
     *        these to record each unit's checkpoint target + version
     *        for device-level power-loss rebuild (paper §III-G).
     * @return ack tick (data in SPOR-protected buffer; programs may
     *         complete later and are reported via the observer).
     */
    Tick writeSectors(Lba lba, std::uint32_t nsect,
                      const SectorData *data, IoCause cause,
                      Tick earliest, std::uint64_t version = 0,
                      const OobEntry *unit_oob = nullptr);

    /** Functional read: copy current sector contents, no timing. */
    void peekSectors(Lba lba, std::uint32_t nsect,
                     SectorData *out) const;

    /**
     * Discard whole mapping units covered by [lba, lba+nsect).
     * Partially covered units are left mapped.
     */
    void trimSectors(Lba lba, std::uint64_t nsect);

    // ------------------------------------------------------------------
    // Checkpoint support (mapping-unit granularity)
    // ------------------------------------------------------------------
    /** True when [lba, lba+nsect) is aligned to whole mapping units. */
    bool isUnitAligned(Lba lba, std::uint32_t nsect) const;

    /** True when LPN @p lpn currently maps to a slot. */
    bool isMapped(Lpn lpn) const;

    /**
     * CoW remap: make @p dst reference the physical slot of @p src.
     * Both LPNs stay readable; the slot is freed only when both are
     * trimmed/overwritten. Pure mapping update — no flash data ops.
     * @return ack tick.
     */
    Tick remapUnit(Lpn src, Lpn dst, Tick earliest);

    /**
     * Device-internal physical copy of @p nsect sectors (used by the
     * non-remapping in-storage checkpoints and by unaligned records):
     * reads the source pages and rewrites the destination through the
     * normal (possibly RMW) write path.
     * @return ack tick.
     */
    Tick copySectors(Lba src, Lba dst, std::uint32_t nsect,
                     IoCause cause, Tick earliest);

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------
    /**
     * Run GC passes while the device is below the background
     * free-block target; meant to be called from the deallocator when
     * the device is idle. @return blocks reclaimed.
     */
    std::uint32_t runBackgroundGc(Tick now);

    std::uint32_t freeBlocks() const { return bm_.freeBlocks(); }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------
    const StatRegistry &stats() const { return stats_; }
    const BlockManager &blockManager() const { return bm_; }
    NandFlash &nand() { return nand_; }

    /**
     * Uncorrectable host-path read errors since the last call, and
     * reset the counter. The SSD front-end drains this after every
     * command: a nonzero count on a host read triggers the
     * retry/backoff loop (the page is deliberately *not* cached, so
     * a retry re-reads the NAND and may succeed).
     */
    std::uint32_t
    takeReadErrors()
    {
        const std::uint32_t n = pendingReadErrors_;
        pendingReadErrors_ = 0;
        return n;
    }

    /** Register the program-completion observer (SSD backpressure). */
    void setProgramObserver(ProgramObserver obs)
    {
        onProgram_ = std::move(obs);
    }

    /**
     * Diagnostic power-loss rebuild: scan OOB of all programmed pages
     * in program order and return the recoverable LPN -> slot map.
     * Does not mutate the FTL (SPOR makes the live tables durable).
     */
    std::vector<std::pair<Lpn, SlotId>> scanOobMappings() const;

    /** Force-program all partially-filled open pages (pads the rest). */
    void flushOpenPages(Tick now);

    /** Outcome of a device-level power-loss rebuild. */
    struct RebuildReport
    {
        /** Slots whose write-origin mapping was restored. */
        std::uint64_t slotsRecovered = 0;
        /** CoW (checkpoint-remap) mappings restored via OOB targets. */
        std::uint64_t remapsRecovered = 0;
    };

    /**
     * Device-level power-loss rebuild (paper §III-G): discard every
     * RAM structure (mapping table, block states, data cache) and
     * reconstruct them by scanning the OOB of all programmed pages
     * in program order. Write-origin mappings are restored directly;
     * checkpoint remaps are restored from the journal slots' target
     * annotations, newest version winning. Unprogrammed (open-page)
     * data is lost — callers model SPOR capacitors by calling
     * flushOpenPages() first.
     */
    RebuildReport rebuildFromPowerLoss();

    /**
     * Exhaustive consistency check of the mapping machinery:
     *  - every mapped LPN's slot lists that LPN among its references;
     *  - every referencing LPN maps back to the slot;
     *  - per-block valid counts equal the number of live slots;
     *  - free blocks contain no live slots.
     * @throws std::logic_error describing the first violation.
     */
    void checkInvariants() const;

  private:
    /** Inline reference capacity; the common case is one LPN, or a
     *  journal+data pair after a checkpoint remap. Longer CoW chains
     *  spill into refOverflow_. */
    static constexpr std::uint8_t kInlineRefs = 2;

    struct SlotInfo
    {
        std::array<Lpn, kInlineRefs> refs{kInvalidAddr, kInvalidAddr};
        std::uint16_t nrefs = 0;
        bool everValid = false;
    };

    struct OpenPage
    {
        Ppn ppn = kInvalidAddr;
        std::uint32_t nextSlot = 0;
    };

    SlotId slotOf(Ppn ppn, std::uint32_t idx) const;
    Pbn blockOfSlot(SlotId slot) const;
    Ppn pageOfSlot(SlotId slot) const;

    /** True when the slot's page is still an unprogrammed open page. */
    bool isBuffered(SlotId slot) const;

    /**
     * Map-cache access for the translation segment holding @p lpn:
     * a miss fetches the segment's map page from flash.
     * @return tick at which the translation is available.
     */
    Tick mapAccess(Lpn lpn, Tick earliest);

    /** Map accesses for every unit in [first, last]. */
    Tick mapAccessRange(Lpn first, Lpn last, Tick earliest);

    /** True when @p ppn is resident in the DRAM data cache. */
    bool isCached(Ppn ppn) const;

    /** Insert @p ppn into the data cache (LRU eviction). */
    void cacheInsert(Ppn ppn);

    /** Drop a page from the data cache (erase invalidation). */
    void cacheEvict(Ppn ppn);

    /**
     * Allocate the next slot of @p stream, striping consecutive
     * pages round-robin across dies and programming full pages.
     */
    SlotId allocateSlot(Stream stream, Tick earliest);

    /** Close + program the open page of (@p stream, @p die). */
    void programOpenPage(Stream stream, std::uint32_t die,
                         Tick earliest);

    /** Drop one reference; invalidates the slot at zero refs. */
    void deref(SlotId slot, Lpn lpn);

    /** Add a reference (spilling past the inline capacity). */
    void addRef(SlotId slot, Lpn lpn);

    /** Invoke @p fn on every LPN referencing @p slot. */
    template <typename Fn>
    void
    forEachRef(SlotId slot, Fn &&fn) const
    {
        const SlotInfo &info = slotInfo_[slot];
        const std::uint16_t inline_n =
            std::min<std::uint16_t>(info.nrefs, kInlineRefs);
        for (std::uint16_t r = 0; r < inline_n; ++r)
            fn(info.refs[r]);
        if (info.nrefs > kInlineRefs) {
            for (Lpn lpn : refOverflow_.at(slot))
                fn(lpn);
        }
    }

    /** Unmap @p lpn if mapped (dropping its slot reference). */
    void unmap(Lpn lpn);

    /** Point @p lpn at @p slot, releasing any previous mapping. */
    void mapLpn(Lpn lpn, SlotId slot);

    /** Account a dirty mapping entry; flush the table when due. */
    void touchMapEntry(Tick earliest);

    /** Read (timing) every distinct flash page backing the slots. */
    Tick readSlotPages(const std::vector<SlotId> &slots, IoCause cause,
                       Tick earliest);

    /** Inline GC to keep free blocks above the low-water mark. */
    void maybeGc(Tick earliest);

    /** One greedy GC pass. @return true if a block was reclaimed. */
    bool gcOnce(Tick earliest, bool background);

    /** Migrate all valid slots out of @p victim, then erase it. */
    void reclaimBlock(Pbn victim, Tick earliest);

    /**
     * Consequence of a program (tPROG) failure on @p failed_ppn:
     * retire the whole block, migrate its live slots to fresh slots
     * (data comes from the SPOR-protected shadows, so nothing is
     * lost), and record it in the persistent defect list.
     */
    void handleProgramFail(Ppn failed_ppn, Tick now);

    /**
     * Static wear leveling: when the block-wear spread exceeds the
     * configured threshold, relocate the coldest (least-worn) closed
     * block so its underlying cells re-enter circulation.
     * @return true if a block was relocated.
     */
    bool wearLevelOnce(Tick now);

    NandFlash &nand_;
    FtlConfig cfg_;
    NandLayout layout_;
    std::uint32_t sectorsPerUnit_;
    std::uint32_t slotsPerPage_;
    std::uint64_t logicalUnits_;

    BlockManager bm_;
    std::vector<SlotId> map_;          // LPN -> slot (or kInvalidAddr)
    std::vector<SlotInfo> slotInfo_;   // per physical slot
    /** Rare >2-reference CoW chains: slot -> extra referencing LPNs. */
    std::unordered_map<SlotId, std::vector<Lpn>> refOverflow_;
    std::vector<SectorData> sectors_;  // per physical sector shadow
    std::vector<OobEntry> slotOob_;    // per physical slot OOB
    std::vector<std::uint64_t> pageSeq_; // program sequence per page
    // open_[stream * dieCount + die]; rot_ rotates the target die.
    std::vector<OpenPage> open_;
    std::array<std::uint32_t, kStreamCount> rot_{};

    std::uint64_t nextProgramSeq_ = 1;
    /** Host-write order counter stamped into slot OOB (see
     *  OobEntry::writeSeq); the power-loss rebuild replay order. */
    std::uint64_t nextWriteSeq_ = 1;
    std::uint64_t dirtyMapBytes_ = 0;
    bool inGc_ = false;
    bool inMapFlush_ = false;

    /** Firmware defect list (flash-resident in a real device): bad
     *  blocks survive power loss and stay retired across rebuilds. */
    std::vector<char> badBlock_;
    /** Uncorrectable host-path reads awaiting takeReadErrors(). */
    std::uint32_t pendingReadErrors_ = 0;

    // DRAM data cache: flat intrusive LRU over the PPN universe
    // (O(1) touch/insert/evict, no hashing on the event hot path).
    FlatLru dataCache_;

    // Map cache: flat intrusive LRU of translation segments (0
    // capacity = all resident, model disabled). Segment =
    // mapEntriesPerFetch consecutive LPNs.
    std::size_t mapSegCapacity_ = 0;
    FlatLru mapCache_;
    ProgramObserver onProgram_;
    StatRegistry stats_;

    /** Single trace lane for FTL-level events (Cat::Ftl). */
    static constexpr std::uint32_t kFtlLane = 0;

    /** Interned hot-path counters (see sim/stats.h). */
    static constexpr std::size_t kIoCauseCount = 6;
    StatId sSlotWrites_;
    std::array<StatId, kIoCauseCount> sSlotWritesBy_;
    StatId sPageReads_;
    std::array<StatId, kIoCauseCount> sPageReadsBy_;
    StatId sCacheHits_;
    StatId sMapCacheHits_;
    StatId sMapCacheMisses_;
    StatId sHostReadSectors_;
    StatId sHostWriteSectors_;
    StatId sRmwReads_;
    StatId sRemaps_;
    StatId sInvalidatedSlots_;
    StatId sTrimmedUnits_;
    StatId sGcPageReads_;
    StatId sGcMigratedSlots_;
};

} // namespace checkin

#endif // CHECKIN_FTL_FTL_H_
