/**
 * @file
 * FTL configuration parameters.
 */

#ifndef CHECKIN_FTL_FTL_CONFIG_H_
#define CHECKIN_FTL_FTL_CONFIG_H_

#include <cstdint>

#include "sim/types.h"

namespace checkin {

/**
 * Sub-page-mapping FTL parameters.
 *
 * The mapping unit is the paper's central sensitivity knob
 * (Fig 13): 512 B (default, matches the host sector) up to the full
 * 4 KiB physical page.
 */
struct FtlConfig
{
    /** Mapping unit in bytes; must divide the physical page size. */
    std::uint32_t mappingUnitBytes = 512;

    /**
     * Fraction of raw capacity exported as logical space; the rest is
     * over-provisioning for GC headroom.
     */
    double exportedRatio = 0.88;

    /** Start stealing blocks via GC below this many free blocks. */
    std::uint32_t gcLowWaterBlocks = 6;
    /** Inline GC stops once this many blocks are free. */
    std::uint32_t gcHighWaterBlocks = 10;
    /** Background (idle) GC aims for this many free blocks. */
    std::uint32_t gcBackgroundBlocks = 16;

    /**
     * Static wear leveling: relocate the coldest closed block when
     * the erase-count spread (max - min over closed blocks) exceeds
     * this threshold. 0 disables static wear leveling.
     */
    std::uint32_t wearLevelThreshold = 40;

    /**
     * Device DRAM data cache (Table I: 64 MiB). Recently programmed
     * or fetched pages are served from DRAM instead of flash; this is
     * what makes checkpoint-time journal gathers cheap when the
     * journal working set fits.
     */
    std::uint64_t dataCacheBytes = 64 * kMiB;

    /** Bytes of one mapping-table entry when persisted. */
    std::uint32_t mapEntryBytes = 8;

    /**
     * Map-cache capacity in bytes. When the mapping table exceeds
     * this, LPN lookups can miss and pay a map-page fetch from flash
     * (the metadata-processing pressure behind the paper's Fig 13a).
     * 0 = the whole table is DRAM resident (no misses; default —
     * accurate for this repo's scaled-down devices).
     */
    std::uint64_t mapCacheBytes = 0;
    /** Mapping entries fetched per map-page miss (batch fill). */
    std::uint32_t mapEntriesPerFetch = 512;
    /**
     * Dirty mapping bytes accumulated before the table is flushed to
     * flash (paper §III-D: updates are batched, SPOR-protected).
     */
    std::uint64_t mapFlushThresholdBytes = 4096;
};

} // namespace checkin

#endif // CHECKIN_FTL_FTL_CONFIG_H_
