#include "cluster/router.h"

#include <algorithm>
#include <cassert>

namespace checkin {

RouterNode::RouterNode(std::uint64_t seed, const ClusterConfig &cfg,
                       const Placement &placement)
    : ClusterNode(seed, "router"),
      cfg_(cfg),
      placement_(placement),
      gen_(cfg.workload, cfg.totalRecords()),
      opTarget_(cfg.workload.operationCount),
      clients_(std::max<std::uint32_t>(1, cfg.clients)),
      issuedAt_(clients_, 0)
{
    stats_.routedOps.assign(cfg.shardCount, 0);
    stats_.routedBytes.assign(cfg.shardCount, 0);
    if (cfg_.traffic.mode == LoopMode::Open) {
        arrivals_.emplace(
            cfg_.traffic,
            ctx_.deriveSeed(TrafficSpec::kArrivalStream));
    }
}

void
RouterNode::start(Tick t0)
{
    assert(t0 >= ctx_.now());
    ctx_.events().schedule(t0, [this] {
        stats_.firstIssue = ctx_.now();
        if (cfg_.traffic.mode == LoopMode::Open) {
            freeSlots_.reserve(clients_);
            for (std::uint32_t c = clients_; c > 0; --c)
                freeSlots_.push_back(c - 1);
            scheduleNextArrival();
            return;
        }
        for (std::uint32_t c = 0;
             c < clients_ && stats_.opsIssued < opTarget_; ++c) {
            issueNext(c);
        }
    });

    if (cfg_.coordination == CkptCoordination::Independent)
        return;
    Tick interval = cfg_.coordinationInterval > 0
                        ? cfg_.coordinationInterval
                        : cfg_.shard.engine.checkpointInterval;
    if (interval == 0)
        return; // coordination disabled along with the timers
    if (cfg_.coordination == CkptCoordination::Staggered) {
        // Rotate through the shards so each still checkpoints once
        // per interval, but at most one stalls at a time.
        interval = std::max<Tick>(1, interval / cfg_.shardCount);
    }
    coordPeriod_ = interval;
    ctx_.events().schedule(t0 + coordPeriod_,
                           [this] { onCoordinatorTimer(); });
}

void
RouterNode::onCoordinatorTimer()
{
    Message m;
    m.kind = Message::Kind::CkptControl;
    m.deliverTick = ctx_.now() + cfg_.requestLatency;
    if (cfg_.coordination == CkptCoordination::Synchronized) {
        for (std::uint32_t s = 0; s < cfg_.shardCount; ++s) {
            m.dst = 1 + s;
            send(m);
            ++stats_.ckptControls;
        }
    } else {
        m.dst = 1 + nextCkptShard_;
        nextCkptShard_ = (nextCkptShard_ + 1) % cfg_.shardCount;
        send(m);
        ++stats_.ckptControls;
    }
    ctx_.events().scheduleAfter(coordPeriod_,
                                [this] { onCoordinatorTimer(); });
}

void
RouterNode::routeOp(const WorkloadGenerator::Op &op,
                    std::uint32_t client)
{
    ++stats_.opsIssued;
    const std::uint32_t shard = placement_.shardOf[op.key];

    Message m;
    m.kind = Message::Kind::Request;
    m.op = op.type;
    m.dst = 1 + shard;
    m.deliverTick = ctx_.now() + cfg_.requestLatency;
    m.key = placement_.localKey[op.key];
    m.client = client;
    m.valueBytes = op.valueBytes;
    m.scanLength = op.scanLength;
    send(m);

    ++stats_.routedOps[shard];
    if (op.type == WorkloadGenerator::OpType::Update ||
        op.type == WorkloadGenerator::OpType::Rmw) {
        stats_.routedBytes[shard] += op.valueBytes;
        stats_.totalBytes += op.valueBytes;
    }
}

void
RouterNode::issueNext(std::uint32_t client)
{
    if (stats_.opsIssued >= opTarget_)
        return;
    const WorkloadGenerator::Op op = gen_.next();
    issuedAt_[client] = ctx_.now();
    routeOp(op, client);
}

void
RouterNode::scheduleNextArrival()
{
    if (stats_.opsOffered >= opTarget_)
        return;
    const Tick gap = arrivals_->nextInterarrival(ctx_.now());
    ctx_.events().scheduleAfter(gap, [this] { onArrival(); });
}

void
RouterNode::onArrival()
{
    const Tick arrival = ctx_.now();
    ++stats_.opsOffered;
    stats_.lastArrival = arrival;
    queue_.push_back(PendingOp{gen_.next(), arrival});
    scheduleNextArrival();
    if (!freeSlots_.empty()) {
        const std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        dispatch(slot);
    }
}

void
RouterNode::dispatch(std::uint32_t slot)
{
    assert(!queue_.empty());
    const PendingOp p = queue_.front();
    queue_.pop_front();
    const Tick issued = ctx_.now();
    stats_.queueDelay.record(issued > p.arrival ? issued - p.arrival
                                                : 0);
    // Latency is measured from arrival: queue wait included.
    issuedAt_[slot] = p.arrival;
    routeOp(p.op, slot);
}

void
RouterNode::onMessage(const Message &m)
{
    assert(m.kind == Message::Kind::Response &&
           "the router only receives responses");
    const Tick now = ctx_.now();
    const Tick issued = issuedAt_[m.client];
    const Tick latency = now > issued ? now - issued : 0;
    stats_.all.record(latency);
    const bool is_read = m.op == WorkloadGenerator::OpType::Read ||
                         m.op == WorkloadGenerator::OpType::Scan;
    if (is_read)
        stats_.reads.record(latency);
    else
        stats_.writes.record(latency);
    if (m.duringCheckpoint)
        stats_.duringCheckpoint.record(latency);
    else
        stats_.outsideCheckpoint.record(latency);
    ++stats_.opsCompleted;
    stats_.lastCompletion = std::max(stats_.lastCompletion, now);
    if (cfg_.traffic.mode == LoopMode::Open) {
        if (!queue_.empty())
            dispatch(m.client);
        else
            freeSlots_.push_back(m.client);
        return;
    }
    issueNext(m.client);
}

} // namespace checkin
