#include "cluster/synchronizer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "harness/sweep.h"

namespace checkin {

namespace {

/**
 * Persistent worker pool for window execution.
 *
 * Per window the main thread publishes (work list, limit) under the
 * mutex, bumps the generation, and participates in the claim loop
 * itself; workers wake on the generation change, claim node indices
 * from the shared atomic, and "arrive" once the claim loop is empty.
 * The main thread waits for all workers to arrive before touching
 * shared window state again, so a straggler can never observe the
 * next window's work list (no data race, verified under TSan in CI).
 */
class WindowPool
{
  public:
    WindowPool(const std::vector<ClusterNode *> &nodes,
               unsigned workers)
        : nodes_(nodes)
    {
        threads_.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~WindowPool()
    {
        {
            std::lock_guard<std::mutex> g(m_);
            quit_ = true;
            ++generation_;
        }
        cvStart_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    /** Advance every node in @p work to @p limit; returns after all
     *  nodes finished and all workers are parked again. */
    void
    runWindow(const std::vector<std::size_t> &work, Tick limit)
    {
        {
            std::lock_guard<std::mutex> g(m_);
            work_ = &work;
            limit_ = limit;
            next_.store(0, std::memory_order_relaxed);
            arrived_ = 0;
            ++generation_;
        }
        cvStart_.notify_all();
        drain();
        std::unique_lock<std::mutex> g(m_);
        cvDone_.wait(g,
                     [this] { return arrived_ == threads_.size(); });
    }

  private:
    void
    drain()
    {
        for (std::size_t i;
             (i = next_.fetch_add(1, std::memory_order_relaxed)) <
             work_->size();) {
            ClusterNode *node = nodes_[(*work_)[i]];
            // Install the node's context (and with it the node's
            // tracer/attribution sinks) on this thread for the
            // window.
            SimContextScope scope(node->ctx());
            node->ctx().events().runUntil(limit_);
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> g(m_);
                cvStart_.wait(
                    g, [&] { return generation_ != seen; });
                seen = generation_;
                if (quit_)
                    return;
            }
            drain();
            {
                std::lock_guard<std::mutex> g(m_);
                ++arrived_;
            }
            cvDone_.notify_one();
        }
    }

    const std::vector<ClusterNode *> &nodes_;
    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    const std::vector<std::size_t> *work_ = nullptr;
    Tick limit_ = 0;
    std::atomic<std::size_t> next_{0};
    std::size_t arrived_ = 0;
    std::uint64_t generation_ = 0;
    bool quit_ = false;
};

} // namespace

SyncStats
runWindows(const std::vector<ClusterNode *> &nodes, Tick lookahead,
           unsigned threads, const std::function<bool()> &done)
{
    assert(lookahead > 0 && "conservative sync needs lookahead");
    SyncStats st;
    if (nodes.empty())
        return st;

    const unsigned jobs = std::min<unsigned>(
        std::max(1u, threads == 0 ? resolveJobs(0) : threads),
        static_cast<unsigned>(nodes.size()));
    std::unique_ptr<WindowPool> pool;
    if (jobs > 1)
        pool = std::make_unique<WindowPool>(nodes, jobs - 1);

    std::vector<std::size_t> work;
    Tick last_limit = 0;
    for (;;) {
        // Barrier: deliver every message sent during the previous
        // window, in canonical (source node, send order) order.
        for (ClusterNode *src : nodes) {
            for (const Message &m : src->outbox()) {
                assert(m.deliverTick > last_limit &&
                       "message faster than the lookahead");
                assert(m.dst < nodes.size());
                nodes[m.dst]->deliver(m);
                ++st.messages;
            }
            src->outbox().clear();
        }

        if (done())
            break;

        // Open the next window at the earliest pending event; the
        // cluster skips idle stretches wholesale.
        Tick window_start = kInvalidTick;
        for (ClusterNode *node : nodes) {
            window_start = std::min(
                window_start, node->ctx().events().nextEventTick());
        }
        if (window_start == kInvalidTick)
            break; // fully idle and not done: nothing can progress
        const Tick limit = window_start + lookahead - 1;

        work.clear();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (nodes[i]->ctx().events().nextEventTick() <= limit)
                work.push_back(i);
        }
        if (pool != nullptr) {
            pool->runWindow(work, limit);
        } else {
            for (const std::size_t i : work) {
                SimContextScope scope(nodes[i]->ctx());
                nodes[i]->ctx().events().runUntil(limit);
            }
        }
        last_limit = limit;
        ++st.windows;
    }
    return st;
}

void
parallelFor(std::size_t count, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    const unsigned jobs = std::min<unsigned>(
        std::max(1u, threads == 0 ? resolveJobs(0) : threads),
        count == 0 ? 1u : static_cast<unsigned>(count));
    if (jobs <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    auto work = [&] {
        for (std::size_t i;
             (i = next.fetch_add(1, std::memory_order_relaxed)) <
             count;) {
            fn(i);
        }
    };
    std::vector<std::thread> workers;
    workers.reserve(jobs - 1);
    for (unsigned t = 0; t + 1 < jobs; ++t)
        workers.emplace_back(work);
    work();
    for (std::thread &t : workers)
        t.join();
}

} // namespace checkin
