#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "cluster/hash_ring.h"
#include "harness/presets.h"
#include "obs/json.h"
#include "sim/rng.h"

namespace checkin {

const char *
ckptCoordinationName(CkptCoordination policy)
{
    switch (policy) {
      case CkptCoordination::Independent: return "independent";
      case CkptCoordination::Synchronized: return "synchronized";
      case CkptCoordination::Staggered: return "staggered";
    }
    return "unknown";
}

namespace {

/** Key placement plus each shard's local->global key table. */
struct PlacementTables
{
    Placement placement;
    std::vector<std::vector<std::uint64_t>> shardKeys;
};

PlacementTables
placeKeys(const ClusterConfig &cfg)
{
    const HashRing ring(cfg.shardCount, cfg.vnodesPerShard);
    const std::uint64_t total = cfg.totalRecords();
    PlacementTables t;
    t.placement.shardOf.resize(total);
    t.placement.localKey.resize(total);
    t.shardKeys.resize(cfg.shardCount);
    for (std::uint64_t g = 0; g < total; ++g) {
        const std::uint32_t s = ring.shardOf(g);
        t.placement.shardOf[g] = s;
        t.placement.localKey[g] = t.shardKeys[s].size();
        t.shardKeys[s].push_back(g);
    }
    return t;
}

void
histJson(obs::JsonWriter &w, const std::string &key,
         const LatencyHistogram &h)
{
    w.key(key).beginObject();
    w.kv("count", h.count());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    w.kv("min", h.min());
    w.kv("p50", h.quantile(0.5));
    w.kv("p99", h.quantile(0.99));
    w.kv("p999", h.quantile(0.999));
    w.endObject();
}

} // namespace

ClusterResult
runCluster(const ClusterConfig &cfg)
{
    if (cfg.shardCount == 0)
        throw std::invalid_argument("cluster needs at least 1 shard");
    if (cfg.lookahead() == 0)
        throw std::invalid_argument(
            "cluster link latencies must be positive (lookahead)");

    PlacementTables tables = placeKeys(cfg);

    // Under router-driven coordination the engines' own checkpoint
    // timers are disabled; the journal-bytes and space-pressure
    // triggers stay armed as a safety net.
    ExperimentConfig shard_cfg = cfg.shard;
    if (cfg.coordination != CkptCoordination::Independent)
        shard_cfg.engine.checkpointInterval = 0;

    const Rng root(cfg.seed);
    auto router = std::make_unique<RouterNode>(
        root.childSeed(0), cfg, tables.placement);
    std::vector<std::unique_ptr<ShardNode>> shards;
    shards.reserve(cfg.shardCount);
    for (std::uint32_t s = 0; s < cfg.shardCount; ++s) {
        ExperimentConfig sc = shard_cfg;
        sc.engine.recordCount = tables.shardKeys[s].size();
        shards.push_back(std::make_unique<ShardNode>(
            s, root.childSeed(1 + s), sc,
            std::move(tables.shardKeys[s]), cfg.workload,
            cfg.responseLatency, cfg.attributionEnabled));
    }

    std::vector<ClusterNode *> nodes;
    nodes.reserve(1 + shards.size());
    nodes.push_back(router.get());
    for (auto &s : shards)
        nodes.push_back(s.get());

    // Build + load every shard (embarrassingly parallel: each load is
    // a private serial simulation over the shard's own context).
    parallelFor(shards.size(), cfg.syncThreads,
                [&](std::size_t s) { shards[s]->buildAndLoad(); });

    // Shards quiesce their loads at different local ticks; the router
    // starts issuing after the latest of them (plus one lookahead of
    // margin) so no request is ever delivered into a shard's past.
    Tick t0 = 0;
    for (auto &s : shards)
        t0 = std::max(t0, s->ctx().now());
    t0 += cfg.lookahead();
    router->start(t0);

    ClusterResult r;
    r.startTick = t0;
    r.sync = runWindows(nodes, cfg.lookahead(), cfg.syncThreads,
                        [&] { return router->done(); });

    // Let in-flight checkpoints finish, then verify every store.
    for (auto &s : shards) {
        s->drainCheckpoint();
        SimContextScope scope(s->ctx());
        r.verifiedKeys += s->engine().verifyAllKeys();
    }

    r.router = router->stats();
    const double tail_q = cfg.shard.obs.attrTailQuantile;
    r.totalEvents = router->ctx().events().dispatched();
    for (auto &s : shards) {
        r.shards.push_back(s->summary(tail_q));
        r.totalEvents += r.shards.back().events;
    }
    r.simSpan = r.router.lastCompletion > r.router.firstIssue
                    ? r.router.lastCompletion - r.router.firstIssue
                    : 0;
    if (r.simSpan > 0) {
        r.throughputOps = double(r.router.opsCompleted) /
                          (double(r.simSpan) / double(kSec));
    }

    if (cfg.shard.obs.telemetry.enabled) {
        for (auto &s : shards) {
            const obs::TelemetrySummary t = s->telemetry().summary();
            r.telemetry.enabled = true;
            r.telemetry.windowTicks = t.windowTicks;
            r.telemetry.probes += t.probes;
            r.telemetry.samples += t.samples;
            r.telemetry.events += t.events;
            r.telemetry.anomalies += t.anomalies;
        }
    }

    if (!cfg.artifactDir.empty()) {
        obs::ArtifactWriter writer(cfg.artifactDir, cfg.runName);
        writer.writeText("cluster.json", clusterResultJson(cfg, r));
        if (cfg.shard.obs.telemetry.enabled) {
            // Merge in shard-index order: bytes are identical for
            // any synchronizer thread count.
            std::vector<const obs::TelemetrySampler *> samplers;
            samplers.reserve(shards.size());
            for (auto &s : shards)
                samplers.push_back(&s->telemetry());
            writer.writeText("telemetry.json",
                             obs::clusterTelemetryJson(samplers));
            writer.writeText("blackbox.json",
                             obs::clusterBlackboxJson(samplers));
        }
        r.artifacts = writer.bundle();
    }
    return r;
}

std::string
clusterResultJson(const ClusterConfig &cfg, const ClusterResult &r)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.kv("attributionEnabled", cfg.attributionEnabled);
    w.kv("clients", std::uint64_t(cfg.clients));
    w.kv("coordination", ckptCoordinationName(cfg.coordination));
    w.kv("coordinationIntervalTicks",
         cfg.coordinationInterval > 0
             ? cfg.coordinationInterval
             : cfg.shard.engine.checkpointInterval);
    w.kv("lookaheadTicks", cfg.lookahead());

    w.key("router").beginObject();
    histJson(w, "all", r.router.all);
    w.kv("bytesTotal", r.router.totalBytes);
    w.kv("ckptControls", r.router.ckptControls);
    histJson(w, "duringCheckpoint", r.router.duringCheckpoint);
    w.kv("loopMode", loopModeName(cfg.traffic.mode));
    w.kv("opsCompleted", r.router.opsCompleted);
    w.kv("opsIssued", r.router.opsIssued);
    w.kv("opsOffered", r.router.opsOffered);
    histJson(w, "outsideCheckpoint", r.router.outsideCheckpoint);
    histJson(w, "queueDelay", r.router.queueDelay);
    histJson(w, "reads", r.router.reads);
    w.key("routedBytes").beginArray();
    for (const std::uint64_t b : r.router.routedBytes)
        w.value(b);
    w.endArray();
    w.key("routedOps").beginArray();
    for (const std::uint64_t o : r.router.routedOps)
        w.value(o);
    w.endArray();
    histJson(w, "writes", r.router.writes);
    w.endObject();

    w.kv("seed", cfg.seed);
    w.kv("shardCount", std::uint64_t(cfg.shardCount));

    w.key("shards").beginArray();
    for (const ShardSummary &s : r.shards) {
        w.beginObject();
        w.kv("avgCheckpointMs", s.avgCheckpointMs);
        w.kv("bytes", s.bytes);
        w.kv("checkpoints", s.checkpoints);
        w.kv("ckptStallTicks", s.ckptStallTicks);
        w.kv("events", s.events);
        w.kv("journalStalls", s.journalStalls);
        w.kv("keys", s.keys);
        w.kv("maxCheckpointMs", s.maxCheckpointMs);
        w.kv("nandErases", s.nandErases);
        w.kv("nandPrograms", s.nandPrograms);
        w.kv("nandReads", s.nandReads);
        w.kv("ops", s.ops);
        histJson(w, "service", s.service);
        w.kv("shard", std::uint64_t(s.shard));
        w.kv("tailCkptStallTicks", s.tailCkptStallTicks);
        w.endObject();
    }
    w.endArray();

    w.kv("simSpanTicks", r.simSpan);
    w.kv("startTick", r.startTick);
    w.key("sync").beginObject();
    w.kv("messages", r.sync.messages);
    w.kv("windows", r.sync.windows);
    w.endObject();

    w.key("telemetry").beginObject();
    w.kv("anomalies", r.telemetry.anomalies);
    w.kv("enabled", r.telemetry.enabled);
    w.kv("events", r.telemetry.events);
    w.kv("probes", r.telemetry.probes);
    w.kv("samples", r.telemetry.samples);
    w.kv("windowTicks", std::uint64_t(r.telemetry.windowTicks));
    w.endObject();

    w.kv("throughputOps", r.throughputOps);
    w.kv("totalEvents", r.totalEvents);
    w.kv("verifiedKeys", r.verifiedKeys);

    w.key("workload").beginObject();
    w.kv("distribution",
         distributionName(cfg.workload.distribution));
    w.kv("name", cfg.workload.name);
    w.kv("operationCount", cfg.workload.operationCount);
    w.kv("seed", cfg.workload.seed);
    w.endObject();

    w.endObject();
    os << "\n";
    return os.str();
}

namespace presets {

ClusterConfig
cluster()
{
    ClusterConfig c;
    c.shard = small();
    // Per-shard share of the key space; the cluster total is
    // recordCount * shardCount.
    c.shard.engine.recordCount = 2000;
    // Frequent checkpoints so short runs still exercise the
    // coordination policies.
    c.shard.engine.checkpointInterval = 5 * kMsec;
    c.shardCount = 4;
    c.clients = 32;
    c.workload.operationCount = 8000;
    return c;
}

} // namespace presets

} // namespace checkin
