/**
 * @file
 * Sharded cluster simulation entry point.
 *
 * runCluster() builds N engine shards behind a front-end router,
 * loads them in parallel, advances the whole cluster under the
 * conservative time-window synchronizer, drains in-flight
 * checkpoints, verifies every shard's store, and assembles a
 * deterministic result. clusterResultJson() serializes it with
 * byte-stable output (no wall-clock fields), so artifacts are
 * identical for any synchronizer thread count.
 */

#ifndef CHECKIN_CLUSTER_CLUSTER_H_
#define CHECKIN_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "cluster/synchronizer.h"
#include "obs/artifacts.h"
#include "obs/telemetry.h"

namespace checkin {

/** Outcome of one cluster run. */
struct ClusterResult
{
    /** Client-visible (router-side) latency and routing totals. */
    RouterStats router;
    /** Per-shard summaries, indexed by shard id. */
    std::vector<ShardSummary> shards;
    SyncStats sync;

    /** Measurement start (max shard load-quiesce tick + margin). */
    Tick startTick = 0;
    /** firstIssue -> lastCompletion, in ticks. */
    Tick simSpan = 0;
    /** Completed ops per simulated second. */
    double throughputOps = 0.0;
    /** DES events dispatched across all nodes (router + shards). */
    std::uint64_t totalEvents = 0;
    /** Keys verified across all shards post-run. */
    std::uint64_t verifiedKeys = 0;

    /** Cluster-wide telemetry rollup (probes/samples/events/anomalies
     *  summed over shards; enabled per cfg.shard.obs.telemetry). */
    obs::TelemetrySummary telemetry;

    /** cluster.json location when cfg.artifactDir was set. */
    obs::ArtifactBundle artifacts;
};

/** Run one cluster simulation to completion. */
ClusterResult runCluster(const ClusterConfig &cfg);

/** Deterministic JSON serialization of a cluster run (the bytes of
 *  the cluster.json artifact; excludes wall-clock measurements). */
std::string clusterResultJson(const ClusterConfig &cfg,
                              const ClusterResult &r);

namespace presets {

/** Small 4-shard cluster sized for fast simulation (tests, CLI). */
ClusterConfig cluster();

} // namespace presets

} // namespace checkin

#endif // CHECKIN_CLUSTER_CLUSTER_H_
