#include "cluster/shard.h"

#include <algorithm>
#include <cassert>

#include "harness/presets.h"

namespace checkin {

namespace {

obs::OpClass
opAttrClass(WorkloadGenerator::OpType type)
{
    switch (type) {
      case WorkloadGenerator::OpType::Read: return obs::OpClass::Read;
      case WorkloadGenerator::OpType::Update:
        return obs::OpClass::Update;
      case WorkloadGenerator::OpType::Rmw: return obs::OpClass::Rmw;
      case WorkloadGenerator::OpType::Scan: return obs::OpClass::Scan;
      case WorkloadGenerator::OpType::Delete:
        return obs::OpClass::Delete;
    }
    return obs::OpClass::Read;
}

} // namespace

ShardNode::ShardNode(std::uint32_t shard, std::uint64_t seed,
                     const ExperimentConfig &cfg,
                     std::vector<std::uint64_t> global_keys,
                     const WorkloadSpec &sizer_spec,
                     Tick response_latency, bool attribution)
    : ClusterNode(seed, "shard" + std::to_string(shard)),
      shard_(shard),
      cfg_(cfg),
      globalKeys_(std::move(global_keys)),
      sizerSpec_(sizer_spec),
      responseLatency_(response_latency),
      telem_(cfg.obs.telemetry)
{
    attr_.setEnabled(attribution);
    if (attribution)
        ctx_.setAttribution(&attr_);
    // The stack built in buildAndLoad() registers its probes against
    // this sampler via the shard's context.
    if (telem_.enabled())
        ctx_.setTelemetry(&telem_);
}

ShardNode::~ShardNode() = default;

void
ShardNode::buildAndLoad()
{
    SimContextScope scope(ctx_);

    // The fault plan must exist before the device (the Ssd wires it
    // into the NAND at construction); its seed derives from the
    // shard's context seed, so each shard has its own deterministic
    // fault schedule.
    faults_ = std::make_unique<FaultPlan>(
        cfg_.faults, ctx_.deriveSeed(FaultPlan::kSeedStream));
    ctx_.setFaults(faults_.get());

    FtlConfig ftl_cfg = cfg_.ftl;
    ftl_cfg.mappingUnitBytes = cfg_.resolvedMappingUnit();
    ssd_ = std::make_unique<Ssd>(ctx_, cfg_.nand, ftl_cfg, cfg_.ssd);
    engine_ = presets::makeEngine(ctx_, *ssd_, cfg_.engine);

    // Initial values are sized by the *global* key so shard placement
    // never changes a key's content, only where it lives.
    WorkloadGenerator sizer(
        sizerSpec_,
        std::max<std::uint64_t>(1, globalKeys_.size()));
    engine_->load([this, &sizer](std::uint64_t local_key) {
        return sizer.initialSize(globalKeys_[local_key]);
    });

    // Drain the load so the measured run starts from an idle device,
    // then snapshot baselines so every summary is a post-load delta.
    EventQueue &eq = ctx_.events();
    eq.schedule(ssd_->quiesceTick(), [] {});
    eq.run();
    nandReads0_ = ssd_->nand().stats().get("nand.reads");
    nandPrograms0_ = ssd_->nand().stats().get("nand.programs");
    nandErases0_ = ssd_->nand().stats().get("nand.erases");
    journalStalls0_ = engine_->stats().get("engine.journalStalls");
    ckptCount0_ = engine_->checkpointDurations().size();
    if (attr_.enabled())
        attr_.clearForMeasurement();

    // Arm sampling on the shard's own queue: windows are in shard
    // sim time, untouched by synchronizer threading.
    telem_.begin(eq);

    engine_->start();
}

void
ShardNode::onMessage(const Message &m)
{
    switch (m.kind) {
      case Message::Kind::Request:
        execute(m);
        break;
      case Message::Kind::CkptControl:
        engine_->requestCheckpoint(obs::CkptTrigger::Manual);
        break;
      case Message::Kind::Response:
        assert(false && "shards do not receive responses");
        break;
    }
}

void
ShardNode::execute(const Message &m)
{
    const Tick arrival = ctx_.now();
    const obs::OpToken tok =
        obs::attrBeginOp(opAttrClass(m.op), arrival);
    auto cb = [this, m, arrival, tok](const QueryResult &res) {
        obs::attrFinishOp(tok, res.done);
        ++ops_;
        if (m.op == WorkloadGenerator::OpType::Update ||
            m.op == WorkloadGenerator::OpType::Rmw) {
            bytes_ += m.valueBytes;
        }
        service_.record(res.done > arrival ? res.done - arrival : 0);
        Message resp = m;
        resp.kind = Message::Kind::Response;
        resp.dst = 0; // the router
        resp.deliverTick = res.done + responseLatency_;
        resp.found = res.found;
        resp.scanned = res.scanned;
        resp.duringCheckpoint = res.duringCheckpoint;
        send(resp);
    };
    obs::AttrOpScope attr_scope(tok);
    switch (m.op) {
      case WorkloadGenerator::OpType::Read:
        engine_->get(m.key, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Update:
        engine_->update(m.key, m.valueBytes, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Rmw:
        engine_->readModifyWrite(m.key, m.valueBytes,
                                 std::move(cb));
        break;
      case WorkloadGenerator::OpType::Scan:
        engine_->scan(m.key, m.scanLength, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Delete:
        engine_->erase(m.key, std::move(cb));
        break;
    }
}

void
ShardNode::drainCheckpoint()
{
    SimContextScope scope(ctx_);
    while (engine_->checkpointInProgress() && ctx_.events().step()) {
    }
    // Flush the residual window before verification reads perturb
    // the shard's device counters.
    telem_.finalize(ctx_.events().now());
}

ShardSummary
ShardNode::summary(double tail_quantile) const
{
    ShardSummary s;
    s.shard = shard_;
    s.keys = globalKeys_.size();
    s.ops = ops_;
    s.bytes = bytes_;
    s.events = ctx_.events().dispatched();
    s.service = service_;

    const std::vector<Tick> &durations =
        engine_->checkpointDurations();
    s.checkpoints = durations.size() - ckptCount0_;
    Tick total = 0;
    Tick worst = 0;
    for (std::size_t i = ckptCount0_; i < durations.size(); ++i) {
        total += durations[i];
        worst = std::max(worst, durations[i]);
    }
    if (s.checkpoints > 0) {
        s.avgCheckpointMs =
            double(total) / double(s.checkpoints) / double(kMsec);
    }
    s.maxCheckpointMs = double(worst) / double(kMsec);

    s.nandReads =
        ssd_->nand().stats().get("nand.reads") - nandReads0_;
    s.nandPrograms =
        ssd_->nand().stats().get("nand.programs") - nandPrograms0_;
    s.nandErases =
        ssd_->nand().stats().get("nand.erases") - nandErases0_;
    s.journalStalls =
        engine_->stats().get("engine.journalStalls") -
        journalStalls0_;

    if (attr_.enabled()) {
        s.attribution = attr_.summary(tail_quantile);
        constexpr auto stall =
            std::size_t(obs::Stage::CheckpointStall);
        for (const obs::ClassBreakdown &c : s.attribution.perClass)
            s.ckptStallTicks += c.dwell[stall];
        for (const obs::ClassBreakdown &c :
             s.attribution.tailPerClass) {
            s.tailCkptStallTicks += c.dwell[stall];
        }
    }
    return s;
}

} // namespace checkin
