/**
 * @file
 * Conservative time-window synchronizer: parallel DES inside one run.
 *
 * The classic conservative parallel-DES argument: every cross-node
 * message takes at least `lookahead` ticks of simulated link latency,
 * so events a node executes inside the window [W, W + lookahead)
 * cannot affect any other node within that same window. The
 * synchronizer therefore repeats
 *
 *   1. deliver all outbox messages into destination event queues
 *      (canonical order: source node id, then send order — delivery
 *      is barrier-side, so ordering never depends on which worker
 *      ran which node);
 *   2. stop when the run predicate says the workload is done;
 *   3. open the next window at m = min over nodes of nextEventTick
 *      (idle gaps are skipped wholesale, so windows are dense in
 *      event time, not wall time);
 *   4. advance every node with events due in [m, m + lookahead) on a
 *      worker pool, each node wrapped in its own SimContextScope.
 *
 * Determinism contract: a node's window execution is ordinary
 * single-threaded DES over its private SimContext, message delivery
 * order is canonical, and the pool only decides *which thread* runs a
 * node — never the order of anything observable. Results are
 * byte-identical for 1 and K worker threads (tests/test_cluster.cc).
 */

#ifndef CHECKIN_CLUSTER_SYNCHRONIZER_H_
#define CHECKIN_CLUSTER_SYNCHRONIZER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/node.h"
#include "sim/types.h"

namespace checkin {

/** Outcome counters of a synchronizer run. */
struct SyncStats
{
    std::uint64_t windows = 0;  //!< non-empty windows executed
    std::uint64_t messages = 0; //!< cross-node messages delivered
};

/**
 * Advance @p nodes in conservative windows of @p lookahead ticks on
 * @p threads worker threads (1 = serial on the calling thread) until
 * @p done returns true at a barrier, or no node has a pending event.
 *
 * @p done is evaluated after message delivery, so a predicate like
 * "router completed all ops" observes a fully drained system.
 * Lookahead must be positive and no message may be sent with a
 * delivery tick closer than one lookahead (asserted in debug builds).
 */
SyncStats runWindows(const std::vector<ClusterNode *> &nodes,
                     Tick lookahead, unsigned threads,
                     const std::function<bool()> &done);

/**
 * Run @p fn(i) for every i in [0, count) on @p threads threads, each
 * call wrapped however @p fn wishes (it receives only the index).
 * Used for the embarrassingly parallel build/load and teardown phases
 * around the windowed run; deterministic because the work items are
 * fully independent.
 */
void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace checkin

#endif // CHECKIN_CLUSTER_SYNCHRONIZER_H_
