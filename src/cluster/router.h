/**
 * @file
 * Front-end router: closed-loop clients + key placement + checkpoint
 * coordination.
 *
 * The router is synchronizer node 0. It owns the cluster's clients
 * (closed loop: each client keeps exactly one request in flight),
 * draws operations from the cluster-level workload over the global
 * key space, places each key on a shard via the precomputed
 * consistent-hash placement, and records client-visible latency when
 * the response returns. Under the Synchronized and Staggered policies
 * it also runs the checkpoint coordinator that sends CkptControl
 * messages to the shards.
 */

#ifndef CHECKIN_CLUSTER_ROUTER_H_
#define CHECKIN_CLUSTER_ROUTER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/node.h"
#include "sim/histogram.h"
#include "workload/traffic.h"
#include "workload/ycsb.h"

namespace checkin {

/** Key placement: global key -> (owning shard, shard-local key). */
struct Placement
{
    std::vector<std::uint32_t> shardOf;
    std::vector<std::uint64_t> localKey;
};

/** Router-side (client-visible) outcome of a cluster run. */
struct RouterStats
{
    std::uint64_t opsIssued = 0;
    std::uint64_t opsCompleted = 0;
    /** Open loop: arrivals generated at the router. */
    std::uint64_t opsOffered = 0;
    std::uint64_t totalBytes = 0; //!< value payload bytes routed
    std::uint64_t ckptControls = 0;
    Tick firstIssue = 0;
    Tick lastCompletion = 0;
    /** Open loop: last arrival tick. */
    Tick lastArrival = 0;
    /** End-to-end latency (issue -> response delivery; in open loop
     *  measured from arrival, so queue wait is included). */
    LatencyHistogram all;
    /** Open loop: arrival -> issue wait for a free client slot. */
    LatencyHistogram queueDelay;
    LatencyHistogram reads;
    LatencyHistogram writes;
    LatencyHistogram duringCheckpoint;
    LatencyHistogram outsideCheckpoint;
    /** Per-shard routing totals (the validator checks these equal
     *  the shard-side counters exactly). */
    std::vector<std::uint64_t> routedOps;
    std::vector<std::uint64_t> routedBytes;
};

/** The front-end node (synchronizer node 0). */
class RouterNode : public ClusterNode
{
  public:
    RouterNode(std::uint64_t seed, const ClusterConfig &cfg,
               const Placement &placement);

    /**
     * Begin the run at @p t0: schedule the initial burst of client
     * requests and (policy permitting) the checkpoint coordinator.
     * @p t0 must be at or after every shard's load-quiesce tick so no
     * request is delivered into a shard's past.
     */
    void start(Tick t0);

    /** True once every workload operation has completed. */
    bool
    done() const
    {
        return stats_.opsCompleted >= opTarget_;
    }

    const RouterStats &stats() const { return stats_; }

  protected:
    void onMessage(const Message &m) override;

  private:
    /** An open-loop arrival waiting for a free client slot. */
    struct PendingOp
    {
        WorkloadGenerator::Op op;
        Tick arrival = 0;
    };

    void issueNext(std::uint32_t client);
    void routeOp(const WorkloadGenerator::Op &op,
                 std::uint32_t client);
    void scheduleNextArrival();
    void onArrival();
    void dispatch(std::uint32_t slot);
    void onCoordinatorTimer();

    const ClusterConfig &cfg_;
    const Placement &placement_;
    WorkloadGenerator gen_;
    std::uint64_t opTarget_;
    std::uint32_t clients_;
    Tick coordPeriod_ = 0;     //!< coordinator self-reschedule period
    std::uint32_t nextCkptShard_ = 0; //!< staggered rotation cursor
    std::vector<Tick> issuedAt_;      //!< per-client in-flight issue
    RouterStats stats_;
    // Open-loop state (cfg.traffic.mode == LoopMode::Open).
    std::optional<ArrivalEngine> arrivals_;
    std::deque<PendingOp> queue_;
    std::vector<std::uint32_t> freeSlots_;
};

} // namespace checkin

#endif // CHECKIN_CLUSTER_ROUTER_H_
