/**
 * @file
 * One engine shard: a full private storage stack behind the router.
 *
 * A shard owns its own SimContext, fault plan, Ssd (FTL + NAND), and
 * StorageEngine, plus a per-shard attribution collector. It executes
 * Request messages against the engine and sends Response messages
 * back to the router; CkptControl messages start coordinated
 * checkpoints. All counters a shard reports are post-load deltas, so
 * cluster results exclude the initial load exactly like single-device
 * experiment runs do.
 */

#ifndef CHECKIN_CLUSTER_SHARD_H_
#define CHECKIN_CLUSTER_SHARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/node.h"
#include "engine/storage_engine.h"
#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "obs/attribution.h"
#include "obs/telemetry.h"
#include "sim/histogram.h"
#include "ssd/ssd.h"
#include "workload/ycsb.h"

namespace checkin {

/** Post-run summary of one shard (all counters post-load deltas). */
struct ShardSummary
{
    std::uint32_t shard = 0;
    std::uint64_t keys = 0;  //!< keys placed on this shard
    std::uint64_t ops = 0;   //!< requests executed
    std::uint64_t bytes = 0; //!< value payload bytes written
    std::uint64_t events = 0; //!< DES events dispatched (whole run)
    std::uint64_t checkpoints = 0;
    double avgCheckpointMs = 0.0;
    double maxCheckpointMs = 0.0;
    std::uint64_t nandReads = 0;
    std::uint64_t nandPrograms = 0;
    std::uint64_t nandErases = 0;
    std::uint64_t journalStalls = 0;
    /** Service time (request arrival -> engine completion). */
    LatencyHistogram service;
    /** Attribution dwells summed over classes (0 when disabled). */
    Tick ckptStallTicks = 0;
    Tick tailCkptStallTicks = 0;
    /** Full per-class attribution (enabled flag inside). */
    obs::AttributionSummary attribution;
};

/** One engine shard node (synchronizer node 1 + shard index). */
class ShardNode : public ClusterNode
{
  public:
    /**
     * @param cfg shard stack template with engine.recordCount
     *        already set to this shard's exact key share.
     * @param global_keys global key of every local key (load sizing).
     * @param sizer_spec cluster workload spec (value-size law).
     */
    ShardNode(std::uint32_t shard, std::uint64_t seed,
              const ExperimentConfig &cfg,
              std::vector<std::uint64_t> global_keys,
              const WorkloadSpec &sizer_spec, Tick response_latency,
              bool attribution);

    ~ShardNode() override;

    /**
     * Construct the device + engine and run the initial load to
     * quiescence, then snapshot stat baselines and arm the
     * checkpoint timer. Must run inside this node's SimContextScope;
     * safe to run for different shards in parallel.
     */
    void buildAndLoad();

    /** Summarize the shard (call after the run fully drained). */
    ShardSummary summary(double tail_quantile) const;

    StorageEngine &engine() { return *engine_; }

    /** Shard-local telemetry (enabled per cfg.obs.telemetry). */
    const obs::TelemetrySampler &telemetry() const { return telem_; }

    /** Let an in-flight checkpoint finish (post-run drain) and
     *  finalize shard telemetry. */
    void drainCheckpoint();

  protected:
    void onMessage(const Message &m) override;

  private:
    void execute(const Message &m);

    std::uint32_t shard_;
    ExperimentConfig cfg_;
    std::vector<std::uint64_t> globalKeys_;
    WorkloadSpec sizerSpec_;
    Tick responseLatency_;

    std::unique_ptr<FaultPlan> faults_;
    std::unique_ptr<Ssd> ssd_;
    std::unique_ptr<StorageEngine> engine_;
    obs::AttributionCollector attr_;
    /** Per-shard sampler, driven by this shard's own event queue so
     *  merged artifacts are independent of synchronizer threading. */
    obs::TelemetrySampler telem_;

    // Post-load baselines.
    std::uint64_t nandReads0_ = 0;
    std::uint64_t nandPrograms0_ = 0;
    std::uint64_t nandErases0_ = 0;
    std::uint64_t journalStalls0_ = 0;
    std::uint64_t ckptCount0_ = 0;

    // Measured-run accumulation.
    std::uint64_t ops_ = 0;
    std::uint64_t bytes_ = 0;
    LatencyHistogram service_;
};

} // namespace checkin

#endif // CHECKIN_CLUSTER_SHARD_H_
