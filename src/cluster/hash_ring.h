/**
 * @file
 * Consistent-hash ring for key -> shard placement.
 *
 * Each shard owns vnodesPerShard points on a 64-bit ring; a key lands
 * on the owner of the first ring point at or after its hash. The ring
 * is deterministic (pure mix64 hashing, no RNG) and stable: adding a
 * shard moves only the keys that fall into its new arcs, which is
 * what makes shard-count sweeps comparable.
 */

#ifndef CHECKIN_CLUSTER_HASH_RING_H_
#define CHECKIN_CLUSTER_HASH_RING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace checkin {

/** Consistent-hash ring over shard ids. */
class HashRing
{
  public:
    HashRing(std::uint32_t shards, std::uint32_t vnodes_per_shard)
    {
        points_.reserve(std::size_t(shards) * vnodes_per_shard);
        for (std::uint32_t s = 0; s < shards; ++s) {
            for (std::uint32_t v = 0; v < vnodes_per_shard; ++v) {
                // Derive each vnode position by hashing (shard,
                // vnode); the shard id is spread first so shard 0's
                // vnodes do not cluster near those of shard 1.
                const std::uint64_t h = mix64(
                    mix64(std::uint64_t(s) + 1) ^
                    (std::uint64_t(v) * 0x9e3779b97f4a7c15ULL));
                points_.push_back(Point{h, s});
            }
        }
        std::sort(points_.begin(), points_.end(),
                  [](const Point &a, const Point &b) {
                      if (a.hash != b.hash)
                          return a.hash < b.hash;
                      return a.shard < b.shard;
                  });
    }

    /** Owning shard of @p key. */
    std::uint32_t
    shardOf(std::uint64_t key) const
    {
        const std::uint64_t h = mix64(key + 0x51ed270b9f2f41c3ULL);
        auto it = std::lower_bound(
            points_.begin(), points_.end(), h,
            [](const Point &p, std::uint64_t v) {
                return p.hash < v;
            });
        if (it == points_.end())
            it = points_.begin(); // wrap around the ring
        return it->shard;
    }

    std::size_t size() const { return points_.size(); }

  private:
    struct Point
    {
        std::uint64_t hash;
        std::uint32_t shard;
    };

    std::vector<Point> points_;
};

} // namespace checkin

#endif // CHECKIN_CLUSTER_HASH_RING_H_
