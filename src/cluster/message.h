/**
 * @file
 * Cross-node message of the cluster simulation.
 *
 * Nodes never touch each other's state: all interaction is messages
 * deposited into the sending node's outbox during its window and
 * delivered into the destination node's event queue at the next
 * synchronizer barrier. Every message carries an absolute delivery
 * tick at least one lookahead past its send tick, which is what makes
 * the conservative window synchronization correct (see
 * cluster/synchronizer.h).
 */

#ifndef CHECKIN_CLUSTER_MESSAGE_H_
#define CHECKIN_CLUSTER_MESSAGE_H_

#include <cstdint>

#include "sim/types.h"
#include "workload/ycsb.h"

namespace checkin {

/** Synchronizer node index; the router is node 0, shard s is 1+s. */
using NodeId = std::uint32_t;

/** One cross-node message (flat variant over its kinds). */
struct Message
{
    enum class Kind : std::uint8_t
    {
        Request,     //!< router -> shard: execute one client op
        Response,    //!< shard -> router: op completed
        CkptControl, //!< router -> shard: start a checkpoint now
    };

    Kind kind = Kind::Request;
    WorkloadGenerator::OpType op = WorkloadGenerator::OpType::Read;
    NodeId dst = 0;
    /** Absolute delivery tick (>= send tick + lookahead). */
    Tick deliverTick = 0;
    /** Shard-local key (Request). */
    std::uint64_t key = 0;
    /** Issuing client (echoed back on the Response). */
    std::uint32_t client = 0;
    std::uint32_t valueBytes = 0;
    std::uint32_t scanLength = 0;
    /** Response payload. */
    std::uint32_t scanned = 0;
    bool found = false;
    bool duringCheckpoint = false;
};

} // namespace checkin

#endif // CHECKIN_CLUSTER_MESSAGE_H_
