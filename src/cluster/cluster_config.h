/**
 * @file
 * Configuration of a sharded cluster simulation.
 *
 * A cluster run models N engine shards — each a full private stack
 * (SimContext + KvEngine + JournalManager + Ssd/FTL/NAND) — behind a
 * front-end router that owns the closed-loop clients and places keys
 * on shards by consistent hashing. The shards and the router advance
 * together under a conservative time-window synchronizer (see
 * cluster/synchronizer.h), so one run is truly parallel yet
 * byte-identical for any synchronizer thread count.
 */

#ifndef CHECKIN_CLUSTER_CLUSTER_CONFIG_H_
#define CHECKIN_CLUSTER_CLUSTER_CONFIG_H_

#include <cstdint>

#include "harness/experiment.h"
#include "sim/types.h"
#include "workload/traffic.h"
#include "workload/ycsb.h"

namespace checkin {

/**
 * Cross-shard checkpoint coordination policy.
 *
 * Checkpoint stalls are the cluster's dominant tail-latency source;
 * the policy decides whether the N shards stall together or in turn.
 */
enum class CkptCoordination : std::uint8_t
{
    /** Every shard runs its own checkpoint timer, unsynchronized:
     *  stalls drift apart (or pile up) on their own. */
    Independent,
    /** The router broadcasts one checkpoint request to all shards
     *  every interval: the whole cluster stalls at once, but between
     *  checkpoints no shard stalls. */
    Synchronized,
    /** The router rotates one checkpoint request across the shards,
     *  spacing them interval / shardCount apart: at most one shard
     *  stalls at a time (each still checkpoints every interval). */
    Staggered,
};

const char *ckptCoordinationName(CkptCoordination policy);

/** Everything one cluster run needs. */
struct ClusterConfig
{
    /**
     * Per-shard stack template: NAND/FTL/SSD geometry, engine
     * configuration, and fault plan of every shard.
     * shard.engine.recordCount is the *average* records per shard;
     * consistent hashing decides each shard's exact share. The
     * template's workload/seed/obs fields are ignored — the
     * cluster-level fields below replace them.
     */
    ExperimentConfig shard;

    /** Number of engine shards behind the router. */
    std::uint32_t shardCount = 4;

    /** Client threads (closed loop) / service slots (open loop) at
     *  the router. */
    std::uint32_t clients = 32;

    /**
     * Router load-driver loop mode and arrival process
     * (workload/traffic.h). Open mode turns the router into an
     * open-loop driver: arrivals wait in an unbounded FIFO for a
     * free client slot and latency is measured from arrival.
     * Tenants/flash-crowd fields are single-node features and are
     * ignored here.
     */
    TrafficSpec traffic;

    /**
     * Cluster-level workload: operationCount is the total across all
     * shards; keys are drawn from the global key space
     * (shard.engine.recordCount * shardCount) and routed by the
     * consistent-hash ring.
     */
    WorkloadSpec workload;

    /** Cross-shard checkpoint coordination policy. */
    CkptCoordination coordination = CkptCoordination::Independent;

    /**
     * Coordination period for Synchronized/Staggered (every shard
     * checkpoints once per interval under either policy). 0 uses
     * shard.engine.checkpointInterval. Under these policies the
     * shard engines' own timers are disabled; their journal-bytes /
     * space-pressure triggers stay armed as a safety net.
     */
    Tick coordinationInterval = 0;

    /** Router -> shard request delivery latency (one way). Also the
     *  synchronizer lookahead, so it must be > 0. */
    Tick requestLatency = 20 * kUsec;

    /** Shard -> router response delivery latency (one way). */
    Tick responseLatency = 20 * kUsec;

    /** Virtual nodes per shard on the consistent-hash ring. */
    std::uint32_t vnodesPerShard = 64;

    /**
     * Synchronizer worker threads advancing shard windows. 1 runs
     * the windows serially on the calling thread; 0 resolves through
     * CHECKIN_JOBS / hardware_concurrency (harness/sweep.h). Results
     * are byte-identical for every value.
     */
    unsigned syncThreads = 1;

    /** Root seed: router, shards, and workload streams derive from
     *  it via Rng::childSeed. */
    std::uint64_t seed = 42;

    /** Collect per-op latency attribution on every shard (feeds the
     *  per-stage checkpoint-stall accounting in the result). */
    bool attributionEnabled = false;

    /** When non-empty, write cluster.json into
     *  <artifactDir>/<runName>/. */
    std::string artifactDir;
    std::string runName = "cluster";

    /** Synchronizer lookahead: no cross-node message travels faster
     *  than this. */
    Tick
    lookahead() const
    {
        return requestLatency < responseLatency ? requestLatency
                                                : responseLatency;
    }

    /** Total keys in the cluster's global key space. */
    std::uint64_t
    totalRecords() const
    {
        return shard.engine.recordCount * shardCount;
    }
};

} // namespace checkin

#endif // CHECKIN_CLUSTER_CLUSTER_CONFIG_H_
