/**
 * @file
 * Base class of synchronizer-driven cluster nodes.
 *
 * A node owns a private SimContext (event queue, clock, RNG,
 * observability sinks) and an outbox of cross-node messages. The
 * synchronizer advances nodes in bounded time windows — one worker
 * thread per node per window, the node's context installed via
 * SimContextScope — and exchanges outboxes at window barriers, so a
 * node's state is only ever touched while it is the unit of work of
 * exactly one thread.
 */

#ifndef CHECKIN_CLUSTER_NODE_H_
#define CHECKIN_CLUSTER_NODE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/message.h"
#include "sim/sim_context.h"

namespace checkin {

/** One synchronizer-driven simulation node (router or shard). */
class ClusterNode
{
  public:
    ClusterNode(std::uint64_t seed, std::string name)
        : ctx_(seed, std::move(name))
    {
    }

    virtual ~ClusterNode() = default;

    ClusterNode(const ClusterNode &) = delete;
    ClusterNode &operator=(const ClusterNode &) = delete;

    SimContext &ctx() { return ctx_; }

    /** Messages sent during the node's last window (send order). */
    std::vector<Message> &outbox() { return outbox_; }

    /**
     * Schedule @p m for processing at m.deliverTick in this node's
     * own event queue. Called at synchronizer barriers, in canonical
     * (source node, send order) order — together with the queue's
     * (tick, seq) dispatch order this makes delivery order
     * independent of the synchronizer thread count.
     */
    void
    deliver(const Message &m)
    {
        ctx_.events().schedule(m.deliverTick,
                               [this, m] { onMessage(m); });
    }

  protected:
    /** Handle a delivered message; runs inside the node's window at
     *  m.deliverTick, with the node's context installed. */
    virtual void onMessage(const Message &m) = 0;

    /** Deposit @p m for delivery at the next barrier. */
    void send(Message m) { outbox_.push_back(m); }

    SimContext ctx_;
    std::vector<Message> outbox_;
};

} // namespace checkin

#endif // CHECKIN_CLUSTER_NODE_H_
