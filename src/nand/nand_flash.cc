#include "nand/nand_flash.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/attribution.h"

namespace checkin {

NandFlash::NandFlash(const NandConfig &cfg)
    : cfg_(cfg),
      layout_(cfg),
      blocks_(cfg.totalBlocks()),
      pages_(cfg.totalPages())
{
    dies_.reserve(cfg_.dieCount());
    for (std::uint32_t d = 0; d < cfg_.dieCount(); ++d)
        dies_.emplace_back("die" + std::to_string(d));
    channels_.reserve(cfg_.channels);
    for (std::uint32_t c = 0; c < cfg_.channels; ++c)
        channels_.emplace_back("ch" + std::to_string(c));
    sReads_ = stats_.intern("nand.reads");
    sPrograms_ = stats_.intern("nand.programs");
    sErases_ = stats_.intern("nand.erases");
    sAuxReads_ = stats_.intern("nand.auxReads");
    sReadRetries_ = stats_.intern("nand.readRetries");
    sUncorrectable_ = stats_.intern("nand.uncorrectable");
    sProgramFails_ = stats_.intern("nand.programFails");
    sEraseFails_ = stats_.intern("nand.eraseFails");
    // Trace lanes: one per die, then one per channel.
    for (std::uint32_t d = 0; d < cfg_.dieCount(); ++d)
        obs::nameLane(obs::Cat::Nand, dieLane(d), dies_[d].name());
    for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        obs::nameLane(obs::Cat::Nand, channelLane(c),
                      channels_[c].name());
    }
}

Resource &
NandFlash::dieOf(Ppn ppn)
{
    return dies_[layout_.dieIndexOf(ppn)];
}

Resource &
NandFlash::channelOf(Ppn ppn)
{
    return channels_[layout_.channelIndexOf(ppn)];
}

NandResult
NandFlash::read(Ppn ppn, Tick earliest)
{
    assert(ppn < pages_.size());
    stats_.add(sReads_);
    const Pbn pbn = ppn / cfg_.pagesPerBlock;
    // Fault decision up front: retries extend the sensing phase, so
    // the die reservation must cover them before the channel starts.
    std::uint32_t retries = 0;
    bool uncorrectable = false;
    if (faults_ != nullptr) {
        const std::uint32_t fails = faults_->readFaults(
            ppn, blocks_[pbn].eraseCount, cfg_.maxPeCycles);
        if (fails > faults_->config().readRetryMax) {
            retries = faults_->config().readRetryMax;
            uncorrectable = true;
        } else {
            retries = fails;
        }
        if (retries > 0)
            stats_.add(sReadRetries_, retries);
    }
    // Array sensing occupies the die, then the data crosses the
    // channel. The channel reservation can only start once sensing is
    // done.
    Resource &die = dieOf(ppn);
    Resource &ch = channelOf(ppn);
    const Tick sense_time =
        cfg_.readLatency +
        (faults_ != nullptr
             ? retries * faults_->config().readRetryLatency
             : 0);
    const Tick sense_start = std::max(earliest, die.freeAt());
    const Tick sensed = die.reserve(earliest, sense_time);
    obs::attrCmdMark(obs::Stage::NandWait, sense_start);
    obs::attrCmdMark(obs::Stage::NandMedia, sensed);
    if (uncorrectable) {
        // ECC gave up: nothing valid to move across the channel.
        stats_.add(sUncorrectable_);
        if (obs::traceOn()) {
            obs::span(obs::Cat::Nand, dieLane(layout_.dieIndexOf(ppn)),
                      "nand.senseFail", sense_start, sensed,
                      {{"ppn", ppn}, {"retries", retries}});
        }
        return {sensed, NandStatus::Uncorrectable};
    }
    const Tick xfer_start = std::max(sensed, ch.freeAt());
    const Tick done = ch.reserve(sensed, cfg_.pageTransferTime());
    obs::attrCmdMark(obs::Stage::NandWait, xfer_start);
    obs::attrCmdMark(obs::Stage::NandMedia, done);
    if (obs::traceOn()) {
        const auto d = layout_.dieIndexOf(ppn);
        const auto c = layout_.channelIndexOf(ppn);
        obs::span(obs::Cat::Nand, dieLane(d), "nand.sense",
                  sense_start, sensed, {{"ppn", ppn}});
        obs::span(obs::Cat::Nand, channelLane(c), "nand.xfer",
                  xfer_start, done, {{"ppn", ppn}});
    }
    return {done, NandStatus::Ok};
}

NandResult
NandFlash::program(Ppn ppn, PageContent content, Tick earliest)
{
    assert(ppn < pages_.size());
    const Pbn pbn = ppn / cfg_.pagesPerBlock;
    const std::uint32_t page = std::uint32_t(ppn % cfg_.pagesPerBlock);
    Block &blk = blocks_[pbn];
    if (page != blk.nextPage) {
        throw std::logic_error(
            "NAND program order violation: block " +
            std::to_string(pbn) + " expects page " +
            std::to_string(blk.nextPage) + ", got " +
            std::to_string(page));
    }
    const bool failed =
        faults_ != nullptr &&
        faults_->programFails(ppn, blk.eraseCount, cfg_.maxPeCycles);
    // A failed program still consumes the page: the cells are in an
    // indeterminate state and in-order programming cannot reuse it.
    // It reads back empty (no valid OOB), so SPOR rebuild skips it.
    blk.nextPage = page + 1;
    pages_[ppn] = failed ? PageContent{} : std::move(content);
    stats_.add(sPrograms_);
    if (failed)
        stats_.add(sProgramFails_);
    // Data crosses the channel first, then the cell program occupies
    // the die.
    Resource &die = dieOf(ppn);
    Resource &ch = channelOf(ppn);
    const Tick xfer_start = std::max(earliest, ch.freeAt());
    const Tick loaded = ch.reserve(earliest, cfg_.pageTransferTime());
    const Tick prog_start = std::max(loaded, die.freeAt());
    const Tick done = die.reserve(loaded, cfg_.programLatency);
    obs::attrCmdMark(obs::Stage::NandWait, xfer_start);
    obs::attrCmdMark(obs::Stage::NandMedia, loaded);
    obs::attrCmdMark(obs::Stage::NandWait, prog_start);
    obs::attrCmdMark(obs::Stage::NandMedia, done);
    if (obs::traceOn()) {
        const auto d = layout_.dieIndexOf(ppn);
        const auto c = layout_.channelIndexOf(ppn);
        obs::span(obs::Cat::Nand, channelLane(c), "nand.xfer",
                  xfer_start, loaded, {{"ppn", ppn}});
        obs::span(obs::Cat::Nand, dieLane(d),
                  failed ? "nand.progFail" : "nand.prog", prog_start,
                  done, {{"ppn", ppn}});
    }
    return {done,
            failed ? NandStatus::ProgramFailed : NandStatus::Ok};
}

Tick
NandFlash::chargeAuxRead(std::uint32_t die_index, Tick earliest)
{
    assert(die_index < dies_.size());
    stats_.add(sAuxReads_);
    Resource &die = dies_[die_index];
    const std::uint32_t ch_index = die_index / cfg_.diesPerChannel;
    const Tick sense_start = std::max(earliest, die.freeAt());
    const Tick sensed = die.reserve(earliest, cfg_.readLatency);
    Resource &ch = channels_[ch_index];
    const Tick xfer_start = std::max(sensed, ch.freeAt());
    const Tick done = ch.reserve(sensed, cfg_.pageTransferTime());
    obs::attrCmdMark(obs::Stage::NandWait, sense_start);
    obs::attrCmdMark(obs::Stage::NandMedia, sensed);
    obs::attrCmdMark(obs::Stage::NandWait, xfer_start);
    obs::attrCmdMark(obs::Stage::NandMedia, done);
    if (obs::traceOn()) {
        obs::span(obs::Cat::Nand, dieLane(die_index), "nand.auxRead",
                  sense_start, sensed);
        obs::span(obs::Cat::Nand, channelLane(ch_index), "nand.xfer",
                  xfer_start, done);
    }
    return done;
}

NandResult
NandFlash::eraseBlock(Pbn pbn, Tick earliest)
{
    assert(pbn < blocks_.size());
    Block &blk = blocks_[pbn];
    const Ppn first = layout_.firstPpnOfBlock(pbn);
    const bool failed =
        faults_ != nullptr &&
        faults_->eraseFails(pbn, blk.eraseCount, cfg_.maxPeCycles);
    if (!failed) {
        for (std::uint32_t p = 0; p < blk.nextPage; ++p)
            pages_[first + p] = PageContent{};
        blk.nextPage = 0;
    }
    // The erase attempt consumes a P/E cycle either way.
    ++blk.eraseCount;
    ++totalErases_;
    stats_.add(sErases_);
    if (failed)
        stats_.add(sEraseFails_);
    Resource &die = dieOf(first);
    const Tick erase_start = std::max(earliest, die.freeAt());
    const Tick done = die.reserve(earliest, cfg_.eraseLatency);
    obs::attrCmdMark(obs::Stage::NandWait, erase_start);
    obs::attrCmdMark(obs::Stage::NandMedia, done);
    if (obs::traceOn()) {
        obs::span(obs::Cat::Nand, dieLane(layout_.dieIndexOf(first)),
                  failed ? "nand.eraseFail" : "nand.erase",
                  erase_start, done,
                  {{"pbn", pbn}, {"eraseCount", blk.eraseCount}});
    }
    return {done, failed ? NandStatus::EraseFailed : NandStatus::Ok};
}

bool
NandFlash::isProgrammed(Ppn ppn) const
{
    const Pbn pbn = ppn / cfg_.pagesPerBlock;
    const std::uint32_t page = std::uint32_t(ppn % cfg_.pagesPerBlock);
    return page < blocks_[pbn].nextPage;
}

std::uint32_t
NandFlash::nextProgramPage(Pbn pbn) const
{
    assert(pbn < blocks_.size());
    return blocks_[pbn].nextPage;
}

const PageContent &
NandFlash::peek(Ppn ppn) const
{
    assert(ppn < pages_.size());
    return pages_[ppn];
}

std::uint32_t
NandFlash::eraseCount(Pbn pbn) const
{
    assert(pbn < blocks_.size());
    return blocks_[pbn].eraseCount;
}

std::uint32_t
NandFlash::maxEraseCount() const
{
    std::uint32_t m = 0;
    for (const Block &b : blocks_)
        m = std::max(m, b.eraseCount);
    return m;
}

std::uint32_t
NandFlash::minEraseCount() const
{
    std::uint32_t m = ~std::uint32_t{0};
    for (const Block &b : blocks_)
        m = std::min(m, b.eraseCount);
    return blocks_.empty() ? 0 : m;
}

Tick
NandFlash::allIdleAt() const
{
    Tick t = 0;
    for (const Resource &d : dies_)
        t = std::max(t, d.freeAt());
    for (const Resource &c : channels_)
        t = std::max(t, c.freeAt());
    return t;
}

} // namespace checkin
