/**
 * @file
 * Physical flash addressing and out-of-band metadata types.
 */

#ifndef CHECKIN_NAND_NAND_TYPES_H_
#define CHECKIN_NAND_NAND_TYPES_H_

#include <cstdint>
#include <vector>

#include "nand/nand_config.h"
#include "sim/types.h"

namespace checkin {

/** Flat physical block number across the whole device. */
using Pbn = std::uint64_t;

/** Outcome of a NAND media operation (see FaultPlan). */
enum class NandStatus : std::uint8_t
{
    Ok = 0,
    /** Read failed ECC even after exhausting read retries. */
    Uncorrectable,
    /** Program (tPROG) failed; the page is consumed and unreadable. */
    ProgramFailed,
    /** Erase (tBERS) failed; the block must be retired. */
    EraseFailed,
};

/**
 * Completion tick + outcome of a NAND operation. Time is always
 * charged — a failed operation occupies the die just as long as a
 * successful one (longer for reads, which retry-sense first).
 */
struct NandResult
{
    Tick tick = 0;
    NandStatus status = NandStatus::Ok;

    bool ok() const { return status == NandStatus::Ok; }
};

/**
 * Out-of-band record stored alongside a programmed page.
 *
 * The Check-In SSD writes the target address (or key) and version of
 * every slot so device-side recovery can rebuild mappings after power
 * loss (paper §III-G): @p lpn is the write-origin LPN, and for
 * journal slots @p targetLpn names the data-area LPN the record will
 * be checkpoint-remapped to, which lets the rebuild restore CoW
 * mappings whose slots were never physically rewritten.
 */
struct OobEntry
{
    /** LPN the slot was written for; kInvalidAddr for unused slots. */
    Lpn lpn = kInvalidAddr;
    /** Monotonic version for recovery ordering. */
    std::uint64_t version = 0;
    /** Checkpoint target of a journal record (or kInvalidAddr). */
    Lpn targetLpn = kInvalidAddr;
    /**
     * Host-write order stamp. Page program sequence alone cannot
     * order slots after a power cut: the capacitor flush programs the
     * per-die open pages in die order, so an older write parked in a
     * higher die would be sequenced after a newer write to the same
     * LPN in a lower die, and the SPOR replay would resurrect the
     * stale copy. Rebuild therefore replays mappings in writeSeq
     * order; GC migration copies the stamp with the slot.
     */
    std::uint64_t writeSeq = 0;
};

/** Structured physical page address. */
struct PhysAddr
{
    std::uint32_t channel = 0;
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    bool
    operator==(const PhysAddr &o) const
    {
        return channel == o.channel && die == o.die &&
               plane == o.plane && block == o.block && page == o.page;
    }
};

/** Address arithmetic between flat PPNs/PBNs and structured form. */
class NandLayout
{
  public:
    explicit NandLayout(const NandConfig &cfg) : cfg_(cfg) {}

    Ppn
    flatten(const PhysAddr &a) const
    {
        return blockOf(a) * cfg_.pagesPerBlock + a.page;
    }

    Pbn
    blockOf(const PhysAddr &a) const
    {
        std::uint64_t die_index =
            std::uint64_t(a.channel) * cfg_.diesPerChannel + a.die;
        std::uint64_t plane_index =
            die_index * cfg_.planesPerDie + a.plane;
        return plane_index * cfg_.blocksPerPlane + a.block;
    }

    PhysAddr
    unflatten(Ppn ppn) const
    {
        PhysAddr a;
        a.page = std::uint32_t(ppn % cfg_.pagesPerBlock);
        Pbn pbn = ppn / cfg_.pagesPerBlock;
        a.block = std::uint32_t(pbn % cfg_.blocksPerPlane);
        std::uint64_t plane_index = pbn / cfg_.blocksPerPlane;
        a.plane = std::uint32_t(plane_index % cfg_.planesPerDie);
        std::uint64_t die_index = plane_index / cfg_.planesPerDie;
        a.die = std::uint32_t(die_index % cfg_.diesPerChannel);
        a.channel = std::uint32_t(die_index / cfg_.diesPerChannel);
        return a;
    }

    /** First PPN of block @p pbn. */
    Ppn
    firstPpnOfBlock(Pbn pbn) const
    {
        return pbn * cfg_.pagesPerBlock;
    }

    /** Die timing-unit index (0 .. dieCount-1) for a PPN. */
    std::uint32_t
    dieIndexOf(Ppn ppn) const
    {
        Pbn pbn = ppn / cfg_.pagesPerBlock;
        std::uint64_t plane_index = pbn / cfg_.blocksPerPlane;
        return std::uint32_t(plane_index / cfg_.planesPerDie);
    }

    /** Channel index for a PPN. */
    std::uint32_t
    channelIndexOf(Ppn ppn) const
    {
        return dieIndexOf(ppn) / cfg_.diesPerChannel;
    }

  private:
    NandConfig cfg_;
};

/** Token content of one physical page: one token per sub-page slot. */
struct PageContent
{
    std::vector<std::uint64_t> slotTokens;
    std::vector<OobEntry> oob;
    /** Monotonic program sequence (recovery ordering), 0 = unset. */
    std::uint64_t seq = 0;
};

} // namespace checkin

#endif // CHECKIN_NAND_NAND_TYPES_H_
