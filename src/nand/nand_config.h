/**
 * @file
 * NAND flash array geometry and timing parameters.
 */

#ifndef CHECKIN_NAND_NAND_CONFIG_H_
#define CHECKIN_NAND_NAND_CONFIG_H_

#include <cstdint>

#include "sim/types.h"

namespace checkin {

/**
 * Geometry and timing of the simulated flash array.
 *
 * Defaults follow DESIGN.md §6 (Table I equivalents): a 4-channel,
 * 2-die MLC device with datasheet-typical latencies.
 */
struct NandConfig
{
    /** Independent channels (buses) to flash packages. */
    std::uint32_t channels = 4;
    /** Dies per channel; each die is an independent timing unit. */
    std::uint32_t diesPerChannel = 2;
    /** Planes per die; adds capacity (plane pairing not modeled). */
    std::uint32_t planesPerDie = 1;
    /** Erase blocks per plane. */
    std::uint32_t blocksPerPlane = 128;
    /** Pages per erase block. */
    std::uint32_t pagesPerBlock = 128;
    /** Physical page size in bytes. */
    std::uint32_t pageBytes = 4096;

    /** Page read (tR). */
    Tick readLatency = 50 * kUsec;
    /** Page program (tPROG). */
    Tick programLatency = 600 * kUsec;
    /** Block erase (tBERS). */
    Tick eraseLatency = 3 * kMsec;
    /** Channel bandwidth in bytes per second (ONFI-class). */
    std::uint64_t channelBytesPerSec = 400'000'000;

    /** Rated program/erase cycles per block. */
    std::uint32_t maxPeCycles = 3000;

    std::uint32_t
    dieCount() const
    {
        return channels * diesPerChannel;
    }

    std::uint32_t
    blocksPerDie() const
    {
        return planesPerDie * blocksPerPlane;
    }

    std::uint64_t
    totalBlocks() const
    {
        return std::uint64_t(dieCount()) * blocksPerDie();
    }

    std::uint64_t
    totalPages() const
    {
        return totalBlocks() * pagesPerBlock;
    }

    std::uint64_t
    totalBytes() const
    {
        return totalPages() * pageBytes;
    }

    /** Time to move one page across a channel. */
    Tick
    pageTransferTime() const
    {
        return Tick(std::uint64_t(pageBytes) * kSec /
                    channelBytesPerSec);
    }
};

} // namespace checkin

#endif // CHECKIN_NAND_NAND_CONFIG_H_
