/**
 * @file
 * Functional + timing model of a NAND flash array.
 *
 * The array stores per-slot content tokens and OOB metadata so the
 * whole stack is end-to-end verifiable, enforces flash programming
 * rules (erase-before-program, in-order page programming within a
 * block), and charges die/channel time for every operation.
 */

#ifndef CHECKIN_NAND_NAND_FLASH_H_
#define CHECKIN_NAND_NAND_FLASH_H_

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "nand/nand_config.h"
#include "nand/nand_types.h"
#include "obs/trace.h"
#include "sim/resource.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace checkin {

/**
 * The flash array. All addresses are flat PPNs/PBNs (see NandLayout).
 *
 * Timing contract: every operation takes the earliest tick the caller
 * could issue it and returns a NandResult — the completion tick plus
 * a status — reserving die and channel time in between. Contention
 * appears as later completion ticks; *faults* (injected by the run's
 * FaultPlan, if any) appear as non-Ok statuses whose time was still
 * charged: a failed program occupies the die for the full tPROG, a
 * retried read senses repeatedly before the data crosses the channel.
 */
class NandFlash
{
  public:
    explicit NandFlash(const NandConfig &cfg);

    const NandConfig &config() const { return cfg_; }
    const NandLayout &layout() const { return layout_; }

    /** Install the run's fault plan (nullptr: perfect hardware). */
    void setFaultPlan(FaultPlan *plan) { faults_ = plan; }

    /**
     * Read a page. Injected bit errors are retried within the ECC
     * retry budget (extra sensing time per retry); past the budget
     * the result is Uncorrectable and no data crosses the channel.
     * @param ppn page to read.
     * @param earliest earliest issue tick.
     * @return completion tick (data at host side of channel) + status.
     */
    NandResult read(Ppn ppn, Tick earliest);

    /**
     * Program a page. The page must be erased and must be the next
     * unprogrammed page of its block (NAND in-order rule). A failed
     * program consumes the page — it stays unreadable (empty OOB)
     * until the block is erased, and the block should be retired.
     * @param content slot tokens + OOB to persist.
     * @return completion tick + status.
     */
    NandResult program(Ppn ppn, PageContent content, Tick earliest);

    /**
     * Erase a block. A failed erase leaves the previous contents in
     * place and the block must be retired by the FTL.
     * @return completion tick + status.
     */
    NandResult eraseBlock(Pbn pbn, Tick earliest);

    /**
     * Charge the timing of an auxiliary page read on @p die_index
     * (e.g., a mapping-table page fetch) without touching any
     * functional page state.
     * @return completion tick.
     */
    Tick chargeAuxRead(std::uint32_t die_index, Tick earliest);

    /** True if the page has been programmed since last erase. */
    bool isProgrammed(Ppn ppn) const;

    /** Next page index to program in @p pbn (== pagesPerBlock: full). */
    std::uint32_t nextProgramPage(Pbn pbn) const;

    /** Content of a programmed page (functional read, no timing). */
    const PageContent &peek(Ppn ppn) const;

    /** Erase count of a block. */
    std::uint32_t eraseCount(Pbn pbn) const;

    /** Sum of all block erase counts. */
    std::uint64_t totalEraseCount() const { return totalErases_; }

    /** Maximum erase count across blocks (wear skew metric). */
    std::uint32_t maxEraseCount() const;

    /** Minimum erase count across blocks (wear skew metric). */
    std::uint32_t minEraseCount() const;

    /** Operation counters: nand.reads / nand.programs / nand.erases,
     *  plus fault counters (nand.readRetries / nand.uncorrectable /
     *  nand.programFails / nand.eraseFails). */
    const StatRegistry &stats() const { return stats_; }

    /** Earliest tick at which every die and channel is idle. */
    Tick allIdleAt() const;

  private:
    struct Block
    {
        std::uint32_t nextPage = 0;
        std::uint32_t eraseCount = 0;
    };

    Resource &dieOf(Ppn ppn);
    Resource &channelOf(Ppn ppn);

    /** Trace lane of die @p d (die lanes precede channel lanes). */
    std::uint32_t dieLane(std::uint32_t d) const { return d; }
    /** Trace lane of channel @p c. */
    std::uint32_t
    channelLane(std::uint32_t c) const
    {
        return cfg_.dieCount() + c;
    }

    NandConfig cfg_;
    NandLayout layout_;
    std::vector<Block> blocks_;
    std::vector<PageContent> pages_;
    std::vector<Resource> dies_;
    std::vector<Resource> channels_;
    StatRegistry stats_;
    StatId sReads_;
    StatId sPrograms_;
    StatId sErases_;
    StatId sAuxReads_;
    StatId sReadRetries_;
    StatId sUncorrectable_;
    StatId sProgramFails_;
    StatId sEraseFails_;
    std::uint64_t totalErases_ = 0;
    FaultPlan *faults_ = nullptr;
};

} // namespace checkin

#endif // CHECKIN_NAND_NAND_FLASH_H_
