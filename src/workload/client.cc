#include "workload/client.h"

#include <algorithm>
#include <string>

#include "obs/attribution.h"
#include "obs/trace.h"

namespace checkin {

namespace {

const char *
opTraceName(WorkloadGenerator::OpType type)
{
    switch (type) {
      case WorkloadGenerator::OpType::Read: return "op.read";
      case WorkloadGenerator::OpType::Update: return "op.update";
      case WorkloadGenerator::OpType::Rmw: return "op.rmw";
      case WorkloadGenerator::OpType::Scan: return "op.scan";
      case WorkloadGenerator::OpType::Delete: return "op.delete";
    }
    return "op.unknown";
}

obs::OpClass
opAttrClass(WorkloadGenerator::OpType type)
{
    switch (type) {
      case WorkloadGenerator::OpType::Read: return obs::OpClass::Read;
      case WorkloadGenerator::OpType::Update:
        return obs::OpClass::Update;
      case WorkloadGenerator::OpType::Rmw: return obs::OpClass::Rmw;
      case WorkloadGenerator::OpType::Scan: return obs::OpClass::Scan;
      case WorkloadGenerator::OpType::Delete:
        return obs::OpClass::Delete;
    }
    return obs::OpClass::Read;
}

} // namespace

ClientPool::ClientPool(SimContext &ctx, StorageEngine &engine,
                       const WorkloadSpec &spec,
                       std::uint32_t threads)
    : eq_(ctx.events()),
      engine_(engine),
      gen_(spec, engine.config().recordCount),
      opTarget_(spec.operationCount),
      threads_(threads)
{
    for (std::uint32_t t = 0; t < threads_; ++t) {
        obs::nameLane(obs::Cat::Workload, t,
                      "client" + std::to_string(t));
    }
}

void
ClientPool::start()
{
    started_ = true;
    stats_.firstIssue = eq_.now();
    for (std::uint32_t t = 0; t < threads_ && opsIssued_ < opTarget_;
         ++t) {
        issueNext(t);
    }
}

void
ClientPool::issueNext(std::uint32_t thread)
{
    if (opsIssued_ >= opTarget_)
        return;
    ++opsIssued_;
    const WorkloadGenerator::Op op = gen_.next();
    const Tick issued = eq_.now();
    // Start the op's latency-attribution timeline and make it the
    // ambient current op for the engine entry call below (the engine
    // captures the token into its task); finish it exactly when the
    // client observes completion, so the stage dwells sum to the
    // client-visible latency.
    const obs::OpToken tok =
        obs::attrBeginOp(opAttrClass(op.type), issued);
    auto cb = [this, type = op.type, thread, issued,
               tok](const QueryResult &res) {
        obs::attrFinishOp(tok, res.done);
        record(type, thread, issued, res);
        issueNext(thread);
    };
    obs::AttrOpScope attr_scope(tok);
    switch (op.type) {
      case WorkloadGenerator::OpType::Read:
        engine_.get(op.key, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Update:
        engine_.update(op.key, op.valueBytes, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Rmw:
        engine_.readModifyWrite(op.key, op.valueBytes,
                                std::move(cb));
        break;
      case WorkloadGenerator::OpType::Scan:
        engine_.scan(op.key, op.scanLength, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Delete:
        engine_.erase(op.key, std::move(cb));
        break;
    }
}

void
ClientPool::record(WorkloadGenerator::OpType type,
                   std::uint32_t thread, Tick issued,
                   const QueryResult &res)
{
    const Tick latency = res.done > issued ? res.done - issued : 0;
    stats_.all.record(latency);
    const bool is_read = type == WorkloadGenerator::OpType::Read ||
                         type == WorkloadGenerator::OpType::Scan;
    obs::span(obs::Cat::Workload, thread, opTraceName(type), issued,
              res.done,
              {{"duringCkpt", res.duringCheckpoint ? 1u : 0u}});
    if (sampler_)
        sampler_(issued, res.done, res.duringCheckpoint, is_read);
    if (is_read)
        stats_.reads.record(latency);
    else
        stats_.writes.record(latency);
    if (res.duringCheckpoint) {
        stats_.duringCheckpoint.record(latency);
        if (is_read)
            stats_.readsDuringCheckpoint.record(latency);
        else
            stats_.writesDuringCheckpoint.record(latency);
    } else {
        stats_.outsideCheckpoint.record(latency);
    }
    ++stats_.opsCompleted;
    stats_.lastCompletion = std::max(stats_.lastCompletion, res.done);
}

} // namespace checkin
