#include "workload/client.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/attribution.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace checkin {

namespace {

const char *
opTraceName(WorkloadGenerator::OpType type)
{
    switch (type) {
      case WorkloadGenerator::OpType::Read: return "op.read";
      case WorkloadGenerator::OpType::Update: return "op.update";
      case WorkloadGenerator::OpType::Rmw: return "op.rmw";
      case WorkloadGenerator::OpType::Scan: return "op.scan";
      case WorkloadGenerator::OpType::Delete: return "op.delete";
    }
    return "op.unknown";
}

obs::OpClass
opAttrClass(WorkloadGenerator::OpType type)
{
    switch (type) {
      case WorkloadGenerator::OpType::Read: return obs::OpClass::Read;
      case WorkloadGenerator::OpType::Update:
        return obs::OpClass::Update;
      case WorkloadGenerator::OpType::Rmw: return obs::OpClass::Rmw;
      case WorkloadGenerator::OpType::Scan: return obs::OpClass::Scan;
      case WorkloadGenerator::OpType::Delete:
        return obs::OpClass::Delete;
    }
    return obs::OpClass::Read;
}

} // namespace

ClientPool::ClientPool(SimContext &ctx, StorageEngine &engine,
                       const WorkloadSpec &spec,
                       std::uint32_t threads)
    : ClientPool(ctx, engine, spec, TrafficSpec{}, threads)
{
}

ClientPool::ClientPool(SimContext &ctx, StorageEngine &engine,
                       const WorkloadSpec &spec,
                       const TrafficSpec &traffic,
                       std::uint32_t threads)
    : eq_(ctx.events()),
      engine_(engine),
      gen_(spec, engine.config().recordCount),
      traffic_(traffic),
      opTarget_(spec.operationCount),
      threads_(threads)
{
    for (std::uint32_t t = 0; t < threads_; ++t) {
        obs::nameLane(obs::Cat::Workload, t,
                      "client" + std::to_string(t));
    }
    if (traffic_.mode == LoopMode::Open) {
        arrivals_.emplace(
            traffic_,
            ctx.deriveSeed(TrafficSpec::kArrivalStream));
        if (traffic_.hasFlashCrowd()) {
            WorkloadSpec crowd = spec;
            crowd.distribution = Distribution::Latest;
            crowd.seed =
                ctx.deriveSeed(TrafficSpec::kFlashKeyStream);
            flashGen_ = std::make_unique<WorkloadGenerator>(
                crowd, engine.config().recordCount);
        }
        for (const TenantSpec &t : traffic_.tenants) {
            TenantStats ts;
            ts.name = t.name;
            ts.sloLatency = t.sloLatency;
            stats_.tenants.push_back(std::move(ts));
        }
    }
    telem_ = ctx.telemetry();
    if (telem_ != nullptr && telem_->enabled()) {
        telem_->addGauge("client.queueDepth", [this] {
            return std::uint64_t(queue_.size());
        });
        telem_->addGauge("client.freeSlots", [this] {
            return std::uint64_t(freeSlots_.size());
        });
        telem_->addCounter("client.opsCompleted", [this] {
            return stats_.opsCompleted;
        });
        telem_->addCounter("client.opsOffered", [this] {
            return stats_.opsOffered;
        });
        telem_->addCounter("client.sloViolations", [this] {
            return stats_.sloViolations;
        });
        // Per-tenant achieved load + SLO burn rate (windowed deltas
        // of these counters are rates over the sampling window).
        for (std::size_t i = 0; i < stats_.tenants.size(); ++i) {
            const std::string base =
                "tenant." + stats_.tenants[i].name + ".";
            telem_->addCounter(base + "opsCompleted", [this, i] {
                return stats_.tenants[i].opsCompleted;
            });
            telem_->addCounter(base + "sloViolations", [this, i] {
                return stats_.tenants[i].sloViolations;
            });
        }
    }
}

void
ClientPool::start()
{
    started_ = true;
    stats_.firstIssue = eq_.now();
    if (traffic_.mode == LoopMode::Open) {
        freeSlots_.reserve(threads_);
        // Popping from the back hands the lowest slot ids out first.
        for (std::uint32_t t = threads_; t > 0; --t)
            freeSlots_.push_back(t - 1);
        scheduleNextArrival();
        return;
    }
    for (std::uint32_t t = 0; t < threads_ && opsIssued_ < opTarget_;
         ++t) {
        issueNext(t);
    }
}

void
ClientPool::issueToEngine(const WorkloadGenerator::Op &op,
                          StorageEngine::QueryCb cb)
{
    switch (op.type) {
      case WorkloadGenerator::OpType::Read:
        engine_.get(op.key, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Update:
        engine_.update(op.key, op.valueBytes, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Rmw:
        engine_.readModifyWrite(op.key, op.valueBytes,
                                std::move(cb));
        break;
      case WorkloadGenerator::OpType::Scan:
        engine_.scan(op.key, op.scanLength, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Delete:
        engine_.erase(op.key, std::move(cb));
        break;
    }
}

// ----------------------------------------------------------------------
// Closed loop
// ----------------------------------------------------------------------

void
ClientPool::issueNext(std::uint32_t thread)
{
    if (opsIssued_ >= opTarget_)
        return;
    ++opsIssued_;
    const WorkloadGenerator::Op op = gen_.next();
    const Tick issued = eq_.now();
    // Start the op's latency-attribution timeline and make it the
    // ambient current op for the engine entry call below (the engine
    // captures the token into its task); finish it exactly when the
    // client observes completion, so the stage dwells sum to the
    // client-visible latency.
    const obs::OpToken tok =
        obs::attrBeginOp(opAttrClass(op.type), issued);
    auto cb = [this, type = op.type, thread, issued,
               tok](const QueryResult &res) {
        obs::attrFinishOp(tok, res.done);
        record(type, thread, issued, res);
        issueNext(thread);
    };
    obs::AttrOpScope attr_scope(tok);
    issueToEngine(op, std::move(cb));
}

// ----------------------------------------------------------------------
// Open loop
// ----------------------------------------------------------------------

void
ClientPool::scheduleNextArrival()
{
    if (stats_.opsOffered >= opTarget_)
        return;
    const Tick gap = arrivals_->nextInterarrival(eq_.now());
    eq_.scheduleAfter(gap, [this] { onArrival(); });
}

void
ClientPool::onArrival()
{
    const Tick arrival = eq_.now();
    ++stats_.opsOffered;
    stats_.lastArrival = arrival;
    PendingOp p;
    // The key picker switches to the `latest` distribution inside a
    // flash-crowd window: the surge hammers recently-updated keys.
    WorkloadGenerator &g =
        flashGen_ != nullptr && arrivals_->inFlashCrowd(arrival)
            ? *flashGen_
            : gen_;
    p.op = g.next();
    p.arrival = arrival;
    p.tenant = arrivals_->pickTenant();
    // The timeline starts at arrival: queue wait is part of the
    // latency an open-loop client observes.
    p.tok = obs::attrBeginOp(opAttrClass(p.op.type), arrival);
    queue_.push_back(std::move(p));
    scheduleNextArrival();
    if (!freeSlots_.empty()) {
        const std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        dispatch(slot);
    }
}

void
ClientPool::dispatch(std::uint32_t slot)
{
    assert(!queue_.empty());
    PendingOp p = std::move(queue_.front());
    queue_.pop_front();
    const Tick issued = eq_.now();
    stats_.queueDelay.record(issued > p.arrival ? issued - p.arrival
                                                : 0);
    obs::attrMark(p.tok, obs::Stage::QueueDelay, issued);
    auto cb = [this, type = p.op.type, slot, arrival = p.arrival,
               tenant = p.tenant, tok = p.tok](
                  const QueryResult &res) {
        obs::attrFinishOp(tok, res.done);
        // Latency from arrival: queue delay included.
        record(type, slot, arrival, res);
        if (tenant < stats_.tenants.size()) {
            TenantStats &ts = stats_.tenants[tenant];
            const Tick lat =
                res.done > arrival ? res.done - arrival : 0;
            ts.latency.record(lat);
            ++ts.opsCompleted;
            const bool violated =
                ts.sloLatency > 0 && lat > ts.sloLatency;
            if (violated) {
                ++ts.sloViolations;
                ++stats_.sloViolations;
            }
            if (telem_ != nullptr && ts.sloLatency > 0)
                telem_->noteSloResult(res.done, violated);
        }
        if (!queue_.empty())
            dispatch(slot);
        else
            freeSlots_.push_back(slot);
    };
    obs::AttrOpScope attr_scope(p.tok);
    issueToEngine(p.op, std::move(cb));
}

void
ClientPool::record(WorkloadGenerator::OpType type,
                   std::uint32_t thread, Tick issued,
                   const QueryResult &res)
{
    const Tick latency = res.done > issued ? res.done - issued : 0;
    stats_.all.record(latency);
    const bool is_read = type == WorkloadGenerator::OpType::Read ||
                         type == WorkloadGenerator::OpType::Scan;
    obs::span(obs::Cat::Workload, thread, opTraceName(type), issued,
              res.done,
              {{"duringCkpt", res.duringCheckpoint ? 1u : 0u}});
    if (sampler_)
        sampler_(issued, res.done, res.duringCheckpoint, is_read);
    if (is_read)
        stats_.reads.record(latency);
    else
        stats_.writes.record(latency);
    if (res.duringCheckpoint) {
        stats_.duringCheckpoint.record(latency);
        if (is_read)
            stats_.readsDuringCheckpoint.record(latency);
        else
            stats_.writesDuringCheckpoint.record(latency);
    } else {
        stats_.outsideCheckpoint.record(latency);
    }
    ++stats_.opsCompleted;
    stats_.lastCompletion = std::max(stats_.lastCompletion, res.done);
}

} // namespace checkin
