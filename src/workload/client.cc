#include "workload/client.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

namespace checkin {

namespace {

const char *
opTraceName(WorkloadGenerator::OpType type)
{
    switch (type) {
      case WorkloadGenerator::OpType::Read: return "op.read";
      case WorkloadGenerator::OpType::Update: return "op.update";
      case WorkloadGenerator::OpType::Rmw: return "op.rmw";
      case WorkloadGenerator::OpType::Scan: return "op.scan";
      case WorkloadGenerator::OpType::Delete: return "op.delete";
    }
    return "op.unknown";
}

} // namespace

ClientPool::ClientPool(SimContext &ctx, KvEngine &engine,
                       const WorkloadSpec &spec,
                       std::uint32_t threads)
    : eq_(ctx.events()),
      engine_(engine),
      gen_(spec, engine.config().recordCount),
      opTarget_(spec.operationCount),
      threads_(threads)
{
    for (std::uint32_t t = 0; t < threads_; ++t) {
        obs::nameLane(obs::Cat::Workload, t,
                      "client" + std::to_string(t));
    }
}

void
ClientPool::start()
{
    started_ = true;
    stats_.firstIssue = eq_.now();
    for (std::uint32_t t = 0; t < threads_ && opsIssued_ < opTarget_;
         ++t) {
        issueNext(t);
    }
}

void
ClientPool::issueNext(std::uint32_t thread)
{
    if (opsIssued_ >= opTarget_)
        return;
    ++opsIssued_;
    const WorkloadGenerator::Op op = gen_.next();
    const Tick issued = eq_.now();
    auto cb = [this, type = op.type, thread,
               issued](const QueryResult &res) {
        record(type, thread, issued, res);
        issueNext(thread);
    };
    switch (op.type) {
      case WorkloadGenerator::OpType::Read:
        engine_.get(op.key, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Update:
        engine_.update(op.key, op.valueBytes, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Rmw:
        engine_.readModifyWrite(op.key, op.valueBytes,
                                std::move(cb));
        break;
      case WorkloadGenerator::OpType::Scan:
        engine_.scan(op.key, op.scanLength, std::move(cb));
        break;
      case WorkloadGenerator::OpType::Delete:
        engine_.erase(op.key, std::move(cb));
        break;
    }
}

void
ClientPool::record(WorkloadGenerator::OpType type,
                   std::uint32_t thread, Tick issued,
                   const QueryResult &res)
{
    const Tick latency = res.done > issued ? res.done - issued : 0;
    stats_.all.record(latency);
    const bool is_read = type == WorkloadGenerator::OpType::Read ||
                         type == WorkloadGenerator::OpType::Scan;
    obs::span(obs::Cat::Workload, thread, opTraceName(type), issued,
              res.done,
              {{"duringCkpt", res.duringCheckpoint ? 1u : 0u}});
    if (sampler_)
        sampler_(issued, res.done, res.duringCheckpoint, is_read);
    if (is_read)
        stats_.reads.record(latency);
    else
        stats_.writes.record(latency);
    if (res.duringCheckpoint) {
        stats_.duringCheckpoint.record(latency);
        if (is_read)
            stats_.readsDuringCheckpoint.record(latency);
        else
            stats_.writesDuringCheckpoint.record(latency);
    } else {
        stats_.outsideCheckpoint.record(latency);
    }
    ++stats_.opsCompleted;
    stats_.lastCompletion = std::max(stats_.lastCompletion, res.done);
}

} // namespace checkin
