/**
 * @file
 * YCSB-compatible workload definitions (paper §IV-A): workloads A, B,
 * C, F and the write-only workload WO, with uniform/zipfian/latest
 * request distributions and the mixed record-size patterns used by
 * the sector-aligned-journaling sensitivity study (Fig 13).
 */

#ifndef CHECKIN_WORKLOAD_YCSB_H_
#define CHECKIN_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/zipf.h"

namespace checkin {

/** Operation mix; proportions must sum to 1. */
struct WorkloadMix
{
    double read = 0.0;
    double update = 0.0;
    double readModifyWrite = 0.0;
    double scan = 0.0;
};

enum class Distribution : std::uint8_t
{
    Uniform,
    Zipfian, //!< scrambled zipfian (YCSB default request pattern)
    Latest,
};

const char *distributionName(Distribution d);

/** A complete workload description. */
struct WorkloadSpec
{
    std::string name = "workload-a";
    WorkloadMix mix{0.5, 0.5, 0.0};
    Distribution distribution = Distribution::Zipfian;
    /** Value sizes chosen uniformly per update. */
    std::vector<std::uint32_t> valueSizes{128, 256, 384, 512};
    /** Operations across all client threads. */
    std::uint64_t operationCount = 40'000;
    std::uint64_t seed = 42;
    /** Maximum scan length (scan lengths are uniform in [1, max]). */
    std::uint32_t maxScanLength = 64;

    // ------------------------------------------------------------------
    // YCSB presets (A, F and WO are the paper's evaluation set)
    // ------------------------------------------------------------------
    static WorkloadSpec a();  //!< 50 % read, 50 % update
    static WorkloadSpec b();  //!< 95 % read, 5 % update
    static WorkloadSpec c();  //!< 100 % read
    static WorkloadSpec d();  //!< 95 % read, 5 % update, latest dist
    static WorkloadSpec e();  //!< 95 % scan, 5 % update
    static WorkloadSpec f();  //!< 50 % read, 50 % read-modify-write
    static WorkloadSpec wo(); //!< write-only (100 % update)

    /** Mixed record-size patterns P1..P4 (Fig 13b), 1-based. */
    static std::vector<std::uint32_t>
    sizePattern(std::uint32_t pattern);
};

/** Draws operations of a WorkloadSpec. */
class WorkloadGenerator
{
  public:
    enum class OpType : std::uint8_t
    {
        Read,
        Update,
        Rmw,
        Scan,
        Delete, //!< not emitted by YCSB mixes; used by traces
    };

    struct Op
    {
        OpType type;
        std::uint64_t key;
        std::uint32_t valueBytes = 0; //!< for Update/Rmw
        std::uint32_t scanLength = 0; //!< for Scan
    };

    WorkloadGenerator(const WorkloadSpec &spec,
                      std::uint64_t key_count);

    /** Draw the next operation. */
    Op next();

    /** Deterministic per-key initial value size (for load). */
    std::uint32_t initialSize(std::uint64_t key) const;

    Rng &rng() { return rng_; }

  private:
    WorkloadSpec spec_;
    std::uint64_t keyCount_;
    Rng rng_;
    std::unique_ptr<KeyDistribution> dist_;
};

} // namespace checkin

#endif // CHECKIN_WORKLOAD_YCSB_H_
