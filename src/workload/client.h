/**
 * @file
 * Unified load driver: a pool of N logical client threads running a
 * WorkloadSpec against a StorageEngine in either loop mode of a
 * TrafficSpec (workload/traffic.h).
 *
 * Closed loop (default): each thread keeps exactly one query
 * outstanding — the paper's "number of threads" axis.
 *
 * Open loop: operations arrive on the TrafficSpec's arrival process,
 * independent of completions, and wait in an unbounded FIFO for one
 * of the N service slots. Latency is measured from *arrival*, so
 * client-side queue delay lands in the latency tail (and in
 * Stage::QueueDelay of the attribution timeline), with offered vs
 * achieved throughput and per-tenant SLO violations accounted in
 * ClientStats.
 */

#ifndef CHECKIN_WORKLOAD_CLIENT_H_
#define CHECKIN_WORKLOAD_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "engine/storage_engine.h"
#include "sim/event_queue.h"
#include "sim/histogram.h"
#include "sim/sim_context.h"
#include "workload/traffic.h"
#include "workload/ycsb.h"

namespace checkin {

/** Per-tenant progress and SLO accounting (open loop). */
struct TenantStats
{
    std::string name;
    Tick sloLatency = 0;
    LatencyHistogram latency;
    std::uint64_t opsCompleted = 0;
    std::uint64_t sloViolations = 0;
};

/** Latency and progress metrics of a client pool run. */
struct ClientStats
{
    LatencyHistogram all;
    LatencyHistogram reads;
    LatencyHistogram writes; //!< updates + RMWs
    LatencyHistogram duringCheckpoint;
    LatencyHistogram readsDuringCheckpoint;
    LatencyHistogram writesDuringCheckpoint;
    LatencyHistogram outsideCheckpoint;
    /** Open loop: arrival → issue wait for a free service slot. */
    LatencyHistogram queueDelay;
    std::uint64_t opsCompleted = 0;
    /** Open loop: arrivals generated (≥ opsCompleted mid-run). */
    std::uint64_t opsOffered = 0;
    /** Open loop: completions over any tenant's SLO latency. */
    std::uint64_t sloViolations = 0;
    Tick firstIssue = 0;
    Tick lastCompletion = 0;
    /** Open loop: last arrival tick (offered-rate denominator). */
    Tick lastArrival = 0;
    /** Open loop: one entry per TrafficSpec tenant. */
    std::vector<TenantStats> tenants;

    /** Wall-clock span of the run in ticks. */
    Tick
    span() const
    {
        return lastCompletion > firstIssue
                   ? lastCompletion - firstIssue
                   : 0;
    }

    /** Throughput in operations per simulated second. */
    double
    opsPerSec() const
    {
        return span() == 0
                   ? 0.0
                   : double(opsCompleted) * double(kSec) /
                         double(span());
    }

    /**
     * Offered arrival rate in ops per simulated second (open loop;
     * 0 in closed loop). Completions trail arrivals, so this is ≥
     * opsPerSec() by construction — the gap is the backlog the
     * engine could not absorb.
     */
    double
    offeredOpsPerSec() const
    {
        const Tick span = lastArrival > firstIssue
                              ? lastArrival - firstIssue
                              : 0;
        return span == 0 ? 0.0
                         : double(opsOffered) * double(kSec) /
                               double(span);
    }
};

/** Drives a WorkloadSpec against a StorageEngine per a TrafficSpec's
 *  loop mode. */
class ClientPool
{
  public:
    /** Closed-loop pool (historical interface). */
    ClientPool(SimContext &ctx, StorageEngine &engine,
               const WorkloadSpec &spec, std::uint32_t threads);

    /** Loop mode, arrival process, and tenants per @p traffic;
     *  @p threads is the thread count (closed) or service-slot
     *  count (open). */
    ClientPool(SimContext &ctx, StorageEngine &engine,
               const WorkloadSpec &spec, const TrafficSpec &traffic,
               std::uint32_t threads);

    /** Launch all threads' first operations / the arrival clock. */
    void start();

    /** True once every operation completed. */
    bool done() const { return stats_.opsCompleted >= opTarget_; }

    const ClientStats &stats() const { return stats_; }

    /** Per-operation sample hook (timelines, custom collectors).
     *  In open loop @p issued is the arrival tick. */
    using Sampler = std::function<void(Tick issued, Tick done,
                                       bool during_checkpoint,
                                       bool is_read)>;
    void setSampler(Sampler s) { sampler_ = std::move(s); }

  private:
    /** An arrival waiting for (or holding) a service slot. */
    struct PendingOp
    {
        WorkloadGenerator::Op op;
        obs::OpToken tok = obs::kNoOpToken;
        Tick arrival = 0;
        std::uint32_t tenant = 0;
    };

    void issueNext(std::uint32_t thread);
    void record(WorkloadGenerator::OpType type, std::uint32_t thread,
                Tick issued, const QueryResult &res);

    void scheduleNextArrival();
    void onArrival();
    void dispatch(std::uint32_t slot);
    void issueToEngine(const WorkloadGenerator::Op &op,
                       StorageEngine::QueryCb cb);

    EventQueue &eq_;
    StorageEngine &engine_;
    WorkloadGenerator gen_;
    TrafficSpec traffic_;
    std::uint64_t opTarget_;
    std::uint64_t opsIssued_ = 0;
    std::uint32_t threads_;
    ClientStats stats_;
    Sampler sampler_;
    /** Telemetry sampler of the run (nullptr: telemetry off). */
    obs::TelemetrySampler *telem_ = nullptr;
    bool started_ = false;

    // Open-loop state.
    std::optional<ArrivalEngine> arrivals_;
    /** Flash-crowd key picker: the workload's mix over the `latest`
     *  distribution, on its own deterministic stream. */
    std::unique_ptr<WorkloadGenerator> flashGen_;
    std::deque<PendingOp> queue_;
    std::vector<std::uint32_t> freeSlots_;
};

} // namespace checkin

#endif // CHECKIN_WORKLOAD_CLIENT_H_
