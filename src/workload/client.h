/**
 * @file
 * Closed-loop client pool: N logical application threads, each
 * keeping exactly one query outstanding against the engine (the
 * paper's "number of threads" axis), with latency capture split by
 * operation class and checkpoint overlap.
 */

#ifndef CHECKIN_WORKLOAD_CLIENT_H_
#define CHECKIN_WORKLOAD_CLIENT_H_

#include <cstdint>
#include <functional>

#include "engine/storage_engine.h"
#include "sim/event_queue.h"
#include "sim/histogram.h"
#include "sim/sim_context.h"
#include "workload/ycsb.h"

namespace checkin {

/** Latency and progress metrics of a client pool run. */
struct ClientStats
{
    LatencyHistogram all;
    LatencyHistogram reads;
    LatencyHistogram writes; //!< updates + RMWs
    LatencyHistogram duringCheckpoint;
    LatencyHistogram readsDuringCheckpoint;
    LatencyHistogram writesDuringCheckpoint;
    LatencyHistogram outsideCheckpoint;
    std::uint64_t opsCompleted = 0;
    Tick firstIssue = 0;
    Tick lastCompletion = 0;

    /** Wall-clock span of the run in ticks. */
    Tick
    span() const
    {
        return lastCompletion > firstIssue
                   ? lastCompletion - firstIssue
                   : 0;
    }

    /** Throughput in operations per simulated second. */
    double
    opsPerSec() const
    {
        return span() == 0
                   ? 0.0
                   : double(opsCompleted) * double(kSec) /
                         double(span());
    }
};

/** Drives a WorkloadSpec against a StorageEngine with closed-loop
 *  threads. */
class ClientPool
{
  public:
    ClientPool(SimContext &ctx, StorageEngine &engine,
               const WorkloadSpec &spec, std::uint32_t threads);

    /** Launch all threads' first operations. */
    void start();

    /** True once every operation completed. */
    bool done() const { return stats_.opsCompleted >= opTarget_; }

    const ClientStats &stats() const { return stats_; }

    /** Per-operation sample hook (timelines, custom collectors). */
    using Sampler = std::function<void(Tick issued, Tick done,
                                       bool during_checkpoint,
                                       bool is_read)>;
    void setSampler(Sampler s) { sampler_ = std::move(s); }

  private:
    void issueNext(std::uint32_t thread);
    void record(WorkloadGenerator::OpType type, std::uint32_t thread,
                Tick issued, const QueryResult &res);

    EventQueue &eq_;
    StorageEngine &engine_;
    WorkloadGenerator gen_;
    std::uint64_t opTarget_;
    std::uint64_t opsIssued_ = 0;
    std::uint32_t threads_;
    ClientStats stats_;
    Sampler sampler_;
    bool started_ = false;
};

} // namespace checkin

#endif // CHECKIN_WORKLOAD_CLIENT_H_
