/**
 * @file
 * Operation trace record/replay: capture a workload as a portable
 * text trace, replay it deterministically against an engine. Useful
 * for regression pinning, cross-configuration comparisons on an
 * identical request stream, and importing external traces.
 */

#ifndef CHECKIN_WORKLOAD_TRACE_H_
#define CHECKIN_WORKLOAD_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/ycsb.h"

namespace checkin {

/** A replayable operation sequence. */
class Trace
{
  public:
    using Op = WorkloadGenerator::Op;

    Trace() = default;

    /** Record @p count operations drawn from @p spec. */
    static Trace generate(const WorkloadSpec &spec,
                          std::uint64_t key_count,
                          std::uint64_t count);

    void add(const Op &op) { ops_.push_back(op); }
    const std::vector<Op> &ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }

    /**
     * Serialize as one line per op:
     *   R <key>            read
     *   U <key> <bytes>    update
     *   M <key> <bytes>    read-modify-write
     *   S <key> <len>      scan
     *   D <key>            delete
     */
    void save(std::ostream &os) const;

    /**
     * Parse the text format. Unknown or malformed lines throw
     * std::invalid_argument; blank lines and '#' comments are
     * skipped.
     */
    static Trace load(std::istream &is);

    bool
    operator==(const Trace &o) const
    {
        if (ops_.size() != o.ops_.size())
            return false;
        for (std::size_t i = 0; i < ops_.size(); ++i) {
            if (ops_[i].type != o.ops_[i].type ||
                ops_[i].key != o.ops_[i].key ||
                ops_[i].valueBytes != o.ops_[i].valueBytes ||
                ops_[i].scanLength != o.ops_[i].scanLength) {
                return false;
            }
        }
        return true;
    }

  private:
    std::vector<Op> ops_;
};

class StorageEngine;
class EventQueue;
class SimContext;

/** Closed-loop replay of a Trace against an engine. */
class TraceReplayer
{
  public:
    TraceReplayer(SimContext &ctx, StorageEngine &engine,
                  const Trace &trace, std::uint32_t threads);

    void start();
    bool done() const { return completed_ >= trace_.size(); }
    std::uint64_t completed() const { return completed_; }

  private:
    void issueNext();

    EventQueue &eq_;
    StorageEngine &engine_;
    const Trace &trace_;
    std::uint32_t threads_;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace checkin

#endif // CHECKIN_WORKLOAD_TRACE_H_
