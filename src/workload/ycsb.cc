#include "workload/ycsb.h"

#include <cassert>
#include <stdexcept>

namespace checkin {

const char *
distributionName(Distribution d)
{
    switch (d) {
      case Distribution::Uniform: return "uniform";
      case Distribution::Zipfian: return "zipfian";
      case Distribution::Latest: return "latest";
    }
    return "?";
}

WorkloadSpec
WorkloadSpec::a()
{
    WorkloadSpec s;
    s.name = "ycsb-a";
    s.mix = {0.5, 0.5, 0.0};
    return s;
}

WorkloadSpec
WorkloadSpec::b()
{
    WorkloadSpec s;
    s.name = "ycsb-b";
    s.mix = {0.95, 0.05, 0.0};
    return s;
}

WorkloadSpec
WorkloadSpec::c()
{
    WorkloadSpec s;
    s.name = "ycsb-c";
    s.mix = {1.0, 0.0, 0.0};
    return s;
}

WorkloadSpec
WorkloadSpec::d()
{
    WorkloadSpec s;
    s.name = "ycsb-d";
    s.mix = {0.95, 0.05, 0.0, 0.0};
    s.distribution = Distribution::Latest;
    return s;
}

WorkloadSpec
WorkloadSpec::e()
{
    WorkloadSpec s;
    s.name = "ycsb-e";
    s.mix = {0.0, 0.05, 0.0, 0.95};
    return s;
}

WorkloadSpec
WorkloadSpec::f()
{
    WorkloadSpec s;
    s.name = "ycsb-f";
    s.mix = {0.5, 0.0, 0.5};
    return s;
}

WorkloadSpec
WorkloadSpec::wo()
{
    WorkloadSpec s;
    s.name = "ycsb-wo";
    s.mix = {0.0, 1.0, 0.0};
    return s;
}

std::vector<std::uint32_t>
WorkloadSpec::sizePattern(std::uint32_t pattern)
{
    switch (pattern) {
      case 1: // small values only
        return {128, 256, 384, 512};
      case 2: // small to medium
        return {128, 256, 384, 512, 768, 1024};
      case 3: // medium to large
        return {512, 1024, 2048, 4096};
      case 4: // full range
        return {128, 256, 384, 512, 768, 1024, 1536, 2048, 3072,
                4096};
      default:
        throw std::invalid_argument("size pattern must be 1..4");
    }
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec &spec,
                                     std::uint64_t key_count)
    : spec_(spec), keyCount_(key_count), rng_(spec.seed)
{
    assert(key_count > 0);
    switch (spec_.distribution) {
      case Distribution::Uniform:
        dist_ = std::make_unique<UniformDistribution>(key_count);
        break;
      case Distribution::Zipfian:
        dist_ = std::make_unique<ScrambledZipfianDistribution>(
            key_count);
        break;
      case Distribution::Latest:
        dist_ = std::make_unique<LatestDistribution>(key_count);
        break;
    }
}

WorkloadGenerator::Op
WorkloadGenerator::next()
{
    Op op;
    op.key = dist_->next(rng_);
    const double roll = rng_.nextDouble();
    if (roll < spec_.mix.read) {
        op.type = OpType::Read;
    } else if (roll < spec_.mix.read + spec_.mix.update) {
        op.type = OpType::Update;
    } else if (roll < spec_.mix.read + spec_.mix.update +
                          spec_.mix.readModifyWrite) {
        op.type = OpType::Rmw;
    } else {
        op.type = OpType::Scan;
        op.scanLength = std::uint32_t(
            1 + rng_.nextBounded(spec_.maxScanLength));
    }
    if (op.type == OpType::Update || op.type == OpType::Rmw) {
        op.valueBytes = spec_.valueSizes[rng_.nextBounded(
            spec_.valueSizes.size())];
    }
    return op;
}

std::uint32_t
WorkloadGenerator::initialSize(std::uint64_t key) const
{
    return spec_.valueSizes[mix64(key ^ spec_.seed) %
                            spec_.valueSizes.size()];
}

} // namespace checkin
