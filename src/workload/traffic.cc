#include "workload/traffic.h"

#include <cassert>
#include <cmath>

namespace checkin {

const char *
loopModeName(LoopMode m)
{
    switch (m) {
        case LoopMode::Closed:
            return "closed";
        case LoopMode::Open:
            return "open";
    }
    return "?";
}

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
        case ArrivalProcess::Poisson:
            return "poisson";
        case ArrivalProcess::Mmpp:
            return "mmpp";
        case ArrivalProcess::Diurnal:
            return "diurnal";
    }
    return "?";
}

ArrivalEngine::ArrivalEngine(const TrafficSpec &spec,
                             std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
    assert(spec_.offeredOpsPerSec > 0.0);
    double total = 0.0;
    for (const TenantSpec &t : spec_.tenants)
        total += t.share;
    double acc = 0.0;
    for (const TenantSpec &t : spec_.tenants) {
        acc += t.share / total;
        tenantCdf_.push_back(acc);
    }
    if (!tenantCdf_.empty())
        tenantCdf_.back() = 1.0; // absorb rounding
}

Tick
ArrivalEngine::expDraw(double mean_ticks)
{
    // Inverse-CDF exponential; nextDouble() < 1 so the log argument
    // is strictly positive.
    const double u = rng_.nextDouble();
    const double g = -std::log(1.0 - u) * mean_ticks;
    if (g <= 1.0)
        return 1;
    return Tick(g);
}

void
ArrivalEngine::advanceState(Tick now)
{
    if (spec_.process != ArrivalProcess::Mmpp)
        return;
    if (!statePrimed_) {
        statePrimed_ = true;
        inBurst_ = false;
        stateUntil_ = now + expDraw(double(spec_.meanBaseDwell));
    }
    // Exponential dwells are memoryless, so re-drawing the remaining
    // dwell at each boundary crossing preserves the process law.
    while (now >= stateUntil_) {
        inBurst_ = !inBurst_;
        const double mean = inBurst_
                                ? double(spec_.meanBurstDwell)
                                : double(spec_.meanBaseDwell);
        stateUntil_ += expDraw(mean);
    }
}

double
ArrivalEngine::rateAt(Tick now) const
{
    double rate = spec_.offeredOpsPerSec;
    switch (spec_.process) {
        case ArrivalProcess::Poisson:
            break;
        case ArrivalProcess::Mmpp:
            if (inBurst_)
                rate *= spec_.burstMultiplier;
            break;
        case ArrivalProcess::Diurnal: {
            // Triangle wave in [-1, 1] over diurnalPeriod (no
            // transcendental calls; the shape only needs to be a
            // smooth-ish load curve).
            const Tick period = spec_.diurnalPeriod > 0
                                    ? spec_.diurnalPeriod
                                    : Tick(1);
            const double phase =
                double(now % period) / double(period);
            const double tri = phase < 0.5 ? 4.0 * phase - 1.0
                                           : 3.0 - 4.0 * phase;
            rate *= 1.0 + spec_.diurnalAmplitude * tri;
            break;
        }
    }
    if (inFlashCrowd(now))
        rate *= spec_.flashCrowdMultiplier;
    return rate > 1e-9 ? rate : 1e-9;
}

Tick
ArrivalEngine::nextInterarrival(Tick now)
{
    advanceState(now);
    const double rate = rateAt(now);
    return expDraw(double(kSec) / rate);
}

std::uint32_t
ArrivalEngine::pickTenant()
{
    if (tenantCdf_.empty())
        return 0;
    const double u = rng_.nextDouble();
    for (std::uint32_t i = 0; i < tenantCdf_.size(); ++i) {
        if (u < tenantCdf_[i])
            return i;
    }
    return std::uint32_t(tenantCdf_.size() - 1);
}

} // namespace checkin
