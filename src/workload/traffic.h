/**
 * @file
 * Open-loop traffic description and arrival-process engine.
 *
 * A TrafficSpec picks the load-driver loop mode shared by the
 * harness, cluster shards, and benches:
 *
 *  - Closed (default): N logical threads, each keeping exactly one
 *    query outstanding — the paper's "number of threads" axis.
 *    Latency excludes any client-side queueing by construction.
 *  - Open: operations arrive on their own clock, independent of
 *    completions, and wait in an unbounded FIFO for one of the N
 *    service slots. Latency is measured from *arrival*, so queue
 *    delay — the quantity closed-loop drivers structurally cannot
 *    see — shows up in the tail (Stage::QueueDelay in attribution).
 *
 * Arrival processes (all seeded via Rng::child streams, so a sweep
 * worker count never changes a drawn sequence):
 *
 *  - Poisson: constant-rate memoryless arrivals.
 *  - Mmpp: 2-state Markov-modulated Poisson process — exponential
 *    dwells alternate between a base state and a burst state whose
 *    rate is burstMultiplier * offered. The canonical bursty-traffic
 *    model; bursts are what separate adaptive from fixed checkpoint
 *    triggers at the tail.
 *  - Diurnal: triangle-wave load curve around the offered rate
 *    (period diurnalPeriod, peak-to-trough set by diurnalAmplitude).
 *
 * Orthogonally, a flash-crowd window multiplies the rate and directs
 * the extra traffic at recently-updated keys (the YCSB `latest`
 * distribution), and a tenant table splits offered load into shares
 * with per-tenant latency SLOs for violation accounting.
 */

#ifndef CHECKIN_WORKLOAD_TRAFFIC_H_
#define CHECKIN_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace checkin {

/** Load-driver loop mode (see file comment). */
enum class LoopMode : std::uint8_t
{
    Closed,
    Open,
};

const char *loopModeName(LoopMode m);

/** Open-loop arrival process family. */
enum class ArrivalProcess : std::uint8_t
{
    Poisson,
    Mmpp,
    Diurnal,
};

const char *arrivalProcessName(ArrivalProcess p);

/** One tenant's slice of an open-loop mix. */
struct TenantSpec
{
    std::string name = "tenant";
    /** Fraction of offered arrivals (normalized over all tenants). */
    double share = 1.0;
    /** Per-op latency SLO; completions above it count as
     *  violations. */
    Tick sloLatency = 2 * kMsec;
};

/** Complete load-driver description. */
struct TrafficSpec
{
    LoopMode mode = LoopMode::Closed;

    // --- open-loop arrivals -------------------------------------------
    ArrivalProcess process = ArrivalProcess::Poisson;
    /** Long-run offered rate, operations per simulated second. */
    double offeredOpsPerSec = 100'000.0;

    /** Mmpp: burst-state rate multiplier. */
    double burstMultiplier = 4.0;
    /** Mmpp: mean dwell in the base state. */
    Tick meanBaseDwell = 160 * kMsec;
    /** Mmpp: mean dwell in the burst state. */
    Tick meanBurstDwell = 40 * kMsec;

    /** Diurnal: load-curve period. */
    Tick diurnalPeriod = 2 * kSec;
    /** Diurnal: relative swing; rate spans offered * (1 ± A). */
    double diurnalAmplitude = 0.5;

    /** Flash crowd: window start tick (0 + duration 0 = none). */
    Tick flashCrowdStart = 0;
    Tick flashCrowdDuration = 0;
    /** Flash crowd: rate multiplier inside the window. */
    double flashCrowdMultiplier = 1.0;

    /** Tenants splitting the offered load; empty = one anonymous
     *  tenant without SLO accounting. */
    std::vector<TenantSpec> tenants;

    // --- deterministic stream ids (SimContext::deriveSeed) ------------
    static constexpr std::uint64_t kArrivalStream = 0x7AF1C0;
    static constexpr std::uint64_t kFlashKeyStream = 0x7AF1C1;

    /** True when any arrival lands inside the flash-crowd window. */
    bool
    hasFlashCrowd() const
    {
        return flashCrowdDuration > 0 && flashCrowdMultiplier != 1.0;
    }
};

/**
 * Draws interarrival gaps and tenant picks for a TrafficSpec.
 *
 * All randomness comes from the seed handed in at construction; the
 * sequence depends only on (spec, seed) and the arrival ticks it is
 * asked about, never on completions — the definition of open loop.
 */
class ArrivalEngine
{
  public:
    ArrivalEngine(const TrafficSpec &spec, std::uint64_t seed);

    /** Gap from @p now to the next arrival, ≥ 1 tick. */
    Tick nextInterarrival(Tick now);

    /** Tenant index of the next arrival (0 when no tenants). */
    std::uint32_t pickTenant();

    /** True when @p now falls inside the flash-crowd window. */
    bool
    inFlashCrowd(Tick now) const
    {
        return spec_.hasFlashCrowd() &&
               now >= spec_.flashCrowdStart &&
               now < spec_.flashCrowdStart + spec_.flashCrowdDuration;
    }

    /** Instantaneous offered rate at @p now, ops per second (the
     *  MMPP state is the one current after the last draw). */
    double rateAt(Tick now) const;

  private:
    void advanceState(Tick now);
    Tick expDraw(double mean_ticks);

    TrafficSpec spec_;
    Rng rng_;
    /** Normalized cumulative tenant shares. */
    std::vector<double> tenantCdf_;
    // MMPP state machine.
    bool inBurst_ = false;
    Tick stateUntil_ = 0;
    bool statePrimed_ = false;
};

} // namespace checkin

#endif // CHECKIN_WORKLOAD_TRAFFIC_H_
