#include "workload/trace.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "engine/storage_engine.h"
#include "sim/sim_context.h"

namespace checkin {

Trace
Trace::generate(const WorkloadSpec &spec, std::uint64_t key_count,
                std::uint64_t count)
{
    WorkloadGenerator gen(spec, key_count);
    Trace t;
    t.ops_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        t.ops_.push_back(gen.next());
    return t;
}

void
Trace::save(std::ostream &os) const
{
    using OpType = WorkloadGenerator::OpType;
    for (const Op &op : ops_) {
        switch (op.type) {
          case OpType::Read:
            os << "R " << op.key << "\n";
            break;
          case OpType::Update:
            os << "U " << op.key << " " << op.valueBytes << "\n";
            break;
          case OpType::Rmw:
            os << "M " << op.key << " " << op.valueBytes << "\n";
            break;
          case OpType::Scan:
            os << "S " << op.key << " " << op.scanLength << "\n";
            break;
          case OpType::Delete:
            os << "D " << op.key << "\n";
            break;
        }
    }
}

Trace
Trace::load(std::istream &is)
{
    using OpType = WorkloadGenerator::OpType;
    Trace t;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char kind = 0;
        Op op;
        ls >> kind;
        auto bad = [&] {
            throw std::invalid_argument(
                "trace parse error at line " +
                std::to_string(lineno) + ": '" + line + "'");
        };
        switch (kind) {
          case 'R':
            op.type = OpType::Read;
            if (!(ls >> op.key))
                bad();
            break;
          case 'U':
            op.type = OpType::Update;
            if (!(ls >> op.key >> op.valueBytes))
                bad();
            break;
          case 'M':
            op.type = OpType::Rmw;
            if (!(ls >> op.key >> op.valueBytes))
                bad();
            break;
          case 'S':
            op.type = OpType::Scan;
            if (!(ls >> op.key >> op.scanLength))
                bad();
            break;
          case 'D':
            op.type = OpType::Delete;
            if (!(ls >> op.key))
                bad();
            break;
          default:
            bad();
        }
        t.ops_.push_back(op);
    }
    return t;
}

TraceReplayer::TraceReplayer(SimContext &ctx, StorageEngine &engine,
                             const Trace &trace,
                             std::uint32_t threads)
    : eq_(ctx.events()),
      engine_(engine),
      trace_(trace),
      threads_(threads)
{
}

void
TraceReplayer::start()
{
    for (std::uint32_t t = 0; t < threads_ && issued_ < trace_.size();
         ++t) {
        issueNext();
    }
}

void
TraceReplayer::issueNext()
{
    using OpType = WorkloadGenerator::OpType;
    if (issued_ >= trace_.size())
        return;
    const Trace::Op &op = trace_.ops()[issued_++];
    auto cb = [this](const QueryResult &) {
        ++completed_;
        issueNext();
    };
    switch (op.type) {
      case OpType::Read:
        engine_.get(op.key, std::move(cb));
        break;
      case OpType::Update:
        engine_.update(op.key, op.valueBytes, std::move(cb));
        break;
      case OpType::Rmw:
        engine_.readModifyWrite(op.key, op.valueBytes,
                                std::move(cb));
        break;
      case OpType::Scan:
        engine_.scan(op.key, op.scanLength, std::move(cb));
        break;
      case OpType::Delete:
        engine_.erase(op.key, std::move(cb));
        break;
    }
}

} // namespace checkin
