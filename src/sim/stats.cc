#include "sim/stats.h"

#include <sstream>

namespace checkin {

std::string
StatRegistry::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, id] : index_) {
        if (!prefix.empty() && name.rfind(prefix, 0) != 0)
            continue;
        os << name << " = " << values_[id] << "\n";
    }
    return os.str();
}

} // namespace checkin
