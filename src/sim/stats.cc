#include "sim/stats.h"

#include <sstream>

namespace checkin {

std::string
StatRegistry::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_) {
        if (!prefix.empty() && name.rfind(prefix, 0) != 0)
            continue;
        os << name << " = " << value << "\n";
    }
    return os.str();
}

} // namespace checkin
