/**
 * @file
 * Log-linear latency histogram for percentile reporting.
 *
 * HdrHistogram-style layout: values are bucketed by power-of-two
 * magnitude with a fixed number of linear sub-buckets per magnitude,
 * giving a bounded relative error (< 1/kSubBuckets) at every scale.
 */

#ifndef CHECKIN_SIM_HISTOGRAM_H_
#define CHECKIN_SIM_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace checkin {

/** Fixed-precision value histogram supporting quantile queries. */
class LatencyHistogram
{
  public:
    /** Linear sub-buckets per power-of-two magnitude. */
    static constexpr int kSubBucketBits = 6;
    static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;

    LatencyHistogram();

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Record @p count identical samples. */
    void record(std::uint64_t value, std::uint64_t count);

    /** Total recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Sum of all recorded samples (exact). */
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Largest recorded sample (exact). */
    std::uint64_t max() const { return max_; }

    /** Smallest recorded sample (exact); 0 when empty. */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /**
     * Value at quantile @p q in [0, 1]; e.g. 0.999 for p99.9.
     * Returns an upper bound of the bucket containing the quantile.
     * Edge cases are exact: q <= 0 returns min(), q >= 1 returns
     * max(), and an empty histogram returns 0 for every q.
     */
    std::uint64_t quantile(double q) const;

    /** Merge another histogram into this one. */
    void merge(const LatencyHistogram &other);

    /** Drop all samples. */
    void reset();

  private:
    static std::size_t bucketIndex(std::uint64_t value);
    static std::uint64_t bucketUpperBound(std::size_t index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
};

} // namespace checkin

#endif // CHECKIN_SIM_HISTOGRAM_H_
