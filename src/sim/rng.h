/**
 * @file
 * Small deterministic PRNG (xoshiro256**) used across the simulator.
 *
 * std::mt19937_64 is avoided deliberately: its state is large and its
 * distributions are not bit-reproducible across standard libraries,
 * which would make golden-value tests fragile.
 */

#ifndef CHECKIN_SIM_RNG_H_
#define CHECKIN_SIM_RNG_H_

#include <cstdint>

namespace checkin {

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation would need
        // 128-bit ops; modulo bias is < 2^-40 for our bounds (< 2^24)
        // so a plain modulo is fine and simpler to reason about.
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/** Stateless 64-bit mix; used to derive content tokens. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace checkin

#endif // CHECKIN_SIM_RNG_H_
