/**
 * @file
 * Small deterministic PRNG (xoshiro256**) used across the simulator.
 *
 * std::mt19937_64 is avoided deliberately: its state is large and its
 * distributions are not bit-reproducible across standard libraries,
 * which would make golden-value tests fragile.
 */

#ifndef CHECKIN_SIM_RNG_H_
#define CHECKIN_SIM_RNG_H_

#include <cstdint>

namespace checkin {

/**
 * One SplitMix64 step: advances @p x by the golden-gamma increment
 * and returns the finalized output. The standard seed expander and
 * stream deriver recommended by the xoshiro authors.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : seed_(seed)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Seed this generator was constructed with (its identity; not
     *  affected by drawing values). */
    std::uint64_t seed() const { return seed_; }

    /**
     * Deterministic seed of child stream @p streamId.
     *
     * Two SplitMix64 finalizations over (seed, streamId): the parent
     * seed is first expanded so nearby seeds land far apart, then the
     * stream id selects along the expanded sequence. The result
     * depends only on the construction seed — never on how many
     * values were drawn — so components can derive streams in any
     * order (and on any thread) and still agree. Distinct stream ids
     * give statistically independent sequences (tested in
     * tests/test_rng_zipf.cc).
     */
    std::uint64_t
    childSeed(std::uint64_t streamId) const
    {
        std::uint64_t x = seed_;
        std::uint64_t z = splitmix64(x) + streamId;
        return splitmix64(z);
    }

    /** Child generator on stream @p streamId (see childSeed). */
    Rng
    child(std::uint64_t streamId) const
    {
        return Rng(childSeed(streamId));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation would need
        // 128-bit ops; modulo bias is < 2^-40 for our bounds (< 2^24)
        // so a plain modulo is fine and simpler to reason about.
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t seed_;
    std::uint64_t state_[4];
};

/** Stateless 64-bit mix; used to derive content tokens. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace checkin

#endif // CHECKIN_SIM_RNG_H_
