#include "sim/zipf.h"

#include <cassert>
#include <cmath>

namespace checkin {

UniformDistribution::UniformDistribution(std::uint64_t item_count)
    : itemCount_(item_count)
{
    assert(item_count > 0);
}

std::uint64_t
UniformDistribution::next(Rng &rng)
{
    return rng.nextBounded(itemCount_);
}

ZipfianDistribution::ZipfianDistribution(std::uint64_t item_count,
                                         double theta)
    : itemCount_(item_count), theta_(theta)
{
    assert(item_count > 0);
    assert(theta > 0.0 && theta < 1.0);
    zetan_ = zeta(itemCount_, theta_);
    zeta2theta_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / double(itemCount_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
}

double
ZipfianDistribution::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(double(i), theta);
    return sum;
}

std::uint64_t
ZipfianDistribution::next(Rng &rng)
{
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto idx = std::uint64_t(
        double(itemCount_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= itemCount_ ? itemCount_ - 1 : idx;
}

ScrambledZipfianDistribution::ScrambledZipfianDistribution(
        std::uint64_t item_count, double theta)
    : itemCount_(item_count), zipf_(item_count, theta)
{
}

std::uint64_t
ScrambledZipfianDistribution::next(Rng &rng)
{
    return mix64(zipf_.next(rng)) % itemCount_;
}

LatestDistribution::LatestDistribution(std::uint64_t item_count)
    : itemCount_(item_count), zipf_(item_count)
{
}

std::uint64_t
LatestDistribution::next(Rng &rng)
{
    const std::uint64_t off = zipf_.next(rng);
    return itemCount_ - 1 - off;
}

} // namespace checkin
