/**
 * @file
 * Busy-timeline resource model.
 *
 * A Resource represents a serially-occupied hardware unit (a flash
 * die, a channel, a bus). Callers reserve the resource for a duration
 * starting no earlier than a given tick; the reservation begins at
 * max(earliest, resource free time) and the resource is busy until the
 * reservation ends. This models queueing delay without explicit queue
 * events, which is sufficient because all requesters learn their
 * completion tick at submission time.
 */

#ifndef CHECKIN_SIM_RESOURCE_H_
#define CHECKIN_SIM_RESOURCE_H_

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace checkin {

/** One serially-shared hardware unit with a busy-until timeline. */
class Resource
{
  public:
    explicit Resource(std::string name = "resource")
        : name_(std::move(name))
    {
    }

    /** Earliest tick a new reservation could start. */
    Tick freeAt() const { return freeAt_; }

    /**
     * Reserve the resource for @p duration, starting no earlier than
     * @p earliest.
     * @return the tick at which the reservation completes.
     */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        const Tick start = earliest > freeAt_ ? earliest : freeAt_;
        freeAt_ = start + duration;
        busyTicks_ += duration;
        ++reservations_;
        return freeAt_;
    }

    /** Total busy time accumulated. */
    Tick busyTicks() const { return busyTicks_; }

    /** Number of reservations made. */
    std::uint64_t reservations() const { return reservations_; }

    const std::string &name() const { return name_; }

    /** True when the resource is idle at @p now. */
    bool idleAt(Tick now) const { return freeAt_ <= now; }

  private:
    std::string name_;
    Tick freeAt_ = 0;
    Tick busyTicks_ = 0;
    std::uint64_t reservations_ = 0;
};

} // namespace checkin

#endif // CHECKIN_SIM_RESOURCE_H_
