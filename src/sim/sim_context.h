/**
 * @file
 * Per-run simulation context.
 *
 * A SimContext owns everything one simulated system instance needs —
 * the discrete-event queue (and with it the simulated clock), the
 * run's root RNG, pointers to the run's observability sinks (tracer
 * and metrics registry), and the run identity (name + seed). It is
 * constructed once per experiment run and threaded explicitly through
 * every layer (nand/, ftl/, ssd/, engine/, workload/, harness/), so a
 * whole simulation is self-contained: two SimContexts share no
 * mutable state and can run on different threads concurrently. This
 * is what makes experiment sweeps embarrassingly parallel (see
 * harness/sweep.h).
 *
 * Trace probes (obs::span & friends) do not take a context argument
 * on every call; instead they consult a thread_local probe target
 * that SimContextScope installs from the active context. A worker
 * thread activates a context with SimContextScope before running the
 * simulation and every probe on that thread then records into that
 * run's tracer only.
 */

#ifndef CHECKIN_SIM_SIM_CONTEXT_H_
#define CHECKIN_SIM_SIM_CONTEXT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "obs/attribution.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace checkin {

namespace obs {
class MetricsRegistry;
class TelemetrySampler;
} // namespace obs

class FaultPlan;

/** Everything one simulation instance owns; never shared. */
class SimContext
{
  public:
    static constexpr std::uint64_t kDefaultSeed = 42;

    explicit SimContext(std::uint64_t seed = kDefaultSeed,
                        std::string run_name = {})
        : seed_(seed), runName_(std::move(run_name)), rootRng_(seed)
    {
    }

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /** The run's event queue (owns the simulated clock). */
    EventQueue &events() { return eq_; }
    const EventQueue &events() const { return eq_; }

    /** Current simulated time (events().now()). */
    Tick now() const { return eq_.now(); }

    /** Root RNG; component streams should use deriveSeed instead of
     *  drawing from it so seeding stays order-independent. */
    Rng &rootRng() { return rootRng_; }

    /** Seed the context was built with (the run's identity seed). */
    std::uint64_t seed() const { return seed_; }

    /**
     * Deterministic per-stream seed: the same (context seed, stream)
     * pair always yields the same value, independent of when or on
     * which thread it is requested.
     */
    std::uint64_t
    deriveSeed(std::uint64_t stream) const
    {
        return mix64(seed_ ^ mix64(stream + 1));
    }

    /** Human-readable run identity ("" when unnamed). */
    const std::string &runName() const { return runName_; }

    /** The run's tracer (nullptr: tracing off for this run). */
    obs::Tracer *tracer() const { return tracer_; }
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    /** The run's metrics registry (nullptr when not collected). */
    obs::MetricsRegistry *metrics() const { return metrics_; }
    void setMetrics(obs::MetricsRegistry *m) { metrics_ = m; }

    /** The run's latency-attribution collector (nullptr: off). */
    obs::AttributionCollector *attribution() const { return attr_; }
    void setAttribution(obs::AttributionCollector *a) { attr_ = a; }

    /** The run's fault plan (nullptr: fault-free hardware). */
    FaultPlan *faults() const { return faults_; }
    void setFaults(FaultPlan *f) { faults_ = f; }

    /**
     * The run's telemetry sampler (nullptr: telemetry off). Layers
     * capture the pointer at construction and register probes /
     * emit events through it; every use is a pointer + flag check
     * (obs/telemetry.h), so a run without telemetry pays nothing.
     */
    obs::TelemetrySampler *telemetry() const { return telemetry_; }
    void setTelemetry(obs::TelemetrySampler *t) { telemetry_ = t; }

  private:
    std::uint64_t seed_;
    std::string runName_;
    EventQueue eq_;
    Rng rootRng_;
    obs::Tracer *tracer_ = nullptr;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::AttributionCollector *attr_ = nullptr;
    FaultPlan *faults_ = nullptr;
    obs::TelemetrySampler *telemetry_ = nullptr;
};

namespace detail {
/** The thread's active context; nullptr outside a scope. */
inline thread_local SimContext *t_current_context = nullptr;
} // namespace detail

/** Context activated on this thread (nullptr when none). */
inline SimContext *
currentSimContext()
{
    return detail::t_current_context;
}

/**
 * RAII activation: makes @p ctx the calling thread's current context
 * and, when the context carries a tracer, installs it as the thread's
 * probe target. Restores both on destruction. Scopes nest.
 *
 * When ctx.tracer() is nullptr an already-installed ambient tracer is
 * left in place (callers that wrap a run in their own TraceScope keep
 * receiving its events, as before).
 */
class SimContextScope
{
  public:
    explicit SimContextScope(SimContext &ctx)
        : prevCtx_(detail::t_current_context),
          prevTracer_(obs::installedTracer()),
          prevAttr_(obs::installedAttribution())
    {
        detail::t_current_context = &ctx;
        if (ctx.tracer() != nullptr)
            obs::installTracer(ctx.tracer());
        if (ctx.attribution() != nullptr)
            obs::installAttribution(ctx.attribution());
    }

    ~SimContextScope()
    {
        obs::installAttribution(prevAttr_);
        obs::installTracer(prevTracer_);
        detail::t_current_context = prevCtx_;
    }

    SimContextScope(const SimContextScope &) = delete;
    SimContextScope &operator=(const SimContextScope &) = delete;

  private:
    SimContext *prevCtx_;
    obs::Tracer *prevTracer_;
    obs::AttributionCollector *prevAttr_;
};

} // namespace checkin

#endif // CHECKIN_SIM_SIM_CONTEXT_H_
