#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace checkin {

void
EventQueue::schedule(Tick when, Callback cb)
{
    assert(cb && "null event callback");
    if (when < now_)
        when = now_;
    events_.push(Event{when, nextSeq_++, std::move(cb)});
}

Tick
EventQueue::nextEventTick() const
{
    if (events_.empty())
        return kInvalidAddr;
    return events_.top().when;
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // priority_queue::top() returns const&; move via const_cast is the
    // standard idiom for pop-with-move and is safe because the element
    // is removed immediately afterwards.
    Event ev = std::move(const_cast<Event &>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ++dispatched_;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!events_.empty() && events_.top().when <= limit) {
        step();
        ++n;
    }
    if (now_ < limit && events_.empty())
        now_ = limit;
    return n;
}

} // namespace checkin
