#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace checkin {

namespace {

/** Comparator adapter for the std::upper_bound in insertActive. */
struct DispatchesBefore
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }
};

/**
 * Trim threshold for the active window's consumed prefix: an
 * in-window schedule first drops already-dispatched events when more
 * than this many have accumulated, so long same-window cascades reuse
 * storage instead of growing the vector without bound.
 */
constexpr std::size_t kActiveTrim = 4096;

} // namespace

void
EventQueue::insertActive(Event ev)
{
    if (activeIdx_ >= kActiveTrim) {
        active_.erase(active_.begin(),
                      active_.begin() +
                          std::ptrdiff_t(activeIdx_));
        activeIdx_ = 0;
    }
    // The new event carries the largest seq, so among equal ticks it
    // lands last: upper_bound over the undispatched suffix keeps the
    // FIFO-per-tick contract. The common cases degenerate to O(1):
    // a tick at/past every remaining event appends at the end.
    const auto pos =
        std::upper_bound(active_.begin() +
                             std::ptrdiff_t(activeIdx_),
                         active_.end(), ev, DispatchesBefore{});
    active_.insert(pos, std::move(ev));
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    assert(cb && "null event callback");
    if (when < now_) {
        when = now_;
        ++clamped_;
    }
    Event ev{when, nextSeq_++, std::move(cb)};
    ++pending_;
    if (when < windowEnd()) {
        // Includes ticks behind windowStart_ (possible after runUntil
        // peeked ahead): the active window absorbs everything below
        // its end, so wheel buckets behind the window stay empty.
        insertActive(std::move(ev));
    } else if (when < wheelLimit()) {
        const std::size_t b = bucketOf(when);
        wheel_[b].push_back(std::move(ev));
        markBucket(b);
        ++wheelCount_;
    } else {
        overflow_.push_back(std::move(ev));
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
}

Tick
EventQueue::nextEventTick() const
{
    if (pending_ == 0)
        return kInvalidTick;
    if (activeIdx_ < active_.size())
        return active_[activeIdx_].when;
    // Cold path (active window drained): scan the far tiers. Only
    // harness edges and tests peek here; dispatch itself refills.
    Tick best = kInvalidTick;
    for (const std::vector<Event> &bucket : wheel_) {
        for (const Event &ev : bucket)
            best = std::min(best, ev.when);
    }
    if (!overflow_.empty())
        best = std::min(best, overflow_.front().when);
    return best;
}

std::size_t
EventQueue::nextOccupiedDistance(std::size_t start) const
{
    // Distances partition into word-aligned segments: the iteration
    // at distance i covers buckets (start+i) .. end-of-word, so the
    // whole circle is swept in at most kBucketCount/64 + 1 probes.
    // Distance kBucketCount (bucket `start` itself, holding only
    // later-rotation events) is a valid answer.
    for (std::size_t i = 1; i <= kBucketCount;) {
        const std::size_t b = (start + i) & (kBucketCount - 1);
        const std::uint64_t word = wheelBits_[b >> 6] >> (b & 63);
        if (word != 0)
            return i + std::size_t(std::countr_zero(word));
        i += 64 - (b & 63);
    }
    return 0;
}

bool
EventQueue::refill()
{
    active_.clear();
    activeIdx_ = 0;
    while (pending_ > 0) {
        // Next window: the earlier of the first wheel bucket holding
        // any event and the overflow top's window. Buckets multiplex
        // rotations, so a probed bucket may hold only later-rotation
        // events — the harvest below filters and the loop advances.
        Tick next = kInvalidTick;
        if (wheelCount_ > 0) {
            const std::size_t dist =
                nextOccupiedDistance(bucketOf(windowStart_));
            assert(dist > 0 &&
                   "wheelCount_ > 0 but no occupied bucket");
            next = windowStart_ + Tick(dist) * kBucketTicks;
        }
        if (!overflow_.empty()) {
            next = std::min(
                next, alignDown(overflow_.front().when,
                                kBucketTicks));
        }
        assert(next != kInvalidTick && "pending events unaccounted");
        windowStart_ = next;
        const Tick end = windowEnd();

        std::vector<Event> &bucket = wheel_[bucketOf(next)];
        std::size_t keep = 0;
        for (Event &ev : bucket) {
            if (ev.when < end) {
                active_.push_back(std::move(ev));
                --wheelCount_;
            } else {
                bucket[keep++] = std::move(ev);
            }
        }
        bucket.resize(keep);
        if (keep == 0)
            unmarkBucket(bucketOf(next));
        while (!overflow_.empty() &&
               overflow_.front().when < end) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          Later{});
            active_.push_back(std::move(overflow_.back()));
            overflow_.pop_back();
        }
        if (!active_.empty()) {
            std::sort(active_.begin(), active_.end(),
                      DispatchesBefore{});
            return true;
        }
    }
    return false;
}

bool
EventQueue::step()
{
    if (activeIdx_ >= active_.size() && !refill())
        return false;
    // Move the callback out before invoking: the callback may
    // schedule into the active window and reallocate the vector.
    Event &slot = active_[activeIdx_];
    Callback cb = std::move(slot.cb);
    now_ = slot.when;
    ++activeIdx_;
    --pending_;
    ++dispatched_;
    cb();
    if (now_ >= hookDue_) {
        // Disarm before the call: the hook re-arms itself (and may
        // schedule events), so a throwing or lazy hook cannot fire
        // twice for one deadline.
        hookDue_ = kInvalidTick;
        hookFn_(hookCtx_, now_);
    }
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (true) {
        if (activeIdx_ >= active_.size() && !refill())
            break;
        if (active_[activeIdx_].when > limit)
            break;
        step();
        ++n;
    }
    if (now_ < limit && pending_ == 0)
        now_ = limit;
    return n;
}

void
EventQueue::clear()
{
    // Swap with fresh containers: dropping n events costs O(n)
    // destructor calls and releases the storage wholesale; a queue
    // that is refilled afterwards regrows on demand.
    std::vector<Event>().swap(active_);
    activeIdx_ = 0;
    for (std::vector<Event> &bucket : wheel_) {
        if (!bucket.empty())
            std::vector<Event>().swap(bucket);
    }
    std::vector<Event>().swap(overflow_);
    wheelBits_.fill(0);
    wheelCount_ = 0;
    pending_ = 0;
    windowStart_ = alignDown(now_, kBucketTicks);
}

} // namespace checkin
