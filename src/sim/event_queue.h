/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * Events are arbitrary callbacks scheduled at absolute ticks. Ties are
 * broken by insertion order so the simulation is fully deterministic.
 */

#ifndef CHECKIN_SIM_EVENT_QUEUE_H_
#define CHECKIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace checkin {

/**
 * Deterministic discrete-event queue.
 *
 * The queue owns the simulation clock: now() advances only when an
 * event is dispatched. Scheduling in the past is a programming error
 * and is clamped to now() with an assertion in debug builds.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute tick @p when (>= now()). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Tick of the next pending event; kInvalidAddr when empty. */
    Tick nextEventTick() const;

    /**
     * Dispatch the next event, advancing the clock.
     * @retval true an event ran; false when the queue was empty.
     */
    bool step();

    /** Run until the queue drains. Returns dispatched event count. */
    std::uint64_t run();

    /**
     * Run until the queue drains or the clock passes @p limit.
     * Events scheduled at exactly @p limit still run.
     */
    std::uint64_t runUntil(Tick limit);

    /** Total events dispatched since construction. */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * Drop every pending event without running it ("power cut").
     * The clock keeps its current value; crash-recovery tests use
     * this to abandon all in-flight host work.
     */
    void
    clear()
    {
        // Swap with a fresh container: dropping n events costs O(n)
        // destructor calls instead of O(n log n) heap pops. The old
        // storage (and its capacity) is released wholesale; a queue
        // that is refilled afterwards regrows its vector on demand.
        std::priority_queue<Event, std::vector<Event>, Later> empty;
        events_.swap(empty);
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
};

} // namespace checkin

#endif // CHECKIN_SIM_EVENT_QUEUE_H_
