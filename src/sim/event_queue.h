/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * Events are arbitrary callbacks scheduled at absolute ticks. Ties are
 * broken by insertion order so the simulation is fully deterministic.
 *
 * Internally the queue is a two-tier calendar queue tuned for the
 * near-monotonic schedule pattern of this simulator (most events land
 * within a few NAND page latencies of now()):
 *
 *  - an *active window* of kBucketTicks ticks whose events sit in one
 *    sorted vector and dispatch by bumping an index;
 *  - a wheel of kBucketCount fixed-width buckets covering the near
 *    future, appended to in O(1) and sorted only when the window
 *    reaches them;
 *  - a binary min-heap for the far future (checkpoint timers, erase
 *    completions) that drains into the wheel as the window advances.
 *
 * The dispatch order is exactly the (tick, seq) order of the classic
 * binary-heap implementation — the golden determinism test in
 * tests/test_event_queue_golden.cc holds the two bit-for-bit equal —
 * but the common schedule/dispatch pair is O(1) amortized with no
 * per-event allocation (see sim/inline_event.h).
 */

#ifndef CHECKIN_SIM_EVENT_QUEUE_H_
#define CHECKIN_SIM_EVENT_QUEUE_H_

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/inline_event.h"
#include "sim/types.h"

namespace checkin {

/**
 * Deterministic discrete-event queue.
 *
 * The queue owns the simulation clock: now() advances only when an
 * event is dispatched. Scheduling in the past is a programming error
 * and is clamped to now() with an assertion in debug builds; clamps
 * are counted (clampedSchedules()) and surfaced in run artifacts so
 * silent model bugs stay visible in release runs.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute tick @p when (>= now()). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** True when no events remain. */
    bool
    empty() const
    {
        return pending_ == 0;
    }

    /** Number of pending events. */
    std::size_t pending() const { return pending_; }

    /** Tick of the next pending event; kInvalidTick when empty. */
    Tick nextEventTick() const;

    /**
     * Dispatch the next event, advancing the clock.
     * @retval true an event ran; false when the queue was empty.
     */
    bool step();

    /** Run until the queue drains. Returns dispatched event count. */
    std::uint64_t run();

    /**
     * Run until the queue drains or the clock passes @p limit.
     * Events scheduled at exactly @p limit still run.
     */
    std::uint64_t runUntil(Tick limit);

    /** Total events dispatched since construction. */
    std::uint64_t dispatched() const { return dispatched_; }

    /** Past-tick schedules clamped to now() since construction. */
    std::uint64_t clampedSchedules() const { return clamped_; }

    /**
     * Drop every pending event without running it ("power cut").
     * The clock keeps its current value; crash-recovery tests use
     * this to abandon all in-flight host work.
     */
    void clear();

    /**
     * Post-dispatch sampling hook (obs/telemetry.h): once installed,
     * @p fn(ctx, now()) runs right after the event whose dispatch
     * advanced the clock to the armed tick or beyond. The hook is
     * disarmed before the call and must re-arm itself through
     * setStepHookDue(), so it fires at most once per armed deadline
     * and a hook that stops re-arming costs nothing. When disarmed
     * (the default) a step pays exactly one always-false compare —
     * bench_kernel gates that this is unmeasurable.
     */
    using StepHookFn = void (*)(void *ctx, Tick now);

    /** Install @p fn as the step hook (disarmed until armed). */
    void
    installStepHook(StepHookFn fn, void *ctx)
    {
        hookFn_ = fn;
        hookCtx_ = ctx;
        hookDue_ = kInvalidTick;
    }

    /** Remove the step hook and disarm it. */
    void
    clearStepHook()
    {
        hookFn_ = nullptr;
        hookCtx_ = nullptr;
        hookDue_ = kInvalidTick;
    }

    /** Arm the hook to fire at the first dispatch at/after @p due. */
    void
    setStepHookDue(Tick due)
    {
        hookDue_ = hookFn_ != nullptr ? due : kInvalidTick;
    }

    /** Armed deadline; kInvalidTick when disarmed. */
    Tick stepHookDue() const { return hookDue_; }

    /** Calendar geometry (exposed for tests and PERF.md tuning). */
    static constexpr Tick kBucketTicks = 1 << 13; // 8.192 us windows
    static constexpr std::size_t kBucketCount = 256; // ~2 ms horizon
    static_assert((kBucketCount & (kBucketCount - 1)) == 0 &&
                      kBucketCount % 64 == 0,
                  "bucket count must be a power of two, whole words");

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Strict-weak "dispatches earlier" order. */
    static bool
    earlier(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** std::*_heap comparator for the far-future min-heap. */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return earlier(b, a);
        }
    };

    /** First tick past the active window. */
    Tick
    windowEnd() const
    {
        return windowStart_ + kBucketTicks;
    }

    /** First tick past the wheel's reach. */
    Tick
    wheelLimit() const
    {
        return windowStart_ + kBucketTicks * kBucketCount;
    }

    /** Wheel bucket holding tick @p when. */
    static std::size_t
    bucketOf(Tick when)
    {
        return std::size_t(when / kBucketTicks) % kBucketCount;
    }

    /**
     * Window-distance (in buckets, 1..kBucketCount) from @p start to
     * the nearest occupied wheel bucket, walking the occupancy bitmap
     * a word at a time. Pre: wheelCount_ > 0.
     */
    std::size_t nextOccupiedDistance(std::size_t start) const;

    void
    markBucket(std::size_t b)
    {
        wheelBits_[b >> 6] |= std::uint64_t{1} << (b & 63);
    }

    void
    unmarkBucket(std::size_t b)
    {
        wheelBits_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }

    /** Insert into the (sorted) active window. */
    void insertActive(Event ev);

    /**
     * Advance the window to the next bucket that yields at least one
     * event and load it into active_.
     * @retval false the queue is empty (active_ left drained).
     */
    bool refill();

    // Tier 1: the active window — sorted by (when, seq), consumed by
    // bumping activeIdx_; the consumed prefix is trimmed lazily.
    std::vector<Event> active_;
    std::size_t activeIdx_ = 0;

    // Tier 2a: near-future wheel. Buckets are unsorted append-only
    // vectors; bucketOf() maps several rotations onto one bucket, so
    // refill() only harvests events inside the window it opens.
    std::array<std::vector<Event>, kBucketCount> wheel_;
    std::size_t wheelCount_ = 0;
    /** One bit per bucket: set iff the bucket vector is non-empty. */
    std::array<std::uint64_t, kBucketCount / 64> wheelBits_{};

    // Tier 2b: far-future overflow min-heap (std::*_heap on vector).
    std::vector<Event> overflow_;

    // Step hook (telemetry sampling); disarmed = kInvalidTick, so
    // the common path is one compare that always fails.
    StepHookFn hookFn_ = nullptr;
    void *hookCtx_ = nullptr;
    Tick hookDue_ = kInvalidTick;

    Tick windowStart_ = 0; // aligned to kBucketTicks
    Tick now_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t clamped_ = 0;
};

} // namespace checkin

#endif // CHECKIN_SIM_EVENT_QUEUE_H_
