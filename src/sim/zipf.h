/**
 * @file
 * Key-choice distributions used by the YCSB-style workload generator.
 */

#ifndef CHECKIN_SIM_ZIPF_H_
#define CHECKIN_SIM_ZIPF_H_

#include <cstdint>
#include <memory>

#include "sim/rng.h"

namespace checkin {

/** Abstract integer distribution over [0, itemCount). */
class KeyDistribution
{
  public:
    virtual ~KeyDistribution() = default;

    /** Draw the next item index. */
    virtual std::uint64_t next(Rng &rng) = 0;

    /** Number of items the distribution covers. */
    virtual std::uint64_t itemCount() const = 0;
};

/** Uniform distribution over [0, itemCount). */
class UniformDistribution : public KeyDistribution
{
  public:
    explicit UniformDistribution(std::uint64_t item_count);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t itemCount() const override { return itemCount_; }

  private:
    std::uint64_t itemCount_;
};

/**
 * Zipfian distribution, YCSB-compatible.
 *
 * Implements the Gray et al. "Quickly generating billion-record
 * synthetic databases" rejection-free method used by YCSB's
 * ZipfianGenerator, including the default exponent 0.99. Item 0 is the
 * most popular; callers wanting scrambled popularity should hash the
 * result (see ScrambledZipfianDistribution).
 */
class ZipfianDistribution : public KeyDistribution
{
  public:
    static constexpr double kDefaultTheta = 0.99;

    explicit ZipfianDistribution(std::uint64_t item_count,
                                 double theta = kDefaultTheta);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t itemCount() const override { return itemCount_; }

    double theta() const { return theta_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t itemCount_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2theta_;
};

/**
 * Zipfian with scrambled item order (YCSB ScrambledZipfianGenerator):
 * popularity is Zipfian but hot items are spread over the key space.
 */
class ScrambledZipfianDistribution : public KeyDistribution
{
  public:
    explicit ScrambledZipfianDistribution(std::uint64_t item_count,
                                          double theta =
                                              ZipfianDistribution::
                                                  kDefaultTheta);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t itemCount() const override { return itemCount_; }

  private:
    std::uint64_t itemCount_;
    ZipfianDistribution zipf_;
};

/**
 * "Latest" distribution (YCSB SkewedLatestGenerator): Zipfian over
 * recency, favouring the most recently inserted items.
 */
class LatestDistribution : public KeyDistribution
{
  public:
    explicit LatestDistribution(std::uint64_t item_count);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t itemCount() const override { return itemCount_; }

  private:
    std::uint64_t itemCount_;
    ZipfianDistribution zipf_;
};

} // namespace checkin

#endif // CHECKIN_SIM_ZIPF_H_
