/**
 * @file
 * Lightweight named-counter registry for simulation statistics.
 *
 * Modules register counters against a StatRegistry; the harness dumps
 * them after a run. Counters are plain uint64s addressed by name so
 * tests can assert on exact operation counts.
 *
 * Hot paths should intern() their counter names once (typically in
 * the owning module's constructor) and update through the returned
 * StatId: an interned add is a plain array index instead of a
 * std::map string lookup per event.
 */

#ifndef CHECKIN_SIM_STATS_H_
#define CHECKIN_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace checkin {

/** Interned counter handle; stable for the registry's lifetime. */
using StatId = std::uint32_t;

/** Registry of named uint64 counters with interned fast handles. */
class StatRegistry
{
  public:
    /**
     * Intern @p name, creating the counter at zero. Idempotent: the
     * same name always returns the same id.
     */
    StatId
    intern(const std::string &name)
    {
        auto [it, inserted] =
            index_.try_emplace(name, StatId(values_.size()));
        if (inserted)
            values_.push_back(0);
        return it->second;
    }

    /** Add @p delta to the interned counter @p id. */
    void
    add(StatId id, std::uint64_t delta = 1)
    {
        values_[id] += delta;
    }

    /** Set the interned counter @p id to @p value. */
    void
    set(StatId id, std::uint64_t value)
    {
        values_[id] = value;
    }

    /** Read the interned counter @p id. */
    std::uint64_t get(StatId id) const { return values_[id]; }

    /** Add @p delta to counter @p name, creating it at zero. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        values_[intern(name)] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        values_[intern(name)] = value;
    }

    /** Read counter @p name; zero when absent. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? 0 : values_[it->second];
    }

    /** All counters, sorted by name. */
    std::map<std::string, std::uint64_t>
    all() const
    {
        std::map<std::string, std::uint64_t> out;
        for (const auto &[name, id] : index_)
            out.emplace(name, values_[id]);
        return out;
    }

    /** Number of registered counters. */
    std::size_t size() const { return values_.size(); }

    /** Reset every counter to zero (names and ids are kept). */
    void
    reset()
    {
        for (std::uint64_t &v : values_)
            v = 0;
    }

    /** Render as "name = value" lines. */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, StatId> index_;
    std::vector<std::uint64_t> values_;
};

} // namespace checkin

#endif // CHECKIN_SIM_STATS_H_
