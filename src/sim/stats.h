/**
 * @file
 * Lightweight named-counter registry for simulation statistics.
 *
 * Modules register counters against a StatRegistry; the harness dumps
 * them after a run. Counters are plain uint64s addressed by name so
 * tests can assert on exact operation counts.
 */

#ifndef CHECKIN_SIM_STATS_H_
#define CHECKIN_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace checkin {

/** Ordered map of named uint64 counters. */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name, creating it at zero. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Read counter @p name; zero when absent. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &
    all() const
    {
        return counters_;
    }

    /** Reset every counter to zero (names are kept). */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second = 0;
    }

    /** Render as "name = value" lines. */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace checkin

#endif // CHECKIN_SIM_STATS_H_
