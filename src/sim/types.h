/**
 * @file
 * Fundamental simulation-wide types and byte-size helpers.
 */

#ifndef CHECKIN_SIM_TYPES_H_
#define CHECKIN_SIM_TYPES_H_

#include <cstdint>

namespace checkin {

/** Simulated time in nanoseconds since simulation start. */
using Tick = std::uint64_t;

/** Logical block address in host-sector (512 B) units. */
using Lba = std::uint64_t;

/** Logical page number in FTL mapping units. */
using Lpn = std::uint64_t;

/** Physical page number (flattened flash geometry index). */
using Ppn = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr std::uint64_t kInvalidAddr = ~std::uint64_t{0};

/** Sentinel for "no time" (e.g. next event of an empty queue). */
inline constexpr Tick kInvalidTick = ~Tick{0};

/** One host sector in bytes; the classic 512 B block-device unit. */
inline constexpr std::uint64_t kSectorBytes = 512;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Ticks per common wall-clock units (1 tick == 1 ns). */
inline constexpr Tick kNsec = 1;
inline constexpr Tick kUsec = 1000 * kNsec;
inline constexpr Tick kMsec = 1000 * kUsec;
inline constexpr Tick kSec = 1000 * kMsec;

/** Round @p value up to the next multiple of @p align (align > 0). */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) / align * align;
}

/** Round @p value down to a multiple of @p align (align > 0). */
constexpr std::uint64_t
alignDown(std::uint64_t value, std::uint64_t align)
{
    return value / align * align;
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace checkin

#endif // CHECKIN_SIM_TYPES_H_
