/**
 * @file
 * Fixed-interval time-series aggregator: bucketed means, maxima and
 * counts of a sampled value over simulated time. Used to render
 * latency timelines (e.g., query latency around checkpoints).
 */

#ifndef CHECKIN_SIM_TIMESERIES_H_
#define CHECKIN_SIM_TIMESERIES_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace checkin {

/** Aggregates (tick, value) samples into fixed-width time buckets. */
class TimeSeries
{
  public:
    struct Bucket
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t max = 0;

        double
        mean() const
        {
            return count ? double(sum) / double(count) : 0.0;
        }
    };

    /** @param interval bucket width in ticks (> 0). */
    explicit TimeSeries(Tick interval) : interval_(interval) {}

    /** Record @p value at time @p when. */
    void
    record(Tick when, std::uint64_t value)
    {
        const std::size_t idx = std::size_t(when / interval_);
        if (idx >= buckets_.size())
            buckets_.resize(idx + 1);
        Bucket &b = buckets_[idx];
        ++b.count;
        b.sum += value;
        b.max = std::max(b.max, value);
    }

    Tick interval() const { return interval_; }
    const std::vector<Bucket> &buckets() const { return buckets_; }

    /** First/last bucket indices holding samples (0,0 when empty). */
    std::pair<std::size_t, std::size_t>
    activeRange() const
    {
        std::size_t first = buckets_.size();
        std::size_t last = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            if (buckets_[i].count == 0)
                continue;
            first = std::min(first, i);
            last = i;
        }
        if (first == buckets_.size())
            return {0, 0};
        return {first, last};
    }

  private:
    Tick interval_;
    std::vector<Bucket> buckets_;
};

} // namespace checkin

#endif // CHECKIN_SIM_TIMESERIES_H_
