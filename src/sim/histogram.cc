#include "sim/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace checkin {

namespace {

// 64 magnitudes x kSubBuckets sub-buckets covers the full uint64 range.
constexpr std::size_t kMaxBuckets =
    64 * LatencyHistogram::kSubBuckets;

} // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kMaxBuckets, 0) {}

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return std::size_t(value);
    const int magnitude = 63 - std::countl_zero(value);
    const int shift = magnitude - kSubBucketBits;
    const std::uint64_t sub = (value >> shift) - kSubBuckets;
    return std::size_t((magnitude - kSubBucketBits + 1) * kSubBuckets +
                       sub);
}

std::uint64_t
LatencyHistogram::bucketUpperBound(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const std::size_t magnitude =
        index / kSubBuckets + kSubBucketBits - 1;
    const std::size_t sub = index % kSubBuckets + kSubBuckets;
    const int shift = int(magnitude) - kSubBucketBits;
    // Upper edge of the bucket: next bucket's lower bound minus one.
    return ((std::uint64_t(sub) + 1) << shift) - 1;
}

void
LatencyHistogram::record(std::uint64_t value)
{
    record(value, 1);
}

void
LatencyHistogram::record(std::uint64_t value, std::uint64_t n)
{
    assert(n > 0);
    buckets_[bucketIndex(value)] += n;
    count_ += n;
    sum_ += value * n;
    max_ = std::max(max_, value);
    min_ = std::min(min_, value);
}

double
LatencyHistogram::mean() const
{
    return count_ ? double(sum_) / double(count_) : 0.0;
}

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    // The extremes are tracked exactly; don't pay bucket rounding
    // there (q <= 0 is the recorded minimum, q >= 1 the maximum).
    if (q <= 0.0)
        return min();
    if (q >= 1.0)
        return max_;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the sample at quantile q (1-based, ceil convention).
    std::uint64_t rank = std::uint64_t(q * double(count_) + 0.5);
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = ~std::uint64_t{0};
}

} // namespace checkin
