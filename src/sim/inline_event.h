/**
 * @file
 * Small-buffer-optimized, move-only callable for the DES hot path.
 *
 * Every simulated command completion, checkpoint step, and client op
 * is one scheduled callback, so the callback representation decides
 * whether the kernel touches the allocator per event. std::function
 * only inlines ~16 bytes of captures on mainstream ABIs; the common
 * "this + a key + a bound continuation" lambda is ~40-56 bytes and
 * heap-allocates on every schedule. InlineFunction stores captures up
 * to kInlineBytes directly inside the object, falling back to the
 * heap only for oversized or throwing-move captures (counted, and
 * optionally a compile error — see below).
 *
 * InlineFunction<R(Args...)> is signature-generic so the same storage
 * strategy serves both the event queue (void()) and the SSD command
 * completion path (void(const CmdResult &)). InlineCallback remains
 * the alias used by the kernel.
 *
 * Contract differences from std::function, on purpose:
 *  - move-only (events are scheduled once and dispatched once);
 *  - no target_type/target introspection;
 *  - invoking an empty callable is undefined (asserted in debug).
 *
 * Diagnostics:
 *  - InlineFunction::heapFallbacks() counts heap-constructed
 *    callables process-wide across all signatures (relaxed atomic:
 *    exact under single threads, approximate-but-race-free across
 *    sweep workers).
 *  - Defining CHECKIN_EVENT_INLINE_STRICT turns every heap fallback
 *    into a static_assert naming the offending capture size, for
 *    hunting regressions after kernel or engine changes.
 */

#ifndef CHECKIN_SIM_INLINE_EVENT_H_
#define CHECKIN_SIM_INLINE_EVENT_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace checkin {

namespace detail {

/** Dependent-false helper so static_assert fires per instantiation. */
template <typename T>
struct AlwaysFalse : std::false_type
{
};

/** Process-wide count of callables that spilled to the heap. */
inline std::atomic<std::uint64_t> g_inline_event_heap_fallbacks{0};

} // namespace detail

template <typename Sig>
class InlineFunction; // undefined; only the R(Args...) partial below

/** Move-only callable with inline storage for small captures. */
template <typename R, typename... Args>
class InlineFunction<R(Args...)>
{
  public:
    /**
     * Inline capture capacity. Sized for the repo's largest hot
     * lambda: [this, key, value_bytes, cb] with a std::function
     * continuation is 56 bytes on LP64 (8 + 8 + 8 + 32).
     */
    static constexpr std::size_t kInlineBytes = 56;

    /** Strictest capture alignment the inline buffer supports. */
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /** True when callable @p F stores inline (no allocation). */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign &&
        std::is_nothrow_move_constructible_v<F>;

    InlineFunction() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&fn) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable does not match InlineFunction "
                      "signature");
        if constexpr (fitsInline<Fn>) {
            ::new (storage()) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
#ifdef CHECKIN_EVENT_INLINE_STRICT
            static_assert(
                detail::AlwaysFalse<Fn>::value,
                "callable capture does not fit inline "
                "(see sizeof(Fn) in the instantiation trace); "
                "shrink the capture or raise "
                "InlineFunction::kInlineBytes");
#endif
            ::new (storage()) Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
            detail::g_inline_event_heap_fallbacks.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    InlineFunction(InlineFunction &&other) noexcept
        : ops_(other.ops_)
    {
        if (ops_ != nullptr)
            relocateFrom(other);
        other.ops_ = nullptr;
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr)
                relocateFrom(other);
            other.ops_ = nullptr;
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the held callable (must not be empty). */
    R
    operator()(Args... args)
    {
        assert(ops_ != nullptr && "invoking empty InlineFunction");
        return ops_->invoke(storage(), std::forward<Args>(args)...);
    }

    /** Destroy the held callable (if any); leaves *this empty. */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            if (!ops_->noopDestroy)
                ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

    /** True when the held callable lives in the inline buffer. */
    bool
    isInline() const noexcept
    {
        return ops_ != nullptr && ops_->inlineStored;
    }

    /** Process-wide heap-fallback constructions since start. */
    static std::uint64_t
    heapFallbacks() noexcept
    {
        return detail::g_inline_event_heap_fallbacks.load(
            std::memory_order_relaxed);
    }

  private:
    /** Manual vtable: one static instance per erased callable type. */
    struct Ops
    {
        R (*invoke)(void *storage, Args &&...args);
        /** Move-construct dst from src, then destroy src's value. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
        bool inlineStored;
        /**
         * Relocation is a plain buffer copy: trivially copyable
         * inline callables, and every heap callable (the buffer
         * holds only the owning pointer). Lets moves skip the
         * indirect relocate call — events move several times
         * between calendar tiers, so this is hot.
         */
        bool trivialRelocate;
        /** Destruction is a no-op (trivial inline callables). */
        bool noopDestroy;
    };

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void *s, Args &&...args) -> R {
            return (*static_cast<Fn *>(s))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *s) noexcept { static_cast<Fn *>(s)->~Fn(); },
        true,
        std::is_trivially_copyable_v<Fn>,
        std::is_trivially_destructible_v<Fn>,
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void *s, Args &&...args) -> R {
            return (**static_cast<Fn **>(s))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *s) noexcept { delete *static_cast<Fn **>(s); },
        false,
        true,
        false,
    };

    /** Pre: ops_ == other.ops_ != nullptr and other holds a value. */
    void
    relocateFrom(InlineFunction &other) noexcept
    {
        if (ops_->trivialRelocate)
            std::memcpy(buf_, other.buf_, sizeof(buf_));
        else
            ops_->relocate(storage(), other.storage());
    }

    void *storage() noexcept { return buf_; }

    const Ops *ops_ = nullptr;
    alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
};

/** The DES kernel's event callback type. */
using InlineCallback = InlineFunction<void()>;

} // namespace checkin

#endif // CHECKIN_SIM_INLINE_EVENT_H_
