/**
 * @file
 * Run report generator: renders one run's artifact bundle into a
 * self-contained HTML page plus a terminal summary.
 *
 * The generator reads back the JSON artifacts the harness wrote
 * (telemetry.json is required; blackbox.json, summary.json and
 * cluster.json are used when present) via the repo's own parser
 * (obs/json_parse.h) — no external dependencies, and the output HTML
 * inlines all CSS and SVG so a single file travels through CI
 * artifact uploads intact.
 *
 * Rendered sections:
 *  - run header (window width, sample/event/anomaly totals),
 *  - one SVG sparkline per probe series with checkpoint markers
 *    (from summary.json's checkpointTimeline) and anomaly markers
 *    (from blackbox.json dump triggers),
 *  - the tail-stage attribution table (summary.json),
 *  - one section per black-box dump: trigger, recent events, and
 *    the retained pre-trigger sample window.
 *
 * Exposed by `checkin_cli report <dir>`.
 */

#ifndef CHECKIN_HARNESS_REPORT_H_
#define CHECKIN_HARNESS_REPORT_H_

#include <string>

namespace checkin {

/**
 * Render the artifact bundle in @p dir as self-contained HTML.
 * @throws std::runtime_error when @p dir has no telemetry.json or a
 *         file fails to parse.
 */
std::string renderRunReportHtml(const std::string &dir);

/** Terminal summary of the same bundle (plain text, one screen). */
std::string renderRunReportText(const std::string &dir);

} // namespace checkin

#endif // CHECKIN_HARNESS_REPORT_H_
