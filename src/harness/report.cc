#include "harness/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/json_parse.h"
#include "sim/types.h"

namespace checkin {

namespace {

using obs::JsonValue;

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

JsonValue
loadOptional(const std::string &dir, const std::string &name)
{
    const std::string text = readFileOrEmpty(dir + "/" + name);
    if (text.empty())
        return JsonValue{};
    return obs::parseJson(text);
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '"':
            out += "&quot;";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

std::string
fmt(double v, int prec = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** Marker ticks drawn over every sparkline. */
struct Markers
{
    std::vector<std::uint64_t> checkpoints; //!< start ticks
    std::vector<std::uint64_t> anomalies;   //!< trigger ticks
};

/** Everything the renderers share, parsed once. */
struct Bundle
{
    std::string dir;
    JsonValue telemetry; //!< required
    JsonValue blackbox;
    JsonValue summary; //!< single-node run summary (optional)
    JsonValue cluster; //!< cluster run summary (optional)
    Markers markers;
};

void
collectDumpTicks(const JsonValue &body,
                 std::vector<std::uint64_t> &out)
{
    const JsonValue &dumps = body.at("dumps");
    for (const JsonValue &d : dumps.items)
        out.push_back(d.at("triggerTick").asU64());
}

Bundle
loadBundle(const std::string &dir)
{
    Bundle b;
    b.dir = dir;
    const std::string telem = readFileOrEmpty(dir +
                                              "/telemetry.json");
    if (telem.empty())
        throw std::runtime_error(
            "no telemetry.json in '" + dir +
            "' — run with telemetry enabled (e.g. checkin_cli "
            "--telemetry)");
    b.telemetry = obs::parseJson(telem);
    b.blackbox = loadOptional(dir, "blackbox.json");
    b.summary = loadOptional(dir, "summary.json");
    b.cluster = loadOptional(dir, "cluster.json");

    for (const JsonValue &c :
         b.summary.at("checkpointTimeline").items)
        b.markers.checkpoints.push_back(c.at("startTick").asU64());
    if (b.blackbox.find("shards") != nullptr) {
        for (const JsonValue &s : b.blackbox.at("shards").items)
            collectDumpTicks(s, b.markers.anomalies);
    } else {
        collectDumpTicks(b.blackbox, b.markers.anomalies);
    }
    std::sort(b.markers.anomalies.begin(),
              b.markers.anomalies.end());
    return b;
}

// ----------------------------------------------------------------------
// Sparklines
// ----------------------------------------------------------------------

constexpr int kSparkW = 360;
constexpr int kSparkH = 44;
constexpr int kSparkPad = 2;

double
sparkX(std::uint64_t window, std::uint64_t w0, std::uint64_t w1)
{
    if (w1 <= w0)
        return kSparkPad;
    const double f =
        double(window - w0) / double(w1 - w0);
    return kSparkPad + f * double(kSparkW - 2 * kSparkPad);
}

double
sparkY(std::uint64_t v, std::uint64_t vmax)
{
    if (vmax == 0)
        return double(kSparkH - kSparkPad);
    const double f = double(v) / double(vmax);
    return double(kSparkH - kSparkPad) -
           f * double(kSparkH - 2 * kSparkPad);
}

/** One probe series as an inline SVG sparkline with markers. */
void
sparkline(std::ostringstream &os, const JsonValue &series,
          std::uint64_t window_ticks, std::uint64_t w0,
          std::uint64_t w1, const Markers &markers)
{
    const JsonValue &points = series.at("points");
    std::uint64_t vmax = 0;
    for (const JsonValue &p : points.items)
        vmax = std::max(vmax, p.at(1).asU64());

    os << "<svg width=\"" << kSparkW << "\" height=\"" << kSparkH
       << "\" viewBox=\"0 0 " << kSparkW << " " << kSparkH
       << "\" class=\"spark\">";
    // Checkpoint markers (grey) under the data, anomalies (red) over.
    if (window_ticks > 0) {
        for (const std::uint64_t t : markers.checkpoints) {
            const std::uint64_t w = t / window_ticks;
            if (w < w0 || w > w1)
                continue;
            const double x = sparkX(w, w0, w1);
            os << "<line x1=\"" << fmt(x, 1) << "\" y1=\"0\" x2=\""
               << fmt(x, 1) << "\" y2=\"" << kSparkH
               << "\" class=\"ckpt\"/>";
        }
    }
    os << "<polyline fill=\"none\" class=\"line\" points=\"";
    bool first = true;
    for (const JsonValue &p : points.items) {
        if (!first)
            os << " ";
        first = false;
        os << fmt(sparkX(p.at(0).asU64(), w0, w1), 1) << ","
           << fmt(sparkY(p.at(1).asU64(), vmax), 1);
    }
    os << "\"/>";
    if (window_ticks > 0) {
        for (const std::uint64_t t : markers.anomalies) {
            const std::uint64_t w = t / window_ticks;
            if (w < w0 || w > w1)
                continue;
            const double x = sparkX(w, w0, w1);
            os << "<line x1=\"" << fmt(x, 1) << "\" y1=\"0\" x2=\""
               << fmt(x, 1) << "\" y2=\"" << kSparkH
               << "\" class=\"anom\"/>";
        }
    }
    os << "</svg>";
}

// ----------------------------------------------------------------------
// Sections
// ----------------------------------------------------------------------

void
headerSection(std::ostringstream &os, const Bundle &b)
{
    const JsonValue &t = b.telemetry;
    os << "<h1>Check-In run report</h1>\n<p class=\"sub\">"
       << htmlEscape(b.dir) << "</p>\n";
    os << "<table class=\"kv\">\n";
    auto row = [&os](const std::string &k, const std::string &v) {
        os << "<tr><td>" << k << "</td><td>" << v << "</td></tr>\n";
    };
    row("window", std::to_string(t.at("windowTicks").asU64()) +
                      " ticks");
    row("span", std::to_string(t.at("baselineTick").asU64()) +
                    " &rarr; " +
                    std::to_string(t.at("finalTick").asU64()) +
                    " ticks");
    row("samples", std::to_string(t.at("samples").asU64()));
    row("events", std::to_string(t.at("events").asU64()));
    row("anomalies", std::to_string(t.at("anomalies").asU64()));
    if (const JsonValue *sc = t.find("shardCount"))
        row("shards", std::to_string(sc->asU64()));
    if (b.summary.isObject()) {
        row("throughput",
            fmt(b.summary.at("throughputOps").asDouble(), 0) +
                " ops/s");
        row("checkpoints",
            std::to_string(
                b.summary.at("checkpoints").at("count").asU64()));
    } else if (b.cluster.isObject()) {
        row("throughput",
            fmt(b.cluster.at("throughputOps").asDouble(), 0) +
                " ops/s");
    }
    os << "</table>\n";
}

void
seriesSection(std::ostringstream &os, const Bundle &b)
{
    const JsonValue &t = b.telemetry;
    const std::uint64_t window = t.at("windowTicks").asU64();
    const std::uint64_t w0 =
        window > 0 ? t.at("baselineTick").asU64() / window : 0;
    const std::uint64_t w1 =
        window > 0 ? t.at("finalTick").asU64() / window : 0;

    os << "<h2>Probe series</h2>\n"
       << "<p class=\"sub\">grey: checkpoint starts; red: anomaly "
          "triggers; counters plot per-window deltas</p>\n"
       << "<table class=\"series\">\n"
       << "<tr><th>probe</th><th>kind</th><th>final</th>"
       << "<th>sparkline</th></tr>\n";
    for (const auto &[name, s] : t.at("probes").fields) {
        os << "<tr><td class=\"name\">" << htmlEscape(name)
           << "</td><td>" << htmlEscape(s.at("kind").asString())
           << "</td><td class=\"num\">" << s.at("final").asU64()
           << "</td><td>";
        sparkline(os, s, window, w0, w1, b.markers);
        os << "</td></tr>\n";
    }
    os << "</table>\n";
}

void
tailStageSection(std::ostringstream &os, const Bundle &b)
{
    const JsonValue &attr = b.summary.at("attribution");
    if (!attr.at("enabled").asBool())
        return;
    const JsonValue &tail = attr.at("tailClasses");
    if (!tail.isObject() || tail.fields.empty())
        return;
    os << "<h2>Tail-stage attribution</h2>\n<p class=\"sub\">ops at "
          "or above the p"
       << fmt(attr.at("tailQuantile").asDouble() * 100.0, 1)
       << " latency ("
       << attr.at("tailOps").asU64()
       << " ops); stage dwell in ticks</p>\n"
       << "<table class=\"series\">\n"
       << "<tr><th>class</th><th>ops</th><th>stage</th>"
       << "<th>dwell</th><th>share</th></tr>\n";
    for (const auto &[cls, body] : tail.fields) {
        const double total =
            std::max(1.0, body.at("totalTicks").asDouble());
        for (const auto &[stage, dwell] :
             body.at("stages").fields) {
            os << "<tr><td class=\"name\">" << htmlEscape(cls)
               << "</td><td class=\"num\">"
               << body.at("ops").asU64() << "</td><td>"
               << htmlEscape(stage) << "</td><td class=\"num\">"
               << dwell.asU64() << "</td><td class=\"num\">"
               << fmt(dwell.asDouble() / total * 100.0, 1)
               << "%</td></tr>\n";
        }
    }
    os << "</table>\n";
}

void
dumpSection(std::ostringstream &os, const JsonValue &body,
            const JsonValue &probe_names, int shard)
{
    for (const JsonValue &d : body.at("dumps").items) {
        os << "<h3>anomaly: "
           << htmlEscape(d.at("anomaly").asString());
        if (shard >= 0)
            os << " (shard " << shard << ")";
        os << "</h3>\n<p class=\"sub\">trigger tick "
           << d.at("triggerTick").asU64() << ", value "
           << d.at("value").asU64() << ", seq "
           << d.at("seq").asU64() << "; pre-trigger window: "
           << d.at("samples").items.size() << " samples, "
           << d.at("events").items.size() << " events ("
           << probe_names.items.size() << " probes)</p>\n";
        const auto &events = d.at("events").items;
        if (events.empty())
            continue;
        os << "<table class=\"series\">\n"
           << "<tr><th>tick</th><th>event</th><th>value</th>"
           << "</tr>\n";
        // The newest entries carry the incident; cap the table so
        // a deep ring stays readable.
        const std::size_t show =
            std::min<std::size_t>(events.size(), 16);
        for (std::size_t i = events.size() - show;
             i < events.size(); ++i) {
            const JsonValue &e = events[i];
            os << "<tr><td class=\"num\">" << e.at(0).asU64()
               << "</td><td>" << htmlEscape(e.at(1).asString())
               << "</td><td class=\"num\">" << e.at(2).asU64()
               << "</td></tr>\n";
        }
        os << "</table>\n";
    }
}

void
anomalySection(std::ostringstream &os, const Bundle &b)
{
    if (!b.blackbox.isObject())
        return;
    os << "<h2>Black box</h2>\n";
    if (b.blackbox.at("anomalies").asU64() == 0) {
        os << "<p class=\"sub\">no anomalies fired</p>\n";
        return;
    }
    if (b.blackbox.find("shards") != nullptr) {
        const auto &shards = b.blackbox.at("shards").items;
        for (const JsonValue &s : shards) {
            dumpSection(os, s, s.at("probeNames"),
                        int(s.at("shard").asU64()));
        }
    } else {
        dumpSection(os, b.blackbox, b.blackbox.at("probeNames"),
                    -1);
    }
}

const char *kCss =
    "body{font:14px/1.4 system-ui,sans-serif;margin:24px;"
    "color:#1a1a2e;max-width:900px}"
    "h1{font-size:20px}h2{font-size:16px;margin-top:28px}"
    "h3{font-size:14px;margin-top:20px}"
    ".sub{color:#667;font-size:12px;margin:2px 0 10px}"
    "table.kv td{padding:2px 12px 2px 0;font-size:13px}"
    "table.kv td:first-child{color:#667}"
    "table.series{border-collapse:collapse;font-size:12px}"
    "table.series th{text-align:left;padding:3px 10px;"
    "border-bottom:1px solid #ccd}"
    "table.series td{padding:2px 10px;border-bottom:1px solid #eef}"
    "td.name{font-family:ui-monospace,monospace}"
    "td.num{text-align:right;font-family:ui-monospace,monospace}"
    ".spark .line{stroke:#3b6ea5;stroke-width:1.2}"
    ".spark .ckpt{stroke:#bbb;stroke-width:0.6}"
    ".spark .anom{stroke:#c0392b;stroke-width:1}";

} // namespace

std::string
renderRunReportHtml(const std::string &dir)
{
    const Bundle b = loadBundle(dir);
    std::ostringstream os;
    os << "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
       << "<title>Check-In run report</title>\n<style>" << kCss
       << "</style></head>\n<body>\n";
    headerSection(os, b);
    seriesSection(os, b);
    tailStageSection(os, b);
    anomalySection(os, b);
    os << "</body></html>\n";
    return os.str();
}

std::string
renderRunReportText(const std::string &dir)
{
    const Bundle b = loadBundle(dir);
    const JsonValue &t = b.telemetry;
    std::ostringstream os;
    os << "run report: " << dir << "\n";
    os << "  window " << t.at("windowTicks").asU64() << " ticks, "
       << t.at("baselineTick").asU64() << " -> "
       << t.at("finalTick").asU64() << "\n";
    os << "  " << t.at("probes").fields.size() << " probes, "
       << t.at("samples").asU64() << " samples, "
       << t.at("events").asU64() << " events, "
       << t.at("anomalies").asU64() << " anomalies\n";
    if (b.summary.isObject()) {
        os << "  throughput "
           << fmt(b.summary.at("throughputOps").asDouble(), 0)
           << " ops/s, "
           << b.summary.at("checkpoints").at("count").asU64()
           << " checkpoints\n";
    }
    // Only series that actually moved: a screenful, not a dump.
    os << "  active series:\n";
    for (const auto &[name, s] : t.at("probes").fields) {
        if (s.at("final").asU64() == 0)
            continue;
        os << "    " << name << " [" << s.at("kind").asString()
           << "] final=" << s.at("final").asU64()
           << " windows=" << s.at("points").items.size() << "\n";
    }
    auto dumpsOf = [&os](const JsonValue &body, int shard) {
        for (const JsonValue &d : body.at("dumps").items) {
            os << "    " << d.at("anomaly").asString();
            if (shard >= 0)
                os << " (shard " << shard << ")";
            os << " @" << d.at("triggerTick").asU64() << " value="
               << d.at("value").asU64() << " ("
               << d.at("samples").items.size() << " samples, "
               << d.at("events").items.size() << " events)\n";
        }
    };
    if (b.blackbox.isObject()) {
        os << "  black box ("
           << b.blackbox.at("anomalies").asU64() << " anomalies):\n";
        if (b.blackbox.find("shards") != nullptr) {
            for (const JsonValue &s : b.blackbox.at("shards").items)
                dumpsOf(s, int(s.at("shard").asU64()));
        } else {
            dumpsOf(b.blackbox, -1);
        }
    }
    return os.str();
}

} // namespace checkin
