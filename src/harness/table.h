/**
 * @file
 * Minimal fixed-width ASCII table printer for bench output.
 */

#ifndef CHECKIN_HARNESS_TABLE_H_
#define CHECKIN_HARNESS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace checkin {

/** Collects rows of strings and renders them column-aligned. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with a header underline. */
    std::string render() const;

    /** Format helpers. */
    static std::string num(double v, int precision = 2);
    static std::string num(std::uint64_t v);
    static std::string percent(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace checkin

#endif // CHECKIN_HARNESS_TABLE_H_
