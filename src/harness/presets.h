/**
 * @file
 * Named experiment presets shared by benches, tests, and examples.
 *
 * Every consumer of a "default" configuration goes through one of
 * these builders so scale changes happen in exactly one place:
 *
 *  - presets::small(): fast-simulation scale (128 MiB device) with
 *    frequent checkpoints; the default for tests and examples.
 *  - presets::paper(): the figure-reproduction scale the fig*
 *    benches run — small() with the paper's checkpoint cadence.
 *  - presets::faulty(): small() plus an enabled fault plan (read
 *    bit errors, program/erase fails, wear skew) tuned so the ECC
 *    and front-end retry budgets absorb most injected faults.
 */

#ifndef CHECKIN_HARNESS_PRESETS_H_
#define CHECKIN_HARNESS_PRESETS_H_

#include <memory>

#include "engine/storage_engine.h"
#include "harness/experiment.h"

namespace checkin {
class SimContext;
class Ssd;
} // namespace checkin

namespace checkin::presets {

/** Small configuration sized for fast simulation. */
ExperimentConfig small();

/** Figure-reproduction scale used by the fig* benches. */
ExperimentConfig paper();

/** small() with deterministic fault injection enabled. */
ExperimentConfig faulty();

/**
 * Build the StorageEngine backend selected by @p cfg.backend.
 * Every consumer that is not backend-specific constructs its engine
 * through here.
 */
std::unique_ptr<StorageEngine>
makeEngine(SimContext &ctx, Ssd &ssd, const EngineConfig &cfg);

/** Parse an --engine value ("checkin" / "lsm"); throws on others. */
EngineBackend parseEngineBackend(const std::string &name);

} // namespace checkin::presets

#endif // CHECKIN_HARNESS_PRESETS_H_
