#include "harness/crash_oracle.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "engine/storage_engine.h"
#include "fault/fault_plan.h"
#include "harness/presets.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {

namespace {

/** [start, end) interval during which a checkpoint was running. */
struct CkptWindow
{
    Tick start = 0;
    Tick end = 0;
};

/** Deterministic value size for a key's next version. */
std::uint32_t
valueBytes(std::uint64_t key, std::uint32_t version)
{
    return 128u * (1u + std::uint32_t(mix64(key * 31 + version) % 4));
}

/**
 * One seeded run of the oracle workload: device + engine + a paced
 * stream of updates/deletes whose acknowledgements are recorded as
 * (key -> committed version).
 */
class OracleRun
{
  public:
    OracleRun(const OracleConfig &cfg)
        : cfg_(cfg),
          ctx_(cfg.seed, "crash-oracle"),
          scope_(ctx_),
          plan_(cfg.base.faults,
                ctx_.deriveSeed(FaultPlan::kSeedStream))
    {
        ctx_.setFaults(&plan_);
        FtlConfig ftl_cfg = cfg.base.ftl;
        ftl_cfg.mappingUnitBytes = cfg.base.resolvedMappingUnit();
        ssd_ = std::make_unique<Ssd>(ctx_, cfg.base.nand, ftl_cfg,
                                     cfg.base.ssd);
        engine_ = presets::makeEngine(ctx_, *ssd_,
                                      cfg.base.engine);
        engine_->load([&cfg](std::uint64_t key) {
            return 128u *
                   (1u + std::uint32_t(mix64(key ^ cfg.seed) % 4));
        });
        EventQueue &eq = ctx_.events();
        eq.schedule(ssd_->quiesceTick(), [] {});
        eq.run();
        loadEnd_ = eq.now();
        issueOps();
        engine_->start();
    }

    EventQueue &events() { return ctx_.events(); }
    StorageEngine &engine() { return *engine_; }
    FaultPlan &plan() { return plan_; }
    Tick loadEnd() const { return loadEnd_; }
    std::uint32_t ackCount() const { return acks_; }

    const std::map<std::uint64_t, std::uint32_t> &
    committed() const
    {
        return committed_;
    }

    /**
     * Probe to completion (no crash): returns at the tick where all
     * ops are acknowledged and no checkpoint is running, recording
     * every checkpoint window on the way.
     */
    Tick
    probe(std::vector<CkptWindow> *windows)
    {
        EventQueue &eq = ctx_.events();
        bool in = false;
        Tick start = 0;
        while (acks_ < cfg_.ops || engine_->checkpointInProgress()) {
            if (!eq.step())
                throw std::logic_error(
                    "oracle probe drained before all ops acked");
            const bool now_in = engine_->checkpointInProgress();
            if (now_in != in) {
                in = now_in;
                if (in) {
                    start = eq.now();
                } else if (windows != nullptr) {
                    windows->push_back(CkptWindow{start, eq.now()});
                }
            }
        }
        return eq.now();
    }

    /** Step until simulated time would pass @p crash_tick. */
    void
    runUntil(Tick crash_tick)
    {
        EventQueue &eq = ctx_.events();
        while (eq.nextEventTick() != kInvalidTick &&
               eq.nextEventTick() <= crash_tick) {
            eq.step();
        }
    }

    /**
     * Cut power at the current tick, rebuild the device (SPOR), and
     * recover a fresh engine on top of it.
     * @return true when the cut landed mid-checkpoint.
     */
    bool
    crashAndRecover(Tick crash_tick)
    {
        EventQueue &eq = ctx_.events();
        const bool mid = engine_->checkpointInProgress();
        plan_.recordPowerLoss(crash_tick);
        // Host crash: in-flight continuations die with the queue and
        // the engine's RAM state is discarded.
        eq.clear();
        engine_.reset();
        ssd_->suddenPowerLoss();
        ssd_->ftl().checkInvariants();
        engine_ = presets::makeEngine(ctx_, *ssd_,
                                      cfg_.base.engine);
        engine_->recover();
        return mid;
    }

  private:
    void
    issueOps()
    {
        EventQueue &eq = ctx_.events();
        Rng rng(mix64(cfg_.seed ^ 0x0AC1E));
        for (std::uint32_t i = 0; i < cfg_.ops; ++i) {
            const std::uint64_t key =
                rng.nextBounded(cfg_.base.engine.recordCount);
            const bool del = i % 8 == 7;
            const Tick at = loadEnd_ + Tick(i + 1) * cfg_.opGap;
            eq.schedule(at, [this, key, del] {
                auto ack = [this, key](const QueryResult &) {
                    committed_[key] =
                        engine_->committedVersion(key);
                    ++acks_;
                };
                if (del)
                    engine_->erase(key, std::move(ack));
                else
                    engine_->update(
                        key,
                        valueBytes(key,
                                   engine_->committedVersion(key)),
                        std::move(ack));
            });
            // Guaranteed checkpoint activity even when the timer is
            // long relative to the run: one forced checkpoint at a
            // third of the way, one at two thirds.
            if (i == cfg_.ops / 3 || i == 2 * cfg_.ops / 3) {
                eq.schedule(at, [this] {
                    engine_->requestCheckpoint();
                });
            }
        }
    }

    OracleConfig cfg_;
    SimContext ctx_;
    SimContextScope scope_;
    FaultPlan plan_;
    std::unique_ptr<Ssd> ssd_;
    std::unique_ptr<StorageEngine> engine_;
    Tick loadEnd_ = 0;
    std::uint32_t acks_ = 0;
    std::map<std::uint64_t, std::uint32_t> committed_;
};

} // namespace

OracleReport
runCrashOracle(const OracleConfig &cfg)
{
    OracleReport report;

    // Probe: same seed as every replay, run to completion, noting
    // the end tick and every checkpoint window.
    std::vector<CkptWindow> windows;
    Tick end_tick;
    {
        OracleRun probe_run(cfg);
        end_tick = probe_run.probe(&windows);
        if (end_tick <= probe_run.loadEnd())
            throw std::logic_error("oracle probe made no progress");
    }

    Rng crash_rng(mix64(cfg.seed ^ 0xC7A5));
    for (std::uint32_t i = 0; i < cfg.crashPoints; ++i) {
        OracleRun run(cfg);
        const Tick lo = run.loadEnd() + 1;
        Tick crash_tick;
        if (i % 2 == 1 && !windows.empty()) {
            // Odd replays aim inside a checkpoint window so the cut
            // interrupts CoW/remap work mid-flight.
            const CkptWindow &w =
                windows[(i / 2) % windows.size()];
            crash_tick =
                w.start + crash_rng.nextBounded(
                              std::max<Tick>(1, w.end - w.start));
        } else {
            crash_tick =
                lo + crash_rng.nextBounded(
                         std::max<Tick>(1, end_tick - lo));
        }
        run.runUntil(crash_tick);
        report.ackedWrites += run.committed().size();
        // Snapshot the acks; crashAndRecover replaces the engine.
        const auto acked = run.committed();
        if (run.crashAndRecover(crash_tick))
            ++report.midCheckpointCrashes;
        for (const auto &[key, version] : acked) {
            if (run.engine().committedVersion(key) < version)
                ++report.lostWrites;
        }
        try {
            run.engine().verifyAllKeys();
        } catch (const std::runtime_error &) {
            ++report.tornRecords;
        }
        report.faultDigest =
            mix64(report.faultDigest ^ run.plan().digest());
        ++report.crashesRun;
    }
    return report;
}

} // namespace checkin
