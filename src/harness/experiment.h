/**
 * @file
 * Experiment harness: builds the full simulated system (clients ->
 * engine -> SSD -> FTL -> NAND), runs a workload, and collects the
 * metrics the paper's figures report.
 */

#ifndef CHECKIN_HARNESS_EXPERIMENT_H_
#define CHECKIN_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "engine/engine_config.h"
#include "fault/fault_plan.h"
#include "ftl/ftl_config.h"
#include "nand/nand_config.h"
#include "obs/artifacts.h"
#include "obs/attribution.h"
#include "sim/histogram.h"
#include "ssd/ssd_config.h"
#include "workload/client.h"
#include "workload/traffic.h"
#include "workload/ycsb.h"

namespace checkin {

/** Everything needed to run one experiment point. */
struct ExperimentConfig
{
    NandConfig nand;
    FtlConfig ftl;
    SsdConfig ssd;
    EngineConfig engine;
    WorkloadSpec workload;
    /** Load-driver loop mode + arrival process (closed by
     *  default; workload/traffic.h). */
    TrafficSpec traffic;
    std::uint32_t threads = 32;

    /**
     * Fault injection for this run (off by default). When enabled,
     * runExperiment builds a FaultPlan seeded from the run's
     * SimContext and installs it before the device is constructed,
     * so the fault schedule is part of the run identity.
     */
    FaultConfig faults;

    /**
     * Root seed of the run's SimContext (run identity). 0 (the
     * default) derives it from the workload seed, preserving the
     * pre-SimContext behaviour; sweeps assign each point a distinct
     * deterministic seed (see harness/sweep.h).
     */
    std::uint64_t seed = 0;

    /** Observability: tracing + artifact bundle (off by default). */
    obs::ObsOptions obs;

    /**
     * When nonzero, overrides the mapping unit. Otherwise the paper's
     * pairing applies: Baseline/ISC-A/ISC-B run on conventional
     * page-granularity mapping (the physical page size); ISC-C and
     * Check-In use the modified 512 B sub-page mapping.
     */
    std::uint32_t mappingUnitOverride = 0;

    /** Resolve the mapping unit for the configured mode. */
    std::uint32_t resolvedMappingUnit() const;
};

/** Metrics of one experiment run (deltas exclude the initial load). */
struct RunResult
{
    // Client-side metrics.
    ClientStats client;
    double throughputOps = 0.0; //!< ops per simulated second
    double avgLatencyUs = 0.0;
    Tick simSpan = 0;

    // Checkpoint metrics.
    std::uint64_t checkpoints = 0;
    double avgCheckpointMs = 0.0;
    double maxCheckpointMs = 0.0;
    /** Phase breakdown totals (ticks, post-load deltas). */
    std::uint64_t ckptDataTicks = 0;
    std::uint64_t ckptMetaTicks = 0;
    std::uint64_t ckptDeleteTicks = 0;

    /** Flash write-amplification factor: flash bytes programmed per
     *  host byte written (post-load). */
    double waf = 0.0;

    // Flash metrics (post-load deltas).
    std::uint64_t nandReads = 0;
    std::uint64_t nandPrograms = 0;
    std::uint64_t nandErases = 0;
    std::uint64_t gcInvocations = 0;
    std::uint64_t gcMigratedSlots = 0;
    std::uint64_t remaps = 0;
    /** Checkpoint-caused slot writes (the paper's redundant writes). */
    std::uint64_t redundantSlotWrites = 0;
    /** Same, in bytes (slot writes x mapping unit). */
    std::uint64_t redundantBytes = 0;
    std::uint64_t invalidatedSlots = 0;

    // Journal metrics.
    std::uint64_t journalPayloadBytes = 0;
    std::uint64_t journalChunksStored = 0;
    /** Chunk granularity the run's journal packed records at; the
     *  space-overhead formula below uses it so it cannot drift from
     *  the engine configuration. */
    std::uint32_t journalChunkBytes = 0;
    std::uint64_t journalStalls = 0;
    /** End-of-run journal fill-rate estimate (bytes/sec; the
     *  `journal.fillRate` metric). */
    double journalFillRate = 0.0;
    std::uint64_t mergedUnits = 0;
    std::uint64_t ckptLogsSeen = 0;
    std::uint64_t ckptLatestEntries = 0;

    // Host I/O issued to the device (post-load deltas).
    std::uint64_t hostWriteSectors = 0;
    std::uint64_t hostReadSectors = 0;

    /** Full merged stat dump for ad-hoc inspection. */
    std::map<std::string, std::uint64_t> raw;

    /** Artifact files written for this run (empty unless requested). */
    obs::ArtifactBundle artifacts;

    /** Per-op latency attribution (enabled=false unless
     *  cfg.obs.attributionEnabled was set). */
    obs::AttributionSummary attribution;

    /** Per-checkpoint phase timeline (same gating). */
    std::vector<obs::CheckpointStat> checkpointTimeline;

    /** Continuous-telemetry rollup (enabled=false unless
     *  cfg.obs.telemetry.enabled was set). */
    obs::TelemetrySummary telemetry;

    /** Space overhead: stored journal bytes / payload bytes - 1. */
    double
    journalSpaceOverhead() const
    {
        if (journalPayloadBytes == 0 || journalChunkBytes == 0)
            return 0.0;
        return double(journalChunksStored) *
                   double(journalChunkBytes) /
                   double(journalPayloadBytes) -
               1.0;
    }
};

/** Run one experiment point to completion. */
RunResult runExperiment(const ExperimentConfig &cfg);

} // namespace checkin

#endif // CHECKIN_HARNESS_EXPERIMENT_H_
