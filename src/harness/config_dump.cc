#include "harness/config_dump.h"

#include <sstream>

namespace checkin {

std::string
describeConfig(const ExperimentConfig &cfg)
{
    std::ostringstream os;
    const NandConfig &n = cfg.nand;
    os << "Simulated machine configuration (Table I equivalents)\n";
    os << "  DBMS   mode " << checkpointModeName(cfg.engine.mode)
       << ", " << cfg.engine.recordCount << " records, workload "
       << cfg.workload.name << " ("
       << distributionName(cfg.workload.distribution) << "), "
       << cfg.threads << " threads\n";
    os << "         checkpoint every "
       << cfg.engine.checkpointInterval / kMsec << " ms or "
       << cfg.engine.checkpointJournalBytes / kMiB
       << " MiB of logs; journal halves "
       << cfg.engine.journalHalfBytes / kMiB << " MiB\n";
    os << "  Host   " << cfg.engine.hostCpuPerQuery / kUsec
       << " us/query CPU, PCIe "
       << double(cfg.ssd.busBytesPerSec) / 1e9 << " GB/s, "
       << cfg.ssd.commandOverhead / kUsec << " us/cmd firmware, QD "
       << cfg.ssd.queueDepth << "\n";
    os << "  SSD    " << n.channels << " ch x " << n.diesPerChannel
       << " die x " << n.planesPerDie << " plane, "
       << n.blocksPerPlane << " blk/plane, " << n.pagesPerBlock
       << " pg/blk, " << n.pageBytes << " B pages ("
       << n.totalBytes() / kMiB << " MiB raw)\n";
    os << "         tR " << n.readLatency / kUsec << " us, tPROG "
       << n.programLatency / kUsec << " us, tBERS "
       << n.eraseLatency / kMsec << " ms, channel "
       << double(n.channelBytesPerSec) / 1e6 << " MB/s, P/E max "
       << n.maxPeCycles << "\n";
    os << "  FTL    mapping unit " << cfg.resolvedMappingUnit()
       << " B, exported " << cfg.ftl.exportedRatio * 100
       << " %, data cache " << cfg.ftl.dataCacheBytes / kMiB
       << " MiB, small-copy buffer "
       << cfg.ssd.smallBufferSectors << " sectors\n";
    return os.str();
}

} // namespace checkin
