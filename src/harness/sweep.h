/**
 * @file
 * Parallel experiment-sweep runner.
 *
 * Every paper figure is a grid of independent experiment points
 * (threads x mode x interval x ...). A single simulation is
 * single-threaded discrete-event simulation and two points share no
 * state (see sim/sim_context.h), so the sweep is embarrassingly
 * parallel: runSweep executes the points on a bounded worker pool and
 * returns the outcomes in point order, bit-identical to a serial run.
 *
 *  - Declarative grids: SweepGrid crosses axes of labeled config
 *    edits into a stable row-major point list (last axis fastest).
 *  - Bounded concurrency: --jobs N / CHECKIN_JOBS=N, defaulting to
 *    std::thread::hardware_concurrency().
 *  - Deterministic seeding: each point with cfg.seed == 0 gets a seed
 *    derived from (baseSeed, point index), so results do not depend
 *    on scheduling order or worker count.
 *  - Failure capture: an exception inside one point is recorded in
 *    its outcome instead of tearing down the whole sweep.
 */

#ifndef CHECKIN_HARNESS_SWEEP_H_
#define CHECKIN_HARNESS_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"

namespace checkin {

/** One experiment point of a sweep. */
struct SweepPoint
{
    std::string label;
    ExperimentConfig config;
};

/** Result (or captured failure) of one sweep point. */
struct SweepOutcome
{
    std::string label;
    RunResult result;
    /** False when the point threw; @ref error holds the message. */
    bool ok = false;
    std::string error;
};

/** Execution knobs of runSweep. */
struct SweepOptions
{
    /**
     * Worker count. 0 resolves through CHECKIN_JOBS, then
     * hardware_concurrency (capped at the point count; at least 1).
     */
    unsigned jobs = 0;

    /** Mixed with the point index into per-point context seeds for
     *  points that do not pin ExperimentConfig::seed themselves. */
    std::uint64_t baseSeed = 1;
};

/** Resolve a worker count: @p requested, else $CHECKIN_JOBS, else
 *  std::thread::hardware_concurrency(), never less than 1. */
unsigned resolveJobs(unsigned requested);

/**
 * Parse sweep flags from a bench command line: "--jobs N" / "-jN".
 * Unrelated arguments are ignored. Malformed values fall back to the
 * environment/hardware default.
 */
SweepOptions sweepOptionsFromArgs(int argc, char **argv);

/**
 * Run every point, at most opts.jobs at a time, and return outcomes
 * indexed exactly like @p points. Points are claimed in order but may
 * finish in any order; outcome order (and, with per-point seeds,
 * every result bit) is independent of the worker count.
 */
std::vector<SweepOutcome>
runSweep(const std::vector<SweepPoint> &points,
         const SweepOptions &opts = {});

/**
 * Declarative cartesian sweep grid.
 *
 * Each axis is a list of labeled edits of an ExperimentConfig;
 * points() crosses all axes over the base config, applying edits in
 * axis order and joining the axis labels with '-'. Order is row-major
 * with the *last* axis fastest, matching the nested-loop order
 *
 *     for (a0 : axis0) for (a1 : axis1) ...
 */
class SweepGrid
{
  public:
    using Edit = std::function<void(ExperimentConfig &)>;

    struct Value
    {
        std::string label;
        Edit apply;
    };

    explicit SweepGrid(ExperimentConfig base)
        : base_(std::move(base))
    {
    }

    SweepGrid &
    axis(std::vector<Value> values)
    {
        axes_.push_back(std::move(values));
        return *this;
    }

    /** Number of points the grid expands to. */
    std::size_t size() const;

    std::vector<SweepPoint> points() const;

  private:
    ExperimentConfig base_;
    std::vector<std::vector<Value>> axes_;
};

} // namespace checkin

#endif // CHECKIN_HARNESS_SWEEP_H_
