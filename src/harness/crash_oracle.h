/**
 * @file
 * Crash-consistency oracle (paper §III-G evaluation aid).
 *
 * The oracle replays one seeded workload many times, cutting power at
 * a different deterministic tick each time — including ticks chosen
 * inside checkpoint windows, so multi-CoW checkpoints are crashed
 * mid-flight — and after every cut runs SPOR + firmware rebuild +
 * engine recovery and asserts the store's durability contract:
 *
 *   1. every write acknowledged before the cut is recovered at an
 *      equal or newer version (no lost ack), and
 *   2. every committed key reads back its exact content (no torn
 *      record served).
 *
 * Crash ticks and the injected fault schedule both derive from the
 * config seed, so a report is reproducible bit-for-bit regardless of
 * how many sweep workers run other configs concurrently.
 */

#ifndef CHECKIN_HARNESS_CRASH_ORACLE_H_
#define CHECKIN_HARNESS_CRASH_ORACLE_H_

#include <cstdint>

#include "harness/experiment.h"

namespace checkin {

/** One oracle campaign over a single experiment configuration. */
struct OracleConfig
{
    /** Scale, mode, and fault plan of the probed runs. The workload
     *  spec is ignored: the oracle drives its own paced updates so
     *  it can track acknowledgements exactly. */
    ExperimentConfig base;

    /** Seed for the run identity and the crash-tick schedule. */
    std::uint64_t seed = 1;

    /** Crash replays; half uniform over the run, half inside
     *  checkpoint windows (when the probe run observed any). */
    std::uint32_t crashPoints = 50;

    /** Updates driven per run (every 8th is a delete). */
    std::uint32_t ops = 600;

    /** Issue gap between consecutive updates. */
    Tick opGap = 50 * kUsec;
};

/** Outcome of an oracle campaign. */
struct OracleReport
{
    std::uint32_t crashesRun = 0;
    /** Replays whose cut landed inside a running checkpoint. */
    std::uint32_t midCheckpointCrashes = 0;
    /** Acknowledged writes across all replays (at cut time). */
    std::uint64_t ackedWrites = 0;
    /** Acked writes whose recovered version was older. */
    std::uint64_t lostWrites = 0;
    /** Replays where a committed key read back wrong content. */
    std::uint64_t tornRecords = 0;
    /** Fault-schedule digest folded across all replays. */
    std::uint64_t faultDigest = 0;

    bool ok() const { return lostWrites == 0 && tornRecords == 0; }
};

/** Run the campaign; throws only on oracle-internal logic errors. */
OracleReport runCrashOracle(const OracleConfig &cfg);

} // namespace checkin

#endif // CHECKIN_HARNESS_CRASH_ORACLE_H_
