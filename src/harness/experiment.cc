#include "harness/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "engine/storage_engine.h"
#include "harness/presets.h"
#include "harness/run_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"

namespace checkin {

std::uint32_t
ExperimentConfig::resolvedMappingUnit() const
{
    if (mappingUnitOverride != 0)
        return mappingUnitOverride;
    // The LSM backend always journals and remaps at sector
    // granularity, whatever checkpoint mode tags the config.
    if (engine.backend == EngineBackend::Lsm)
        return 512;
    switch (engine.mode) {
      case CheckpointMode::Baseline:
      case CheckpointMode::IscA:
      case CheckpointMode::IscB:
        // Conventional page-granularity mapping.
        return nand.pageBytes;
      case CheckpointMode::IscC:
      case CheckpointMode::CheckIn:
        // The paper's modified sub-page mapping (host sector size).
        return 512;
    }
    return 512;
}

namespace {

/** Snapshot every stat registry into one prefixed map. */
std::map<std::string, std::uint64_t>
collectStats(const Ssd &ssd, const StorageEngine &engine)
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[k, v] : ssd.nand().stats().all())
        out[k] = v;
    for (const auto &[k, v] : ssd.ftl().stats().all())
        out[k] = v;
    for (const auto &[k, v] : ssd.stats().all())
        out[k] = v;
    for (const auto &[k, v] : engine.stats().all())
        out[k] = v;
    return out;
}

std::uint64_t
delta(const std::map<std::string, std::uint64_t> &after,
      const std::map<std::string, std::uint64_t> &before,
      const std::string &key)
{
    const auto a = after.find(key);
    if (a == after.end())
        return 0;
    const auto b = before.find(key);
    const std::uint64_t base = b == before.end() ? 0 : b->second;
    return a->second - base;
}

} // namespace

RunResult
runExperiment(const ExperimentConfig &cfg)
{
    if (cfg.threads == 0 && cfg.workload.operationCount > 0) {
        // Without clients the workload can never finish, but the
        // engine's checkpoint timer keeps the event queue alive —
        // the run would spin forever instead of deadlocking.
        throw std::invalid_argument(
            "experiment needs at least one client thread");
    }
    // The run's context: event queue, root RNG, and observability
    // sinks. Everything the simulation touches hangs off it (or off
    // this stack frame), so concurrent runExperiment calls on
    // different threads share no mutable state.
    SimContext ctx(cfg.seed != 0 ? cfg.seed : cfg.workload.seed,
                   cfg.obs.runName);

    // The tracer must be installed and enabled before the device is
    // built: lane names register from the component constructors. An
    // enabled ambient tracer installed by the caller (on this thread)
    // is reused so callers can keep the events; otherwise a run-local
    // one is used when tracing was requested.
    obs::Tracer own_tracer;
    obs::Tracer *tracer = nullptr;
    if (cfg.obs.traceEnabled) {
        if (obs::traceOn()) {
            tracer = obs::installedTracer();
        } else {
            own_tracer.setEnabled(true);
            tracer = &own_tracer;
        }
    }
    ctx.setTracer(tracer);

    // Same reuse discipline for the latency-attribution collector:
    // an enabled ambient collector (installed by the caller) keeps
    // the op records; otherwise a run-local one serves the run.
    obs::AttributionCollector own_attr;
    obs::AttributionCollector *attr = nullptr;
    if (cfg.obs.attributionEnabled) {
        if (obs::attributionOn()) {
            attr = obs::installedAttribution();
        } else {
            own_attr.setEnabled(true);
            attr = &own_attr;
        }
        attr->setFlightRecorderK(cfg.obs.attrFlightRecorderK);
    }
    ctx.setAttribution(attr);

    obs::MetricsRegistry metrics;
    ctx.setMetrics(&metrics);

    // The telemetry sampler must exist before the device: layer
    // constructors (journal, SSD, engine, client pool) register
    // their probes and capture the pointer. Sampling only starts at
    // begin() after the load, so artifacts cover the measured run.
    obs::TelemetrySampler telemetry(cfg.obs.telemetry);
    if (telemetry.enabled())
        ctx.setTelemetry(&telemetry);
    SimContextScope active(ctx);

    // The fault plan must exist before the device: the Ssd wires it
    // into the NAND at construction. Its seed derives from the run
    // seed, so the schedule is part of the run identity.
    FaultPlan faults(cfg.faults,
                     ctx.deriveSeed(FaultPlan::kSeedStream));
    ctx.setFaults(&faults);

    EventQueue &eq = ctx.events();
    FtlConfig ftl_cfg = cfg.ftl;
    ftl_cfg.mappingUnitBytes = cfg.resolvedMappingUnit();
    Ssd ssd(ctx, cfg.nand, ftl_cfg, cfg.ssd);
    const std::unique_ptr<StorageEngine> engine_ptr =
        presets::makeEngine(ctx, ssd, cfg.engine);
    StorageEngine &engine = *engine_ptr;

    WorkloadGenerator sizer(cfg.workload, cfg.engine.recordCount);
    engine.load([&sizer](std::uint64_t key) {
        return sizer.initialSize(key);
    });

    // Let the load drain so run-time latencies start from an idle
    // device, then snapshot stats so results exclude the load.
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();
    const auto before = collectStats(ssd, engine);
    const std::uint64_t ckpt_before =
        engine.checkpointDurations().size();
    if (tracer != nullptr) {
        // Drop load-phase events (lane names survive) so the trace
        // covers exactly the measured run.
        tracer->clear();
    }
    if (attr != nullptr)
        attr->clearForMeasurement();

    const bool want_artifacts = !cfg.obs.artifactDir.empty();

    ClientPool pool(ctx, engine, cfg.workload, cfg.traffic,
                    cfg.threads);
    if (telemetry.enabled() && attr != nullptr) {
        // Per-stage dwell rates: windowed deltas of the collector's
        // live cumulative per-stage dwell.
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
            telemetry.addCounter(
                std::string("attr.dwell.") +
                    obs::stageName(obs::Stage(s)),
                [attr, s] {
                    return std::uint64_t(
                        attr->liveStageTicks(obs::Stage(s)));
                });
        }
    }
    telemetry.begin(eq);
    if (want_artifacts) {
        const obs::MetricId lat_series =
            metrics.series("op.latency", cfg.obs.seriesInterval);
        const obs::MetricId lat_hist =
            metrics.histogram("op.latency");
        pool.setSampler([&metrics, lat_series, lat_hist](
                            Tick issued, Tick done, bool, bool) {
            const Tick lat = done > issued ? done - issued : 0;
            metrics.sample(lat_series, done, lat);
            metrics.observe(lat_hist, lat);
        });
    }
    engine.start();
    pool.start();
    while (!pool.done()) {
        if (!eq.step())
            throw std::logic_error(
                "experiment deadlock: event queue drained before "
                "the workload finished");
    }
    // Let an in-flight checkpoint finish so its cost is attributed.
    while (engine.checkpointInProgress() && eq.step()) {
    }
    // Flush the residual telemetry window before verification reads
    // perturb the device counters.
    telemetry.finalize(eq.now());

    // Full-store content check: every committed key must read back
    // its exact chunk tokens wherever it currently lives.
    engine.verifyAllKeys();

    RunResult r;
    r.client = pool.stats();
    r.simSpan = r.client.span();
    r.throughputOps = r.client.opsPerSec();
    r.avgLatencyUs = r.client.all.mean() / double(kUsec);

    const auto &durations = engine.checkpointDurations();
    r.checkpoints = durations.size() - ckpt_before;
    Tick total = 0;
    Tick worst = 0;
    for (std::size_t i = ckpt_before; i < durations.size(); ++i) {
        total += durations[i];
        worst = std::max(worst, durations[i]);
    }
    if (r.checkpoints > 0) {
        r.avgCheckpointMs =
            double(total) / double(r.checkpoints) / double(kMsec);
    }
    r.maxCheckpointMs = double(worst) / double(kMsec);

    const auto after = collectStats(ssd, engine);
    r.raw = after;
    // Fault-plan outcome: counters, wear skew, and the schedule
    // digest ride along in the raw map so sweeps and the oracle can
    // assert fault determinism from exported artifacts alone.
    {
        const FaultCounters &fc = faults.counters();
        r.raw["fault.faultyReads"] = fc.faultyReads;
        r.raw["fault.readRetries"] = fc.readRetries;
        r.raw["fault.uncorrectableReads"] = fc.uncorrectableReads;
        r.raw["fault.programFails"] = fc.programFails;
        r.raw["fault.eraseFails"] = fc.eraseFails;
        r.raw["fault.powerLosses"] = fc.powerLosses;
        r.raw["fault.digest"] = faults.digest();
        r.raw["nand.eraseSkew"] =
            ssd.nand().maxEraseCount() - ssd.nand().minEraseCount();
        metrics.set(metrics.counter("fault.digest"),
                    faults.digest());
        metrics.set(metrics.counter("fault.uncorrectableReads"),
                    fc.uncorrectableReads);
        metrics.set(metrics.counter("fault.programFails"),
                    fc.programFails);
        metrics.set(metrics.counter("fault.eraseFails"),
                    fc.eraseFails);
    }
    r.nandReads = delta(after, before, "nand.reads");
    r.nandPrograms = delta(after, before, "nand.programs");
    r.nandErases = delta(after, before, "nand.erases");
    r.gcInvocations = delta(after, before, "gc.invocations");
    r.gcMigratedSlots = delta(after, before, "gc.migratedSlots");
    r.remaps = delta(after, before, "ftl.remaps");
    r.redundantSlotWrites =
        delta(after, before, "ftl.slotWrites.checkpoint");
    r.redundantBytes =
        r.redundantSlotWrites * ftl_cfg.mappingUnitBytes;
    r.invalidatedSlots =
        delta(after, before, "ftl.invalidatedSlots");
    r.journalPayloadBytes =
        delta(after, before, "engine.journalPayloadBytes");
    r.journalChunksStored =
        delta(after, before, "engine.journalChunksStored");
    r.journalChunkBytes = kChunkBytes;
    r.journalStalls = delta(after, before, "engine.journalStalls");
    r.journalFillRate = engine.journalFillRate();
    metrics.set(metrics.gauge("journal.fillRate"),
                std::uint64_t(r.journalFillRate));
    r.mergedUnits = delta(after, before, "engine.mergedUnits");
    r.ckptLogsSeen = delta(after, before, "engine.ckptLogsSeen");
    r.ckptLatestEntries =
        delta(after, before, "engine.ckptLatestEntries");
    r.hostWriteSectors =
        delta(after, before, "ftl.hostWriteSectors");
    r.hostReadSectors = delta(after, before, "ftl.hostReadSectors");
    r.ckptDataTicks = delta(after, before, "engine.ckptDataTicks");
    r.ckptMetaTicks = delta(after, before, "engine.ckptMetaTicks");
    r.ckptDeleteTicks =
        delta(after, before, "engine.ckptDeleteTicks");
    if (r.journalPayloadBytes > 0) {
        r.waf = double(r.nandPrograms) * cfg.nand.pageBytes /
                double(r.journalPayloadBytes);
    }

    // Kernel health counters: clamped (past-tick) schedules are
    // silent model bugs, so they ride along in every artifact bundle.
    metrics.set(metrics.counter("sim.clampedSchedules"),
                eq.clampedSchedules());
    metrics.set(metrics.counter("sim.dispatchedEvents"),
                eq.dispatched());

    if (attr != nullptr) {
        r.attribution = attr->summary(cfg.obs.attrTailQuantile);
        r.checkpointTimeline = attr->checkpoints();

        // Surface the breakdown in the metrics registry: total dwell
        // per stage as counters, per-class x per-stage latency
        // histograms built from the retained op records.
        metrics.set(metrics.counter("attr.ops"),
                    r.attribution.totalOps);
        metrics.set(metrics.counter("attr.tailOps"),
                    r.attribution.tailOps);
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
            Tick total = 0;
            for (const obs::ClassBreakdown &c :
                 r.attribution.perClass) {
                total += c.dwell[s];
            }
            if (total > 0) {
                metrics.set(
                    metrics.counter(
                        std::string("attr.dwell.") +
                        obs::stageName(obs::Stage(s))),
                    total);
            }
        }
        obs::MetricId ids[obs::kOpClassCount][obs::kStageCount];
        bool have[obs::kOpClassCount][obs::kStageCount] = {};
        for (const obs::OpRecord &rec : attr->ops()) {
            const auto c = std::size_t(rec.cls);
            for (std::size_t s = 0; s < obs::kStageCount; ++s) {
                if (rec.dwell[s] == 0)
                    continue;
                if (!have[c][s]) {
                    ids[c][s] = metrics.histogram(
                        std::string("attr.") +
                        obs::opClassName(rec.cls) + "." +
                        obs::stageName(obs::Stage(s)));
                    have[c][s] = true;
                }
                metrics.observe(ids[c][s], rec.dwell[s]);
            }
        }
    }

    r.telemetry = telemetry.summary();
    if (telemetry.enabled()) {
        metrics.set(metrics.counter("telemetry.samples"),
                    telemetry.sampleCount());
        metrics.set(metrics.counter("telemetry.anomalies"),
                    telemetry.anomalyCount());
    }

    if (want_artifacts) {
        metrics.importStats(ssd.nand().stats());
        metrics.importStats(ssd.ftl().stats());
        metrics.importStats(ssd.stats());
        metrics.importStats(engine.stats());
        obs::ArtifactWriter writer(cfg.obs.artifactDir,
                                   cfg.obs.runName);
        if (tracer != nullptr)
            writer.writeText("trace.json", tracer->toJson());
        writer.writeText("metrics.json", metrics.toJson());
        writer.writeText("metrics.csv", metrics.scalarsCsv());
        writer.writeText("series.csv", metrics.seriesCsv());
        if (attr != nullptr) {
            writer.writeText(
                "attribution.json",
                attr->toJson(cfg.obs.attrTailQuantile));
            writer.writeText("checkpoints.json",
                             attr->checkpointsJson());
        }
        if (telemetry.enabled()) {
            writer.writeText("telemetry.json",
                             telemetry.telemetryJson());
            writer.writeText("blackbox.json",
                             telemetry.blackboxJson());
        }
        writer.writeText("summary.json", runResultJson(r));
        r.artifacts = writer.bundle();
    }
    return r;
}

} // namespace checkin
