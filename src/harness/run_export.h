/**
 * @file
 * Deterministic JSON export of a RunResult. Benches and the harness
 * route their machine-readable summaries through this single
 * serializer so artifacts are stable and diffable across runs.
 */

#ifndef CHECKIN_HARNESS_RUN_EXPORT_H_
#define CHECKIN_HARNESS_RUN_EXPORT_H_

#include <ostream>
#include <string>

#include "harness/experiment.h"
#include "obs/json.h"

namespace checkin {

/**
 * Write @p r as a JSON object (sorted keys, fixed number formatting).
 * Two identical runs produce byte-identical output.
 */
void writeRunResultJson(obs::JsonWriter &w, const RunResult &r);

/** writeRunResultJson into a string (one trailing newline). */
std::string runResultJson(const RunResult &r);

} // namespace checkin

#endif // CHECKIN_HARNESS_RUN_EXPORT_H_
