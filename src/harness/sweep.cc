#include "harness/sweep.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sim/rng.h"

namespace checkin {

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    if (const char *env = std::getenv("CHECKIN_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepOptions
sweepOptionsFromArgs(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        long v = 0;
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            v = std::strtol(argv[++i], nullptr, 10);
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            v = std::strtol(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "-j", 2) == 0 &&
                   arg[2] != '\0') {
            v = std::strtol(arg + 2, nullptr, 10);
        } else {
            continue;
        }
        if (v > 0)
            opts.jobs = static_cast<unsigned>(v);
    }
    return opts;
}

std::vector<SweepOutcome>
runSweep(const std::vector<SweepPoint> &points,
         const SweepOptions &opts)
{
    std::vector<SweepOutcome> out(points.size());
    if (points.empty())
        return out;

    const unsigned jobs = std::min<unsigned>(
        std::max(1u, resolveJobs(opts.jobs)),
        static_cast<unsigned>(points.size()));

    // Workers claim indices from a shared counter; each outcome slot
    // is written by exactly one worker, so the only synchronization
    // needed is the counter and the final join.
    std::atomic<std::size_t> next{0};
    auto work = [&points, &out, &opts, &next] {
        for (std::size_t i;
             (i = next.fetch_add(1, std::memory_order_relaxed)) <
             points.size();) {
            SweepOutcome &o = out[i];
            o.label = points[i].label;
            ExperimentConfig cfg = points[i].config;
            if (cfg.seed == 0) {
                // Index-derived via stream derivation, not drawn
                // from a shared RNG: the seed of point i is the same
                // whichever worker runs it, whenever.
                cfg.seed = Rng(opts.baseSeed).childSeed(i);
            }
            try {
                o.result = runExperiment(cfg);
                o.ok = true;
            } catch (const std::exception &e) {
                o.error = e.what();
            } catch (...) {
                o.error = "unknown exception";
            }
        }
    };

    if (jobs == 1) {
        work();
        return out;
    }
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        workers.emplace_back(work);
    for (std::thread &w : workers)
        w.join();
    return out;
}

std::size_t
SweepGrid::size() const
{
    std::size_t n = 1;
    for (const auto &axis : axes_)
        n *= axis.size();
    return n;
}

std::vector<SweepPoint>
SweepGrid::points() const
{
    std::vector<SweepPoint> pts;
    if (size() == 0)
        return pts;
    pts.reserve(size());
    std::vector<std::size_t> idx(axes_.size(), 0);
    for (;;) {
        SweepPoint p{std::string(), base_};
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const Value &v = axes_[a][idx[a]];
            if (a != 0)
                p.label += '-';
            p.label += v.label;
            if (v.apply)
                v.apply(p.config);
        }
        pts.push_back(std::move(p));
        // Odometer increment, last axis fastest.
        std::size_t a = axes_.size();
        while (a > 0) {
            --a;
            if (++idx[a] < axes_[a].size())
                break;
            idx[a] = 0;
            if (a == 0)
                return pts;
        }
        if (axes_.empty())
            return pts;
    }
}

} // namespace checkin
