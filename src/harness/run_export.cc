#include "harness/run_export.h"

#include <sstream>

namespace checkin {

namespace {

void
histJson(obs::JsonWriter &w, const std::string &key,
         const LatencyHistogram &h)
{
    w.key(key).beginObject();
    w.kv("count", h.count());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    w.kv("min", h.min());
    w.kv("p50", h.quantile(0.5));
    w.kv("p99", h.quantile(0.99));
    w.kv("p999", h.quantile(0.999));
    w.endObject();
}

void
classBreakdownsJson(
    obs::JsonWriter &w, const std::string &key,
    const std::array<obs::ClassBreakdown, obs::kOpClassCount> &cls)
{
    w.key(key).beginObject();
    for (std::size_t c = 0; c < obs::kOpClassCount; ++c) {
        const obs::ClassBreakdown &b = cls[c];
        if (b.ops == 0)
            continue;
        w.key(obs::opClassName(obs::OpClass(c))).beginObject();
        w.kv("ops", b.ops);
        w.key("stages").beginObject();
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
            if (b.dwell[s] != 0)
                w.kv(obs::stageName(obs::Stage(s)), b.dwell[s]);
        }
        w.endObject();
        w.kv("totalTicks", b.totalTicks());
        w.endObject();
    }
    w.endObject();
}

} // namespace

void
writeRunResultJson(obs::JsonWriter &w, const RunResult &r)
{
    w.beginObject();

    w.key("attribution").beginObject();
    if (r.attribution.enabled) {
        classBreakdownsJson(w, "classes", r.attribution.perClass);
        w.kv("enabled", true);
        classBreakdownsJson(w, "tailClasses",
                            r.attribution.tailPerClass);
        w.kv("tailOps", r.attribution.tailOps);
        w.kv("tailQuantile", r.attribution.tailQuantile);
        w.kv("tailThresholdTicks", r.attribution.tailThresholdTicks);
        w.kv("totalOps", r.attribution.totalOps);
    } else {
        w.kv("enabled", false);
    }
    w.endObject();

    w.kv("avgLatencyUs", r.avgLatencyUs);

    w.key("checkpoints").beginObject();
    w.kv("avgMs", r.avgCheckpointMs);
    w.kv("count", r.checkpoints);
    w.kv("dataTicks", r.ckptDataTicks);
    w.kv("deleteTicks", r.ckptDeleteTicks);
    w.kv("latestEntries", r.ckptLatestEntries);
    w.kv("logsSeen", r.ckptLogsSeen);
    w.kv("maxMs", r.maxCheckpointMs);
    w.kv("metaTicks", r.ckptMetaTicks);
    w.endObject();

    w.key("checkpointTimeline").beginArray();
    for (const obs::CheckpointStat &c : r.checkpointTimeline) {
        w.beginObject();
        w.kv("bufferedSmallRecords", c.bufferedSmallRecords);
        w.kv("copiedChunks", c.copiedChunks);
        w.kv("copiedPairs", c.copiedPairs);
        w.kv("cowCommands", c.cowCommands);
        w.kv("dataTicks", c.dataDoneTick - c.startTick);
        w.kv("deleteTicks", c.endTick - c.metaDoneTick);
        w.kv("endTick", c.endTick);
        w.kv("entries", c.entries);
        w.kv("fullRecords", c.fullRecords);
        w.kv("mergedRecords", c.mergedRecords);
        w.kv("metaTicks", c.metaDoneTick - c.dataDoneTick);
        w.kv("partialRecords", c.partialRecords);
        w.kv("rawRecords", c.rawRecords);
        w.kv("remappedPairs", c.remappedPairs);
        w.kv("remappedUnits", c.remappedUnits);
        w.kv("seq", c.seq);
        w.kv("startTick", c.startTick);
        w.kv("tombstones", c.tombstones);
        w.kv("totalTicks", c.endTick - c.startTick);
        w.kv("trigger", obs::ckptTriggerName(c.trigger));
        w.endObject();
    }
    w.endArray();

    w.key("client").beginObject();
    histJson(w, "all", r.client.all);
    histJson(w, "duringCheckpoint", r.client.duringCheckpoint);
    w.kv("offeredOpsPerSec", r.client.offeredOpsPerSec());
    w.kv("opsCompleted", r.client.opsCompleted);
    w.kv("opsOffered", r.client.opsOffered);
    histJson(w, "outsideCheckpoint", r.client.outsideCheckpoint);
    histJson(w, "queueDelay", r.client.queueDelay);
    histJson(w, "reads", r.client.reads);
    histJson(w, "readsDuringCheckpoint",
             r.client.readsDuringCheckpoint);
    w.kv("sloViolations", r.client.sloViolations);
    w.key("tenants").beginArray();
    for (const TenantStats &t : r.client.tenants) {
        w.beginObject();
        histJson(w, "latency", t.latency);
        w.kv("name", t.name);
        w.kv("opsCompleted", t.opsCompleted);
        w.kv("sloLatencyTicks", t.sloLatency);
        w.kv("sloViolations", t.sloViolations);
        w.endObject();
    }
    w.endArray();
    histJson(w, "writes", r.client.writes);
    histJson(w, "writesDuringCheckpoint",
             r.client.writesDuringCheckpoint);
    w.endObject();

    w.key("flash").beginObject();
    w.kv("erases", r.nandErases);
    w.kv("gcInvocations", r.gcInvocations);
    w.kv("gcMigratedSlots", r.gcMigratedSlots);
    w.kv("invalidatedSlots", r.invalidatedSlots);
    w.kv("programs", r.nandPrograms);
    w.kv("reads", r.nandReads);
    w.kv("redundantBytes", r.redundantBytes);
    w.kv("redundantSlotWrites", r.redundantSlotWrites);
    w.kv("remaps", r.remaps);
    w.kv("waf", r.waf);
    w.endObject();

    w.key("host").beginObject();
    w.kv("readSectors", r.hostReadSectors);
    w.kv("writeSectors", r.hostWriteSectors);
    w.endObject();

    w.key("journal").beginObject();
    w.kv("chunkBytes",
         std::uint64_t(r.journalChunkBytes));
    w.kv("chunksStored", r.journalChunksStored);
    w.kv("fillRate", r.journalFillRate);
    w.kv("mergedUnits", r.mergedUnits);
    w.kv("payloadBytes", r.journalPayloadBytes);
    w.kv("spaceOverhead", r.journalSpaceOverhead());
    w.kv("stalls", r.journalStalls);
    w.endObject();

    w.key("raw").beginObject();
    for (const auto &[k, v] : r.raw)
        w.kv(k, v);
    w.endObject();

    w.kv("simSpanTicks", r.simSpan);

    w.key("telemetry").beginObject();
    w.kv("anomalies", r.telemetry.anomalies);
    w.kv("enabled", r.telemetry.enabled);
    w.kv("events", r.telemetry.events);
    w.kv("probes", r.telemetry.probes);
    w.kv("samples", r.telemetry.samples);
    w.kv("windowTicks", std::uint64_t(r.telemetry.windowTicks));
    w.endObject();

    w.kv("throughputOps", r.throughputOps);

    w.endObject();
}

std::string
runResultJson(const RunResult &r)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    writeRunResultJson(w, r);
    os << "\n";
    return os.str();
}

} // namespace checkin
