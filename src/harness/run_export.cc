#include "harness/run_export.h"

#include <sstream>

namespace checkin {

namespace {

void
histJson(obs::JsonWriter &w, const std::string &key,
         const LatencyHistogram &h)
{
    w.key(key).beginObject();
    w.kv("count", h.count());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    w.kv("min", h.min());
    w.kv("p50", h.quantile(0.5));
    w.kv("p99", h.quantile(0.99));
    w.kv("p999", h.quantile(0.999));
    w.endObject();
}

} // namespace

void
writeRunResultJson(obs::JsonWriter &w, const RunResult &r)
{
    w.beginObject();

    w.kv("avgLatencyUs", r.avgLatencyUs);

    w.key("checkpoints").beginObject();
    w.kv("avgMs", r.avgCheckpointMs);
    w.kv("count", r.checkpoints);
    w.kv("dataTicks", r.ckptDataTicks);
    w.kv("deleteTicks", r.ckptDeleteTicks);
    w.kv("latestEntries", r.ckptLatestEntries);
    w.kv("logsSeen", r.ckptLogsSeen);
    w.kv("maxMs", r.maxCheckpointMs);
    w.kv("metaTicks", r.ckptMetaTicks);
    w.endObject();

    w.key("client").beginObject();
    histJson(w, "all", r.client.all);
    histJson(w, "duringCheckpoint", r.client.duringCheckpoint);
    w.kv("opsCompleted", r.client.opsCompleted);
    histJson(w, "outsideCheckpoint", r.client.outsideCheckpoint);
    histJson(w, "reads", r.client.reads);
    histJson(w, "readsDuringCheckpoint",
             r.client.readsDuringCheckpoint);
    histJson(w, "writes", r.client.writes);
    histJson(w, "writesDuringCheckpoint",
             r.client.writesDuringCheckpoint);
    w.endObject();

    w.key("flash").beginObject();
    w.kv("erases", r.nandErases);
    w.kv("gcInvocations", r.gcInvocations);
    w.kv("gcMigratedSlots", r.gcMigratedSlots);
    w.kv("invalidatedSlots", r.invalidatedSlots);
    w.kv("programs", r.nandPrograms);
    w.kv("reads", r.nandReads);
    w.kv("redundantBytes", r.redundantBytes);
    w.kv("redundantSlotWrites", r.redundantSlotWrites);
    w.kv("remaps", r.remaps);
    w.kv("waf", r.waf);
    w.endObject();

    w.key("host").beginObject();
    w.kv("readSectors", r.hostReadSectors);
    w.kv("writeSectors", r.hostWriteSectors);
    w.endObject();

    w.key("journal").beginObject();
    w.kv("chunkBytes",
         std::uint64_t(r.journalChunkBytes));
    w.kv("chunksStored", r.journalChunksStored);
    w.kv("mergedUnits", r.mergedUnits);
    w.kv("payloadBytes", r.journalPayloadBytes);
    w.kv("spaceOverhead", r.journalSpaceOverhead());
    w.kv("stalls", r.journalStalls);
    w.endObject();

    w.key("raw").beginObject();
    for (const auto &[k, v] : r.raw)
        w.kv(k, v);
    w.endObject();

    w.kv("simSpanTicks", r.simSpan);
    w.kv("throughputOps", r.throughputOps);

    w.endObject();
}

std::string
runResultJson(const RunResult &r)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    writeRunResultJson(w, r);
    os << "\n";
    return os.str();
}

} // namespace checkin
