#include "harness/table.h"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace checkin {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(int(width[c]) + 2) << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::percent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << " %";
    return os.str();
}

} // namespace checkin
