/**
 * @file
 * Table I reproduction: render an ExperimentConfig as the paper's
 * "Simulated Machine Configuration" table.
 */

#ifndef CHECKIN_HARNESS_CONFIG_DUMP_H_
#define CHECKIN_HARNESS_CONFIG_DUMP_H_

#include <string>

#include "harness/experiment.h"

namespace checkin {

/** Multi-line human-readable configuration summary (Table I). */
std::string describeConfig(const ExperimentConfig &cfg);

} // namespace checkin

#endif // CHECKIN_HARNESS_CONFIG_DUMP_H_
