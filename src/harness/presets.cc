#include "harness/presets.h"

#include <stdexcept>

#include "engine/kv_engine.h"
#include "engine/lsm/lsm_engine.h"

namespace checkin::presets {

std::unique_ptr<StorageEngine>
makeEngine(SimContext &ctx, Ssd &ssd, const EngineConfig &cfg)
{
    switch (cfg.backend) {
      case EngineBackend::CheckIn:
        return std::make_unique<KvEngine>(ctx, ssd, cfg);
      case EngineBackend::Lsm:
        return std::make_unique<LsmEngine>(ctx, ssd, cfg);
    }
    throw std::runtime_error("makeEngine: unknown backend");
}

EngineBackend
parseEngineBackend(const std::string &name)
{
    if (name == "checkin")
        return EngineBackend::CheckIn;
    if (name == "lsm")
        return EngineBackend::Lsm;
    throw std::runtime_error("unknown engine backend: " + name +
                             " (expected checkin or lsm)");
}

ExperimentConfig
small()
{
    ExperimentConfig c;
    c.nand.channels = 4;
    c.nand.diesPerChannel = 2;
    c.nand.blocksPerPlane = 64;
    c.nand.pagesPerBlock = 64;
    // 4 * 2 * 64 * 64 * 4 KiB = 128 MiB raw. The DRAM data cache is
    // scaled with the device (Table I's 64 MiB : TB-class device).
    c.ftl.dataCacheBytes = 4 * kMiB;
    c.engine.recordCount = 4000;
    c.engine.maxValueBytes = 4096;
    c.engine.journalHalfBytes = 8 * kMiB;
    c.engine.checkpointJournalBytes = 2 * kMiB;
    c.engine.checkpointInterval = 25 * kMsec;
    c.workload.operationCount = 20'000;
    c.threads = 32;
    return c;
}

ExperimentConfig
paper()
{
    ExperimentConfig c = small();
    c.engine.checkpointInterval = 200 * kMsec;
    c.engine.checkpointJournalBytes = 6 * kMiB;
    return c;
}

ExperimentConfig
faulty()
{
    ExperimentConfig c = small();
    // Frequent checkpoints widen the mid-checkpoint crash windows
    // the oracle probes.
    c.engine.checkpointInterval = 10 * kMsec;
    c.faults.enabled = true;
    // Probabilities are per media op and wear-scaled; at this scale
    // the ECC retry budget recovers nearly all read faults while a
    // handful of program/erase fails exercise block retirement.
    c.faults.readBitErrorProb = 5e-4;
    c.faults.programFailProb = 2e-4;
    c.faults.eraseFailProb = 1e-3;
    c.faults.wearFactor = 1.0;
    return c;
}

} // namespace checkin::presets
