/**
 * @file
 * Storage-engine (DBMS-side) configuration.
 */

#ifndef CHECKIN_ENGINE_ENGINE_CONFIG_H_
#define CHECKIN_ENGINE_ENGINE_CONFIG_H_

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace checkin {

/**
 * The five evaluated configurations (paper §IV-A).
 *
 * Baseline/IscA/IscB model a conventional page-mapping SSD (the
 * harness pairs them with a 4 KiB mapping unit); IscC and CheckIn add
 * the modified sub-page mapping (512 B default). CheckIn additionally
 * enables sector-aligned journaling in the engine.
 */
enum class CheckpointMode : std::uint8_t
{
    Baseline, //!< host-driven checkpointing through the block interface
    IscA,     //!< in-storage checkpointing, one CoW command per log
    IscB,     //!< in-storage checkpointing, batched multi-CoW commands
    IscC,     //!< in-storage checkpointing with FTL remapping
    CheckIn,  //!< remapping + sector-aligned journaling
};

const char *checkpointModeName(CheckpointMode mode);

/**
 * Which StorageEngine implementation to build (harness/presets.h
 * makeEngine).
 */
enum class EngineBackend : std::uint8_t
{
    CheckIn, //!< checkpoint-journal engine (engine/kv_engine.h)
    Lsm,     //!< LSM engine with ISCE-offloaded compaction (engine/lsm/)
};

const char *engineBackendName(EngineBackend backend);

/**
 * Which checkpoint-trigger policy the engine runs (see
 * engine/checkpoint_policy.h).
 */
enum class CheckpointPolicyKind : std::uint8_t
{
    Fixed,    //!< the paper's interval-OR-journal-bytes trigger
    Adaptive, //!< feedback controller pacing/deferring checkpoints
};

const char *checkpointPolicyName(CheckpointPolicyKind kind);

/** Knobs of the adaptive checkpoint controller (AdaptivePolicy). */
struct AdaptivePolicyConfig
{
    /** Controller evaluation period (replaces the fixed timer). */
    Tick controlInterval = 2 * kMsec;

    /** Hard ceiling: always checkpoint at this fraction of the
     *  active half, whatever the rate terms say. */
    double safetyFraction = 0.80;

    /** Steady-state pacing point, as a fraction of the half. */
    double paceFraction = 0.30;

    /** Safety projection margin: a checkpoint is started when
     *  journalBytes + margin * fillRate * ckptDuration would fill
     *  the active half. */
    double safetyMargin = 1.5;

    /** A burst is fast-rate > burstFactor * slow-rate. */
    double burstFactor = 2.0;

    /** A lull is fast-rate < idleFraction * slow-rate. */
    double idleFraction = 0.5;

    /** Do not checkpoint less than this during a lull (too little
     *  journaled data to be worth a catalog write). */
    std::uint64_t minCheckpointBytes = 2 * kMiB;

    /** Fill-rate EWMA time constants. */
    Tick fastTau = 10 * kMsec;
    Tick slowTau = 200 * kMsec;

    /** Checkpoint-duration EWMA weight (1/N of the new sample). */
    std::uint32_t durationEwmaShift = 2;

    /** Seed for the duration EWMA before any checkpoint ran. */
    Tick initialCheckpointDuration = 20 * kMsec;
};

struct EngineConfig
{
    /** Storage-engine backend. */
    EngineBackend backend = EngineBackend::CheckIn;

    CheckpointMode mode = CheckpointMode::CheckIn;

    /** Number of keys in the store. */
    std::uint64_t recordCount = 20'000;

    /** Maximum value size; determines the per-key data-area slot. */
    std::uint32_t maxValueBytes = 4096;

    /** Checkpoint-trigger policy (Fixed reproduces the paper's
     *  interval/threshold rule from the two fields below). */
    CheckpointPolicyKind checkpointPolicy =
        CheckpointPolicyKind::Fixed;

    /** Adaptive-controller knobs (used when checkpointPolicy is
     *  Adaptive; ignored by Fixed). */
    AdaptivePolicyConfig adaptive;

    /** Checkpoint timer period (0 disables the timer). */
    Tick checkpointInterval = 200 * kMsec;

    /**
     * Journal-bytes threshold that also triggers a checkpoint
     * (paper: 200 journal files of 100 MiB; scaled to our device).
     */
    std::uint64_t checkpointJournalBytes = 24 * kMiB;

    /** Size of each of the two journal halves. */
    std::uint64_t journalHalfBytes = 32 * kMiB;

    /** Compression ratio applied to values larger than the unit. */
    double compressRatio = 0.85;

    /**
     * Merge PARTIAL journal records into shared MERGED units
     * (Algorithm 2's MergePartialLogs). Disabling (ablation) places
     * each partial record alone in a padded unit.
     */
    bool mergePartials = true;

    /** Host-side CPU latency added to every query. */
    Tick hostCpuPerQuery = 1 * kUsec;

    /**
     * Host-side value cache (the block management engine's in-memory
     * data, paper Fig 1), in bytes of cached value payload. GET hits
     * complete without touching the device. 0 disables the cache
     * (the default: the paper's evaluation is storage-bound).
     */
    std::uint64_t hostCacheBytes = 0;

    /** Max updates flushed in one group commit. */
    std::uint32_t maxCommitGroup = 256;

    /** Max CoW descriptors per batched command (ISC-B and up). */
    std::uint32_t maxPairsPerCommand = 512;

    /**
     * When true, query processing is locked while a checkpoint runs
     * (used to measure pure checkpoint time, paper Fig 10).
     */
    bool lockQueriesDuringCheckpoint = false;

    /** True when the engine sector/unit-aligns journal logs. */
    bool
    alignedJournaling() const
    {
        return mode == CheckpointMode::CheckIn;
    }
};

} // namespace checkin

#endif // CHECKIN_ENGINE_ENGINE_CONFIG_H_
