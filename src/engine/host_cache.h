/**
 * @file
 * Host-side value cache: the storage engine's in-memory data
 * management (paper Fig 1). Entries are keyed by (key, version), so
 * a hit is valid exactly when the cached version matches the
 * keymap's committed version — no explicit invalidation needed.
 */

#ifndef CHECKIN_ENGINE_HOST_CACHE_H_
#define CHECKIN_ENGINE_HOST_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace checkin {

/** LRU cache of key -> (version, payload bytes). */
class HostCache
{
  public:
    /** @param capacity_bytes 0 disables the cache entirely. */
    explicit HostCache(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
    }

    bool enabled() const { return capacity_ > 0; }

    /**
     * Look up @p key; a hit requires the cached version to equal
     * @p version (the committed version from the keymap).
     */
    bool
    lookup(std::uint64_t key, std::uint32_t version)
    {
        if (!enabled())
            return false;
        auto it = index_.find(key);
        if (it == index_.end() || it->second->version != version) {
            ++misses_;
            return false;
        }
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return true;
    }

    /** Insert/refresh @p key at @p version with @p bytes payload. */
    void
    insert(std::uint64_t key, std::uint32_t version,
           std::uint32_t bytes)
    {
        if (!enabled() || bytes > capacity_)
            return;
        auto it = index_.find(key);
        if (it != index_.end()) {
            used_ -= it->second->bytes;
            it->second->version = version;
            it->second->bytes = bytes;
            used_ += bytes;
            lru_.splice(lru_.begin(), lru_, it->second);
        } else {
            lru_.push_front(Entry{key, version, bytes});
            index_[key] = lru_.begin();
            used_ += bytes;
        }
        while (used_ > capacity_ && !lru_.empty()) {
            const Entry &victim = lru_.back();
            used_ -= victim.bytes;
            index_.erase(victim.key);
            lru_.pop_back();
        }
    }

    /** Drop @p key (e.g., on delete). */
    void
    erase(std::uint64_t key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return;
        used_ -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t usedBytes() const { return used_; }
    std::size_t entries() const { return index_.size(); }

  private:
    struct Entry
    {
        std::uint64_t key;
        std::uint32_t version;
        std::uint32_t bytes;
    };

    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::list<Entry> lru_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        index_;
};

} // namespace checkin

#endif // CHECKIN_ENGINE_HOST_CACHE_H_
