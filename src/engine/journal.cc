#include "engine/journal.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "engine/record.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace checkin {

namespace {

/** Trace lane for journal events (Cat::Engine). */
constexpr std::uint32_t kJournalLane = 0;

} // namespace

FormattedSize
formatLogSize(std::uint32_t value_bytes, std::uint32_t unit_bytes,
              bool aligned, double compress_ratio)
{
    FormattedSize f;
    if (value_bytes == 0) {
        // Deletion tombstone: one chunk, always sub-unit.
        f.chunks = 1;
        f.type = aligned ? LogType::Partial : LogType::Raw;
        return f;
    }
    if (!aligned) {
        f.chunks = std::uint32_t(divCeil(value_bytes, kChunkBytes));
        f.type = LogType::Raw;
        return f;
    }
    if (value_bytes > unit_bytes) {
        // Algorithm 2 lines 3-6: compress, then align to n units.
        const auto compressed = std::uint32_t(
            std::ceil(double(value_bytes) * compress_ratio));
        const std::uint64_t stored = alignUp(compressed, unit_bytes);
        f.chunks = std::uint32_t(stored / kChunkBytes);
        f.type = LogType::Full;
        return f;
    }
    // Lines 8-17: bucket to unit/4 steps.
    const std::uint32_t step = unit_bytes / 4;
    const std::uint64_t stored =
        std::max<std::uint64_t>(step, alignUp(value_bytes, step));
    f.chunks = std::uint32_t(stored / kChunkBytes);
    f.type = stored == unit_bytes ? LogType::Full : LogType::Partial;
    return f;
}

JournalManager::JournalManager(SimContext &ctx, Ssd &ssd,
                               const DiskLayout &layout,
                               const EngineConfig &cfg,
                               StatRegistry &stats)
    : eq_(ctx.events()),
      ssd_(ssd),
      layout_(layout),
      cfg_(cfg),
      stats_(stats)
{
    image_[0].assign(layout_.journalChunks(), 0);
    image_[1].assign(layout_.journalChunks(), 0);
    obs::nameLane(obs::Cat::Engine, kJournalLane, "journal");
    telem_ = ctx.telemetry();
    if (telem_ != nullptr && telem_->enabled()) {
        telem_->addGauge("journal.bytes", [this] {
            return activeJournalBytes();
        });
        telem_->addGauge("journal.jmtSize", [this] {
            return std::uint64_t(jmt_.size());
        });
        telem_->addGauge("journal.pending", [this] {
            return std::uint64_t(buffer_.size());
        });
        telem_->addGauge("journal.stalled", [this] {
            return std::uint64_t(stalledForSpace_ ? 1 : 0);
        });
        telem_->addCounter("journal.stalls", [this] {
            return stats_.get("engine.journalStalls");
        });
    }
}

std::uint32_t
JournalManager::unitChunks() const
{
    return ssd_.ftl().mappingUnitBytes() / kChunkBytes;
}

void
JournalManager::append(std::uint64_t key, std::uint32_t version,
                       std::uint32_t value_bytes, CommitCb cb)
{
    buffer_.push_back(Pending{key, version, value_bytes,
                              std::move(cb), 1,
                              obs::attrCurrentOp()});
    startFlush();
}

void
JournalManager::appendBatch(std::vector<BatchRecord> records)
{
    // Atomicity: the whole batch must land in one group commit.
    // startFlush() takes up to maxCommitGroup records in buffer
    // order, so as long as the batch fits the group bound and is
    // enqueued contiguously, it cannot be split.
    if (records.size() > cfg_.maxCommitGroup) {
        throw std::invalid_argument(
            "transaction exceeds the group-commit bound");
    }
    bool head = true;
    for (BatchRecord &r : records) {
        buffer_.push_back(Pending{
            r.key, r.version, r.valueBytes, std::move(r.cb),
            head ? std::uint32_t(records.size()) : 1u,
            obs::attrCurrentOp()});
        head = false;
    }
    stats_.add("engine.transactions");
    startFlush();
}

void
JournalManager::quiesce(std::function<void()> cb)
{
    assert(!quiesceCb_ && "quiesce already pending");
    if (!flushInFlight_) {
        cb();
        return;
    }
    quiesceCb_ = std::move(cb);
}

void
JournalManager::startFlush()
{
    if (flushInFlight_ || stalledForSpace_ || buffer_.empty() ||
        quiesceCb_) {
        return;
    }

    // Select the group without splitting transactions: walk from
    // batch head to batch head until the group bound is reached. A
    // batch always starts a jump, so it lands whole in one group.
    std::size_t n = 0;
    while (n < buffer_.size()) {
        const std::size_t take =
            std::max<std::uint32_t>(1, buffer_[n].batchLen);
        if (n > 0 && n + take > cfg_.maxCommitGroup)
            break;
        n += take;
        if (n >= cfg_.maxCommitGroup)
            break;
    }
    n = std::min(n, buffer_.size());
    std::vector<Pending> group;
    group.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        group.push_back(std::move(buffer_.front()));
        buffer_.pop_front();
    }

    std::vector<Placed> placed;
    std::uint64_t first_chunk = 0;
    std::uint64_t end_chunk = 0;
    if (!placeGroup(group, placed, first_chunk, end_chunk)) {
        // Out of journal space: put the group back (order preserved)
        // and ask the engine for a checkpoint.
        for (auto it = group.rbegin(); it != group.rend(); ++it)
            buffer_.push_front(std::move(*it));
        stalledForSpace_ = true;
        stallStart_ = eq_.now();
        stats_.add("engine.journalStalls");
        obs::instant(obs::Cat::Engine, kJournalLane, "journal.stall",
                     eq_.now(), {{"bufferedLogs", buffer_.size()}});
        if (telem_ != nullptr) {
            telem_->noteEvent(obs::TelemetryEvent::JournalStall,
                              eq_.now(), buffer_.size());
        }
        if (onPressure_)
            onPressure_();
        return;
    }
    flushInFlight_ = true;
    submitGroup(std::move(placed), first_chunk, end_chunk);
}

bool
JournalManager::placeGroup(std::vector<Pending> &group,
                           std::vector<Placed> &placed,
                           std::uint64_t &first_chunk,
                           std::uint64_t &end_chunk)
{
    const std::uint32_t uc = unitChunks();
    const bool aligned = cfg_.alignedJournaling();
    std::uint64_t off = appendChunk_[active_];
    first_chunk = aligned ? alignUp(off, uc) : off;
    std::uint64_t cursor = first_chunk;

    // Dry placement first: nothing is moved out of @p group until
    // the whole group is known to fit.
    struct Slot
    {
        std::size_t index;
        std::uint64_t chunkOff;
        std::uint32_t chunks;
        LogType type;
    };
    std::vector<Slot> slots;
    slots.reserve(group.size());
    std::uint64_t merged_units = 0;
    std::uint64_t partial_units = 0;

    if (!aligned) {
        for (std::size_t i = 0; i < group.size(); ++i) {
            const FormattedSize f = formatLogSize(
                group[i].valueBytes, ssd_.ftl().mappingUnitBytes(),
                false, cfg_.compressRatio);
            slots.push_back(Slot{i, cursor, f.chunks, f.type});
            cursor += f.chunks;
        }
    } else {
        // FULL records first, each at a unit boundary.
        std::vector<std::pair<std::size_t, FormattedSize>> partials;
        for (std::size_t i = 0; i < group.size(); ++i) {
            const FormattedSize f = formatLogSize(
                group[i].valueBytes, ssd_.ftl().mappingUnitBytes(),
                true, cfg_.compressRatio);
            if (f.type == LogType::Full) {
                slots.push_back(Slot{i, cursor, f.chunks, f.type});
                cursor += f.chunks;
            } else {
                partials.push_back({i, f});
            }
        }
        // First-fit-decreasing bin packing of PARTIALs into units
        // (Algorithm 2's MergePartialLogs).
        std::sort(partials.begin(), partials.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.chunks > b.second.chunks;
                  });
        struct Bin
        {
            std::uint64_t base;
            std::uint32_t fill = 0;
            std::vector<std::size_t> members; // indices into slots
        };
        std::vector<Bin> bins;
        for (const auto &[index, f] : partials) {
            Bin *target = nullptr;
            if (cfg_.mergePartials) {
                for (Bin &b : bins) {
                    if (b.fill + f.chunks <= uc) {
                        target = &b;
                        break;
                    }
                }
            }
            if (target == nullptr) {
                bins.push_back(Bin{cursor});
                cursor += uc;
                target = &bins.back();
            }
            slots.push_back(Slot{index, target->base + target->fill,
                                 f.chunks, LogType::Partial});
            target->members.push_back(slots.size() - 1);
            target->fill += f.chunks;
        }
        for (const Bin &b : bins) {
            if (b.members.size() > 1) {
                ++merged_units;
                for (std::size_t idx : b.members)
                    slots[idx].type = LogType::Merged;
            } else {
                ++partial_units;
            }
        }
    }
    end_chunk = cursor;
    if (end_chunk > layout_.journalChunks())
        return false;

    stats_.add("engine.mergedUnits", merged_units);
    stats_.add("engine.partialUnits", partial_units);
    placed.reserve(slots.size());
    for (const Slot &s : slots) {
        placed.push_back(Placed{std::move(group[s.index]), s.chunkOff,
                                s.chunks, s.type});
    }
    return true;
}

void
JournalManager::submitGroup(std::vector<Placed> placed,
                            std::uint64_t first_chunk,
                            std::uint64_t end_chunk)
{
    const std::uint8_t half = active_;
    std::vector<std::uint64_t> &image = image_[half];

    // Lay the records' chunk tokens into the half image.
    for (const Placed &pl : placed) {
        if (pl.pending.valueBytes == 0) {
            image[pl.chunkOff] = tombstoneToken(pl.pending.key,
                                                pl.pending.version);
            stats_.add("engine.tombstones");
        } else {
            for (std::uint32_t c = 0; c < pl.chunks; ++c) {
                image[pl.chunkOff + c] = dataChunkToken(
                    pl.pending.key, pl.pending.version, c);
            }
        }
        stats_.add("engine.journalLogs");
        stats_.add("engine.journalChunksStored", pl.chunks);
        stats_.add("engine.journalPayloadBytes",
                   pl.pending.valueBytes);
    }
    appendChunk_[half] = end_chunk;
    logsAppended_[half] += placed.size();

    // The dirty sector range. Conventional packing re-writes the
    // partially filled first sector (tail rewrite); aligned mode
    // always starts on a fresh unit.
    const std::uint64_t s0 = first_chunk / kChunksPerSector;
    const std::uint64_t s1 =
        divCeil(end_chunk, kChunksPerSector); // exclusive
    std::vector<SectorData> payload(s1 - s0);
    for (std::uint64_t s = s0; s < s1; ++s) {
        for (std::uint32_t c = 0; c < kChunksPerSector; ++c) {
            payload[s - s0].chunks[c] =
                image[s * kChunksPerSector + c];
        }
    }

    stats_.add("engine.journalFlushes");
    stats_.add("engine.journalSectorsWritten", payload.size());

    Command cmd = Command::write(layout_.journalStart[half] + s0,
                                 std::move(payload), IoCause::Journal);
    {
        // Annotate every mapping-unit-aligned record's units with its
        // checkpoint target + version so the device can rebuild
        // remaps after power loss (paper §III-G). The condition
        // matches exactly the records the ISCE may remap: Check-In
        // FULL records always qualify; conventional (byte-packed)
        // records qualify when they happen to align. Merged/partial
        // units carry no target (they are copied, not remapped).
        const std::uint32_t spu = ssd_.ftl().sectorsPerUnit();
        const std::uint32_t uc = unitChunks();
        const std::uint64_t first_unit = first_chunk / uc;
        const std::uint64_t unit_count =
            divCeil(end_chunk, uc) - first_unit;
        bool any = false;
        std::vector<OobEntry> unit_oob(unit_count);
        for (const Placed &pl : placed) {
            if (pl.pending.valueBytes == 0 ||
                pl.chunkOff % uc != 0 || pl.chunks % uc != 0) {
                continue;
            }
            const Lpn target0 =
                layout_.targetLba(pl.pending.key) / spu;
            const std::uint64_t base =
                pl.chunkOff / uc - first_unit;
            for (std::uint32_t k = 0; k < pl.chunks / uc; ++k) {
                unit_oob[base + k].version = pl.pending.version;
                unit_oob[base + k].targetLpn = target0 + k;
            }
            any = true;
        }
        if (any)
            cmd.unitOob = std::move(unit_oob);
    }
    const Tick submitted = eq_.now();
    const std::uint64_t group_sectors = s1 - s0; // payload was moved
    // Latency attribution: the group members' ops are replayed after
    // the (synchronous) command processing below, so collect them now
    // before `placed` moves into the completion. The completion lambda
    // itself must not grow (Ssd::Completion inline-storage budget).
    std::vector<obs::OpToken> member_ops;
    if (obs::attributionOn()) {
        member_ops.reserve(placed.size());
        for (const Placed &pl : placed)
            member_ops.push_back(pl.pending.op);
    }
    ssd_.submit(std::move(cmd),
                [this, half, submitted, group_sectors,
                 placed = std::move(placed)](const CmdResult &r) {
        const Tick done = r.require();
        obs::span(obs::Cat::Engine, kJournalLane,
                  "journal.groupCommit", submitted, done,
                  {{"logs", placed.size()},
                   {"sectors", group_sectors}});
        for (const Placed &pl : placed) {
            JmtEntry entry;
            entry.key = pl.pending.key;
            entry.version = pl.pending.version;
            entry.half = half;
            entry.chunkOff = pl.chunkOff;
            entry.chunks = pl.chunks;
            entry.payloadBytes = pl.pending.valueBytes;
            entry.type = pl.type;
            // Aligned placement reorders records within the group, so
            // guard against a same-key older version landing last.
            auto it = jmt_.find(entry.key);
            if (it == jmt_.end() ||
                it->second.version < entry.version) {
                jmt_[entry.key] = entry;
            }
            if (pl.pending.cb)
                pl.pending.cb(entry, done);
        }
        flushInFlight_ = false;
        if (quiesceCb_) {
            // A checkpoint is waiting to switch halves; hold further
            // flushes until it has snapshotted the JMT.
            auto cb = std::move(quiesceCb_);
            quiesceCb_ = nullptr;
            cb();
        } else {
            startFlush();
        }
    });
    if (!member_ops.empty()) {
        // Every stage boundary of the flush is known once the
        // (synchronous) command processing above returned. Charge
        // each member op's buffered wait — split around any space
        // stall it sat through — then replay the device-stage
        // segments captured for this command. All marks are monotone,
        // so ops appended after the stall skip its window and a
        // multi-record op absorbs repeats as no-ops.
        obs::AttributionCollector *a = obs::installedAttribution();
        for (obs::OpToken op : member_ops) {
            if (op == obs::kNoOpToken)
                continue;
            a->mark(op, obs::Stage::JournalWait, stallStart_);
            a->mark(op, obs::Stage::CheckpointStall, stallEnd_);
            a->mark(op, obs::Stage::JournalWait, submitted);
            a->applyCmdTo(op);
        }
    }
}

std::vector<JmtEntry>
JournalManager::beginCheckpoint()
{
    assert(otherHalfFree() && "both journal halves busy");
    std::vector<JmtEntry> snapshot;
    snapshot.reserve(jmt_.size());
    for (auto &[key, entry] : jmt_)
        snapshot.push_back(entry);
    jmt_.clear();
    halfBusy_[active_] = true;
    active_ ^= 1;
    assert(appendChunk_[active_] == 0);
    // Resume flushing: the switch both clears any space stall and
    // ends the quiesce window that held buffered appends back.
    if (stalledForSpace_)
        stallEnd_ = eq_.now();
    stalledForSpace_ = false;
    startFlush();
    return snapshot;
}

void
JournalManager::onHalfFreed(std::uint8_t half)
{
    assert(halfBusy_[half]);
    halfBusy_[half] = false;
    std::fill(image_[half].begin(), image_[half].end(), 0);
    appendChunk_[half] = 0;
    logsAppended_[half] = 0;
    if (stalledForSpace_ && onPressure_) {
        // Still wedged on the (full) active half: ask for another
        // checkpoint now that a switch target exists.
        onPressure_();
    }
}

} // namespace checkin
