/**
 * @file
 * On-disk content encoding for the simulated key-value store.
 *
 * Every 128 B chunk the engine writes carries a 64-bit token that
 * *invertibly* encodes what a real engine would serialize as bytes:
 * a tag (data chunk vs catalog entry), the key, the version, and an
 * auxiliary field (chunk index within the record, or stored-chunk
 * count for catalog entries). Tokens are bit-mixed so they look like
 * opaque data, and unmixed on read — recovery literally parses the
 * journal back out of the device.
 */

#ifndef CHECKIN_ENGINE_RECORD_H_
#define CHECKIN_ENGINE_RECORD_H_

#include <cstdint>

#include "sim/rng.h"
#include "sim/types.h"

namespace checkin {

/** What a chunk token represents. */
enum class TokenTag : std::uint8_t
{
    Invalid = 0x0,
    Data = 0xC,      //!< chunk @p aux of record (key, version)
    Catalog = 0xD,   //!< catalog entry: key at version with aux chunks
    Tombstone = 0xE, //!< deletion record for key at version
};

/** Inverse of mix64 (MurmurHash3 finalizer inverse). */
constexpr std::uint64_t
unmix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0x9cb4b2f8129337dbULL;
    x ^= x >> 33;
    x *= 0x4f74430c22a54005ULL;
    x ^= x >> 33;
    return x;
}

/** Field widths of the packed token layout. */
inline constexpr std::uint64_t kTokenKeyBits = 24;
inline constexpr std::uint64_t kTokenVersionBits = 24;
inline constexpr std::uint64_t kTokenAuxBits = 12;

/** Decoded view of a chunk token. */
struct DecodedToken
{
    TokenTag tag = TokenTag::Invalid;
    std::uint64_t key = 0;
    std::uint64_t version = 0;
    std::uint64_t aux = 0;

    bool valid() const { return tag != TokenTag::Invalid; }
};

/** Pack + mix a token. */
constexpr std::uint64_t
packToken(TokenTag tag, std::uint64_t key, std::uint64_t version,
          std::uint64_t aux)
{
    const std::uint64_t raw =
        (std::uint64_t(tag) << 60) |
        ((key & ((1ULL << kTokenKeyBits) - 1)) << 36) |
        ((version & ((1ULL << kTokenVersionBits) - 1)) << 12) |
        (aux & ((1ULL << kTokenAuxBits) - 1));
    return mix64(raw);
}

/** Unmix + unpack; zero tokens decode as Invalid (empty chunk). */
constexpr DecodedToken
decodeToken(std::uint64_t token)
{
    DecodedToken d;
    if (token == 0)
        return d;
    const std::uint64_t raw = unmix64(token);
    const auto tag = std::uint8_t(raw >> 60);
    if (tag != std::uint8_t(TokenTag::Data) &&
        tag != std::uint8_t(TokenTag::Catalog) &&
        tag != std::uint8_t(TokenTag::Tombstone)) {
        return d; // garbage / padding
    }
    d.tag = TokenTag(tag);
    d.key = (raw >> 36) & ((1ULL << kTokenKeyBits) - 1);
    d.version = (raw >> 12) & ((1ULL << kTokenVersionBits) - 1);
    d.aux = raw & ((1ULL << kTokenAuxBits) - 1);
    return d;
}

/** Token of chunk @p chunk_idx of record (key, version). */
constexpr std::uint64_t
dataChunkToken(std::uint64_t key, std::uint64_t version,
               std::uint64_t chunk_idx)
{
    return packToken(TokenTag::Data, key, version, chunk_idx);
}

/** Catalog-entry token: key is at @p version with @p chunks chunks.
 *  Zero chunks records a deletion. */
constexpr std::uint64_t
catalogToken(std::uint64_t key, std::uint64_t version,
             std::uint64_t chunks)
{
    return packToken(TokenTag::Catalog, key, version, chunks);
}

/** Journal tombstone token: key deleted at @p version. */
constexpr std::uint64_t
tombstoneToken(std::uint64_t key, std::uint64_t version)
{
    return packToken(TokenTag::Tombstone, key, version, 0);
}

} // namespace checkin

#endif // CHECKIN_ENGINE_RECORD_H_
