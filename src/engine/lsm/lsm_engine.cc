#include "engine/lsm/lsm_engine.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "engine/record.h"
#include "obs/attribution.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace checkin {

namespace {

/** Trace lane for flush/compaction events (Cat::Engine). */
constexpr std::uint32_t kFlushLane = 1;

/** Sum of the device counters behind CheckpointStat::cowCommands. */
std::uint64_t
cowCommandCount(const StatRegistry &ds)
{
    return ds.get("ssd.cmd.cowSingle") + ds.get("ssd.cmd.cowMulti") +
           ds.get("ssd.cmd.checkpointRemap");
}

/** Shared completion counter for a fan-out of commands. */
struct FanOut
{
    std::size_t outstanding = 0;
    Tick last = 0;
    std::function<void(Tick)> done;

    void
    complete(const CmdResult &r)
    {
        last = std::max(last, r.require());
        assert(outstanding > 0);
        if (--outstanding == 0)
            done(last);
    }
};

} // namespace

LsmEngine::LsmEngine(SimContext &ctx, Ssd &ssd,
                     const EngineConfig &cfg)
    : eq_(ctx.events()),
      ssd_(ssd),
      cfg_(cfg),
      layout_(LsmLayout::compute(cfg, ssd.capacitySectors(),
                                 ssd.ftl().sectorsPerUnit())),
      keymap_(cfg.recordCount),
      policy_(CheckpointPolicy::create(cfg_))
{
    obs::nameLane(obs::Cat::Engine, kFlushLane, "flush");
    telem_ = ctx.telemetry();
    if (telem_ != nullptr && telem_->enabled()) {
        telem_->addGauge("engine.deferredOps", [this] {
            return std::uint64_t(deferred_.size());
        });
        telem_->addGauge("engine.keymapSize", [this] {
            return std::uint64_t(keymap_.size());
        });
        telem_->addGauge("engine.ckptInProgress", [this] {
            return std::uint64_t(flushInProgress_ ? 1 : 0);
        });
        telem_->addGauge("journal.bytes", [this] {
            return halfPayloadBytes_[activeHalf_];
        });
        telem_->addGauge("journal.jmtSize", [this] {
            return std::uint64_t(
                halfRecords_[activeHalf_].size());
        });
        telem_->addGauge("journal.stalled", [this] {
            return std::uint64_t(walStalled_ ? 1 : 0);
        });
        telem_->addGauge("journal.fillRate", [this] {
            return std::uint64_t(policy_->fillRateBytesPerSec());
        });
        telem_->addCounter("engine.checkpoints", [this] {
            return stats_.get("engine.checkpoints");
        });
        telem_->addCounter("journal.stalls", [this] {
            return stats_.get("engine.journalStalls");
        });
    }
}

std::uint32_t
LsmEngine::recordUnits(std::uint32_t chunks) const
{
    // A tombstone is a single token alone in one unit; data records
    // are padded up to the next unit boundary.
    if (chunks == 0)
        return 1;
    return std::uint32_t(divCeil(chunks, layout_.unitChunks()));
}

Lba
LsmEngine::lbaOf(const Loc &loc) const
{
    switch (loc.area) {
      case Loc::Area::Wal:
        return layout_.walLba(loc.idx, loc.unitOff);
      case Loc::Area::L0:
        return layout_.l0Lba(loc.idx, loc.unitOff);
      case Loc::Area::L1:
        return layout_.l1Lba(loc.idx, loc.unitOff);
      case Loc::Area::None: break;
    }
    throw std::logic_error("lsm: record has no location");
}

std::uint32_t
LsmEngine::reserveRegion()
{
    for (std::uint32_t r = 0; r < kLsmL0Regions; ++r) {
        if (!regionBusy_[r]) {
            regionBusy_[r] = true;
            return r;
        }
    }
    throw std::logic_error("lsm: no free L0 region");
}

// ----------------------------------------------------------------------
// Load
// ----------------------------------------------------------------------

void
LsmEngine::load(
    const std::function<std::uint32_t(std::uint64_t)> &size_of)
{
    // Populate L1 ping 0 with version-1 records, packed in key order.
    std::uint64_t cursor = 0;
    for (std::uint64_t key = 0; key < cfg_.recordCount; ++key) {
        const std::uint32_t bytes = size_of(key);
        const auto chunks =
            std::uint32_t(divCeil(bytes, kChunkBytes));
        const std::uint32_t units = recordUnits(chunks);
        std::vector<SectorData> payload(units * layout_.unitSectors);
        for (std::uint32_t c = 0; c < chunks; ++c) {
            payload[c / kChunksPerSector]
                .chunks[c % kChunksPerSector] =
                dataChunkToken(key, 1, c);
        }
        ssd_.submitSync(Command::write(layout_.l1Lba(0, cursor),
                                       std::move(payload),
                                       IoCause::Query, globalSeq_++));
        KeyState &st = keymap_[key];
        st.version = 1;
        st.assignedVersion = 1;
        st.chunks = chunks;
        st.loc = Loc{Loc::Area::L1, 0, cursor};
        st.dataVersion = 1;
        st.dataChunks = chunks;
        st.dataLoc = st.loc;
        cursor += units;
    }
    ping_ = 0;
    l1UsedUnits_[0] = cursor;
    ssd_.submitSync(buildManifestCommand());
    halfRegion_[0] = reserveRegion();
    halfRegionValid_[0] = true;
    stats_.add("engine.loadedKeys", cfg_.recordCount);
}

void
LsmEngine::start()
{
    if (policy_->timerPeriod() > 0)
        eq_.scheduleAfter(policy_->timerPeriod(),
                          [this] { onFlushTimer(); });
}

void
LsmEngine::onFlushTimer()
{
    const PolicyDecision d = policy_->onTimer(policySignals());
    if (d.checkpoint)
        requestCheckpoint(d.trigger);
    if (policy_->timerPeriod() > 0)
        eq_.scheduleAfter(policy_->timerPeriod(),
                          [this] { onFlushTimer(); });
}

PolicySignals
LsmEngine::policySignals() const
{
    PolicySignals sig;
    sig.now = eq_.now();
    sig.journalBytes = halfPayloadBytes_[activeHalf_];
    sig.journalCapacityBytes = cfg_.journalHalfBytes;
    sig.checkpointInProgress = flushInProgress_;
    sig.checkpointStallTicks =
        obs::attrLiveStageTicks(obs::Stage::CheckpointStall);
    return sig;
}

void
LsmEngine::noteWalAppend()
{
    policy_->noteAppend(eq_.now(), halfPayloadBytes_[activeHalf_]);
    if (flushInProgress_)
        return;
    const PolicyDecision d = policy_->onAppend(policySignals());
    if (d.checkpoint)
        requestCheckpoint(d.trigger);
}

bool
LsmEngine::maybeDefer(std::function<void()> fn)
{
    if (cfg_.lockQueriesDuringCheckpoint && flushInProgress_) {
        deferred_.push_back(std::move(fn));
        return true;
    }
    return false;
}

void
LsmEngine::drainDeferred()
{
    while (!deferred_.empty()) {
        eq_.scheduleAfter(0, std::move(deferred_.front()));
        deferred_.pop_front();
    }
}

// ----------------------------------------------------------------------
// Queries
// ----------------------------------------------------------------------

void
LsmEngine::get(std::uint64_t key, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, key, op, cb = std::move(cb)]() mutable {
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        doGet(key, std::move(cb));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
LsmEngine::doGet(std::uint64_t key, QueryCb cb)
{
    assert(key < cfg_.recordCount);
    stats_.add("engine.gets");
    const KeyState st = keymap_[key];
    const bool ckpt_at_submit = flushInProgress_;
    if (st.version == 0 || st.chunks == 0) {
        stats_.add("engine.getMisses");
        eq_.scheduleAfter(0, [this, cb = std::move(cb),
                              ckpt_at_submit] {
            cb(QueryResult{eq_.now(), ckpt_at_submit, false});
        });
        return;
    }
    verifyKeyContent(key, st);
    if (st.loc.area == Loc::Area::Wal)
        stats_.add("engine.getsFromJournal");
    const auto nsect =
        std::uint32_t(divCeil(st.chunks, kChunksPerSector));
    ssd_.submit(Command::read(lbaOf(st.loc), nsect, IoCause::Query),
                [this, cb = std::move(cb),
                 ckpt_at_submit](const CmdResult &r) {
                    cb(QueryResult{
                        r.require(),
                        ckpt_at_submit || flushInProgress_, true});
                });
}

void
LsmEngine::update(std::uint64_t key, std::uint32_t value_bytes,
                  QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, key, value_bytes, op,
                 cb = std::move(cb)]() mutable {
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        assert(key < cfg_.recordCount);
        assert(value_bytes > 0 && value_bytes <= cfg_.maxValueBytes);
        const std::uint32_t version = ++keymap_[key].assignedVersion;
        const bool ckpt_at_submit = flushInProgress_;
        PendingRec rec;
        rec.key = key;
        rec.version = version;
        rec.valueBytes = value_bytes;
        rec.chunks =
            std::uint32_t(divCeil(value_bytes, kChunkBytes));
        rec.units = recordUnits(rec.chunks);
        rec.cb = [this, value_bytes, ckpt_at_submit,
                  cb = std::move(cb)](const WalRec &w, Tick done) {
            applyWalAck(w);
            stats_.add("engine.updates");
            stats_.add("engine.updateBytes", value_bytes);
            noteWalAppend();
            cb(QueryResult{done,
                           ckpt_at_submit || flushInProgress_,
                           true});
        };
        std::vector<PendingRec> group;
        group.push_back(std::move(rec));
        enqueueGroup(std::move(group));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
LsmEngine::readModifyWrite(std::uint64_t key,
                           std::uint32_t value_bytes, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    get(key, [this, key, value_bytes, op,
              cb = std::move(cb)](const QueryResult &r1) mutable {
        const bool first_during = r1.duringCheckpoint;
        obs::AttrOpScope attr_scope(op);
        update(key, value_bytes,
               [cb = std::move(cb),
                first_during](const QueryResult &r2) {
                   QueryResult res = r2;
                   res.duringCheckpoint |= first_during;
                   cb(res);
               });
    });
}

void
LsmEngine::erase(std::uint64_t key, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, key, op, cb = std::move(cb)]() mutable {
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        assert(key < cfg_.recordCount);
        const std::uint32_t version = ++keymap_[key].assignedVersion;
        const bool ckpt_at_submit = flushInProgress_;
        PendingRec rec;
        rec.key = key;
        rec.version = version;
        rec.valueBytes = 0;
        rec.chunks = 0;
        rec.units = 1;
        rec.cb = [this, ckpt_at_submit,
                  cb = std::move(cb)](const WalRec &w, Tick done) {
            applyWalAck(w);
            stats_.add("engine.deletes");
            noteWalAppend();
            cb(QueryResult{done,
                           ckpt_at_submit || flushInProgress_,
                           true});
        };
        std::vector<PendingRec> group;
        group.push_back(std::move(rec));
        enqueueGroup(std::move(group));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
LsmEngine::updateBatch(std::vector<BatchOp> ops, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, ops = std::move(ops), op,
                 cb = std::move(cb)]() mutable {
        assert(!ops.empty());
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        const bool ckpt_at_submit = flushInProgress_;
        struct TxnState
        {
            std::size_t outstanding;
            Tick last = 0;
            QueryCb cb;
        };
        auto txn = std::make_shared<TxnState>();
        txn->outstanding = ops.size();
        txn->cb = std::move(cb);
        std::vector<PendingRec> group;
        group.reserve(ops.size());
        for (const BatchOp &o : ops) {
            assert(o.key < cfg_.recordCount);
            PendingRec rec;
            rec.key = o.key;
            rec.version = ++keymap_[o.key].assignedVersion;
            rec.valueBytes = o.valueBytes;
            rec.chunks =
                std::uint32_t(divCeil(o.valueBytes, kChunkBytes));
            rec.units = recordUnits(rec.chunks);
            rec.cb = [this, txn, ckpt_at_submit](const WalRec &w,
                                                 Tick done) {
                applyWalAck(w);
                txn->last = std::max(txn->last, done);
                if (--txn->outstanding == 0) {
                    stats_.add("engine.batchCommits");
                    noteWalAppend();
                    txn->cb(QueryResult{
                        txn->last,
                        ckpt_at_submit || flushInProgress_, true});
                }
            };
            group.push_back(std::move(rec));
        }
        enqueueGroup(std::move(group));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
LsmEngine::scan(std::uint64_t start_key, std::uint32_t count,
                QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, start_key, count, op,
                 cb = std::move(cb)]() mutable {
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        doScan(start_key, count, std::move(cb));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
LsmEngine::doScan(std::uint64_t start_key, std::uint32_t count,
                  QueryCb cb)
{
    assert(start_key < cfg_.recordCount);
    stats_.add("engine.scans");
    const std::uint64_t end = std::min<std::uint64_t>(
        cfg_.recordCount, start_key + count);
    const bool ckpt_at_submit = flushInProgress_;

    struct Job
    {
        std::size_t outstanding = 0;
        Tick last = 0;
        std::uint32_t scanned = 0;
        bool launched = false;
        QueryCb cb;
    };
    auto job = std::make_shared<Job>();
    job->cb = std::move(cb);
    auto complete = [this, job, ckpt_at_submit](const CmdResult &r) {
        job->last = std::max(job->last, r.require());
        if (--job->outstanding == 0 && job->launched) {
            job->cb(QueryResult{job->last,
                                ckpt_at_submit || flushInProgress_,
                                job->scanned > 0, job->scanned});
        }
    };

    // L1 residents coalesce into one sequential read (L1 is packed
    // in key order); WAL/L0 residents are fetched individually.
    std::uint64_t l1_first = kInvalidAddr;
    std::uint64_t l1_end = 0;
    for (std::uint64_t key = start_key; key < end; ++key) {
        const KeyState st = keymap_[key];
        if (st.version == 0 || st.chunks == 0)
            continue;
        verifyKeyContent(key, st);
        ++job->scanned;
        const std::uint32_t units = recordUnits(st.chunks);
        if (st.loc.area == Loc::Area::L1 && st.loc.idx == ping_) {
            l1_first = std::min(l1_first, st.loc.unitOff);
            l1_end = std::max(l1_end, st.loc.unitOff + units);
        } else {
            const auto nsect =
                std::uint32_t(divCeil(st.chunks, kChunksPerSector));
            ++job->outstanding;
            ssd_.submit(Command::read(lbaOf(st.loc), nsect,
                                      IoCause::Query),
                        complete);
        }
    }
    if (l1_first != kInvalidAddr) {
        const std::uint64_t nsect =
            (l1_end - l1_first) * layout_.unitSectors;
        ++job->outstanding;
        stats_.add("engine.scanSequentialSectors", nsect);
        ssd_.submit(Command::read(layout_.l1Lba(ping_, l1_first),
                                  nsect, IoCause::Query),
                    complete);
    }
    job->launched = true;
    if (job->outstanding == 0) {
        eq_.scheduleAfter(0, [this, job, ckpt_at_submit] {
            job->cb(QueryResult{eq_.now(),
                                ckpt_at_submit || flushInProgress_,
                                false, 0});
        });
    }
}

// ----------------------------------------------------------------------
// WAL append path
// ----------------------------------------------------------------------

void
LsmEngine::applyWalAck(const WalRec &rec)
{
    KeyState &st = keymap_[rec.key];
    if (rec.version > st.version) {
        st.version = rec.version;
        st.chunks = rec.chunks;
        st.loc = Loc{Loc::Area::Wal, rec.half, rec.unitOff};
    }
}

void
LsmEngine::enqueueGroup(std::vector<PendingRec> group)
{
    std::uint64_t units = 0;
    for (const PendingRec &r : group)
        units += r.units;
    if (units > layout_.walUnits()) {
        throw std::invalid_argument(
            "lsm: transaction larger than a journal half");
    }
    pendingGroups_.push_back(std::move(group));
    pumpWal();
}

void
LsmEngine::pumpWal()
{
    if (walInFlight_ || pendingGroups_.empty())
        return;
    assert(halfRegionValid_[activeHalf_]);
    const std::uint8_t half = activeHalf_;
    const std::uint64_t wal_units = layout_.walUnits();
    auto group_units = [](const std::vector<PendingRec> &g) {
        std::uint64_t u = 0;
        for (const PendingRec &r : g)
            u += r.units;
        return u;
    };
    if (appendUnit_[half] + group_units(pendingGroups_.front()) >
        wal_units) {
        // Active half full: stall until a flush rotates the halves.
        if (!walStalled_) {
            walStalled_ = true;
            stats_.add("engine.journalStalls");
            if (telem_ != nullptr) {
                telem_->noteEvent(
                    obs::TelemetryEvent::JournalStall, eq_.now(),
                    pendingGroups_.size());
            }
        }
        requestCheckpoint(obs::CkptTrigger::SpacePressure);
        return;
    }
    walStalled_ = false;

    // Gather whole groups (a transaction never splits across write
    // commands: one command is atomic+durable at submission).
    std::vector<PendingRec> batch;
    std::uint64_t batch_units = 0;
    while (!pendingGroups_.empty()) {
        const std::vector<PendingRec> &g = pendingGroups_.front();
        if (!batch.empty() &&
            batch.size() + g.size() > cfg_.maxCommitGroup) {
            break;
        }
        if (appendUnit_[half] + batch_units + group_units(g) >
            wal_units) {
            break;
        }
        batch_units += group_units(g);
        for (PendingRec &r : pendingGroups_.front())
            batch.push_back(std::move(r));
        pendingGroups_.pop_front();
    }
    assert(!batch.empty());

    // Build the unit-aligned payload plus per-unit OOB annotations:
    // every WAL unit names its L0 destination so a remap promotion
    // stays durable across sudden power loss (paper §III-G).
    const std::uint64_t base_unit = appendUnit_[half];
    const std::uint32_t unit_chunks = layout_.unitChunks();
    const std::uint32_t region = halfRegion_[half];
    std::vector<SectorData> payload(batch_units *
                                    layout_.unitSectors);
    std::vector<OobEntry> oob(batch_units);
    auto acks = std::make_shared<std::vector<
        std::pair<WalRec, std::function<void(const WalRec &, Tick)>>>>();
    acks->reserve(batch.size());
    std::uint64_t rel = 0;
    std::uint64_t payload_bytes = 0;
    for (PendingRec &r : batch) {
        const std::uint64_t base_chunk = rel * unit_chunks;
        if (r.chunks == 0) {
            payload[base_chunk / kChunksPerSector]
                .chunks[base_chunk % kChunksPerSector] =
                tombstoneToken(r.key, r.version);
        } else {
            for (std::uint32_t c = 0; c < r.chunks; ++c) {
                const std::uint64_t pos = base_chunk + c;
                payload[pos / kChunksPerSector]
                    .chunks[pos % kChunksPerSector] =
                    dataChunkToken(r.key, r.version, c);
            }
        }
        for (std::uint32_t k = 0; k < r.units; ++k) {
            oob[rel + k].version = globalSeq_++;
            oob[rel + k].targetLpn =
                layout_.l0UnitLpn(region, base_unit + rel + k);
        }
        WalRec w;
        w.key = r.key;
        w.version = r.version;
        w.chunks = r.chunks;
        w.half = half;
        w.unitOff = base_unit + rel;
        w.units = r.units;
        halfRecords_[half].push_back(w);
        acks->emplace_back(w, std::move(r.cb));
        payload_bytes += r.valueBytes;
        rel += r.units;
    }
    appendUnit_[half] += batch_units;
    halfPayloadBytes_[half] += payload_bytes;
    halfClean_[half] = false;
    stats_.add("engine.groupCommits");
    stats_.add("engine.journalPayloadBytes", payload_bytes);
    stats_.add("engine.journalChunksStored",
               batch_units * unit_chunks);

    Command w = Command::write(layout_.walLba(half, base_unit),
                               std::move(payload), IoCause::Journal);
    w.unitOob = std::move(oob);
    walInFlight_ = true;
    ssd_.submit(std::move(w), [this, acks](const CmdResult &r) {
        const Tick done = r.require();
        walInFlight_ = false;
        for (auto &[rec, cb] : *acks)
            cb(rec, done);
        if (walQuiesceCb_) {
            auto fn = std::move(walQuiesceCb_);
            walQuiesceCb_ = nullptr;
            fn();
        } else {
            pumpWal();
        }
    });
}

// ----------------------------------------------------------------------
// Flush (checkpoint) path
// ----------------------------------------------------------------------

void
LsmEngine::requestCheckpoint(obs::CkptTrigger reason)
{
    if (telem_ != nullptr && reason == obs::CkptTrigger::Safety) {
        telem_->noteEvent(obs::TelemetryEvent::SafetyTrip,
                          eq_.now(),
                          halfPayloadBytes_[activeHalf_]);
    }
    if (flushInProgress_) {
        pendingFlushRequest_ = true;
        return;
    }
    if (halfRecords_[activeHalf_].empty() && !walInFlight_)
        return;
    if (!halfClean_[activeHalf_ ^ 1]) {
        pendingFlushRequest_ = true;
        return;
    }
    flushRec_.trigger = reason;
    startFlush();
}

void
LsmEngine::startFlush()
{
    flushInProgress_ = true;
    flushStart_ = eq_.now();
    policy_->onCheckpointStart(flushStart_);
    if (telem_ != nullptr)
        telem_->noteCheckpointStart(flushStart_);
    stats_.add("engine.checkpoints");
    obs::instant(obs::Cat::Engine, kFlushLane, "flush.start",
                 flushStart_,
                 {{"walRecords", halfRecords_[activeHalf_].size()}});
    // Wait for any in-flight group commit: its records belong to the
    // half being frozen and must be in the flush snapshot.
    quiesceWal([this] { onWalQuiesced(); });
}

void
LsmEngine::quiesceWal(std::function<void()> fn)
{
    if (!walInFlight_) {
        fn();
        return;
    }
    assert(!walQuiesceCb_);
    walQuiesceCb_ = std::move(fn);
}

void
LsmEngine::onWalQuiesced()
{
    const std::uint8_t half = activeHalf_;
    const std::uint32_t region = halfRegion_[half];
    // The run occupies the frozen half's written prefix 1:1.
    regionUsedUnits_[region] = appendUnit_[half];

    // Rotate to the other (clean) half so appends continue during
    // the flush; its activation gets a fresh L0 region assignment.
    activeHalf_ = half ^ 1;
    assert(halfClean_[activeHalf_]);
    appendUnit_[activeHalf_] = 0;
    halfPayloadBytes_[activeHalf_] = 0;
    halfRecords_[activeHalf_].clear();
    halfRegion_[activeHalf_] = reserveRegion();
    halfRegionValid_[activeHalf_] = true;

    auto recs = std::make_shared<std::vector<WalRec>>(
        std::move(halfRecords_[half]));
    halfRecords_[half].clear();
    stats_.add("engine.ckptLogsSeen", recs->size());
    stats_.add("engine.ckptLatestEntries", recs->size());
    if (obs::attributionOn()) {
        const obs::CkptTrigger reason = flushRec_.trigger;
        flushRec_ = obs::CheckpointStat{};
        flushRec_.trigger = reason;
        flushRec_.seq = flushSeq_;
        flushRec_.startTick = flushStart_;
        flushRec_.entries = recs->size();
        flushRec_.fullRecords = recs->size();
        for (const WalRec &r : *recs) {
            if (r.chunks == 0)
                ++flushRec_.tombstones;
        }
        const StatRegistry &ds = ssd_.stats();
        flushRec_.cowCommands = cowCommandCount(ds);
        flushRec_.remappedPairs = ds.get("isce.remappedPairs");
        flushRec_.remappedUnits = ds.get("isce.remappedUnits");
        flushRec_.copiedPairs = ds.get("isce.copiedPairs");
        flushRec_.copiedChunks = ds.get("isce.copiedChunks");
        flushRec_.bufferedSmallRecords =
            ds.get("isce.bufferedSmallRecords");
    }
    pumpWal();

    if (recs->empty()) {
        onFlushDataDone(half, region, *recs, eq_.now());
        return;
    }
    // Promote the frozen half with identity-offset remap pairs: WAL
    // unit i becomes region unit i, exactly what the append-time OOB
    // annotations already promise the device.
    const std::uint32_t unit_chunks = layout_.unitChunks();
    std::vector<Command> cmds;
    std::vector<CowPair> pairs;
    for (const WalRec &r : *recs) {
        pairs.push_back(CowPair::make(
            layout_.walLba(half, r.unitOff), 0,
            layout_.l0Lba(region, r.unitOff), r.units * unit_chunks,
            globalSeq_++, /*force_copy=*/false));
        if (pairs.size() == cfg_.maxPairsPerCommand) {
            cmds.push_back(
                Command::checkpointRemap(std::move(pairs)));
            pairs.clear();
        }
    }
    if (!pairs.empty())
        cmds.push_back(Command::checkpointRemap(std::move(pairs)));
    auto job = std::make_shared<FanOut>();
    job->outstanding = cmds.size();
    job->done = [this, half, region, recs](Tick t) {
        onFlushDataDone(half, region, *recs, t);
    };
    for (Command &c : cmds) {
        stats_.add("engine.ckptRemapCommands");
        ssd_.submit(std::move(c),
                    [job](const CmdResult &r) { job->complete(r); });
    }
}

void
LsmEngine::onFlushDataDone(std::uint8_t half, std::uint32_t region,
                           const std::vector<WalRec> &recs, Tick t)
{
    (void)t;
    if (regionUsedUnits_[region] > 0)
        ++usedRuns_;
    for (const WalRec &r : recs) {
        KeyState &st = keymap_[r.key];
        const Loc nl{Loc::Area::L0, std::uint8_t(region), r.unitOff};
        if (st.version == r.version &&
            st.loc.area == Loc::Area::Wal) {
            st.loc = nl;
        }
        if (r.version > st.dataVersion) {
            st.dataVersion = r.version;
            st.dataChunks = r.chunks;
            st.dataLoc = nl;
        }
    }
    flushDataDone_ = std::max(eq_.now(), flushStart_);
    stats_.add("engine.ckptDataTicks", flushDataDone_ - flushStart_);
    obs::span(obs::Cat::Engine, kFlushLane, "flush.data",
              flushStart_, flushDataDone_,
              {{"records", recs.size()}});
    // Manifest before the WAL trim: every crash window leaves either
    // the logs durable or the manifest naming the promoted run.
    ssd_.submit(buildManifestCommand(),
                [this, half](const CmdResult &r) {
        const Tick t2 = r.require();
        flushMetaDone_ = std::max(t2, flushDataDone_);
        stats_.add("engine.ckptMetaTicks",
                   flushMetaDone_ - flushDataDone_);
        obs::span(obs::Cat::Engine, kFlushLane, "flush.meta",
                  flushDataDone_, flushMetaDone_);
        ssd_.submit(Command::deleteLogs(layout_.walStart[half],
                                        layout_.walSectors),
                    [this, half](const CmdResult &r2) {
            const Tick t3 = r2.require();
            stats_.add("engine.ckptDeleteTicks",
                       t3 > flushMetaDone_ ? t3 - flushMetaDone_
                                           : 0);
            obs::span(obs::Cat::Engine, kFlushLane, "flush.delete",
                      flushMetaDone_, t3);
            halfClean_[half] = true;
            halfRegionValid_[half] = false;
            if (usedRuns_ >= kLsmCompactRuns)
                startCompaction();
            else
                finishFlush(t3);
        });
    });
}

void
LsmEngine::finishFlush(Tick t)
{
    flushInProgress_ = false;
    flushDurations_.push_back(t - flushStart_);
    if (telem_ != nullptr)
        telem_->noteCheckpointEnd(t, t - flushStart_);
    stats_.add("engine.ckptTicks", t - flushStart_);
    obs::span(obs::Cat::Engine, kFlushLane, "flush", flushStart_, t);
    if (obs::attributionOn()) {
        flushRec_.dataDoneTick = flushDataDone_;
        flushRec_.metaDoneTick = flushMetaDone_;
        flushRec_.endTick = t;
        const StatRegistry &ds = ssd_.stats();
        flushRec_.cowCommands =
            cowCommandCount(ds) - flushRec_.cowCommands;
        flushRec_.remappedPairs =
            ds.get("isce.remappedPairs") - flushRec_.remappedPairs;
        flushRec_.remappedUnits =
            ds.get("isce.remappedUnits") - flushRec_.remappedUnits;
        flushRec_.copiedPairs =
            ds.get("isce.copiedPairs") - flushRec_.copiedPairs;
        flushRec_.copiedChunks =
            ds.get("isce.copiedChunks") - flushRec_.copiedChunks;
        flushRec_.bufferedSmallRecords =
            ds.get("isce.bufferedSmallRecords") -
            flushRec_.bufferedSmallRecords;
        obs::attrNoteCheckpoint(flushRec_);
    }
    ++flushSeq_;
    policy_->onCheckpointEnd(t, t - flushStart_);
    drainDeferred();
    pumpWal();
    const bool threshold_hit =
        policy_->onAppend(policySignals()).checkpoint;
    if (pendingFlushRequest_ || threshold_hit) {
        pendingFlushRequest_ = false;
        requestCheckpoint(obs::CkptTrigger::Backlog);
    }
}

// ----------------------------------------------------------------------
// Compaction
// ----------------------------------------------------------------------

std::vector<LsmEngine::CompactMove>
LsmEngine::planCompaction() const
{
    // Fold every key's newest data-area copy — tombstones included,
    // so version ordering survives trimmed-WAL resurrection after a
    // power-loss rebuild — into the other L1 ping, packed in key
    // order. The merge itself runs inside the device (force-copy CoW
    // pairs); the host only names source and destination.
    std::vector<CompactMove> moves;
    std::uint64_t cursor = 0;
    for (std::uint64_t key = 0; key < cfg_.recordCount; ++key) {
        const KeyState &st = keymap_[key];
        if (st.dataVersion == 0)
            continue;
        CompactMove m;
        m.key = key;
        m.version = st.dataVersion;
        m.chunks = st.dataChunks;
        m.srcLba = lbaOf(st.dataLoc);
        m.dstUnitOff = cursor;
        m.units = recordUnits(st.dataChunks);
        cursor += m.units;
        moves.push_back(m);
    }
    assert(cursor <= layout_.l1Units());
    return moves;
}

void
LsmEngine::applyCompaction(const std::vector<CompactMove> &moves,
                           std::uint8_t new_ping)
{
    std::uint64_t cursor = 0;
    for (const CompactMove &m : moves) {
        KeyState &st = keymap_[m.key];
        const Loc nl{Loc::Area::L1, new_ping, m.dstUnitOff};
        if (st.version == m.version)
            st.loc = nl;
        st.dataLoc = nl;
        cursor = m.dstUnitOff + m.units;
    }
    const std::uint8_t old_ping = ping_;
    ping_ = new_ping;
    l1UsedUnits_[new_ping] = cursor;
    l1UsedUnits_[old_ping] = 0;
    for (std::uint32_t r = 0; r < kLsmL0Regions; ++r) {
        if (regionUsedUnits_[r] > 0) {
            regionUsedUnits_[r] = 0;
            regionBusy_[r] = false;
        }
    }
    usedRuns_ = 0;
    stats_.add("engine.compactedRecords", moves.size());
    stats_.add("engine.mergedUnits", cursor);
}

void
LsmEngine::compactionTrims(std::uint8_t old_ping,
                           const std::vector<std::uint32_t> &regions,
                           std::uint64_t old_l1_units,
                           std::function<void(Tick)> cb)
{
    auto job = std::make_shared<FanOut>();
    job->outstanding = regions.size() + (old_l1_units > 0 ? 1 : 0);
    job->done = std::move(cb);
    if (job->outstanding == 0) {
        job->done(eq_.now());
        return;
    }
    for (std::uint32_t r : regions) {
        ssd_.submit(Command::trim(layout_.l0Lba(r, 0),
                                  layout_.regionSectors),
                    [job](const CmdResult &res) {
                        job->complete(res);
                    });
    }
    if (old_l1_units > 0) {
        ssd_.submit(Command::trim(layout_.l1Lba(old_ping, 0),
                                  layout_.l1Sectors),
                    [job](const CmdResult &res) {
                        job->complete(res);
                    });
    }
}

void
LsmEngine::startCompaction()
{
    stats_.add("engine.compactions");
    const std::uint8_t old_ping = ping_;
    const std::uint8_t new_ping = ping_ ^ 1;
    const std::uint64_t old_l1_units = l1UsedUnits_[old_ping];
    auto regions = std::make_shared<std::vector<std::uint32_t>>();
    for (std::uint32_t r = 0; r < kLsmL0Regions; ++r) {
        if (regionUsedUnits_[r] > 0)
            regions->push_back(r);
    }
    auto moves = std::make_shared<std::vector<CompactMove>>(
        planCompaction());
    obs::instant(obs::Cat::Engine, kFlushLane, "compact.start",
                 eq_.now(), {{"records", moves->size()}});

    const std::uint32_t unit_chunks = layout_.unitChunks();
    std::vector<Command> cmds;
    std::vector<CowPair> pairs;
    for (const CompactMove &m : *moves) {
        pairs.push_back(CowPair::make(
            m.srcLba, 0, layout_.l1Lba(new_ping, m.dstUnitOff),
            m.units * unit_chunks, globalSeq_++,
            /*force_copy=*/true));
        if (pairs.size() == cfg_.maxPairsPerCommand) {
            cmds.push_back(
                Command::checkpointRemap(std::move(pairs)));
            pairs.clear();
        }
    }
    if (!pairs.empty())
        cmds.push_back(Command::checkpointRemap(std::move(pairs)));

    auto after_copies = [this, moves, regions, old_ping, new_ping,
                         old_l1_units](Tick t) {
        (void)t;
        applyCompaction(*moves, new_ping);
        // Manifest (new ping, regions cleared) before the trims.
        ssd_.submit(buildManifestCommand(),
                    [this, regions, old_ping,
                     old_l1_units](const CmdResult &r) {
            r.require();
            compactionTrims(old_ping, *regions, old_l1_units,
                            [this](Tick t3) { finishFlush(t3); });
        });
    };
    if (cmds.empty()) {
        after_copies(eq_.now());
        return;
    }
    auto job = std::make_shared<FanOut>();
    job->outstanding = cmds.size();
    job->done = after_copies;
    for (Command &c : cmds) {
        stats_.add("engine.compactionCowCommands");
        ssd_.submit(std::move(c),
                    [job](const CmdResult &r) { job->complete(r); });
    }
}

// ----------------------------------------------------------------------
// Manifest
// ----------------------------------------------------------------------

Command
LsmEngine::buildManifestCommand()
{
    std::vector<SectorData> payload(layout_.manifestSectors);
    auto put = [&payload](std::uint64_t idx, std::uint64_t value) {
        payload[idx / kChunksPerSector]
            .chunks[idx % kChunksPerSector] =
            catalogToken(idx, value, 0);
    };
    put(0, 1); // format magic
    put(1, ping_);
    put(2, globalSeq_ & 0xffffff);
    put(3, (globalSeq_ >> 24) & 0xffffff);
    for (std::uint32_t r = 0; r < kLsmL0Regions; ++r)
        put(4 + r, regionUsedUnits_[r]);
    put(4 + kLsmL0Regions, l1UsedUnits_[0]);
    put(5 + kLsmL0Regions, l1UsedUnits_[1]);
    stats_.add("engine.manifestWrites");
    return Command::write(layout_.manifestStart, std::move(payload),
                          IoCause::Metadata, globalSeq_++);
}

LsmEngine::Manifest
LsmEngine::readManifest() const
{
    Manifest m;
    std::vector<SectorData> buf(layout_.manifestSectors);
    ssd_.peek(layout_.manifestStart,
              std::uint32_t(layout_.manifestSectors), buf.data());
    auto get = [&buf](std::uint64_t idx) -> DecodedToken {
        return decodeToken(buf[idx / kChunksPerSector]
                               .chunks[idx % kChunksPerSector]);
    };
    const DecodedToken magic = get(0);
    if (magic.tag != TokenTag::Catalog || magic.key != 0 ||
        magic.version != 1) {
        return m; // fresh / unformatted device
    }
    m.valid = true;
    m.ping = std::uint8_t(get(1).version);
    m.globalSeq = get(2).version | (get(3).version << 24);
    for (std::uint32_t r = 0; r < kLsmL0Regions; ++r)
        m.regionUsedUnits[r] = get(4 + r).version;
    m.l1UsedUnits[0] = get(4 + kLsmL0Regions).version;
    m.l1UsedUnits[1] = get(5 + kLsmL0Regions).version;
    return m;
}

// ----------------------------------------------------------------------
// Verification
// ----------------------------------------------------------------------

void
LsmEngine::verifyKeyContent(std::uint64_t key,
                            const KeyState &st) const
{
    if (st.version == 0)
        return;
    const Lba lba = lbaOf(st.loc);
    if (st.chunks == 0) {
        // Deleted key: its tombstone record must read back (LSM
        // tombstones stay on-device through compaction).
        SectorData buf;
        ssd_.peek(lba, 1, &buf);
        if (buf.chunks[0] != tombstoneToken(key, st.version)) {
            std::ostringstream os;
            os << "lsm tombstone mismatch: key " << key
               << " version " << st.version << " at lba " << lba;
            throw std::runtime_error(os.str());
        }
        return;
    }
    const auto nsect =
        std::uint32_t(divCeil(st.chunks, kChunksPerSector));
    std::vector<SectorData> buf(nsect);
    ssd_.peek(lba, nsect, buf.data());
    for (std::uint32_t c = 0; c < st.chunks; ++c) {
        const std::uint64_t got =
            buf[c / kChunksPerSector].chunks[c % kChunksPerSector];
        const std::uint64_t want =
            dataChunkToken(key, st.version, c);
        if (got != want) {
            const DecodedToken d = decodeToken(got);
            std::ostringstream os;
            os << "lsm content mismatch: key " << key << " version "
               << st.version << " chunk " << c << " at lba " << lba
               << " (area=" << int(st.loc.area)
               << " idx=" << int(st.loc.idx)
               << " unitOff=" << st.loc.unitOff
               << " chunks=" << st.chunks << ") got tag="
               << int(d.tag) << " key=" << d.key
               << " ver=" << d.version << " aux=" << d.aux;
            throw std::runtime_error(os.str());
        }
    }
}

std::uint64_t
LsmEngine::verifyAllKeys() const
{
    std::uint64_t verified = 0;
    for (std::uint64_t key = 0; key < cfg_.recordCount; ++key) {
        const KeyState &st = keymap_[key];
        if (st.version == 0)
            continue;
        verifyKeyContent(key, st);
        ++verified;
    }
    return verified;
}

// ----------------------------------------------------------------------
// Recovery
// ----------------------------------------------------------------------

std::vector<LsmEngine::ParsedRec>
LsmEngine::parseArea(Lba start_lba, std::uint64_t units) const
{
    const std::uint32_t unit_chunks = layout_.unitChunks();
    const std::uint64_t nsect = units * layout_.unitSectors;
    std::vector<SectorData> buf(nsect);
    ssd_.peek(start_lba, std::uint32_t(nsect), buf.data());
    std::vector<std::uint64_t> toks(units * unit_chunks, 0);
    for (std::uint64_t s = 0; s < nsect; ++s) {
        for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
            toks[s * kChunksPerSector + c] = buf[s].chunks[c];
    }
    std::vector<ParsedRec> recs;
    std::uint64_t u = 0;
    while (u < units) {
        const std::uint64_t pos = u * unit_chunks;
        const DecodedToken d = decodeToken(toks[pos]);
        if (d.tag == TokenTag::Tombstone) {
            recs.push_back(ParsedRec{d.key,
                                     std::uint32_t(d.version), 0, u,
                                     1});
            ++u;
            continue;
        }
        if (d.tag != TokenTag::Data || d.aux != 0) {
            ++u;
            continue;
        }
        std::uint64_t n = 1;
        while (pos + n < toks.size()) {
            const DecodedToken dn = decodeToken(toks[pos + n]);
            if (dn.tag == TokenTag::Data && dn.key == d.key &&
                dn.version == d.version && dn.aux == n) {
                ++n;
            } else {
                break;
            }
        }
        const auto rec_units =
            std::uint32_t(divCeil(n, unit_chunks));
        recs.push_back(ParsedRec{d.key, std::uint32_t(d.version),
                                 std::uint32_t(n), u, rec_units});
        u += rec_units;
    }
    return recs;
}

RecoveryInfo
LsmEngine::recover()
{
    RecoveryInfo info;
    const Tick t0 = eq_.now();
    Tick tmax = t0;
    auto sync = [this, &tmax](Command cmd) {
        tmax = std::max(tmax, ssd_.submitSync(std::move(cmd)));
    };

    // 1. Manifest: which L1 ping and L0 regions are authoritative.
    sync(Command::read(layout_.manifestStart,
                       layout_.manifestSectors, IoCause::Metadata));
    const Manifest m = readManifest();
    ping_ = m.ping;
    l1UsedUnits_[0] = m.l1UsedUnits[0];
    l1UsedUnits_[1] = m.l1UsedUnits[1];
    usedRuns_ = 0;
    for (std::uint32_t r = 0; r < kLsmL0Regions; ++r) {
        regionUsedUnits_[r] = m.regionUsedUnits[r];
        regionBusy_[r] = m.regionUsedUnits[r] > 0;
        if (m.regionUsedUnits[r] > 0)
            ++usedRuns_;
    }
    // Fresh stamps must exceed every stamp the crashed run issued
    // after its last manifest write; slack covers the whole managed
    // area plus margin.
    globalSeq_ = m.globalSeq + 2 * layout_.walUnits() +
                 kLsmL0Regions * layout_.walUnits() +
                 2 * layout_.l1Units() + 1024;

    // 2. Scan the authoritative data areas: L1 ping, then used L0
    //    regions (token versions arbitrate, so order is immaterial).
    auto apply_data = [this](const ParsedRec &r, const Loc &loc) {
        KeyState &st = keymap_[r.key];
        if (r.version > st.dataVersion) {
            st.dataVersion = r.version;
            st.dataChunks = r.chunks;
            st.dataLoc = loc;
        }
    };
    if (l1UsedUnits_[ping_] > 0) {
        sync(Command::read(layout_.l1Lba(ping_, 0),
                           l1UsedUnits_[ping_] * layout_.unitSectors,
                           IoCause::Query));
        for (const ParsedRec &r :
             parseArea(layout_.l1Lba(ping_, 0),
                       l1UsedUnits_[ping_])) {
            apply_data(r, Loc{Loc::Area::L1, ping_, r.unitOff});
        }
    }
    for (std::uint32_t reg = 0; reg < kLsmL0Regions; ++reg) {
        if (regionUsedUnits_[reg] == 0)
            continue;
        sync(Command::read(layout_.l0Lba(reg, 0),
                           regionUsedUnits_[reg] *
                               layout_.unitSectors,
                           IoCause::Query));
        for (const ParsedRec &r :
             parseArea(layout_.l0Lba(reg, 0),
                       regionUsedUnits_[reg])) {
            apply_data(r, Loc{Loc::Area::L0, std::uint8_t(reg),
                              r.unitOff});
        }
    }
    for (std::uint64_t key = 0; key < cfg_.recordCount; ++key) {
        KeyState &st = keymap_[key];
        if (st.dataVersion == 0)
            continue;
        st.version = st.dataVersion;
        st.assignedVersion = st.dataVersion;
        st.chunks = st.dataChunks;
        st.loc = st.dataLoc;
        ++info.catalogKeys;
    }

    // 3. Scan both WAL halves; records newer than a key's data copy
    //    form the replay set. The strict version filter also defuses
    //    trimmed-WAL resurrection: a half whose logs were deleted can
    //    reappear after a power-loss rebuild (trim leaves the OOB
    //    intact), but its records never out-version the promoted run.
    struct Replay
    {
        std::uint32_t version = 0;
        std::uint32_t chunks = 0;
        std::uint8_t half = 0;
        std::uint64_t unitOff = 0;
        std::uint32_t units = 0;
    };
    std::vector<Replay> best(cfg_.recordCount);
    for (std::uint8_t half = 0; half < 2; ++half) {
        sync(Command::read(layout_.walStart[half],
                           layout_.walSectors, IoCause::Journal));
        for (const ParsedRec &r :
             parseArea(layout_.walStart[half], layout_.walUnits())) {
            if (r.key >= cfg_.recordCount)
                continue;
            if (r.version <= keymap_[r.key].dataVersion)
                continue;
            Replay &b = best[r.key];
            if (r.version > b.version) {
                b.version = r.version;
                b.chunks = r.chunks;
                b.half = half;
                b.unitOff = r.unitOff;
                b.units = r.units;
            }
        }
    }

    // 4. Re-flush the replay set into a free region. Force-copy, not
    //    remap: the replayed units' stale annotations may target a
    //    different region, so only a fresh durable write is safe.
    std::uint64_t replayed = 0;
    for (const Replay &b : best) {
        if (b.version > 0)
            ++replayed;
    }
    if (replayed > 0) {
        const std::uint32_t region = reserveRegion();
        const std::uint32_t unit_chunks = layout_.unitChunks();
        std::uint64_t cursor = 0;
        std::vector<CowPair> pairs;
        for (std::uint64_t key = 0; key < cfg_.recordCount; ++key) {
            const Replay &b = best[key];
            if (b.version == 0)
                continue;
            pairs.push_back(CowPair::make(
                layout_.walLba(b.half, b.unitOff), 0,
                layout_.l0Lba(region, cursor),
                b.units * unit_chunks, globalSeq_++,
                /*force_copy=*/true));
            KeyState &st = keymap_[key];
            st.version = b.version;
            st.assignedVersion = b.version;
            st.chunks = b.chunks;
            st.loc = Loc{Loc::Area::L0, std::uint8_t(region),
                         cursor};
            st.dataVersion = b.version;
            st.dataChunks = b.chunks;
            st.dataLoc = st.loc;
            cursor += b.units;
            if (pairs.size() == cfg_.maxPairsPerCommand) {
                sync(Command::checkpointRemap(std::move(pairs)));
                pairs.clear();
            }
        }
        if (!pairs.empty())
            sync(Command::checkpointRemap(std::move(pairs)));
        regionUsedUnits_[region] = cursor;
        ++usedRuns_;
    }
    info.replayedLogs = replayed;

    // 5. Manifest (also persists the recovery stamp bump), then
    //    release the WAL and every non-authoritative area.
    sync(buildManifestCommand());
    for (std::uint8_t half = 0; half < 2; ++half) {
        sync(Command::deleteLogs(layout_.walStart[half],
                                 layout_.walSectors));
    }
    for (std::uint32_t reg = 0; reg < kLsmL0Regions; ++reg) {
        if (regionUsedUnits_[reg] == 0)
            sync(Command::trim(layout_.l0Lba(reg, 0),
                               layout_.regionSectors));
    }
    sync(Command::trim(layout_.l1Lba(ping_ ^ 1, 0),
                       layout_.l1Sectors));

    // 6. Compact synchronously if the replay pushed L0 to its limit,
    //    so the store restarts with compaction headroom.
    if (usedRuns_ >= kLsmCompactRuns) {
        stats_.add("engine.compactions");
        const std::uint8_t old_ping = ping_;
        const std::uint8_t new_ping = ping_ ^ 1;
        const std::uint64_t old_l1_units = l1UsedUnits_[old_ping];
        std::vector<std::uint32_t> regions;
        for (std::uint32_t r = 0; r < kLsmL0Regions; ++r) {
            if (regionUsedUnits_[r] > 0)
                regions.push_back(r);
        }
        const std::vector<CompactMove> moves = planCompaction();
        const std::uint32_t unit_chunks = layout_.unitChunks();
        std::vector<CowPair> pairs;
        for (const CompactMove &mv : moves) {
            pairs.push_back(CowPair::make(
                mv.srcLba, 0,
                layout_.l1Lba(new_ping, mv.dstUnitOff),
                mv.units * unit_chunks, globalSeq_++,
                /*force_copy=*/true));
            if (pairs.size() == cfg_.maxPairsPerCommand) {
                stats_.add("engine.compactionCowCommands");
                sync(Command::checkpointRemap(std::move(pairs)));
                pairs.clear();
            }
        }
        if (!pairs.empty()) {
            stats_.add("engine.compactionCowCommands");
            sync(Command::checkpointRemap(std::move(pairs)));
        }
        applyCompaction(moves, new_ping);
        sync(buildManifestCommand());
        for (std::uint32_t r : regions) {
            sync(Command::trim(layout_.l0Lba(r, 0),
                               layout_.regionSectors));
        }
        if (old_l1_units > 0) {
            sync(Command::trim(layout_.l1Lba(old_ping, 0),
                               layout_.l1Sectors));
        }
    }

    // 7. Reset the WAL and arm the active half.
    activeHalf_ = 0;
    for (std::uint8_t half = 0; half < 2; ++half) {
        appendUnit_[half] = 0;
        halfPayloadBytes_[half] = 0;
        halfRecords_[half].clear();
        halfClean_[half] = true;
        halfRegionValid_[half] = false;
    }
    halfRegion_[0] = reserveRegion();
    halfRegionValid_[0] = true;

    info.duration = tmax > t0 ? tmax - t0 : 0;
    stats_.add("engine.recoveries");
    stats_.add("engine.recoveredLogs", info.replayedLogs);
    return info;
}

} // namespace checkin
