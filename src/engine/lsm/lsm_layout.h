/**
 * @file
 * Logical disk layout of the LSM StorageEngine backend:
 * manifest area, two WAL halves, L0 run regions, and an L1 ping-pong
 * pair of sorted key-ordered levels.
 *
 * The L0 area holds one run region per WAL-half activation. A region
 * is exactly one WAL half in size so a memtable flush can promote the
 * frozen half with identity-offset remap pairs: WAL unit i of the
 * half becomes unit i of the region, which is what the per-unit OOB
 * targetLpn annotations written at append time already point at
 * (remap durability across power loss comes from those annotations,
 * so the flush must not re-shuffle units).
 */

#ifndef CHECKIN_ENGINE_LSM_LSM_LAYOUT_H_
#define CHECKIN_ENGINE_LSM_LSM_LAYOUT_H_

#include <cstdint>
#include <stdexcept>

#include "engine/engine_config.h"
#include "ftl/ftl.h"
#include "sim/types.h"

namespace checkin {

/**
 * L0 run regions. At most kLsmCompactRuns runs are live before a
 * compaction folds them into L1; doubling the region count guarantees
 * the region assigned to a WAL-half activation is always one that the
 * previous compaction already trimmed, so stale OOB annotations can
 * only ever target manifest-unused regions.
 */
inline constexpr std::uint32_t kLsmL0Regions = 4;

/** Used-run count that triggers a compaction into L1. */
inline constexpr std::uint32_t kLsmCompactRuns = 2;

/**
 * Manifest chunk budget: magic, ping, globalSeq lo/hi, per-region
 * used-unit counts, and both L1 used-unit counts.
 */
inline constexpr std::uint64_t kLsmManifestChunks =
    4 + kLsmL0Regions + 2;

/** Sector-level map of the LSM backend's on-disk areas. */
struct LsmLayout
{
    std::uint64_t recordCount = 0;
    /** FTL mapping-unit size in sectors. */
    std::uint32_t unitSectors = 0;
    /** Units a maximum-size record occupies. */
    std::uint64_t slotUnits = 0;

    Lba manifestStart = 0;
    std::uint64_t manifestSectors = 0;
    Lba walStart[2] = {0, 0};
    std::uint64_t walSectors = 0; //!< per half
    Lba l0Start = 0;
    std::uint64_t regionSectors = 0; //!< per L0 region (== walSectors)
    Lba l1Start[2] = {0, 0};
    std::uint64_t l1Sectors = 0; //!< per L1 ping

    /**
     * Compute the layout. Areas are aligned to @p unit_sectors so
     * every record starts on an FTL mapping-unit boundary (remap and
     * copy offload both require whole-unit operands).
     * @throws std::invalid_argument when the device is too small.
     */
    static LsmLayout
    compute(const EngineConfig &cfg, std::uint64_t capacity_sectors,
            std::uint32_t unit_sectors)
    {
        LsmLayout l;
        l.recordCount = cfg.recordCount;
        l.unitSectors = unit_sectors;
        l.slotUnits = divCeil(
            divCeil(cfg.maxValueBytes, kSectorBytes), unit_sectors);
        l.manifestStart = 0;
        l.manifestSectors = alignUp(
            divCeil(kLsmManifestChunks, kChunksPerSector),
            unit_sectors);
        l.walSectors = alignUp(
            divCeil(cfg.journalHalfBytes, kSectorBytes), unit_sectors);
        l.walStart[0] = l.manifestStart + l.manifestSectors;
        l.walStart[1] = l.walStart[0] + l.walSectors;
        l.l0Start = l.walStart[1] + l.walSectors;
        l.regionSectors = l.walSectors;
        l.l1Sectors = l.recordCount * l.slotUnits * unit_sectors;
        l.l1Start[0] = l.l0Start + kLsmL0Regions * l.regionSectors;
        l.l1Start[1] = l.l1Start[0] + l.l1Sectors;
        if (l.l1Start[1] + l.l1Sectors > capacity_sectors) {
            throw std::invalid_argument(
                "LsmLayout: store does not fit the device");
        }
        if (l.slotUnits > l.walUnits()) {
            throw std::invalid_argument(
                "LsmLayout: journal half smaller than one record");
        }
        return l;
    }

    /** Units per WAL half (== units per L0 region). */
    std::uint64_t
    walUnits() const
    {
        return walSectors / unitSectors;
    }

    /** Units per L1 ping. */
    std::uint64_t
    l1Units() const
    {
        return l1Sectors / unitSectors;
    }

    /** 128 B chunks per mapping unit. */
    std::uint32_t
    unitChunks() const
    {
        return unitSectors * kChunksPerSector;
    }

    /** First sector of WAL unit @p unit_off in @p half. */
    Lba
    walLba(std::uint8_t half, std::uint64_t unit_off) const
    {
        return walStart[half] + unit_off * unitSectors;
    }

    /** First sector of unit @p unit_off of L0 region @p region. */
    Lba
    l0Lba(std::uint32_t region, std::uint64_t unit_off) const
    {
        return l0Start + region * regionSectors +
               unit_off * unitSectors;
    }

    /** First sector of unit @p unit_off of L1 ping @p ping. */
    Lba
    l1Lba(std::uint8_t ping, std::uint64_t unit_off) const
    {
        return l1Start[ping] + unit_off * unitSectors;
    }

    /** LPN (mapping-unit number) of unit @p unit_off of @p region;
     *  the value WAL append annotations carry as targetLpn. */
    std::uint64_t
    l0UnitLpn(std::uint32_t region, std::uint64_t unit_off) const
    {
        return l0Lba(region, unit_off) / unitSectors;
    }
};

} // namespace checkin

#endif // CHECKIN_ENGINE_LSM_LSM_LAYOUT_H_
