/**
 * @file
 * LSM StorageEngine backend: memtable index + WAL over the journal
 * area, immutable runs in the data area, and leveled compaction whose
 * merges are offloaded to the ISCE.
 */

#ifndef CHECKIN_ENGINE_LSM_LSM_ENGINE_H_
#define CHECKIN_ENGINE_LSM_LSM_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "engine/checkpoint_policy.h"
#include "engine/engine_config.h"
#include "engine/lsm/lsm_layout.h"
#include "engine/storage_engine.h"
#include "obs/flight_recorder.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/stats.h"
#include "ssd/ssd.h"

namespace checkin {

/**
 * The LSM StorageEngine backend (`lsm` behind EngineConfig::backend).
 *
 * Write path: updates append unit-aligned records to the active WAL
 * half (group commit, one write in flight); every WAL unit carries an
 * OOB annotation naming its L0 destination so remap promotions stay
 * durable across power loss. A "checkpoint" is a memtable flush: the
 * frozen half is promoted wholesale into its pre-assigned L0 region
 * with identity-offset CheckpointRemap pairs (zero data movement),
 * the manifest is persisted, and the half is released. Once
 * kLsmCompactRuns runs accumulate, a compaction folds L0 plus the
 * current L1 into the other L1 ping using force-copy CoW pairs — the
 * merge runs entirely inside the device.
 *
 * Read path: every key has at most one serving location (WAL, L0, or
 * L1); GETs issue a single read there. Tombstones are carried into L1
 * so version ordering survives trimmed-WAL resurrection after a
 * sudden power loss rebuild.
 */
class LsmEngine : public StorageEngine
{
  public:
    LsmEngine(SimContext &ctx, Ssd &ssd, const EngineConfig &cfg);

    void load(const std::function<std::uint32_t(std::uint64_t)>
                  &size_of) override;
    RecoveryInfo recover() override;
    void start() override;

    // ------------------------------------------------------------------
    // Query interface
    // ------------------------------------------------------------------
    void get(std::uint64_t key, QueryCb cb) override;
    void update(std::uint64_t key, std::uint32_t value_bytes,
                QueryCb cb) override;
    void readModifyWrite(std::uint64_t key, std::uint32_t value_bytes,
                         QueryCb cb) override;
    void erase(std::uint64_t key, QueryCb cb) override;
    void updateBatch(std::vector<BatchOp> ops, QueryCb cb) override;
    void scan(std::uint64_t start_key, std::uint32_t count,
              QueryCb cb) override;

    // ------------------------------------------------------------------
    // Checkpoint (memtable flush) control
    // ------------------------------------------------------------------
    void requestCheckpoint(obs::CkptTrigger reason =
                               obs::CkptTrigger::Manual) override;
    bool
    checkpointInProgress() const override
    {
        return flushInProgress_;
    }
    const std::vector<Tick> &
    checkpointDurations() const override
    {
        return flushDurations_;
    }

    double
    journalFillRate() const override
    {
        return policy_->fillRateBytesPerSec();
    }

    /** The trigger policy driving this engine's flushes. */
    const CheckpointPolicy &checkpointPolicy() const
    {
        return *policy_;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------
    const LsmLayout &layout() const { return layout_; }
    StatRegistry &stats() override { return stats_; }
    const StatRegistry &stats() const override { return stats_; }
    const EngineConfig &config() const override { return cfg_; }

    std::uint32_t
    committedVersion(std::uint64_t key) const override
    {
        return keymap_[key].version;
    }

    std::uint64_t verifyAllKeys() const override;

  private:
    /** Where a record copy lives. */
    struct Loc
    {
        enum class Area : std::uint8_t
        {
            None,
            Wal, //!< idx = half
            L0,  //!< idx = region
            L1,  //!< idx = ping
        };
        Area area = Area::None;
        std::uint8_t idx = 0;
        std::uint64_t unitOff = 0;
    };

    /** Per-key memtable/index state. */
    struct KeyState
    {
        std::uint32_t version = 0; //!< committed (ack-durable)
        std::uint32_t assignedVersion = 0;
        std::uint32_t chunks = 0; //!< 0 = deleted
        Loc loc;                  //!< serving copy
        /** Newest data-area (L0/L1) copy — the compaction input;
         *  dataChunks == 0 marks a tombstone copy. */
        std::uint32_t dataVersion = 0;
        std::uint32_t dataChunks = 0;
        Loc dataLoc;
    };

    /** A record durably appended to a WAL half. */
    struct WalRec
    {
        std::uint64_t key = 0;
        std::uint32_t version = 0;
        std::uint32_t chunks = 0; //!< data chunks; 0 = tombstone
        std::uint8_t half = 0;
        std::uint64_t unitOff = 0;
        std::uint32_t units = 0;
    };

    /** An append waiting for its group commit. */
    struct PendingRec
    {
        std::uint64_t key = 0;
        std::uint32_t version = 0;
        std::uint32_t valueBytes = 0;
        std::uint32_t chunks = 0;
        std::uint32_t units = 0;
        std::function<void(const WalRec &, Tick)> cb;
    };

    /** A record parsed back out of the device (recovery). */
    struct ParsedRec
    {
        std::uint64_t key = 0;
        std::uint32_t version = 0;
        std::uint32_t chunks = 0; //!< 0 = tombstone
        std::uint64_t unitOff = 0;
        std::uint32_t units = 0;
    };

    /** One record movement of a compaction plan. */
    struct CompactMove
    {
        std::uint64_t key = 0;
        std::uint32_t version = 0;
        std::uint32_t chunks = 0;
        Lba srcLba = 0;
        std::uint64_t dstUnitOff = 0;
        std::uint32_t units = 0;
    };

    /** Decoded manifest state. */
    struct Manifest
    {
        bool valid = false;
        std::uint8_t ping = 0;
        std::uint64_t globalSeq = 0;
        std::uint64_t regionUsedUnits[kLsmL0Regions] = {};
        std::uint64_t l1UsedUnits[2] = {};
    };

    std::uint32_t recordUnits(std::uint32_t chunks) const;
    Lba lbaOf(const Loc &loc) const;

    // Query internals (mirror the checkin backend's idioms).
    void doGet(std::uint64_t key, QueryCb cb);
    void doScan(std::uint64_t start_key, std::uint32_t count,
                QueryCb cb);
    bool maybeDefer(std::function<void()> fn);
    void drainDeferred();
    void onFlushTimer();
    /** Current trigger-policy inputs. */
    PolicySignals policySignals() const;
    /** Feed the policy a WAL append commit; maybe trigger. */
    void noteWalAppend();

    // WAL append path.
    void enqueueGroup(std::vector<PendingRec> group);
    void pumpWal();
    void applyWalAck(const WalRec &rec);

    // Flush (checkpoint) path.
    void startFlush();
    void quiesceWal(std::function<void()> fn);
    void onWalQuiesced();
    void onFlushDataDone(std::uint8_t half, std::uint32_t region,
                         const std::vector<WalRec> &recs, Tick t);
    void finishFlush(Tick t);
    std::uint32_t reserveRegion();

    // Compaction.
    std::vector<CompactMove> planCompaction() const;
    void startCompaction();
    void applyCompaction(const std::vector<CompactMove> &moves,
                         std::uint8_t new_ping);
    void compactionTrims(std::uint8_t old_ping,
                         const std::vector<std::uint32_t> &regions,
                         std::uint64_t old_l1_units,
                         std::function<void(Tick)> cb);

    // Manifest + recovery.
    Command buildManifestCommand();
    Manifest readManifest() const;
    std::vector<ParsedRec> parseArea(Lba start_lba,
                                     std::uint64_t units) const;
    void verifyKeyContent(std::uint64_t key,
                          const KeyState &st) const;

    EventQueue &eq_;
    Ssd &ssd_;
    EngineConfig cfg_;
    LsmLayout layout_;
    std::vector<KeyState> keymap_;
    StatRegistry stats_;
    std::unique_ptr<CheckpointPolicy> policy_;

    /** Device-durable OOB version stamps: a single monotone counter
     *  shared by every write/copy so the SPOR rebuild's newest-wins
     *  arbitration orders slots across keys. Token content still
     *  carries per-key versions. */
    std::uint64_t globalSeq_ = 1;

    // WAL state.
    std::uint8_t activeHalf_ = 0;
    std::uint64_t appendUnit_[2] = {0, 0};
    std::uint64_t halfPayloadBytes_[2] = {0, 0};
    std::vector<WalRec> halfRecords_[2];
    bool halfClean_[2] = {true, true};
    std::uint32_t halfRegion_[2] = {0, 0};
    bool halfRegionValid_[2] = {false, false};
    std::deque<std::vector<PendingRec>> pendingGroups_;
    bool walInFlight_ = false;
    bool walStalled_ = false;
    std::function<void()> walQuiesceCb_;

    // L0 / L1 state.
    bool regionBusy_[kLsmL0Regions] = {};
    std::uint64_t regionUsedUnits_[kLsmL0Regions] = {};
    std::uint32_t usedRuns_ = 0;
    std::uint8_t ping_ = 0;
    std::uint64_t l1UsedUnits_[2] = {0, 0};

    // Flush lifecycle.
    bool flushInProgress_ = false;
    bool pendingFlushRequest_ = false;
    Tick flushStart_ = 0;
    Tick flushDataDone_ = 0;
    Tick flushMetaDone_ = 0;
    std::vector<Tick> flushDurations_;
    obs::CheckpointStat flushRec_;
    std::uint64_t flushSeq_ = 0;
    std::deque<std::function<void()>> deferred_;
    /** Telemetry sampler of the run (nullptr: telemetry off). */
    obs::TelemetrySampler *telem_ = nullptr;
};

} // namespace checkin

#endif // CHECKIN_ENGINE_LSM_LSM_ENGINE_H_
