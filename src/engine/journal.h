/**
 * @file
 * Journaling layer: write-ahead logging with group commit, the
 * journal mapping table (JMT), two ping-pong journal halves, and the
 * Check-In block aligner (paper Algorithm 2).
 *
 * Conventional mode packs journal records back-to-back at 128 B chunk
 * granularity (so commits rewrite the partially-filled tail sector —
 * the misalignment the paper attacks). Aligned mode formats every
 * record to mapping-unit buckets, bin-packs PARTIAL records into
 * MERGED units, and always writes whole fresh units.
 */

#ifndef CHECKIN_ENGINE_JOURNAL_H_
#define CHECKIN_ENGINE_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "engine/engine_config.h"
#include "engine/layout.h"
#include "obs/attribution.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/stats.h"
#include "ssd/ssd.h"

namespace checkin {

/** Journal record formatting classes (Algorithm 2). */
enum class LogType : std::uint8_t
{
    Raw,     //!< conventional chunk-packed record (no alignment)
    Full,    //!< aligned record occupying whole mapping units
    Partial, //!< sub-unit record alone in its (padded) unit
    Merged,  //!< sub-unit record sharing a unit with others
};

/** One journal mapping table entry (latest log of a key). */
struct JmtEntry
{
    std::uint64_t key = 0;
    std::uint32_t version = 0;
    std::uint8_t half = 0;
    /** Absolute chunk offset of the record inside the half. */
    std::uint64_t chunkOff = 0;
    /** Stored length in chunks (after formatting/compression). */
    std::uint32_t chunks = 0;
    /** Original payload bytes of the update. */
    std::uint32_t payloadBytes = 0;
    LogType type = LogType::Raw;
};

/** Formatting result of Algorithm 2's Update() for one record. */
struct FormattedSize
{
    std::uint32_t chunks = 0;
    LogType type = LogType::Raw;
};

/**
 * Pure function implementing Algorithm 2's size replacement: values
 * above the mapping unit are compressed and unit-aligned (FULL);
 * values at or below it are bucketed to unit/4 steps (FULL at exactly
 * one unit, PARTIAL otherwise). Conventional mode stores the raw
 * chunk count (Raw).
 */
FormattedSize formatLogSize(std::uint32_t value_bytes,
                            std::uint32_t unit_bytes, bool aligned,
                            double compress_ratio);

/** Write-ahead journal with group commit over an Ssd. */
class JournalManager
{
  public:
    /** Fired when a record's group commit completes. */
    using CommitCb = std::function<void(const JmtEntry &, Tick)>;
    /** Fired when the journal wants a checkpoint (space pressure). */
    using PressureCb = std::function<void()>;

    JournalManager(SimContext &ctx, Ssd &ssd,
                   const DiskLayout &layout,
                   const EngineConfig &cfg, StatRegistry &stats);

    void setPressureCallback(PressureCb cb)
    {
        onPressure_ = std::move(cb);
    }

    /**
     * Append one update's log; @p cb fires when the containing group
     * commit is durable on the device.
     */
    void append(std::uint64_t key, std::uint32_t version,
                std::uint32_t value_bytes, CommitCb cb);

    /** One record of a multi-record transaction. */
    struct BatchRecord
    {
        std::uint64_t key;
        std::uint32_t version;
        std::uint32_t valueBytes; //!< 0 = tombstone
        CommitCb cb;
    };

    /**
     * Append a transaction: all records are guaranteed to flush in
     * the same group commit (one atomic device write, paper Fig 7),
     * so a crash either persists all of them or none.
     */
    void appendBatch(std::vector<BatchRecord> records);

    /** Half currently receiving logs. */
    std::uint8_t activeHalf() const { return active_; }

    /** True when the non-active half is free for a switch. */
    bool
    otherHalfFree() const
    {
        return !halfBusy_[active_ ^ 1];
    }

    /**
     * Begin a checkpoint: snapshot and clear the JMT, mark the active
     * half as being checkpointed, and switch logging to the other
     * (free) half. The caller owns checkpointing the returned entries
     * and must call onHalfFreed() once the logs are deleted.
     */
    std::vector<JmtEntry> beginCheckpoint();

    /** The checkpointed half's logs were deleted on the device. */
    void onHalfFreed(std::uint8_t half);

    /** Bytes of logs accumulated in the active half. */
    std::uint64_t
    activeJournalBytes() const
    {
        return appendChunk_[active_] * kChunkBytes;
    }

    /** Entries currently in the JMT (latest versions). */
    std::size_t jmtSize() const { return jmt_.size(); }

    /** Total logs appended to the active half since its last reset. */
    std::uint64_t
    logsInActiveHalf() const
    {
        return logsAppended_[active_];
    }

    /** True when appends are blocked waiting for journal space. */
    bool stalled() const { return stalledForSpace_; }

    /** Updates buffered but not yet committed (lost on crash). */
    std::size_t pendingCount() const { return buffer_.size(); }

    /** True while a group-commit write is outstanding. */
    bool flushInFlight() const { return flushInFlight_; }

    /**
     * Run @p cb as soon as no flush is outstanding, suppressing the
     * next flush until then. Used before switching halves so every
     * record of the old half is in the JMT when it is snapshotted.
     */
    void quiesce(std::function<void()> cb);

  private:
    struct Pending
    {
        std::uint64_t key;
        std::uint32_t version;
        std::uint32_t valueBytes;
        CommitCb cb;
        /** Records in this batch (set on the head; 1 for singles). */
        std::uint32_t batchLen = 1;
        /** Latency-attribution op the record belongs to. */
        obs::OpToken op = obs::kNoOpToken;
    };

    struct Placed
    {
        Pending pending;
        std::uint64_t chunkOff;
        std::uint32_t chunks;
        LogType type;
    };

    std::uint32_t unitChunks() const;

    void startFlush();
    /** Place @p group in the active half; false when out of space. */
    bool placeGroup(std::vector<Pending> &group,
                    std::vector<Placed> &placed,
                    std::uint64_t &first_chunk,
                    std::uint64_t &end_chunk);
    void submitGroup(std::vector<Placed> placed,
                     std::uint64_t first_chunk,
                     std::uint64_t end_chunk);

    EventQueue &eq_;
    Ssd &ssd_;
    const DiskLayout &layout_;
    const EngineConfig &cfg_;
    StatRegistry &stats_;
    /** Telemetry sampler of the run (nullptr: telemetry off). */
    obs::TelemetrySampler *telem_ = nullptr;
    PressureCb onPressure_;

    std::deque<Pending> buffer_;
    bool flushInFlight_ = false;
    bool stalledForSpace_ = false;
    /** Last space-stall window (attribution: records buffered across
     *  it charge the window to CheckpointStall, not JournalWait). */
    Tick stallStart_ = 0;
    Tick stallEnd_ = 0;
    std::function<void()> quiesceCb_;

    std::uint8_t active_ = 0;
    bool halfBusy_[2] = {false, false};
    std::uint64_t appendChunk_[2] = {0, 0};
    std::uint64_t logsAppended_[2] = {0, 0};
    /** Chunk-token image of each half (journal write buffer/cache). */
    std::vector<std::uint64_t> image_[2];

    std::unordered_map<std::uint64_t, JmtEntry> jmt_;
};

} // namespace checkin

#endif // CHECKIN_ENGINE_JOURNAL_H_
