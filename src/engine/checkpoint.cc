#include "engine/checkpoint.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "engine/record.h"

namespace checkin {

const char *
checkpointModeName(CheckpointMode mode)
{
    switch (mode) {
      case CheckpointMode::Baseline: return "Baseline";
      case CheckpointMode::IscA: return "ISC-A";
      case CheckpointMode::IscB: return "ISC-B";
      case CheckpointMode::IscC: return "ISC-C";
      case CheckpointMode::CheckIn: return "Check-In";
    }
    return "?";
}

const char *
engineBackendName(EngineBackend backend)
{
    switch (backend) {
      case EngineBackend::CheckIn: return "checkin";
      case EngineBackend::Lsm: return "lsm";
    }
    return "?";
}

CowPair
CheckpointStrategy::pairFor(const JmtEntry &entry) const
{
    return CowPair::make(
        layout_.journalChunkLba(entry.half, entry.chunkOff),
        std::uint32_t(entry.chunkOff % kChunksPerSector),
        layout_.targetLba(entry.key), entry.chunks, entry.version,
        /*force_copy=*/entry.type == LogType::Merged ||
            entry.type == LogType::Partial);
}

std::unique_ptr<CheckpointStrategy>
CheckpointStrategy::create(Ssd &ssd, const DiskLayout &layout,
                           const EngineConfig &cfg,
                           StatRegistry &stats)
{
    switch (cfg.mode) {
      case CheckpointMode::Baseline:
        return std::make_unique<HostCheckpoint>(ssd, layout, cfg,
                                                stats);
      case CheckpointMode::IscA:
        return std::make_unique<SingleCowCheckpoint>(ssd, layout, cfg,
                                                     stats);
      case CheckpointMode::IscB:
        return std::make_unique<MultiCowCheckpoint>(ssd, layout, cfg,
                                                    stats);
      case CheckpointMode::IscC:
      case CheckpointMode::CheckIn:
        return std::make_unique<RemapCheckpoint>(ssd, layout, cfg,
                                                 stats);
    }
    return nullptr;
}

namespace {

/** Shared completion counter for a fan-out of commands. */
struct FanOut
{
    std::size_t outstanding = 0;
    Tick last = 0;
    CheckpointStrategy::DoneCb done;

    void
    complete(const CmdResult &r)
    {
        last = std::max(last, r.require());
        assert(outstanding > 0);
        if (--outstanding == 0)
            done(last);
    }
};

} // namespace

void
HostCheckpoint::run(const std::vector<JmtEntry> &entries, DoneCb done)
{
    if (entries.empty()) {
        done(ssd_.eventQueue().now());
        return;
    }
    // Phase 1: read every latest log into host memory (a read buffer
    // is allocated per log, paper §II-B). Content is captured at
    // submission, which is when the functional state is consistent.
    auto job = std::make_shared<FanOut>();
    auto payloads = std::make_shared<
        std::vector<std::vector<SectorData>>>();
    payloads->reserve(entries.size());
    auto self = this;
    auto phase2 = [self, entries, payloads, done](Tick reads_done) {
        (void)reads_done;
        auto wjob = std::make_shared<FanOut>();
        wjob->outstanding = entries.size();
        wjob->done = done;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const JmtEntry &e = entries[i];
            Command w = Command::write(
                self->layout_.targetLba(e.key),
                std::move((*payloads)[i]), IoCause::Checkpoint,
                e.version);
            self->stats_.add("engine.ckptHostWriteSectors", w.nsect);
            self->ssd_.submit(std::move(w),
                              [wjob](const CmdResult &r) {
                                  wjob->complete(r);
                              });
        }
    };
    job->outstanding = entries.size();
    job->done = phase2;
    for (const JmtEntry &e : entries) {
        const CowPair p = pairFor(e);
        // Host-side chunk extraction: journal sectors -> record image
        // placed at chunk 0 of the target.
        std::vector<SectorData> src(p.srcSectors());
        ssd_.peek(p.src, p.srcSectors(), src.data());
        std::vector<SectorData> dst(p.dstSectors());
        for (std::uint32_t c = 0; c < p.chunks; ++c) {
            const std::uint32_t s = p.srcChunkShift + c;
            dst[c / kChunksPerSector].chunks[c % kChunksPerSector] =
                src[s / kChunksPerSector].chunks[s % kChunksPerSector];
        }
        payloads->push_back(std::move(dst));
        Command r = Command::read(p.src, p.srcSectors(),
                                  IoCause::Checkpoint);
        stats_.add("engine.ckptHostReadSectors", r.nsect);
        ssd_.submit(std::move(r), [job](const CmdResult &res) {
            job->complete(res);
        });
    }
}

void
SingleCowCheckpoint::run(const std::vector<JmtEntry> &entries,
                         DoneCb done)
{
    if (entries.empty()) {
        done(ssd_.eventQueue().now());
        return;
    }
    auto job = std::make_shared<FanOut>();
    job->outstanding = entries.size();
    job->done = std::move(done);
    for (const JmtEntry &e : entries) {
        stats_.add("engine.ckptCowCommands");
        ssd_.submit(Command::cowSingle(pairFor(e)),
                    [job](const CmdResult &r) { job->complete(r); });
    }
}

void
MultiCowCheckpoint::run(const std::vector<JmtEntry> &entries,
                        DoneCb done)
{
    if (entries.empty()) {
        done(ssd_.eventQueue().now());
        return;
    }
    auto job = std::make_shared<FanOut>();
    job->done = std::move(done);
    std::vector<Command> cmds;
    for (std::size_t i = 0; i < entries.size();
         i += cfg_.maxPairsPerCommand) {
        const std::size_t end = std::min(
            entries.size(), i + cfg_.maxPairsPerCommand);
        std::vector<CowPair> pairs;
        pairs.reserve(end - i);
        for (std::size_t j = i; j < end; ++j)
            pairs.push_back(pairFor(entries[j]));
        cmds.push_back(Command::cowMulti(std::move(pairs)));
    }
    job->outstanding = cmds.size();
    for (Command &c : cmds) {
        stats_.add("engine.ckptCowCommands");
        ssd_.submit(std::move(c),
                    [job](const CmdResult &r) { job->complete(r); });
    }
}

void
RemapCheckpoint::run(const std::vector<JmtEntry> &entries, DoneCb done)
{
    if (entries.empty()) {
        done(ssd_.eventQueue().now());
        return;
    }
    auto job = std::make_shared<FanOut>();
    job->done = std::move(done);
    std::vector<Command> cmds;
    for (std::size_t i = 0; i < entries.size();
         i += cfg_.maxPairsPerCommand) {
        const std::size_t end = std::min(
            entries.size(), i + cfg_.maxPairsPerCommand);
        std::vector<CowPair> pairs;
        pairs.reserve(end - i);
        for (std::size_t j = i; j < end; ++j)
            pairs.push_back(pairFor(entries[j]));
        cmds.push_back(Command::checkpointRemap(std::move(pairs)));
    }
    job->outstanding = cmds.size();
    for (Command &c : cmds) {
        stats_.add("engine.ckptRemapCommands");
        ssd_.submit(std::move(c),
                    [job](const CmdResult &r) { job->complete(r); });
    }
}

} // namespace checkin
