/**
 * @file
 * Pluggable checkpoint-trigger policies.
 *
 * Both storage-engine backends used to hard-code the paper's trigger
 * — a periodic timer OR an active-journal-bytes threshold — straight
 * from EngineConfig. This header extracts that decision into a
 * CheckpointPolicy object the engines consult at the exact same
 * decision points (append commit, timer tick, checkpoint finish), so
 * the trigger rule is swappable per run:
 *
 *  - FixedPolicy reproduces the historical interval/threshold rule
 *    bit-for-bit: same predicates, evaluated at the same ticks, no
 *    extra events or RNG draws, so existing presets and benches are
 *    unchanged to the byte.
 *  - AdaptivePolicy is a feedback controller that paces or defers
 *    checkpoints from live signals: journal fill rate (fast/slow
 *    EWMAs maintained here and exported as `journal.fillRate`),
 *    the EWMA of past checkpoint durations, and the attribution
 *    pipeline's live checkpoint-stall dwell. A hard safety bound
 *    starts a checkpoint early enough that the frozen half is always
 *    released before the active half can fill (the journal never
 *    overflows into an append stall).
 *
 * Policies are deterministic: decisions are pure functions of the
 * signal history (no wall clock, no RNG), so sweeps stay
 * byte-identical for any worker count.
 */

#ifndef CHECKIN_ENGINE_CHECKPOINT_POLICY_H_
#define CHECKIN_ENGINE_CHECKPOINT_POLICY_H_

#include <cstdint>
#include <memory>

#include "engine/engine_config.h"
#include "obs/flight_recorder.h"
#include "sim/types.h"

namespace checkin {

/** Live engine-side signals a policy decides from. */
struct PolicySignals
{
    Tick now = 0;
    /** Bytes accumulated in the active journal half. */
    std::uint64_t journalBytes = 0;
    /** Capacity of one journal half. */
    std::uint64_t journalCapacityBytes = 0;
    bool checkpointInProgress = false;
    /** Cumulative live checkpoint-stall dwell (attr.checkpointStall)
     *  across all ops so far; 0 when attribution is off. */
    Tick checkpointStallTicks = 0;
};

/** What a policy wants done right now. */
struct PolicyDecision
{
    bool checkpoint = false;
    obs::CkptTrigger trigger = obs::CkptTrigger::Manual;
};

/**
 * Checkpoint-trigger policy contract. The engine calls:
 *
 *  - timerPeriod() once per timer arm (0 disables the timer),
 *  - onTimer() from the timer body,
 *  - onAppend() after every journal append commit (and once more
 *    when a checkpoint finishes, to decide a Backlog re-trigger),
 *  - noteAppend() on every commit so the fill-rate estimator sees
 *    the active-half level, and
 *  - onCheckpointStart()/onCheckpointEnd() around every checkpoint.
 *
 * Decision calls are pure (no engine side effects); bookkeeping
 * calls never decide.
 */
class CheckpointPolicy
{
  public:
    virtual ~CheckpointPolicy() = default;

    virtual CheckpointPolicyKind kind() const = 0;
    const char *name() const { return checkpointPolicyName(kind()); }

    /** Period for the engine's periodic trigger timer; 0 = none. */
    virtual Tick timerPeriod() const = 0;

    /** Decide on a timer tick. */
    virtual PolicyDecision onTimer(const PolicySignals &sig) = 0;

    /** Decide after an append committed (or a checkpoint ended). */
    virtual PolicyDecision onAppend(const PolicySignals &sig) = 0;

    virtual void onCheckpointStart(Tick /*now*/) {}
    virtual void onCheckpointEnd(Tick /*now*/, Tick /*duration*/) {}

    /**
     * Feed the fill-rate estimator the active half's byte level at
     * @p now. Level drops (half switches) restart the baseline
     * without contributing a negative delta.
     */
    void noteAppend(Tick now, std::uint64_t level_bytes);

    /** Fast-EWMA journal fill rate, bytes per simulated second (the
     *  `journal.fillRate` metric). */
    double fillRateBytesPerSec() const;

    /** Slow-EWMA fill rate (the burst detector's baseline). */
    double slowFillRateBytesPerSec() const;

    /** Build the policy selected by @p cfg. */
    static std::unique_ptr<CheckpointPolicy>
    create(const EngineConfig &cfg);

  protected:
    explicit CheckpointPolicy(Tick fast_tau, Tick slow_tau)
        : fastTau_(fast_tau), slowTau_(slow_tau)
    {
    }

  private:
    /** EWMA time constants (ticks). */
    Tick fastTau_;
    Tick slowTau_;
    /** Decayed byte credits; rate = credit / tau. */
    double fastCredit_ = 0.0;
    double slowCredit_ = 0.0;
    Tick lastTick_ = 0;
    std::uint64_t lastLevel_ = 0;
    bool primed_ = false;
};

/**
 * The paper's fixed trigger, verbatim: checkpoint every
 * checkpointInterval, or as soon as the active journal half holds at
 * least checkpointJournalBytes. Decisions match the pre-policy
 * inline predicates exactly.
 */
class FixedPolicy final : public CheckpointPolicy
{
  public:
    explicit FixedPolicy(const EngineConfig &cfg);

    CheckpointPolicyKind
    kind() const override
    {
        return CheckpointPolicyKind::Fixed;
    }

    Tick timerPeriod() const override { return interval_; }

    PolicyDecision onTimer(const PolicySignals &sig) override;
    PolicyDecision onAppend(const PolicySignals &sig) override;

  private:
    Tick interval_;
    std::uint64_t thresholdBytes_;
};

/**
 * Feedback-paced trigger. Every controlInterval (and on every append
 * for the safety bound) the controller classifies the present moment
 * from the fast/slow fill-rate EWMAs:
 *
 *  - SAFETY (hard bound, checked first and also on the append path):
 *    start immediately when the active half is projected to fill
 *    before a checkpoint of EWMA duration could free the other half
 *    — journalBytes + margin * fillRate * ckptDuration >= capacity —
 *    or when the half is beyond safetyFraction regardless of rate.
 *    This is what keeps the journal from ever overflowing into an
 *    append stall, whatever the other terms decide.
 *  - BURST (fast >> slow): defer. Checkpointing now would stack the
 *    checkpoint's device work on top of the arrival burst, exactly
 *    when the tail can least afford it.
 *  - LULL (fast << slow): checkpoint eagerly once at least
 *    minCheckpointBytes accumulated — do the work while it is cheap
 *    so the next burst starts with an empty half.
 *  - Otherwise: steady-state pacing at paceFraction of the half,
 *    stretched toward safetyFraction when recent checkpoints caused
 *    measurable checkpoint-stall dwell (the attr.checkpointStall
 *    feedback term: stalls mean checkpoints are hurting foreground
 *    ops, so space them out as far as safety allows).
 */
class AdaptivePolicy final : public CheckpointPolicy
{
  public:
    explicit AdaptivePolicy(const EngineConfig &cfg);

    CheckpointPolicyKind
    kind() const override
    {
        return CheckpointPolicyKind::Adaptive;
    }

    Tick timerPeriod() const override { return knobs_.controlInterval; }

    PolicyDecision onTimer(const PolicySignals &sig) override;
    PolicyDecision onAppend(const PolicySignals &sig) override;

    void onCheckpointEnd(Tick now, Tick duration) override;

    /** EWMA checkpoint duration the safety projection uses. */
    Tick expectedCheckpointDuration() const { return ckptDurEwma_; }

  private:
    bool safetyBound(const PolicySignals &sig) const;
    double stallFactor(const PolicySignals &sig);

    AdaptivePolicyConfig knobs_;
    Tick ckptDurEwma_;
    /** Checkpoint-stall dwell already seen at the last control tick
     *  (for the stall-rate feedback term). */
    Tick lastStallTicks_ = 0;
    Tick lastControlTick_ = 0;
    double stallEwma_ = 0.0; //!< stall ticks per control interval
};

} // namespace checkin

#endif // CHECKIN_ENGINE_CHECKPOINT_POLICY_H_
