/**
 * @file
 * The storage engine (paper Fig 5 host side): query interface,
 * key-value mapping, journaling + checkpointing orchestration, and
 * crash recovery.
 */

#ifndef CHECKIN_ENGINE_KV_ENGINE_H_
#define CHECKIN_ENGINE_KV_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "engine/checkpoint.h"
#include "engine/checkpoint_policy.h"
#include "engine/engine_config.h"
#include "engine/host_cache.h"
#include "engine/journal.h"
#include "engine/keymap.h"
#include "engine/layout.h"
#include "engine/storage_engine.h"
#include "obs/attribution.h"
#include "obs/flight_recorder.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/stats.h"
#include "ssd/ssd.h"

namespace checkin {

/**
 * The checkpoint-journal storage engine (paper Fig 5 host side) —
 * the `checkin` StorageEngine backend.
 *
 * Construct, then call either load() (fresh store) or recover()
 * (rebuild from an existing device after a crash), then start() to
 * arm the checkpoint timer, then issue queries.
 */
class KvEngine : public StorageEngine
{
  public:
    KvEngine(SimContext &ctx, Ssd &ssd, const EngineConfig &cfg);

    /**
     * Populate the data area and catalog with initial values
     * (version 1). @p size_of gives each key's value size.
     */
    void load(const std::function<std::uint32_t(std::uint64_t)>
                  &size_of) override;

    /**
     * Rebuild the engine state from the device: restore the keymap
     * from the catalog, replay journal logs newer than the catalog,
     * checkpoint them, and leave a clean store.
     */
    RecoveryInfo recover() override;

    /** Arm the periodic checkpoint timer (if configured). */
    void start() override;

    // ------------------------------------------------------------------
    // Query interface
    // ------------------------------------------------------------------
    void get(std::uint64_t key, QueryCb cb) override;
    void update(std::uint64_t key, std::uint32_t value_bytes,
                QueryCb cb) override;
    void readModifyWrite(std::uint64_t key, std::uint32_t value_bytes,
                         QueryCb cb) override;
    /** Delete a key: journals a tombstone; the next checkpoint trims
     *  the data-area slot and records the deletion in the catalog. */
    void erase(std::uint64_t key, QueryCb cb) override;

    /**
     * Atomic multi-key transaction (paper Fig 7: the engine groups
     * journal logs into a transaction): every operation journals in
     * one group commit, so a crash persists all of them or none.
     * @p cb fires once, after the whole transaction is durable.
     */
    void updateBatch(std::vector<BatchOp> ops, QueryCb cb) override;
    /** Range scan over up to @p count consecutive keys. Data-area
     *  resident keys are fetched as one sequential read; journal-
     *  resident keys are fetched individually. */
    void scan(std::uint64_t start_key, std::uint32_t count,
              QueryCb cb) override;

    // ------------------------------------------------------------------
    // Checkpoint control
    // ------------------------------------------------------------------
    /** Start a checkpoint now if possible, else mark one pending.
     *  @p reason is recorded in the checkpoint phase timeline. */
    void requestCheckpoint(obs::CkptTrigger reason =
                               obs::CkptTrigger::Manual) override;
    bool
    checkpointInProgress() const override
    {
        return ckptInProgress_;
    }
    /** Completed checkpoint durations, in ticks. */
    const std::vector<Tick> &
    checkpointDurations() const override
    {
        return ckptDurations_;
    }

    double
    journalFillRate() const override
    {
        return policy_->fillRateBytesPerSec();
    }

    /** The trigger policy driving this engine's checkpoints. */
    const CheckpointPolicy &checkpointPolicy() const
    {
        return *policy_;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------
    const DiskLayout &layout() const { return layout_; }
    const Keymap &keymap() const { return keymap_; }
    JournalManager &journal() { return journal_; }
    StatRegistry &stats() override { return stats_; }
    const StatRegistry &stats() const override { return stats_; }
    const EngineConfig &config() const override { return cfg_; }

    std::uint32_t
    committedVersion(std::uint64_t key) const override
    {
        return keymap_[key].version;
    }

    /**
     * Functional full-store verification: read every key's committed
     * value through peek and check its content tokens.
     * @return number of keys verified.
     * @throws std::runtime_error on any content mismatch.
     */
    std::uint64_t verifyAllKeys() const override;

  private:
    struct ParsedLog
    {
        std::uint64_t key;
        std::uint32_t version;
        std::uint8_t half;
        std::uint64_t chunkOff;
        std::uint32_t chunks;
    };

    void doGet(std::uint64_t key, QueryCb cb);
    void doUpdate(std::uint64_t key, std::uint32_t value_bytes,
                  QueryCb cb);
    void doErase(std::uint64_t key, QueryCb cb);
    void doScan(std::uint64_t start_key, std::uint32_t count,
                QueryCb cb);
    /** Trim the data-area slots of deleted keys (fan-out). */
    void trimTombstones(const std::vector<JmtEntry> &tombs,
                        std::function<void(Tick)> cb);
    /** Defer a query while checkpoint-locked; true when deferred. */
    bool maybeDefer(std::function<void()> fn);
    void drainDeferred();

    void onCheckpointTimer();
    /** Current trigger-policy inputs. */
    PolicySignals policySignals() const;
    /** Feed the policy an append commit; maybe trigger. */
    void noteJournalAppend();
    void startCheckpoint();
    void onStrategyDone(const std::vector<JmtEntry> &entries,
                        std::uint8_t half, Tick t);
    /**
     * Persist catalog entries for @p entries (their data-area state
     * changed) and fire @p cb when all metadata writes completed.
     */
    void writeCatalog(const std::vector<JmtEntry> &entries,
                      std::function<void(Tick)> cb);
    void deleteLogs(std::uint8_t half, std::function<void(Tick)> cb);
    void finishCheckpoint(std::uint8_t half, Tick t);

    /** Verify a committed key's bytes at its current location. */
    void verifyKeyContent(std::uint64_t key, const KeyState &st) const;

    /** Parse all journal records out of @p half (recovery). */
    std::vector<ParsedLog> parseJournalHalf(std::uint8_t half) const;

    EventQueue &eq_;
    Ssd &ssd_;
    EngineConfig cfg_;
    DiskLayout layout_;
    Keymap keymap_;
    HostCache hostCache_;
    StatRegistry stats_;
    JournalManager journal_;
    std::unique_ptr<CheckpointStrategy> strategy_;
    std::unique_ptr<CheckpointPolicy> policy_;
    /** Telemetry sampler of the run (nullptr: telemetry off). */
    obs::TelemetrySampler *telem_ = nullptr;

    bool ckptInProgress_ = false;
    bool pendingCkptRequest_ = false;
    Tick ckptStart_ = 0;
    Tick ckptDataDone_ = 0; //!< data movement (strategy+trims) end
    Tick ckptMetaDone_ = 0; //!< catalog persistence end
    std::vector<Tick> ckptDurations_;
    /** In-flight checkpoint's phase-timeline record (attribution);
     *  device counters hold their start-of-checkpoint baselines
     *  until finishCheckpoint() turns them into deltas. */
    obs::CheckpointStat ckptRec_;
    std::uint64_t ckptSeq_ = 0;
    std::deque<std::function<void()>> deferred_;
};

} // namespace checkin

#endif // CHECKIN_ENGINE_KV_ENGINE_H_
