/**
 * @file
 * Logical disk layout of the key-value store (paper Fig 2):
 * catalog (metadata) area, two ping-pong journal halves, data area.
 */

#ifndef CHECKIN_ENGINE_LAYOUT_H_
#define CHECKIN_ENGINE_LAYOUT_H_

#include <cstdint>
#include <stdexcept>

#include "engine/engine_config.h"
#include "ftl/ftl.h"
#include "sim/types.h"

namespace checkin {

/** Catalog entries per 512 B sector (one 128 B chunk each). */
inline constexpr std::uint64_t kCatalogEntriesPerSector =
    kChunksPerSector;

/** Sector-level map of the store's on-disk areas. */
struct DiskLayout
{
    std::uint64_t recordCount = 0;
    /** Per-key data-area slot in sectors. */
    std::uint64_t slotSectors = 0;

    Lba catalogStart = 0;
    std::uint64_t catalogSectors = 0;
    Lba journalStart[2] = {0, 0};
    std::uint64_t journalSectors = 0; //!< per half
    Lba dataStart = 0;
    std::uint64_t dataSectors = 0;

    /**
     * Compute the layout. Areas are aligned to @p unit_sectors so
     * every area starts on an FTL mapping-unit boundary.
     * @throws std::invalid_argument when the device is too small.
     */
    static DiskLayout
    compute(const EngineConfig &cfg, std::uint64_t capacity_sectors,
            std::uint32_t unit_sectors)
    {
        DiskLayout l;
        l.recordCount = cfg.recordCount;
        l.slotSectors = alignUp(divCeil(cfg.maxValueBytes,
                                        kSectorBytes),
                                unit_sectors);
        l.catalogStart = 0;
        l.catalogSectors =
            alignUp(divCeil(cfg.recordCount, kCatalogEntriesPerSector),
                    unit_sectors);
        l.journalSectors =
            alignUp(divCeil(cfg.journalHalfBytes, kSectorBytes),
                    unit_sectors);
        l.journalStart[0] = l.catalogStart + l.catalogSectors;
        l.journalStart[1] = l.journalStart[0] + l.journalSectors;
        l.dataStart = l.journalStart[1] + l.journalSectors;
        l.dataSectors = l.recordCount * l.slotSectors;
        if (l.dataStart + l.dataSectors > capacity_sectors) {
            throw std::invalid_argument(
                "DiskLayout: store does not fit the device");
        }
        return l;
    }

    /** First sector of @p key's data-area slot. */
    Lba
    targetLba(std::uint64_t key) const
    {
        return dataStart + key * slotSectors;
    }

    /** Catalog sector holding @p key's entry. */
    Lba
    catalogLba(std::uint64_t key) const
    {
        return catalogStart + key / kCatalogEntriesPerSector;
    }

    /** Chunk capacity of one journal half. */
    std::uint64_t
    journalChunks() const
    {
        return journalSectors * kChunksPerSector;
    }

    /** Sector of absolute journal chunk @p chunk in @p half. */
    Lba
    journalChunkLba(std::uint8_t half, std::uint64_t chunk) const
    {
        return journalStart[half] + chunk / kChunksPerSector;
    }
};

} // namespace checkin

#endif // CHECKIN_ENGINE_LAYOUT_H_
