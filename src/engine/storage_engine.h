/**
 * @file
 * Abstract storage-engine interface.
 *
 * Every consumer of the engine layer (workload clients, the harness,
 * the crash oracle, cluster shards, examples, benches) programs
 * against this contract; concrete backends plug in behind
 * EngineConfig::backend (see harness/presets.h makeEngine):
 *
 *  - `checkin` (engine/kv_engine.h): the paper's checkpoint-journal
 *    design — in-place data area + dual journal halves + in-storage
 *    checkpointing.
 *  - `lsm` (engine/lsm/lsm_engine.h): memtable + WAL over the journal
 *    area, immutable sorted runs in the data area, and leveled
 *    compaction whose merges are offloaded to the ISCE.
 *
 * The lifecycle contract is shared by all backends: construct, then
 * call either load() (fresh store) or recover() (rebuild from an
 * existing device after a crash), then start() to arm background
 * triggers, then issue queries. requestCheckpoint() means "make all
 * acknowledged state durable in the data area and release journal
 * space" whatever the backend calls that internally (checkpoint,
 * memtable flush, ...).
 */

#ifndef CHECKIN_ENGINE_STORAGE_ENGINE_H_
#define CHECKIN_ENGINE_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/engine_config.h"
#include "obs/flight_recorder.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace checkin {

/** Per-query completion info handed to the client. */
struct QueryResult
{
    /** Completion tick. */
    Tick done = 0;
    /** True when a checkpoint was running while the query executed. */
    bool duringCheckpoint = false;
    /** True when the key had a value (GET paths). */
    bool found = false;
    /** Keys with live values returned by a SCAN. */
    std::uint32_t scanned = 0;
};

/** Outcome of a crash recovery pass. */
struct RecoveryInfo
{
    std::uint64_t catalogKeys = 0;   //!< keys restored from catalog
    std::uint64_t replayedLogs = 0;  //!< journal records replayed
    Tick duration = 0;               //!< simulated recovery time
};

/**
 * Backend-independent storage-engine contract.
 *
 * Keys are dense in [0, config().recordCount); values are sized in
 * bytes and stored as 128 B content-token chunks (engine/record.h).
 * All queries are asynchronous: the callback fires when the operation
 * is acknowledged, and an acknowledged write must survive any later
 * power loss (the crash oracle enforces this for every backend).
 */
class StorageEngine
{
  public:
    using QueryCb = std::function<void(const QueryResult &)>;

    /** One operation of a multi-key transaction. */
    struct BatchOp
    {
        std::uint64_t key;
        /** Value size; 0 deletes the key. */
        std::uint32_t valueBytes;
    };

    virtual ~StorageEngine() = default;

    /**
     * Populate the store with initial values (version 1).
     * @p size_of gives each key's value size.
     */
    virtual void
    load(const std::function<std::uint32_t(std::uint64_t)> &size_of)
        = 0;

    /**
     * Rebuild engine state from the device after a crash and leave a
     * clean store. Must be idempotent: recovering an already-clean
     * store is a no-op apart from simulated time.
     */
    virtual RecoveryInfo recover() = 0;

    /** Arm background triggers (checkpoint timer / flush policy). */
    virtual void start() = 0;

    // ------------------------------------------------------------------
    // Query interface
    // ------------------------------------------------------------------
    virtual void get(std::uint64_t key, QueryCb cb) = 0;
    virtual void update(std::uint64_t key, std::uint32_t value_bytes,
                        QueryCb cb)
        = 0;
    virtual void readModifyWrite(std::uint64_t key,
                                 std::uint32_t value_bytes,
                                 QueryCb cb)
        = 0;
    /** Delete a key; later GETs report found == false. */
    virtual void erase(std::uint64_t key, QueryCb cb) = 0;
    /**
     * Atomic multi-key transaction: a crash persists all operations
     * or none. @p cb fires once, after the whole group is durable.
     */
    virtual void updateBatch(std::vector<BatchOp> ops, QueryCb cb) = 0;
    /** Range scan over up to @p count consecutive keys. */
    virtual void scan(std::uint64_t start_key, std::uint32_t count,
                      QueryCb cb)
        = 0;

    // ------------------------------------------------------------------
    // Checkpoint / flush control
    // ------------------------------------------------------------------
    /** Make acknowledged state durable in the data area and release
     *  journal space now if possible, else mark one pending. */
    virtual void requestCheckpoint(
        obs::CkptTrigger reason = obs::CkptTrigger::Manual)
        = 0;
    virtual bool checkpointInProgress() const = 0;
    /** Completed checkpoint/flush durations, in ticks. */
    virtual const std::vector<Tick> &checkpointDurations() const = 0;

    /**
     * Live journal (WAL) fill rate in bytes per simulated second —
     * the fast-EWMA estimate the checkpoint policy maintains
     * (exported as the `journal.fillRate` metric). 0 for backends
     * without a journal.
     */
    virtual double journalFillRate() const { return 0.0; }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------
    virtual StatRegistry &stats() = 0;
    virtual const StatRegistry &stats() const = 0;
    virtual const EngineConfig &config() const = 0;

    /**
     * Latest committed (acknowledged-durable) version of @p key; 0
     * when never written. The crash oracle compares this against the
     * versions it saw acknowledged before a power cut.
     */
    virtual std::uint32_t committedVersion(std::uint64_t key) const = 0;

    /**
     * Functional full-store verification: read every key's committed
     * value and check its content tokens.
     * @return number of keys verified.
     * @throws std::runtime_error on any content mismatch.
     */
    virtual std::uint64_t verifyAllKeys() const = 0;
};

} // namespace checkin

#endif // CHECKIN_ENGINE_STORAGE_ENGINE_H_
