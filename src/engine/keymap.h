/**
 * @file
 * In-memory key catalog: where each key's latest committed value
 * lives (data area or a journal location) and at which version.
 */

#ifndef CHECKIN_ENGINE_KEYMAP_H_
#define CHECKIN_ENGINE_KEYMAP_H_

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace checkin {

/** Committed state of one key. */
struct KeyState
{
    /** Latest committed version (0 = never written). */
    std::uint32_t version = 0;
    /** Stored length in 128 B chunks (post-formatting). */
    std::uint32_t storedChunks = 0;
    /** True when the latest copy lives in the journal area. */
    bool inJournal = false;
    /** Journal half holding the copy (when inJournal). */
    std::uint8_t half = 0;
    /** Absolute chunk offset inside that half (when inJournal). */
    std::uint64_t journalChunk = 0;
    /** Versions handed out but not yet committed (ordering only). */
    std::uint32_t assignedVersion = 0;
    /** Version the data area + catalog hold (last checkpointed). */
    std::uint32_t catalogVersion = 0;
    /** Stored chunks of the catalog/data-area copy. */
    std::uint32_t catalogChunks = 0;
};

/** Dense key -> KeyState table (the engine's key-value mapping). */
class Keymap
{
  public:
    explicit Keymap(std::uint64_t key_count) : states_(key_count) {}

    KeyState &operator[](std::uint64_t key) { return states_[key]; }
    const KeyState &
    operator[](std::uint64_t key) const
    {
        return states_[key];
    }

    std::uint64_t size() const { return states_.size(); }

  private:
    std::vector<KeyState> states_;
};

} // namespace checkin

#endif // CHECKIN_ENGINE_KEYMAP_H_
