/**
 * @file
 * The five checkpoint execution strategies evaluated in the paper
 * (§IV-A): host-driven Baseline, per-log CoW offload (ISC-A), batched
 * CoW offload (ISC-B), and the batched remapping checkpoint command
 * shared by ISC-C and Check-In (the two differ in the engine's
 * journaling alignment, not in the checkpoint command).
 */

#ifndef CHECKIN_ENGINE_CHECKPOINT_H_
#define CHECKIN_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/engine_config.h"
#include "engine/journal.h"
#include "engine/layout.h"
#include "sim/stats.h"
#include "ssd/ssd.h"

namespace checkin {

/** Executes the journal -> data-area movement of one checkpoint. */
class CheckpointStrategy
{
  public:
    /** Fired when the data movement is complete. */
    using DoneCb = std::function<void(Tick)>;

    CheckpointStrategy(Ssd &ssd, const DiskLayout &layout,
                       const EngineConfig &cfg, StatRegistry &stats)
        : ssd_(ssd), layout_(layout), cfg_(cfg), stats_(stats)
    {
    }

    virtual ~CheckpointStrategy() = default;

    /**
     * Move the latest versions described by @p entries from the
     * journal area to their data-area targets. @p done fires once
     * all movement commands completed; the caller then writes
     * metadata and deletes the logs.
     */
    virtual void run(const std::vector<JmtEntry> &entries,
                     DoneCb done) = 0;

    /** Factory keyed by the evaluated configuration. */
    static std::unique_ptr<CheckpointStrategy>
    create(Ssd &ssd, const DiskLayout &layout, const EngineConfig &cfg,
           StatRegistry &stats);

  protected:
    /** Build the chunk-precise CoW descriptor for one JMT entry. */
    CowPair pairFor(const JmtEntry &entry) const;

    Ssd &ssd_;
    const DiskLayout &layout_;
    const EngineConfig &cfg_;
    StatRegistry &stats_;
};

/** Baseline: the host reads journal logs and rewrites the data area. */
class HostCheckpoint : public CheckpointStrategy
{
  public:
    using CheckpointStrategy::CheckpointStrategy;
    void run(const std::vector<JmtEntry> &entries, DoneCb done)
        override;
};

/** ISC-A: one CowSingle command per latest log. */
class SingleCowCheckpoint : public CheckpointStrategy
{
  public:
    using CheckpointStrategy::CheckpointStrategy;
    void run(const std::vector<JmtEntry> &entries, DoneCb done)
        override;
};

/** ISC-B: CowMulti commands carrying batches of descriptors. */
class MultiCowCheckpoint : public CheckpointStrategy
{
  public:
    using CheckpointStrategy::CheckpointStrategy;
    void run(const std::vector<JmtEntry> &entries, DoneCb done)
        override;
};

/** ISC-C / Check-In: batched CheckpointRemap commands. */
class RemapCheckpoint : public CheckpointStrategy
{
  public:
    using CheckpointStrategy::CheckpointStrategy;
    void run(const std::vector<JmtEntry> &entries, DoneCb done)
        override;
};

} // namespace checkin

#endif // CHECKIN_ENGINE_CHECKPOINT_H_
